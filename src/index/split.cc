#include "index/split.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace kanon {

namespace {

/// Best-balanced admissible cut of sorted axis values: the cut value must be
/// one of the data values, with at least `min_side` strictly-smaller values
/// to its left and at least `min_side` values (>= cut) to its right.
std::optional<std::pair<double, size_t>> BalancedCut(
    std::vector<double>& sorted_values, size_t min_side) {
  const size_t n = sorted_values.size();
  if (n < 2 * min_side) return std::nullopt;
  std::sort(sorted_values.begin(), sorted_values.end());
  // Admissible cut positions are boundaries between distinct values.
  const size_t target = n / 2;
  std::optional<std::pair<double, size_t>> best;  // (value, left_count)
  size_t best_imbalance = n + 1;
  size_t i = min_side;
  // Advance to the first boundary at or after min_side.
  while (i < n && sorted_values[i] == sorted_values[i - 1]) ++i;
  for (; i + min_side <= n; ++i) {
    if (sorted_values[i] == sorted_values[i - 1]) continue;
    const size_t left = i;
    const size_t imbalance =
        left > target ? left - target : target - left;
    if (imbalance < best_imbalance) {
      best_imbalance = imbalance;
      best = {sorted_values[i], left};
    }
  }
  return best;
}

/// Cut nearest `target`, respecting min_side.
std::optional<std::pair<double, size_t>> TargetCut(
    std::vector<double>& sorted_values, size_t min_side, double target) {
  const size_t n = sorted_values.size();
  if (n < 2 * min_side) return std::nullopt;
  std::sort(sorted_values.begin(), sorted_values.end());
  std::optional<std::pair<double, size_t>> best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = min_side; i + min_side <= n; ++i) {
    if (sorted_values[i] == sorted_values[i - 1]) continue;
    const double dist = std::abs(sorted_values[i] - target);
    if (dist < best_dist) {
      best_dist = dist;
      best = {sorted_values[i], i};
    }
  }
  return best;
}

/// Cut nearest the spatial midpoint of the axis extent, respecting min_side.
std::optional<std::pair<double, size_t>> MidpointCut(
    std::vector<double>& sorted_values, size_t min_side) {
  if (sorted_values.empty()) return std::nullopt;
  const auto [lo_it, hi_it] =
      std::minmax_element(sorted_values.begin(), sorted_values.end());
  return TargetCut(sorted_values, min_side, 0.5 * (*lo_it + *hi_it));
}

/// Cost of a candidate cut: the sum over both resulting sides of either the
/// normalized MBR volume (the classic minimize-area heuristic; a tiny
/// epsilon keeps flat boxes comparable) or, when weights are set, each
/// side's weighted certainty contribution |side| * sum_d w_d * ext_d/dom_d.
/// Multiplying a volume factor by a constant weight would rescale *every*
/// candidate identically and steer nothing, whereas the additive certainty
/// form makes heavy axes genuinely more attractive to cut (paper
/// Section 2.4). Computed in a single pass over the points.
double SplitCost(const double* points, size_t n, size_t dim, size_t axis,
                 double cut, const SplitConfig& config) {
  Mbr left(dim);
  Mbr right(dim);
  size_t left_count = 0;
  for (size_t r = 0; r < n; ++r) {
    const std::span<const double> row(points + r * dim, dim);
    if (row[axis] < cut) {
      left.ExpandToInclude(row);
      ++left_count;
    } else {
      right.ExpandToInclude(row);
    }
  }
  if (config.weights.empty()) {
    double lv = 1.0, rv = 1.0;
    for (size_t d = 0; d < dim; ++d) {
      lv *= config.NormalizedExtent(d, left.Extent(d)) + 1e-9;
      rv *= config.NormalizedExtent(d, right.Extent(d)) + 1e-9;
    }
    return lv + rv;
  }
  double ln = 0.0, rn = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    ln += config.Weight(d) * config.NormalizedExtent(d, left.Extent(d));
    rn += config.Weight(d) * config.NormalizedExtent(d, right.Extent(d));
  }
  return static_cast<double>(left_count) * ln +
         static_cast<double>(n - left_count) * rn;
}

std::vector<size_t> CandidateAxes(size_t dim, const SplitConfig& config) {
  if (!config.biased_axes.empty()) return config.biased_axes;
  std::vector<size_t> axes(dim);
  for (size_t d = 0; d < dim; ++d) axes[d] = d;
  return axes;
}

}  // namespace

std::optional<PointSplit> ChoosePointSplit(const double* points, size_t n,
                                           size_t dim, size_t min_side,
                                           const SplitConfig& config,
                                           const Region* region) {
  if (n < 2 * min_side || n < 2) return std::nullopt;

  // One stats pass gives every axis's extent; for the extent-driven
  // policies that already decides the ranking, and for kMinArea it lets us
  // evaluate the expensive two-box cost on only the few widest axes (the
  // minimum-area cut virtually always lies on one of them).
  std::vector<double> axis_lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> axis_hi(dim, -std::numeric_limits<double>::infinity());
  for (size_t r = 0; r < n; ++r) {
    for (size_t d = 0; d < dim; ++d) {
      const double v = points[r * dim + d];
      axis_lo[d] = std::min(axis_lo[d], v);
      axis_hi[d] = std::max(axis_hi[d], v);
    }
  }
  constexpr size_t kMinAreaCandidates = 3;

  auto evaluate_axes = [&](std::span<const size_t> axes)
      -> std::optional<PointSplit> {
    std::vector<size_t> ranked(axes.begin(), axes.end());
    std::erase_if(ranked, [&](size_t a) { return a >= dim; });
    // Ranking extent: the data spread, except for quadtree-style splits
    // where a finite region extent takes precedence (cells halve along
    // their own widest side, independent of where the data sits).
    auto rank_extent = [&](size_t a) {
      if (config.policy == SplitPolicy::kRegionMidpoint &&
          region != nullptr && std::isfinite(region->lo[a]) &&
          std::isfinite(region->hi[a])) {
        return region->hi[a] - region->lo[a];
      }
      return axis_hi[a] - axis_lo[a];
    };
    std::sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
      return config.Weight(a) * config.NormalizedExtent(a, rank_extent(a)) >
             config.Weight(b) * config.NormalizedExtent(b, rank_extent(b));
    });
    if (config.policy == SplitPolicy::kMinArea &&
        ranked.size() > kMinAreaCandidates) {
      // Keep a couple of extras in case the widest axes admit no cut.
      std::span<const size_t> head(ranked.data(), ranked.size());
      std::vector<double> values(n);
      std::optional<PointSplit> best;
      double best_score = std::numeric_limits<double>::infinity();
      size_t evaluated = 0;
      for (size_t axis : head) {
        if (evaluated >= kMinAreaCandidates) break;
        for (size_t r = 0; r < n; ++r) values[r] = points[r * dim + axis];
        auto cut = BalancedCut(values, min_side);
        if (!cut) continue;
        ++evaluated;
        const double score =
            SplitCost(points, n, dim, axis, cut->first, config);
        if (score < best_score) {
          best_score = score;
          best = PointSplit{axis, cut->first, cut->second, n - cut->second};
        }
      }
      return best;
    }
    std::vector<double> values(n);
    std::optional<PointSplit> best;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t axis : ranked) {
      for (size_t r = 0; r < n; ++r) values[r] = points[r * dim + axis];
      std::optional<std::pair<double, size_t>> cut;
      switch (config.policy) {
        case SplitPolicy::kMidpointWidest:
          cut = MidpointCut(values, min_side);
          break;
        case SplitPolicy::kRegionMidpoint:
          if (region != nullptr && std::isfinite(region->lo[axis]) &&
              std::isfinite(region->hi[axis])) {
            cut = TargetCut(values, min_side,
                            0.5 * (region->lo[axis] + region->hi[axis]));
          } else {
            cut = MidpointCut(values, min_side);
          }
          break;
        default:
          cut = BalancedCut(values, min_side);
          break;
      }
      if (!cut) continue;
      double score = 0.0;
      switch (config.policy) {
        case SplitPolicy::kMinArea:
          score = SplitCost(points, n, dim, axis, cut->first, config);
          break;
        case SplitPolicy::kMedianWidest:
        case SplitPolicy::kMidpointWidest:
        case SplitPolicy::kRegionMidpoint:
          // Axes are ranked widest-first: the first admissible cut wins.
          return PointSplit{axis, cut->first, cut->second, n - cut->second};
      }
      if (score < best_score) {
        best_score = score;
        best = PointSplit{axis, cut->first, cut->second, n - cut->second};
      }
    }
    return best;
  };

  const auto axes = CandidateAxes(dim, config);
  auto best = evaluate_axes(axes);
  if (!best && !config.biased_axes.empty()) {
    // Biased axes inadmissible (e.g., constant values): fall back to all.
    std::vector<size_t> all(dim);
    for (size_t d = 0; d < dim; ++d) all[d] = d;
    best = evaluate_axes(all);
  }
  return best;
}

std::optional<RegionSplit> ChooseRegionSeparator(
    std::span<const Region* const> child_regions, const SplitConfig& config) {
  const size_t m = child_regions.size();
  if (m < 2) return std::nullopt;
  const size_t dim = child_regions[0]->dim();
  const size_t target = m / 2;

  std::optional<RegionSplit> best;
  size_t best_imbalance = m + 1;
  for (size_t axis = 0; axis < dim; ++axis) {
    // Candidate planes: every finite child boundary on this axis.
    std::vector<double> candidates;
    candidates.reserve(2 * m);
    for (const Region* r : child_regions) {
      if (std::isfinite(r->lo[axis])) candidates.push_back(r->lo[axis]);
      if (std::isfinite(r->hi[axis])) candidates.push_back(r->hi[axis]);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (double v : candidates) {
      size_t left = 0;
      bool valid = true;
      for (const Region* r : child_regions) {
        if (r->hi[axis] <= v) {
          ++left;
        } else if (r->lo[axis] >= v) {
          // right side
        } else {
          valid = false;  // plane slices through this child's region
          break;
        }
      }
      if (!valid || left == 0 || left == m) continue;
      const size_t imbalance = left > target ? left - target : target - left;
      // Prefer balance; among equally balanced planes prefer higher-weighted
      // axes (workload bias applies to internal splits as well).
      if (imbalance < best_imbalance ||
          (imbalance == best_imbalance && best &&
           config.Weight(axis) > config.Weight(best->axis))) {
        best_imbalance = imbalance;
        best = RegionSplit{axis, v, left, m - left};
      }
    }
  }
  return best;
}

}  // namespace kanon
