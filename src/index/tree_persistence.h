#ifndef KANON_INDEX_TREE_PERSISTENCE_H_
#define KANON_INDEX_TREE_PERSISTENCE_H_

#include "common/status.h"
#include "index/rplus_tree.h"
#include "storage/pager.h"

namespace kanon {

/// Serialized-tree metadata returned by SaveTree and consumed by LoadTree.
struct TreeSnapshot {
  PageId first_page = kInvalidPageId;
  size_t byte_size = 0;
  size_t record_count = 0;
};

/// Persists an R⁺-tree into a chain of pager pages (a depth-first byte
/// stream: regions, MBRs, leaf payloads). The anonymizing index can thus
/// outlive the process — re-opening it restores incremental anonymization
/// exactly where it stopped, with the same leaf partitioning (hence the
/// same published equivalence classes and k-bound groups).
StatusOr<TreeSnapshot> SaveTree(const RPlusTree& tree, Pager* pager);

/// Restores a tree saved by SaveTree. `config` must match the structural
/// parameters the tree was built with (it is validated against the stored
/// header where possible).
StatusOr<RPlusTree> LoadTree(Pager* pager, const TreeSnapshot& snapshot,
                             size_t dim, const RTreeConfig& config);

/// Releases the snapshot's pages back to the pager.
Status FreeSnapshot(Pager* pager, const TreeSnapshot& snapshot);

}  // namespace kanon

#endif  // KANON_INDEX_TREE_PERSISTENCE_H_
