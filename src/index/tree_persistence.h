#ifndef KANON_INDEX_TREE_PERSISTENCE_H_
#define KANON_INDEX_TREE_PERSISTENCE_H_

#include "common/status.h"
#include "index/rplus_tree.h"
#include "storage/pager.h"

namespace kanon {

/// Serialized-tree metadata returned by SaveTree and consumed by LoadTree.
struct TreeSnapshot {
  PageId first_page = kInvalidPageId;
  size_t byte_size = 0;
  size_t record_count = 0;
  /// CRC32 of the logical byte stream. LoadTree re-computes it while
  /// reading and rejects a mismatch (0 = unknown, verification skipped —
  /// snapshots taken before checksumming existed).
  uint32_t crc32 = 0;
};

/// Persists an R⁺-tree into a chain of pager pages (a depth-first byte
/// stream: regions, MBRs, leaf payloads). The anonymizing index can thus
/// outlive the process — re-opening it restores incremental anonymization
/// exactly where it stopped, with the same leaf partitioning (hence the
/// same published equivalence classes and k-bound groups).
StatusOr<TreeSnapshot> SaveTree(const RPlusTree& tree, Pager* pager);

/// Restores a tree saved by SaveTree. `config` must match the structural
/// parameters the tree was built with (it is validated against the stored
/// header where possible).
StatusOr<RPlusTree> LoadTree(Pager* pager, const TreeSnapshot& snapshot,
                             size_t dim, const RTreeConfig& config);

/// Releases the snapshot's pages back to the pager.
Status FreeSnapshot(Pager* pager, const TreeSnapshot& snapshot);

/// Saves `tree` as the sole content of the named file (the snapshot starts
/// at page 0) and fsyncs it before returning — the checkpoint primitive of
/// the durability subsystem (src/durability/checkpoint.h). `env` = nullptr
/// uses Env::Default().
StatusOr<TreeSnapshot> SaveTreeToFile(const RPlusTree& tree,
                                      const std::string& path,
                                      size_t page_size = kDefaultPageSize,
                                      Env* env = nullptr);

/// Restores a tree written by SaveTreeToFile.
StatusOr<RPlusTree> LoadTreeFromFile(const std::string& path,
                                     const TreeSnapshot& snapshot, size_t dim,
                                     const RTreeConfig& config,
                                     size_t page_size = kDefaultPageSize,
                                     Env* env = nullptr);

}  // namespace kanon

#endif  // KANON_INDEX_TREE_PERSISTENCE_H_
