#ifndef KANON_INDEX_HILBERT_H_
#define KANON_INDEX_HILBERT_H_

#include <cstdint>
#include <span>

#include "data/dataset.h"

namespace kanon {

/// A position on a space-filling curve. 128 bits accommodate up to
/// bits*dim <= 128 (e.g. nine attributes at 14 bits each).
using CurveKey = unsigned __int128;

/// d-dimensional Hilbert curve index of a grid point (Skilling's compact
/// transform). `coords` are grid coordinates with `bits` significant bits
/// each; requires bits * coords.size() <= 128.
CurveKey HilbertKey(std::span<const uint32_t> coords, int bits);

/// Z-order (Morton) index: plain bit interleaving.
CurveKey ZOrderKey(std::span<const uint32_t> coords, int bits);

/// Maps real-valued points of a known domain onto the 2^bits grid used by
/// the space-filling curves.
class GridQuantizer {
 public:
  GridQuantizer(const Domain& domain, int bits);

  int bits() const { return bits_; }
  size_t dim() const { return domain_.dim(); }

  /// Writes dim() grid coordinates for `point` into `out`.
  void Quantize(std::span<const double> point, uint32_t* out) const;

 private:
  Domain domain_;
  int bits_;
};

}  // namespace kanon

#endif  // KANON_INDEX_HILBERT_H_
