#ifndef KANON_INDEX_SPLIT_H_
#define KANON_INDEX_SPLIT_H_

#include <optional>
#include <span>
#include <vector>

#include "index/mbr.h"

namespace kanon {

/// How a node chooses the axis and cut value when it splits.
enum class SplitPolicy {
  /// Try every admissible axis at its best-balanced cut; keep the cut whose
  /// two resulting MBRs have the smallest total (weight-normalized) volume.
  /// This is the paper's "the R-tree splits by trying to minimize the area
  /// of the resulting partitions" and is the default.
  kMinArea,
  /// Split the axis with the largest weighted normalized extent at a
  /// balanced cut (the Mondrian-style heuristic, exposed for ablation).
  kMedianWidest,
  /// Same axis choice but cut at the spatial midpoint instead of the median.
  kMidpointWidest,
  /// Quadtree-style, data-independent cuts: split at the midpoint of the
  /// node's *region* (snapped to the nearest admissible data boundary),
  /// falling back to the data midpoint when the region is unbounded. The
  /// paper's conclusion cites the case for quadtrees as multidimensional
  /// indexes; this policy lets that trade-off be measured. Typically used
  /// with min_leaf = 1 plus leaf-scan merging, since regular cells cannot
  /// honor an occupancy floor.
  kRegionMidpoint,
};

/// Shared configuration for split decisions.
struct SplitConfig {
  SplitPolicy policy = SplitPolicy::kMinArea;

  /// Per-axis importance weights (empty = all 1.0). Higher weight makes an
  /// axis more attractive to split — the workload-aware knob from
  /// Section 2.4 of the paper ("assigning higher weights to the more
  /// important quasi-identifier attributes").
  std::vector<double> weights;

  /// If non-empty, splits use only these axes whenever one of them admits a
  /// valid cut (the paper's hard-biased splitting: "selects the Zipcode
  /// attribute as the splitting attribute for every split").
  std::vector<size_t> biased_axes;

  /// Optional per-axis domain extents used to normalize lengths across
  /// attributes with very different scales (empty = no normalization).
  std::vector<double> domain_extent;

  double NormalizedExtent(size_t axis, double extent) const {
    if (axis < domain_extent.size() && domain_extent[axis] > 0.0) {
      return extent / domain_extent[axis];
    }
    return extent;
  }
  double Weight(size_t axis) const {
    return axis < weights.size() ? weights[axis] : 1.0;
  }
};

/// A chosen cut of a point multiset: records with point[axis] < value go
/// left; the rest go right.
struct PointSplit {
  size_t axis = 0;
  double value = 0.0;
  size_t left_count = 0;
  size_t right_count = 0;
};

/// Chooses a cut of `n` points (row-major in `points`) such that both sides
/// receive at least `min_side` records. Returns nullopt when no axis admits
/// such a cut (e.g., too many duplicate quasi-identifier vectors) — callers
/// then leave the node overfull, which never violates k-anonymity.
/// `region` (the node's cell, when available) is consulted only by the
/// kRegionMidpoint policy.
std::optional<PointSplit> ChoosePointSplit(const double* points, size_t n,
                                           size_t dim, size_t min_side,
                                           const SplitConfig& config,
                                           const Region* region = nullptr);

/// A separating hyperplane for an internal node's children: children whose
/// region satisfies hi[axis] <= value go left, the rest (lo[axis] >= value)
/// go right.
struct RegionSplit {
  size_t axis = 0;
  double value = 0.0;
  size_t left_count = 0;
  size_t right_count = 0;
};

/// Finds a hyperplane that cleanly separates sibling regions into two
/// non-empty groups, preferring balanced group sizes. Because sibling
/// regions arise from recursive binary cuts, at least one separating plane
/// always exists; nullopt is only possible for degenerate inputs (< 2
/// children).
std::optional<RegionSplit> ChooseRegionSeparator(
    std::span<const Region* const> child_regions, const SplitConfig& config);

}  // namespace kanon

#endif  // KANON_INDEX_SPLIT_H_
