#ifndef KANON_INDEX_RPLUS_TREE_H_
#define KANON_INDEX_RPLUS_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/node.h"
#include "index/split.h"

namespace kanon {

/// Structural parameters of the tree. The leaf occupancy window [min_leaf,
/// max_leaf] is the paper's "leaf nodes contain between k and ck records":
/// min_leaf is the base anonymity parameter k, max_leaf = c*k.
struct RTreeConfig {
  size_t min_leaf = 5;
  size_t max_leaf = 15;    // must satisfy max_leaf + 1 >= 2 * min_leaf
  size_t max_fanout = 16;  // internal node capacity
  SplitConfig split;
  /// Optional publication predicate over the sensitive codes of a candidate
  /// leaf. When set, a leaf split is applied only if *both* halves satisfy
  /// it — this is how l-diversity or (α,k)-style requirements plug into the
  /// index splitting routine (paper Section 6). An inadmissible split
  /// leaves the leaf overfull, which never weakens the guarantee.
  std::function<bool(std::span<const int32_t>)> leaf_admissible;
};

/// A non-overlapping R-tree variant (R⁺-tree style) over points, used as a
/// k-anonymization engine:
///
///  * every node owns a half-open region; sibling regions are disjoint and
///    tile the parent's region, so insertions route deterministically and
///    leaf partitions never overlap — the property the k-anonymization
///    literature universally assumes;
///  * every node maintains the MBR of its records, which is the *compacted*
///    generalized quasi-identifier value (Section 4 of the paper);
///  * leaves hold between min_leaf and max_leaf records. A leaf that cannot
///    be split without a side dropping below min_leaf (duplicate-heavy data)
///    is left overfull — that preserves k-anonymity trivially. Deletions may
///    leave leaves underfull; the tree keeps their regions intact (so
///    routing still works) and the anonymization layer's leaf scan merges
///    deficient leaves back above k when emitting partitions.
///
/// Record-at-a-time Insert is the paper's incremental anonymization
/// mechanism; for bulk loads see BufferTree (index/buffer_tree.h).
class RPlusTree {
 public:
  RPlusTree(size_t dim, RTreeConfig config);

  /// Adopts a fully built node structure (used by tree persistence, see
  /// index/tree_persistence.h). The structure is trusted; callers that
  /// load from untrusted storage should run CheckInvariants afterwards.
  static RPlusTree FromRoot(size_t dim, RTreeConfig config,
                            std::unique_ptr<Node> root);

  RPlusTree(const RPlusTree&) = delete;
  RPlusTree& operator=(const RPlusTree&) = delete;
  RPlusTree(RPlusTree&&) = default;
  RPlusTree& operator=(RPlusTree&&) = default;

  size_t dim() const { return dim_; }
  const RTreeConfig& config() const { return config_; }

  /// Inserts one record. `point` must have dim() coordinates.
  void Insert(std::span<const double> point, uint64_t rid, int32_t sensitive);

  /// Deletes the record `rid` located at `point`. Returns false when no such
  /// record exists. Never restructures the tree (see class comment).
  bool Delete(std::span<const double> point, uint64_t rid);

  size_t size() const { return root_->record_count; }
  int height() const;
  const Node* root() const { return root_.get(); }

  /// Mutable structural access for in-place bulk surgery — the LSM delta
  /// merge splices locally rebuilt subtrees directly into the node
  /// structure. Single-writer only, and the caller must leave every
  /// structural invariant intact (CheckInvariants verifies; the region
  /// tiling in particular must be preserved exactly, since it is what
  /// routes all later inserts and rebuilds).
  Node* mutable_root() { return root_.get(); }

  /// Leaves in left-to-right tree order — the "sequential ordering of nodes
  /// on the same tree level" the leaf-scan algorithm (Fig 5) relies on.
  std::vector<const Node*> OrderedLeaves() const;

  /// All nodes at depth `d` (root = depth 0), in left-to-right order. Used
  /// by the hierarchical multi-granular release algorithm.
  std::vector<const Node*> NodesAtDepth(int d) const;

  /// Collects record ids of points inside the closed box `query`, pruning
  /// subtrees by MBR. Returns the number of leaves whose MBR intersected
  /// the query (the |W| of Section 2.3).
  size_t SearchRange(const Mbr& query, std::vector<uint64_t>* out) const;

  /// Verifies every structural invariant (region tiling, MBR containment,
  /// occupancy, counts, parent links). `allow_underfull_leaves` tolerates
  /// post-deletion deficits.
  Status CheckInvariants(bool allow_underfull_leaves = false) const;

  struct TreeStats {
    size_t num_leaves = 0;
    size_t num_internal = 0;
    size_t min_leaf_size = 0;
    size_t max_leaf_size = 0;
    int height = 0;
  };
  TreeStats ComputeStats() const;

 private:
  Node* ChooseLeaf(std::span<const double> point);
  void SplitLeaf(Node* leaf);
  void SplitInternal(Node* node);
  /// Splits `node` (and then ancestors) while over max_fanout.
  void ResolveOverflow(Node* node);
  /// Swaps `old_child` in its parent for `a` and `b` (or grows a new root).
  void ReplaceChild(Node* old_child, std::unique_ptr<Node> a,
                    std::unique_ptr<Node> b);
  Status CheckNode(const Node* node, bool allow_underfull) const;

  size_t dim_;
  RTreeConfig config_;
  std::unique_ptr<Node> root_;
};

}  // namespace kanon

#endif  // KANON_INDEX_RPLUS_TREE_H_
