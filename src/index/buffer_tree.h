#ifndef KANON_INDEX_BUFFER_TREE_H_
#define KANON_INDEX_BUFFER_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/rplus_tree.h"
#include "index/split.h"
#include "storage/buffer_pool.h"
#include "storage/spill_file.h"

namespace kanon {

/// A node of the buffer tree. Structure mirrors the in-memory R⁺-tree node
/// (region + MBR + children), but record payloads live in paged storage:
/// leaves keep their records in a PageChain, and every internal node owns an
/// "external buffer" PageChain in which arriving insertions are blocked
/// until the buffer fills (van den Bercken/Seeger/Widmayer bulk loading, as
/// adopted by the paper's Section 2.1).
struct BufferNode {
  BufferNode(size_t dim, bool leaf) : is_leaf(leaf), mbr(dim) {}

  bool is_leaf;
  Region region;
  Mbr mbr;
  BufferNode* parent = nullptr;
  size_t record_count = 0;  // records stored in the subtree's *leaves*

  std::unique_ptr<PageChain> records;  // leaf payload
  std::vector<std::unique_ptr<BufferNode>> children;
  std::unique_ptr<PageChain> buffer;   // internal-node external buffer

  size_t fanout() const { return children.size(); }
};

/// Configuration of the buffer-tree loader.
struct BufferTreeConfig {
  size_t min_leaf = 5;    // base anonymity parameter k
  size_t max_leaf = 15;   // c*k
  size_t max_fanout = 16;
  /// Pages per internal-node buffer before the buffer is cleared and its
  /// records pushed one level down.
  size_t buffer_pages = 8;
  SplitConfig split;
  /// See RTreeConfig::leaf_admissible — same contract.
  std::function<bool(std::span<const int32_t>)> leaf_admissible;
};

/// Bulk-loads a non-overlapping R⁺-tree with bounded memory: insertions
/// accumulate in node buffers and move down the tree a batch at a time, so
/// the I/O cost is O(N/B log_{M/B} N/B) — external-sort-like — instead of
/// one root-to-leaf traversal per record. All page traffic flows through the
/// provided BufferPool, whose capacity is the experiment's memory budget and
/// whose Pager counts the explicit I/Os reported in the paper's Fig 8(b).
///
/// Usage: Insert(...) for every record, then Flush() exactly once, then read
/// the structure (OrderedLeaves / ScanLeaf / NodesAtDepth).
class BufferTree {
 public:
  BufferTree(size_t dim, BufferTreeConfig config, BufferPool* pool);

  BufferTree(const BufferTree&) = delete;
  BufferTree& operator=(const BufferTree&) = delete;

  size_t dim() const { return dim_; }
  size_t size() const { return root_->record_count; }

  /// Buffered insertion of one record. Record ids must leave the top bit
  /// clear (it tags buffered deletions).
  Status Insert(std::span<const double> point, uint64_t rid,
                int32_t sensitive);

  /// Buffered deletion of the record `rid` located at `point`. The
  /// deletion travels down the same buffers as insertions, in FIFO order,
  /// so it always observes a preceding buffered insert of the same record.
  /// Deletions that reach a leaf without finding their record are counted
  /// in unmatched_deletes(). Leaves may drop below min occupancy; regions
  /// stay intact and the anonymization layer's leaf scan restores the
  /// anonymity floor on emission (same policy as RPlusTree::Delete).
  Status Delete(std::span<const double> point, uint64_t rid);

  /// Deletions applied at a leaf without finding their record.
  size_t unmatched_deletes() const { return unmatched_deletes_; }

  /// Pushes every buffered operation to its leaf and tightens internal
  /// MBRs. Must be called once, after the last Insert/Delete and before
  /// reading the tree.
  Status Flush();

  const BufferNode* root() const { return root_.get(); }
  int height() const;

  /// Leaves in left-to-right order (see RPlusTree::OrderedLeaves).
  std::vector<const BufferNode*> OrderedLeaves() const;

  /// Nodes at depth d, leaves standing in below their depth (for the
  /// hierarchical multi-granular algorithm).
  std::vector<const BufferNode*> NodesAtDepth(int d) const;

  /// Streams a leaf's records.
  Status ScanLeaf(const BufferNode* leaf,
                  const std::function<void(uint64_t rid, int32_t sensitive,
                                           std::span<const double> values)>&
                      fn) const;

  /// Structural invariants (region tiling, occupancy, counts). Leaves must
  /// have been flushed.
  Status CheckInvariants() const;

 private:
  /// Top bit of a buffered rid marks a deletion op.
  static constexpr uint64_t kDeleteFlag = 1ull << 63;

  size_t BufferThresholdRecords() const;
  Status AppendBatchToLeaf(BufferNode* leaf, const RecordBatch& batch);
  /// Applies a mixed insert/delete op sequence to a leaf (rewrites its
  /// record chain).
  Status ApplyOpsToLeaf(BufferNode* leaf, const RecordBatch& ops);
  /// Distributes the node's buffer one level down; splits overfull leaves
  /// and overflowing nodes; with `recurse` also clears children whose
  /// buffers filled up (the paper's cascading clears).
  Status Clear(BufferNode* node, bool recurse);
  Status SplitLeafRecursive(BufferNode* leaf,
                            std::vector<std::unique_ptr<BufferNode>>* out);
  Status SplitInternal(BufferNode* node);
  Status ResolveOverflow(BufferNode* node);
  Status ReplaceChild(BufferNode* old_child,
                      std::vector<std::unique_ptr<BufferNode>> replacements);
  Status CheckNode(const BufferNode* node) const;

  size_t dim_;
  BufferTreeConfig config_;
  BufferPool* pool_;
  RecordCodec codec_;
  std::unique_ptr<BufferNode> root_;
  bool flushed_ = false;
  bool had_deletes_ = false;
  size_t unmatched_deletes_ = 0;
};

}  // namespace kanon

#endif  // KANON_INDEX_BUFFER_TREE_H_
