#include "index/rplus_tree.h"

#include <algorithm>

#include "common/check.h"

namespace kanon {

RPlusTree::RPlusTree(size_t dim, RTreeConfig config)
    : dim_(dim), config_(config) {
  KANON_CHECK_MSG(config_.min_leaf >= 1, "min_leaf must be positive");
  KANON_CHECK_MSG(config_.max_leaf + 1 >= 2 * config_.min_leaf,
                  "max_leaf too small to split into two >= min_leaf halves");
  KANON_CHECK_MSG(config_.max_fanout >= 2, "fanout must be at least 2");
  root_ = std::make_unique<Node>(dim_, /*leaf=*/true);
  root_->region = Region::Whole(dim_);
}

RPlusTree RPlusTree::FromRoot(size_t dim, RTreeConfig config,
                              std::unique_ptr<Node> root) {
  RPlusTree tree(dim, std::move(config));
  KANON_CHECK(root != nullptr && root->parent == nullptr);
  tree.root_ = std::move(root);
  return tree;
}

Node* RPlusTree::ChooseLeaf(std::span<const double> point) {
  Node* node = root_.get();
  while (!node->is_leaf) {
    Node* next = nullptr;
    for (auto& child : node->children) {
      if (child->region.ContainsPoint(point)) {
        next = child.get();
        break;
      }
    }
    KANON_CHECK_MSG(next != nullptr,
                    "region tiling violated: point routed into a hole");
    node = next;
  }
  return node;
}

void RPlusTree::Insert(std::span<const double> point, uint64_t rid,
                       int32_t sensitive) {
  KANON_DCHECK(point.size() == dim_);
  Node* leaf = ChooseLeaf(point);
  leaf->AppendRecord(point, rid, sensitive);
  // Maintain subtree MBRs and counts along the ancestor path.
  for (Node* n = leaf->parent; n != nullptr; n = n->parent) {
    n->mbr.ExpandToInclude(point);
    ++n->record_count;
  }
  if (leaf->leaf_size() > config_.max_leaf) SplitLeaf(leaf);
}

void RPlusTree::SplitLeaf(Node* leaf) {
  const auto split =
      ChoosePointSplit(leaf->points.data(), leaf->leaf_size(), dim_,
                       config_.min_leaf, config_.split, &leaf->region);
  if (!split) return;  // duplicate-dominated leaf: stays overfull
  if (config_.leaf_admissible) {
    std::vector<int32_t> left_codes, right_codes;
    for (size_t i = 0; i < leaf->leaf_size(); ++i) {
      (leaf->points[i * dim_ + split->axis] < split->value ? left_codes
                                                           : right_codes)
          .push_back(leaf->sensitive[i]);
    }
    if (!config_.leaf_admissible(left_codes) ||
        !config_.leaf_admissible(right_codes)) {
      return;  // split would violate the publication constraint
    }
  }

  auto [left_region, right_region] =
      leaf->region.Cut(split->axis, split->value);
  auto left = std::make_unique<Node>(dim_, /*leaf=*/true);
  auto right = std::make_unique<Node>(dim_, /*leaf=*/true);
  left->region = std::move(left_region);
  right->region = std::move(right_region);
  for (size_t i = 0; i < leaf->leaf_size(); ++i) {
    Node* dst = leaf->points[i * dim_ + split->axis] < split->value
                    ? left.get()
                    : right.get();
    dst->AppendRecord(leaf->point(i), leaf->rids[i], leaf->sensitive[i]);
  }
  KANON_DCHECK(left->leaf_size() >= config_.min_leaf);
  KANON_DCHECK(right->leaf_size() >= config_.min_leaf);
  Node* parent = leaf->parent;  // survives the replacement below
  ReplaceChild(leaf, std::move(left), std::move(right));
  ResolveOverflow(parent);
}

void RPlusTree::SplitInternal(Node* node) {
  std::vector<const Region*> regions;
  regions.reserve(node->fanout());
  for (const auto& c : node->children) regions.push_back(&c->region);
  const auto split = ChooseRegionSeparator(
      std::span<const Region* const>(regions.data(), regions.size()),
      config_.split);
  KANON_CHECK_MSG(split.has_value(),
                  "no separating plane found for internal node");

  auto [left_region, right_region] =
      node->region.Cut(split->axis, split->value);
  auto left = std::make_unique<Node>(dim_, /*leaf=*/false);
  auto right = std::make_unique<Node>(dim_, /*leaf=*/false);
  left->region = std::move(left_region);
  right->region = std::move(right_region);
  for (auto& child : node->children) {
    Node* dst = child->region.hi[split->axis] <= split->value ? left.get()
                                                              : right.get();
    child->parent = dst;
    dst->mbr.ExpandToInclude(child->mbr);
    dst->record_count += child->record_count;
    dst->children.push_back(std::move(child));
  }
  node->children.clear();
  KANON_DCHECK(!left->children.empty() && !right->children.empty());
  ReplaceChild(node, std::move(left), std::move(right));
}

void RPlusTree::ResolveOverflow(Node* node) {
  while (node != nullptr && node->fanout() > config_.max_fanout) {
    Node* parent = node->parent;
    SplitInternal(node);  // destroys `node`, adds one entry to its parent
    node = parent;
  }
}

void RPlusTree::ReplaceChild(Node* old_child, std::unique_ptr<Node> a,
                             std::unique_ptr<Node> b) {
  Node* parent = old_child->parent;
  if (parent == nullptr) {
    // The root split: grow a new root above the two halves.
    KANON_CHECK(old_child == root_.get());
    auto new_root = std::make_unique<Node>(dim_, /*leaf=*/false);
    new_root->region = Region::Whole(dim_);
    new_root->mbr = Mbr::Union(a->mbr, b->mbr);
    new_root->record_count = a->record_count + b->record_count;
    a->parent = new_root.get();
    b->parent = new_root.get();
    new_root->children.push_back(std::move(a));
    new_root->children.push_back(std::move(b));
    root_ = std::move(new_root);
    return;
  }
  const size_t idx = old_child->IndexInParent();
  a->parent = parent;
  b->parent = parent;
  parent->children[idx] = std::move(a);
  parent->children.insert(parent->children.begin() + idx + 1, std::move(b));
}

bool RPlusTree::Delete(std::span<const double> point, uint64_t rid) {
  KANON_DCHECK(point.size() == dim_);
  Node* leaf = ChooseLeaf(point);
  size_t idx = leaf->leaf_size();
  for (size_t i = 0; i < leaf->leaf_size(); ++i) {
    if (leaf->rids[i] == rid) {
      idx = i;
      break;
    }
  }
  if (idx == leaf->leaf_size()) return false;
  leaf->RemoveRecordAt(idx);
  leaf->RecomputeLeafMbr();
  for (Node* n = leaf->parent; n != nullptr; n = n->parent) {
    --n->record_count;
    // Exact MBR maintenance: rebuild from children boxes.
    n->mbr = Mbr(dim_);
    for (const auto& c : n->children) n->mbr.ExpandToInclude(c->mbr);
  }
  return true;
}

int RPlusTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

std::vector<const Node*> RPlusTree::OrderedLeaves() const {
  std::vector<const Node*> leaves;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      leaves.push_back(n);
      continue;
    }
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
      stack.push_back(it->get());
    }
  }
  return leaves;
}

std::vector<const Node*> RPlusTree::NodesAtDepth(int d) const {
  std::vector<const Node*> out;
  std::function<void(const Node*, int)> visit = [&](const Node* n,
                                                    int depth) {
    if (depth == d || n->is_leaf) {
      // Leaves shallower than `d` stand in for their (absent) descendants so
      // every record appears in the level view exactly once.
      out.push_back(n);
      return;
    }
    for (const auto& c : n->children) visit(c.get(), depth + 1);
  };
  visit(root_.get(), 0);
  return out;
}

size_t RPlusTree::SearchRange(const Mbr& query,
                              std::vector<uint64_t>* out) const {
  size_t leaves_visited = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!n->mbr.Intersects(query)) continue;
    if (n->is_leaf) {
      ++leaves_visited;
      if (out != nullptr) {
        for (size_t i = 0; i < n->leaf_size(); ++i) {
          if (query.ContainsPoint(n->point(i))) out->push_back(n->rids[i]);
        }
      }
      continue;
    }
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  return leaves_visited;
}

Status RPlusTree::CheckNode(const Node* node, bool allow_underfull) const {
  // MBR within region (MBRs are closed; regions half-open — containment is
  // lo <= mbr.lo and mbr.hi <= region.hi, strict at finite hi boundaries
  // except for degenerate tolerance).
  if (!node->mbr.empty()) {
    for (size_t d = 0; d < dim_; ++d) {
      if (node->mbr.lo(d) < node->region.lo[d] ||
          node->mbr.hi(d) > node->region.hi[d]) {
        return Status::Corruption("node MBR escapes its region");
      }
    }
  }
  if (node->is_leaf) {
    if (node->record_count != node->leaf_size()) {
      return Status::Corruption("leaf record_count mismatch");
    }
    const bool is_root = node->parent == nullptr;
    if (!is_root && !allow_underfull &&
        node->leaf_size() < config_.min_leaf) {
      return Status::Corruption("underfull leaf");
    }
    for (size_t i = 0; i < node->leaf_size(); ++i) {
      if (!node->region.ContainsPoint(node->point(i))) {
        return Status::Corruption("leaf point outside leaf region");
      }
      if (!node->mbr.ContainsPoint(node->point(i))) {
        return Status::Corruption("leaf point outside leaf MBR");
      }
    }
    return Status::OK();
  }
  if (node->children.empty()) {
    return Status::Corruption("internal node with no children");
  }
  size_t count = 0;
  Mbr expect(dim_);
  for (const auto& c : node->children) {
    if (c->parent != node) return Status::Corruption("broken parent link");
    for (size_t d = 0; d < dim_; ++d) {
      if (c->region.lo[d] < node->region.lo[d] ||
          c->region.hi[d] > node->region.hi[d]) {
        return Status::Corruption("child region escapes parent region");
      }
    }
    count += c->record_count;
    expect.ExpandToInclude(c->mbr);
  }
  // Sibling regions must be pairwise interior-disjoint.
  for (size_t i = 0; i < node->children.size(); ++i) {
    for (size_t j = i + 1; j < node->children.size(); ++j) {
      const Region& a = node->children[i]->region;
      const Region& b = node->children[j]->region;
      bool disjoint = false;
      for (size_t d = 0; d < dim_; ++d) {
        if (a.hi[d] <= b.lo[d] || b.hi[d] <= a.lo[d]) {
          disjoint = true;
          break;
        }
      }
      if (!disjoint) return Status::Corruption("overlapping sibling regions");
    }
  }
  if (count != node->record_count) {
    return Status::Corruption("internal record_count mismatch");
  }
  if (node->record_count > 0 && !(expect == node->mbr)) {
    return Status::Corruption("internal MBR is not the union of children");
  }
  for (const auto& c : node->children) {
    KANON_RETURN_IF_ERROR(CheckNode(c.get(), allow_underfull));
  }
  return Status::OK();
}

Status RPlusTree::CheckInvariants(bool allow_underfull_leaves) const {
  return CheckNode(root_.get(), allow_underfull_leaves);
}

RPlusTree::TreeStats RPlusTree::ComputeStats() const {
  TreeStats stats;
  stats.height = height();
  stats.min_leaf_size = static_cast<size_t>(-1);
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      ++stats.num_leaves;
      stats.min_leaf_size = std::min(stats.min_leaf_size, n->leaf_size());
      stats.max_leaf_size = std::max(stats.max_leaf_size, n->leaf_size());
    } else {
      ++stats.num_internal;
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  }
  if (stats.num_leaves == 0) stats.min_leaf_size = 0;
  return stats;
}

}  // namespace kanon
