#include "index/tree_persistence.h"

#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/crc32.h"

namespace kanon {

namespace {

constexpr uint32_t kTreeMagic = 0x6b414e54;  // "kANT"

/// Sequential byte-stream writer over chained pager pages. Each page
/// starts with the PageId of its successor (kInvalidPageId on the tail)
/// followed by payload bytes.
class PageStreamWriter {
 public:
  explicit PageStreamWriter(Pager* pager)
      : pager_(pager), buffer_(pager->page_size()) {
    current_ = pager_->Allocate();
    first_ = current_;
    ResetBuffer();
  }

  PageId first_page() const { return first_; }
  size_t bytes_written() const { return bytes_written_; }
  uint32_t crc() const { return crc_; }

  Status Write(const void* data, size_t n) {
    crc_ = Crc32(data, n, crc_);
    const char* src = static_cast<const char*>(data);
    while (n > 0) {
      if (offset_ == buffer_.size()) {
        KANON_RETURN_IF_ERROR(FlushPage(/*more=*/true));
      }
      const size_t take = std::min(n, buffer_.size() - offset_);
      std::memcpy(buffer_.data() + offset_, src, take);
      offset_ += take;
      src += take;
      n -= take;
      bytes_written_ += take;
    }
    return Status::OK();
  }

  template <typename T>
  Status WriteValue(const T& v) {
    return Write(&v, sizeof(v));
  }

  Status Finish() { return FlushPage(/*more=*/false); }

 private:
  void ResetBuffer() {
    const PageId invalid = kInvalidPageId;
    std::memcpy(buffer_.data(), &invalid, sizeof(invalid));
    offset_ = sizeof(PageId);
  }

  Status FlushPage(bool more) {
    PageId next = kInvalidPageId;
    if (more) {
      next = pager_->Allocate();
      std::memcpy(buffer_.data(), &next, sizeof(next));
    }
    KANON_RETURN_IF_ERROR(pager_->Write(current_, buffer_.data()));
    if (more) {
      current_ = next;
      ResetBuffer();
    }
    return Status::OK();
  }

  Pager* pager_;
  std::vector<char> buffer_;
  PageId first_ = kInvalidPageId;
  PageId current_ = kInvalidPageId;
  size_t offset_ = 0;
  size_t bytes_written_ = 0;
  uint32_t crc_ = 0;
};

/// Counterpart reader.
class PageStreamReader {
 public:
  PageStreamReader(Pager* pager, PageId first)
      : pager_(pager), buffer_(pager->page_size()), next_(first) {}

  uint32_t crc() const { return crc_; }

  Status Read(void* data, size_t n) {
    const size_t total = n;
    char* dst = static_cast<char*>(data);
    while (n > 0) {
      if (offset_ == 0 || offset_ == buffer_.size()) {
        KANON_RETURN_IF_ERROR(LoadNextPage());
      }
      const size_t take = std::min(n, buffer_.size() - offset_);
      std::memcpy(dst, buffer_.data() + offset_, take);
      offset_ += take;
      dst += take;
      n -= take;
    }
    crc_ = Crc32(data, total, crc_);
    return Status::OK();
  }

  template <typename T>
  Status ReadValue(T* v) {
    return Read(v, sizeof(*v));
  }

 private:
  Status LoadNextPage() {
    if (next_ == kInvalidPageId) {
      return Status::Corruption("tree snapshot stream truncated");
    }
    KANON_RETURN_IF_ERROR(pager_->Read(next_, buffer_.data()));
    std::memcpy(&next_, buffer_.data(), sizeof(next_));
    offset_ = sizeof(PageId);
    return Status::OK();
  }

  Pager* pager_;
  std::vector<char> buffer_;
  PageId next_;
  size_t offset_ = 0;
  uint32_t crc_ = 0;
};

Status WriteBounds(PageStreamWriter* w, const std::vector<double>& values) {
  return w->Write(values.data(), values.size() * sizeof(double));
}

Status WriteNode(PageStreamWriter* w, const Node& node, size_t dim) {
  const uint8_t leaf_flag = node.is_leaf ? 1 : 0;
  KANON_RETURN_IF_ERROR(w->WriteValue(leaf_flag));
  KANON_RETURN_IF_ERROR(WriteBounds(w, node.region.lo));
  KANON_RETURN_IF_ERROR(WriteBounds(w, node.region.hi));
  const uint8_t mbr_empty = node.mbr.empty() ? 1 : 0;
  KANON_RETURN_IF_ERROR(w->WriteValue(mbr_empty));
  if (!mbr_empty) {
    KANON_RETURN_IF_ERROR(WriteBounds(w, node.mbr.lo()));
    KANON_RETURN_IF_ERROR(WriteBounds(w, node.mbr.hi()));
  }
  if (node.is_leaf) {
    const uint64_t count = node.leaf_size();
    KANON_RETURN_IF_ERROR(w->WriteValue(count));
    KANON_RETURN_IF_ERROR(
        w->Write(node.rids.data(), count * sizeof(uint64_t)));
    KANON_RETURN_IF_ERROR(
        w->Write(node.sensitive.data(), count * sizeof(int32_t)));
    KANON_RETURN_IF_ERROR(
        w->Write(node.points.data(), count * dim * sizeof(double)));
    return Status::OK();
  }
  const uint64_t fanout = node.fanout();
  KANON_RETURN_IF_ERROR(w->WriteValue(fanout));
  for (const auto& child : node.children) {
    KANON_RETURN_IF_ERROR(WriteNode(w, *child, dim));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Node>> ReadNode(PageStreamReader* r, size_t dim,
                                         size_t max_fanout) {
  uint8_t leaf_flag = 0;
  KANON_RETURN_IF_ERROR(r->ReadValue(&leaf_flag));
  if (leaf_flag > 1) return Status::Corruption("bad node tag");
  auto node = std::make_unique<Node>(dim, leaf_flag == 1);
  node->region.lo.resize(dim);
  node->region.hi.resize(dim);
  KANON_RETURN_IF_ERROR(
      r->Read(node->region.lo.data(), dim * sizeof(double)));
  KANON_RETURN_IF_ERROR(
      r->Read(node->region.hi.data(), dim * sizeof(double)));
  uint8_t mbr_empty = 0;
  KANON_RETURN_IF_ERROR(r->ReadValue(&mbr_empty));
  if (!mbr_empty) {
    std::vector<double> lo(dim), hi(dim);
    KANON_RETURN_IF_ERROR(r->Read(lo.data(), dim * sizeof(double)));
    KANON_RETURN_IF_ERROR(r->Read(hi.data(), dim * sizeof(double)));
    node->mbr = Mbr::FromBounds(std::move(lo), std::move(hi));
  }
  if (node->is_leaf) {
    uint64_t count = 0;
    KANON_RETURN_IF_ERROR(r->ReadValue(&count));
    node->rids.resize(count);
    node->sensitive.resize(count);
    node->points.resize(count * dim);
    KANON_RETURN_IF_ERROR(
        r->Read(node->rids.data(), count * sizeof(uint64_t)));
    KANON_RETURN_IF_ERROR(
        r->Read(node->sensitive.data(), count * sizeof(int32_t)));
    KANON_RETURN_IF_ERROR(
        r->Read(node->points.data(), count * dim * sizeof(double)));
    node->record_count = count;
    return node;
  }
  uint64_t fanout = 0;
  KANON_RETURN_IF_ERROR(r->ReadValue(&fanout));
  if (fanout == 0 || fanout > max_fanout + 1) {
    return Status::Corruption("implausible internal fanout");
  }
  for (uint64_t i = 0; i < fanout; ++i) {
    KANON_ASSIGN_OR_RETURN(auto child, ReadNode(r, dim, max_fanout));
    child->parent = node.get();
    node->record_count += child->record_count;
    node->children.push_back(std::move(child));
  }
  return node;
}

}  // namespace

StatusOr<TreeSnapshot> SaveTree(const RPlusTree& tree, Pager* pager) {
  PageStreamWriter writer(pager);
  KANON_RETURN_IF_ERROR(writer.WriteValue(kTreeMagic));
  const uint64_t dim = tree.dim();
  const uint64_t min_leaf = tree.config().min_leaf;
  const uint64_t max_leaf = tree.config().max_leaf;
  const uint64_t max_fanout = tree.config().max_fanout;
  const uint64_t records = tree.size();
  KANON_RETURN_IF_ERROR(writer.WriteValue(dim));
  KANON_RETURN_IF_ERROR(writer.WriteValue(min_leaf));
  KANON_RETURN_IF_ERROR(writer.WriteValue(max_leaf));
  KANON_RETURN_IF_ERROR(writer.WriteValue(max_fanout));
  KANON_RETURN_IF_ERROR(writer.WriteValue(records));
  KANON_RETURN_IF_ERROR(WriteNode(&writer, *tree.root(), tree.dim()));
  KANON_RETURN_IF_ERROR(writer.Finish());
  TreeSnapshot snapshot;
  snapshot.first_page = writer.first_page();
  snapshot.byte_size = writer.bytes_written();
  snapshot.record_count = tree.size();
  snapshot.crc32 = writer.crc();
  return snapshot;
}

StatusOr<RPlusTree> LoadTree(Pager* pager, const TreeSnapshot& snapshot,
                             size_t dim, const RTreeConfig& config) {
  PageStreamReader reader(pager, snapshot.first_page);
  uint32_t magic = 0;
  KANON_RETURN_IF_ERROR(reader.ReadValue(&magic));
  if (magic != kTreeMagic) return Status::Corruption("not a tree snapshot");
  uint64_t stored_dim, min_leaf, max_leaf, max_fanout, records;
  KANON_RETURN_IF_ERROR(reader.ReadValue(&stored_dim));
  KANON_RETURN_IF_ERROR(reader.ReadValue(&min_leaf));
  KANON_RETURN_IF_ERROR(reader.ReadValue(&max_leaf));
  KANON_RETURN_IF_ERROR(reader.ReadValue(&max_fanout));
  KANON_RETURN_IF_ERROR(reader.ReadValue(&records));
  if (stored_dim != dim) {
    return Status::InvalidArgument("snapshot dimensionality mismatch");
  }
  if (min_leaf != config.min_leaf || max_leaf != config.max_leaf ||
      max_fanout != config.max_fanout) {
    return Status::InvalidArgument(
        "snapshot was built with different structural parameters");
  }
  KANON_ASSIGN_OR_RETURN(auto root,
                         ReadNode(&reader, dim, config.max_fanout));
  if (root->record_count != records) {
    return Status::Corruption("snapshot record count mismatch");
  }
  if (snapshot.crc32 != 0 && reader.crc() != snapshot.crc32) {
    return Status::Corruption("tree snapshot failed checksum verification");
  }
  return RPlusTree::FromRoot(dim, config, std::move(root));
}

StatusOr<TreeSnapshot> SaveTreeToFile(const RPlusTree& tree,
                                      const std::string& path,
                                      size_t page_size, Env* env) {
  KANON_ASSIGN_OR_RETURN(auto pager,
                         NamedFilePager::Open(path, page_size,
                                              /*truncate=*/true, env));
  KANON_ASSIGN_OR_RETURN(TreeSnapshot snapshot, SaveTree(tree, pager.get()));
  KANON_CHECK(snapshot.first_page == 0);  // fresh pager allocates from 0
  KANON_RETURN_IF_ERROR(pager->Sync());
  return snapshot;
}

StatusOr<RPlusTree> LoadTreeFromFile(const std::string& path,
                                     const TreeSnapshot& snapshot, size_t dim,
                                     const RTreeConfig& config,
                                     size_t page_size, Env* env) {
  KANON_ASSIGN_OR_RETURN(auto pager,
                         NamedFilePager::Open(path, page_size,
                                              /*truncate=*/false, env));
  return LoadTree(pager.get(), snapshot, dim, config);
}

Status FreeSnapshot(Pager* pager, const TreeSnapshot& snapshot) {
  std::vector<char> buffer(pager->page_size());
  PageId page = snapshot.first_page;
  while (page != kInvalidPageId) {
    KANON_RETURN_IF_ERROR(pager->Read(page, buffer.data()));
    PageId next;
    std::memcpy(&next, buffer.data(), sizeof(next));
    pager->Free(page);
    page = next;
  }
  return Status::OK();
}

}  // namespace kanon
