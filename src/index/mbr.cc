#include "index/mbr.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace kanon {

Mbr Mbr::FromPoint(std::span<const double> point) {
  Mbr m(point.size());
  m.ExpandToInclude(point);
  return m;
}

Mbr Mbr::FromBounds(std::vector<double> lo, std::vector<double> hi) {
  KANON_CHECK(lo.size() == hi.size());
  for (size_t i = 0; i < lo.size(); ++i) KANON_CHECK(lo[i] <= hi[i]);
  Mbr m;
  m.lo_ = std::move(lo);
  m.hi_ = std::move(hi);
  return m;
}

void Mbr::ExpandToInclude(std::span<const double> point) {
  KANON_DCHECK(point.size() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], point[i]);
    hi_[i] = std::max(hi_[i], point[i]);
  }
}

void Mbr::ExpandToInclude(const Mbr& other) {
  if (other.empty()) return;
  KANON_DCHECK(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

double Mbr::Volume() const {
  if (empty()) return 0.0;
  double v = 1.0;
  for (size_t i = 0; i < dim(); ++i) v *= Extent(i);
  return v;
}

double Mbr::Margin() const {
  if (empty()) return 0.0;
  double m = 0.0;
  for (size_t i = 0; i < dim(); ++i) m += Extent(i);
  return m;
}

double Mbr::Enlargement(std::span<const double> point) const {
  if (empty()) return 0.0;
  double grown = 1.0;
  for (size_t i = 0; i < dim(); ++i) {
    grown *= std::max(hi_[i], point[i]) - std::min(lo_[i], point[i]);
  }
  return grown - Volume();
}

double Mbr::MarginEnlargement(std::span<const double> point) const {
  if (empty()) return 0.0;
  double grown = 0.0;
  for (size_t i = 0; i < dim(); ++i) {
    grown += std::max(hi_[i], point[i]) - std::min(lo_[i], point[i]);
  }
  return grown - Margin();
}

bool Mbr::ContainsPoint(std::span<const double> point) const {
  if (empty()) return false;
  KANON_DCHECK(point.size() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

bool Mbr::ContainsBox(const Mbr& other) const {
  if (empty() || other.empty()) return false;
  for (size_t i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  if (empty() || other.empty()) return false;
  KANON_DCHECK(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

double Mbr::IntersectionFraction(const Mbr& other) const {
  if (!Intersects(other)) return 0.0;
  double frac = 1.0;
  for (size_t i = 0; i < dim(); ++i) {
    const double extent = Extent(i);
    if (extent <= 0.0) continue;  // flat dimension: slice fully counted
    const double overlap =
        std::min(hi_[i], other.hi_[i]) - std::max(lo_[i], other.lo_[i]);
    frac *= std::clamp(overlap / extent, 0.0, 1.0);
  }
  return frac;
}

Mbr Mbr::Union(const Mbr& a, const Mbr& b) {
  if (a.empty()) return b;
  Mbr out = a;
  out.ExpandToInclude(b);
  return out;
}

std::string Mbr::ToString() const {
  std::ostringstream os;
  if (empty()) return "[empty]";
  for (size_t i = 0; i < dim(); ++i) {
    os << "[" << lo_[i] << ", " << hi_[i] << "]";
    if (i + 1 < dim()) os << "x";
  }
  return os.str();
}

Region Region::Whole(size_t dim) {
  Region r;
  r.lo.assign(dim, -std::numeric_limits<double>::infinity());
  r.hi.assign(dim, std::numeric_limits<double>::infinity());
  return r;
}

bool Region::ContainsPoint(std::span<const double> point) const {
  KANON_DCHECK(point.size() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (point[i] < lo[i] || point[i] >= hi[i]) return false;
  }
  return true;
}

std::pair<Region, Region> Region::Cut(size_t axis, double value) const {
  KANON_DCHECK(axis < dim());
  KANON_DCHECK(value > lo[axis] && value < hi[axis]);
  Region left = *this;
  Region right = *this;
  left.hi[axis] = value;
  right.lo[axis] = value;
  return {std::move(left), std::move(right)};
}

std::string Region::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < dim(); ++i) {
    os << "[" << lo[i] << ", " << hi[i] << ")";
    if (i + 1 < dim()) os << "x";
  }
  return os.str();
}

}  // namespace kanon
