#ifndef KANON_INDEX_BULK_LOAD_H_
#define KANON_INDEX_BULK_LOAD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/node.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "index/mbr.h"
#include "index/rplus_tree.h"
#include "storage/buffer_pool.h"

namespace kanon {

/// One leaf-sized group of records, the common currency between the index
/// layer and the anonymization layer. `mbr` is the tight bounding box of
/// the member records. `region` is the leaf's index region clipped to the
/// data domain when the group came from a region-disciplined tree (empty
/// for sort-based loaders) — the *uncompacted* generalized value.
struct LeafGroup {
  std::vector<RecordId> rids;
  Mbr mbr;
  Mbr region;
};

/// Which space-filling curve orders the records.
enum class CurveOrder {
  kHilbert,
  kZOrder,
};

/// Parameters for sort-based loading. Groups hold `target_size` records;
/// a final fragment smaller than `min_size` is merged into the previous
/// group so every group respects the anonymity floor.
struct SortLoadConfig {
  size_t min_size = 5;      // k
  size_t target_size = 10;  // records per leaf before the remainder
  int grid_bits = 10;       // curve quantization resolution
};

/// Space-filling-curve bulk load (Kamel/Faloutsos-style packing): sort all
/// records by curve key, then chunk. These are the "spatial sorting based on
/// space-filling curves" loaders the paper experimented with before
/// settling on the buffer tree; kept for the ablation benchmarks.
std::vector<LeafGroup> CurveBulkLoad(const Dataset& dataset, CurveOrder order,
                                     const SortLoadConfig& config);

/// Sort-Tile-Recursive packing (Leutenegger et al.): recursively slab-sort
/// one attribute at a time so groups form spatial tiles.
std::vector<LeafGroup> StrBulkLoad(const Dataset& dataset,
                                   const SortLoadConfig& config);

/// Larger-than-memory variant of CurveBulkLoad: records are sorted by
/// curve key with a bounded-memory external merge sort whose page traffic
/// flows through `pool` (so its I/O is measurable against the buffer
/// tree's). `run_records` is the in-memory run size — the M of the
/// external-sort I/O model. The curve key is truncated to 64 bits for
/// sorting, which at grid_bits * dim > 64 coarsens the order slightly
/// (ties broken arbitrarily); group quality is unaffected in practice.
StatusOr<std::vector<LeafGroup>> CurveBulkLoadExternal(
    const Dataset& dataset, CurveOrder order, const SortLoadConfig& config,
    BufferPool* pool, size_t run_records, ThreadPool* workers = nullptr);

/// Sort-based bulk construction of a complete R⁺-tree (not just leaf
/// groups): curve keys are computed in parallel, the records are
/// externally sorted by (curve key, rid) with spill traffic through
/// `pool`, and the tree is then built top-down by recursive
/// region-disciplined cuts of the sorted array — the root-level cut
/// yields at most max_fanout pieces whose subtrees build concurrently on
/// `workers` and are stitched under one root. The result satisfies every
/// RPlusTree invariant (region tiling, occupancy window, admissibility-
/// gated splits) and is **deterministic**: for a fixed dataset and
/// config, any thread count (including the serial workers = nullptr
/// path) produces a byte-identical tree snapshot under
/// SaveTree/tree_persistence, because the sorted base order breaks key
/// ties on rid and every cut decision is a pure function of the record
/// multiset.
StatusOr<RPlusTree> SortedBulkLoadTree(const Dataset& dataset,
                                       const RTreeConfig& config,
                                       CurveOrder order, int grid_bits,
                                       BufferPool* pool, size_t run_records,
                                       ThreadPool* workers = nullptr);

/// The record arrays being carved into a tree, in (curve key, rid) sorted
/// order. This is the input currency of the region-disciplined top-down
/// build; concurrent subtree builds touch disjoint index ranges, so no
/// synchronization is needed.
struct BuildArrays {
  BuildArrays() = default;
  explicit BuildArrays(size_t d) : dim(d) {}

  size_t dim = 0;
  std::vector<double> points;  // row-major, rids.size() * dim
  std::vector<uint64_t> rids;
  std::vector<int32_t> sensitive;

  std::span<const double> row(size_t i) const {
    return {points.data() + i * dim, dim};
  }
};

/// Builds the region-disciplined subtree over rows [begin, end) of
/// `arrays` constrained to `region`: a single (possibly overfull) leaf
/// when the range fits or refuses every admissible cut, otherwise an
/// internal node over recursively carved children. This is the same code
/// path SortedBulkLoadTree runs below its root-level cut — exposed so the
/// LSM delta merge can locally rebuild just the sub-ranges a flushed
/// delta touches while inheriting every structural invariant (region
/// tiling, occupancy window, admissibility-gated splits) and the same
/// determinism guarantee (the result is a pure function of the sorted
/// record range and the region).
std::unique_ptr<Node> BuildSubtree(BuildArrays* arrays,
                                   const RTreeConfig& config,
                                   const Region& region, size_t begin,
                                   size_t end);

}  // namespace kanon

#endif  // KANON_INDEX_BULK_LOAD_H_
