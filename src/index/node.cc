#include "index/node.h"

#include "common/check.h"

namespace kanon {

void Node::RemoveRecordAt(size_t i) {
  KANON_DCHECK(is_leaf && i < rids.size());
  const size_t last = rids.size() - 1;
  if (i != last) {
    rids[i] = rids[last];
    sensitive[i] = sensitive[last];
    for (size_t d = 0; d < dim_; ++d) {
      points[i * dim_ + d] = points[last * dim_ + d];
    }
  }
  rids.pop_back();
  sensitive.pop_back();
  points.resize(points.size() - dim_);
  --record_count;
}

void Node::RecomputeLeafMbr() {
  KANON_DCHECK(is_leaf);
  mbr = Mbr(dim_);
  for (size_t i = 0; i < rids.size(); ++i) {
    mbr.ExpandToInclude(point(i));
  }
}

size_t Node::IndexInParent() const {
  KANON_CHECK(parent != nullptr);
  for (size_t i = 0; i < parent->children.size(); ++i) {
    if (parent->children[i].get() == this) return i;
  }
  KANON_CHECK_MSG(false, "node not found in its parent");
  return 0;
}

}  // namespace kanon
