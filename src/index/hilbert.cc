#include "index/hilbert.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace kanon {

namespace {

/// Packs the "transposed" representation (bit (b-1-row) of X[col] is bit
/// (b-1-row)*n + (n-1-col) of the key) into a single integer, matching the
/// bit order of Skilling's algorithm.
CurveKey PackTransposed(std::span<const uint32_t> x, int bits) {
  CurveKey key = 0;
  for (int row = bits - 1; row >= 0; --row) {
    for (size_t col = 0; col < x.size(); ++col) {
      key = (key << 1) | ((x[col] >> row) & 1u);
    }
  }
  return key;
}

}  // namespace

CurveKey HilbertKey(std::span<const uint32_t> coords, int bits) {
  const int n = static_cast<int>(coords.size());
  KANON_CHECK(bits >= 1 && bits * n <= 128);
  if (n == 1) return coords[0];
  // Skilling (2004): axes -> transposed Hilbert coordinates, in place.
  std::vector<uint32_t> x(coords.begin(), coords.end());
  const uint32_t m = 1u << (bits - 1);
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
  return PackTransposed({x.data(), x.size()}, bits);
}

CurveKey ZOrderKey(std::span<const uint32_t> coords, int bits) {
  KANON_CHECK(bits >= 1 &&
              bits * static_cast<int>(coords.size()) <= 128);
  return PackTransposed(coords, bits);
}

GridQuantizer::GridQuantizer(const Domain& domain, int bits)
    : domain_(domain), bits_(bits) {
  KANON_CHECK(bits >= 1 && bits <= 31);
}

void GridQuantizer::Quantize(std::span<const double> point,
                             uint32_t* out) const {
  KANON_DCHECK(point.size() == domain_.dim());
  const double cells = static_cast<double>(1u << bits_);
  for (size_t d = 0; d < domain_.dim(); ++d) {
    const double extent = domain_.Extent(d);
    double frac =
        extent > 0.0 ? (point[d] - domain_.lo[d]) / extent : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    auto cell = static_cast<uint32_t>(frac * cells);
    if (cell >= (1u << bits_)) cell = (1u << bits_) - 1;
    out[d] = cell;
  }
}

}  // namespace kanon
