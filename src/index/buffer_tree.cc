#include "index/buffer_tree.h"

#include <algorithm>

#include "common/check.h"

namespace kanon {

BufferTree::BufferTree(size_t dim, BufferTreeConfig config, BufferPool* pool)
    : dim_(dim), config_(config), pool_(pool), codec_(dim) {
  KANON_CHECK(config_.min_leaf >= 1);
  KANON_CHECK(config_.max_leaf + 1 >= 2 * config_.min_leaf);
  KANON_CHECK(config_.max_fanout >= 2);
  KANON_CHECK(config_.buffer_pages >= 1);
  root_ = std::make_unique<BufferNode>(dim_, /*leaf=*/true);
  root_->region = Region::Whole(dim_);
  root_->records = std::make_unique<PageChain>(pool_, &codec_);
}

size_t BufferTree::BufferThresholdRecords() const {
  const size_t per_page =
      (pool_->page_size() - RecordPageView::kHeaderSize) /
      codec_.record_size();
  return std::max<size_t>(1, config_.buffer_pages * per_page);
}

Status BufferTree::Insert(std::span<const double> point, uint64_t rid,
                          int32_t sensitive) {
  KANON_DCHECK(point.size() == dim_);
  KANON_CHECK_MSG(!flushed_, "Insert after Flush");
  KANON_CHECK_MSG((rid & kDeleteFlag) == 0,
                  "record id uses the reserved deletion bit");
  if (root_->is_leaf) {
    KANON_RETURN_IF_ERROR(root_->records->Append(rid, sensitive, point));
    root_->mbr.ExpandToInclude(point);
    ++root_->record_count;
    if (root_->record_count > config_.max_leaf) {
      std::vector<std::unique_ptr<BufferNode>> pieces;
      BufferNode* old_root = root_.get();
      KANON_RETURN_IF_ERROR(SplitLeafRecursive(old_root, &pieces));
      // Even a single piece replaces the old leaf: SplitLeafRecursive
      // drained the old node's records into the pieces.
      KANON_RETURN_IF_ERROR(ReplaceChild(old_root, std::move(pieces)));
    }
    return Status::OK();
  }
  KANON_RETURN_IF_ERROR(root_->buffer->Append(rid, sensitive, point));
  if (root_->buffer->record_count() >= BufferThresholdRecords()) {
    KANON_RETURN_IF_ERROR(Clear(root_.get(), /*recurse=*/true));
  }
  return Status::OK();
}

Status BufferTree::Delete(std::span<const double> point, uint64_t rid) {
  KANON_DCHECK(point.size() == dim_);
  KANON_CHECK_MSG(!flushed_, "Delete after Flush");
  KANON_CHECK_MSG((rid & kDeleteFlag) == 0,
                  "record id uses the reserved deletion bit");
  had_deletes_ = true;
  if (root_->is_leaf) {
    RecordBatch ops(dim_);
    ops.Append(rid | kDeleteFlag, 0, point);
    return ApplyOpsToLeaf(root_.get(), ops);
  }
  KANON_RETURN_IF_ERROR(
      root_->buffer->Append(rid | kDeleteFlag, 0, point));
  if (root_->buffer->record_count() >= BufferThresholdRecords()) {
    KANON_RETURN_IF_ERROR(Clear(root_.get(), /*recurse=*/true));
  }
  return Status::OK();
}

Status BufferTree::ApplyOpsToLeaf(BufferNode* leaf, const RecordBatch& ops) {
  RecordBatch records(dim_);
  KANON_RETURN_IF_ERROR(leaf->records->DrainTo(&records));
  const size_t before = records.size();
  for (size_t i = 0; i < ops.size(); ++i) {
    const uint64_t tagged = ops.rids[i];
    if ((tagged & kDeleteFlag) == 0) {
      records.Append(tagged, ops.sensitive[i], ops.row(i));
      continue;
    }
    const uint64_t rid = tagged & ~kDeleteFlag;
    bool found = false;
    for (size_t r = records.size(); r-- > 0;) {
      if (records.rids[r] == rid) {
        // Swap-remove; record order within a leaf carries no meaning.
        const size_t last = records.size() - 1;
        records.rids[r] = records.rids[last];
        records.sensitive[r] = records.sensitive[last];
        for (size_t d = 0; d < dim_; ++d) {
          records.values[r * dim_ + d] = records.values[last * dim_ + d];
        }
        records.rids.pop_back();
        records.sensitive.pop_back();
        records.values.resize(records.values.size() - dim_);
        found = true;
        break;
      }
    }
    if (!found) ++unmatched_deletes_;
  }
  KANON_RETURN_IF_ERROR(leaf->records->AppendBatch(records));
  leaf->mbr = Mbr(dim_);
  for (size_t i = 0; i < records.size(); ++i) {
    leaf->mbr.ExpandToInclude(records.row(i));
  }
  leaf->record_count = records.size();
  // Ancestor counts track the delta; their MBRs may stay conservatively
  // loose after shrinks and are tightened once at Flush.
  const auto after = static_cast<ptrdiff_t>(records.size());
  const ptrdiff_t delta = after - static_cast<ptrdiff_t>(before);
  for (BufferNode* n = leaf->parent; n != nullptr; n = n->parent) {
    n->record_count = static_cast<size_t>(
        static_cast<ptrdiff_t>(n->record_count) + delta);
    n->mbr.ExpandToInclude(leaf->mbr);
  }
  return Status::OK();
}

Status BufferTree::AppendBatchToLeaf(BufferNode* leaf,
                                     const RecordBatch& batch) {
  KANON_RETURN_IF_ERROR(leaf->records->AppendBatch(batch));
  for (size_t i = 0; i < batch.size(); ++i) {
    leaf->mbr.ExpandToInclude(batch.row(i));
  }
  leaf->record_count += batch.size();
  // Ancestor MBRs only need to absorb the (tight) leaf MBR; counts grow by
  // the batch size.
  for (BufferNode* n = leaf->parent; n != nullptr; n = n->parent) {
    n->mbr.ExpandToInclude(leaf->mbr);
    n->record_count += batch.size();
  }
  return Status::OK();
}

Status BufferTree::Clear(BufferNode* node, bool recurse) {
  KANON_DCHECK(!node->is_leaf);
  RecordBatch batch(dim_);
  KANON_RETURN_IF_ERROR(node->buffer->DrainTo(&batch));
  if (batch.empty()) return Status::OK();

  // Route every record to its child by region, staging per-child flat
  // batches so each child's pages are pinned once per page, not per record.
  const size_t num_children = node->children.size();
  std::vector<RecordBatch> staged(num_children, RecordBatch(dim_));
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto row = batch.row(i);
    size_t dst = num_children;
    for (size_t c = 0; c < num_children; ++c) {
      if (node->children[c]->region.ContainsPoint(row)) {
        dst = c;
        break;
      }
    }
    KANON_CHECK_MSG(dst < num_children, "buffer-tree routing hole");
    staged[dst].Append(batch.rids[i], batch.sensitive[i], row);
  }
  batch.Clear();

  const bool leaf_children = node->children.front()->is_leaf;
  if (leaf_children) {
    for (size_t c = 0; c < num_children; ++c) {
      if (staged[c].empty()) continue;
      bool has_delete = false;
      for (uint64_t rid : staged[c].rids) {
        if ((rid & kDeleteFlag) != 0) {
          has_delete = true;
          break;
        }
      }
      if (has_delete) {
        KANON_RETURN_IF_ERROR(
            ApplyOpsToLeaf(node->children[c].get(), staged[c]));
      } else {
        KANON_RETURN_IF_ERROR(
            AppendBatchToLeaf(node->children[c].get(), staged[c]));
      }
    }
    // Split any leaves the batch overfilled. The child list mutates during
    // replacement, so scan by index and skip past the inserted pieces.
    for (size_t i = 0; i < node->children.size(); ++i) {
      BufferNode* child = node->children[i].get();
      if (child->record_count > config_.max_leaf) {
        std::vector<std::unique_ptr<BufferNode>> pieces;
        KANON_RETURN_IF_ERROR(SplitLeafRecursive(child, &pieces));
        const size_t added = pieces.size() - 1;
        for (auto& piece : pieces) piece->parent = node;
        node->children[i] = std::move(pieces[0]);
        node->children.insert(
            node->children.begin() + i + 1,
            std::make_move_iterator(pieces.begin() + 1),
            std::make_move_iterator(pieces.end()));
        i += added;
      }
    }
    KANON_RETURN_IF_ERROR(ResolveOverflow(node));
  } else {
    for (size_t c = 0; c < num_children; ++c) {
      if (staged[c].empty()) continue;
      KANON_RETURN_IF_ERROR(
          node->children[c]->buffer->AppendBatch(staged[c]));
    }
    if (recurse) {
      // Cascading clears: children whose buffers overflowed are cleared in
      // turn (paper Section 2.1). Child pointers are stable even if a
      // clear restructures this node's ancestry.
      std::vector<BufferNode*> full;
      const size_t threshold = BufferThresholdRecords();
      for (auto& c : node->children) {
        if (c->buffer->record_count() >= threshold) full.push_back(c.get());
      }
      for (BufferNode* c : full) {
        KANON_RETURN_IF_ERROR(Clear(c, true));
      }
    }
  }
  return Status::OK();
}

Status BufferTree::SplitLeafRecursive(
    BufferNode* leaf, std::vector<std::unique_ptr<BufferNode>>* out) {
  RecordBatch records(dim_);
  KANON_RETURN_IF_ERROR(leaf->records->DrainTo(&records));

  // Recursively cut the record set until every piece fits in a leaf.
  std::function<Status(RecordBatch&&, Region)> build =
      [&](RecordBatch&& recs, Region region) -> Status {
    std::optional<PointSplit> split;
    if (recs.size() > config_.max_leaf) {
      split = ChoosePointSplit(recs.values.data(), recs.size(), dim_,
                               config_.min_leaf, config_.split, &region);
      if (split && config_.leaf_admissible) {
        std::vector<int32_t> left_codes, right_codes;
        for (size_t i = 0; i < recs.size(); ++i) {
          (recs.values[i * dim_ + split->axis] < split->value ? left_codes
                                                              : right_codes)
              .push_back(recs.sensitive[i]);
        }
        if (!config_.leaf_admissible(left_codes) ||
            !config_.leaf_admissible(right_codes)) {
          split.reset();  // keep as one (overfull) admissible leaf
        }
      }
    }
    if (!split) {
      auto piece = std::make_unique<BufferNode>(dim_, /*leaf=*/true);
      piece->region = std::move(region);
      piece->records = std::make_unique<PageChain>(pool_, &codec_);
      KANON_RETURN_IF_ERROR(piece->records->AppendBatch(recs));
      for (size_t i = 0; i < recs.size(); ++i) {
        piece->mbr.ExpandToInclude(recs.row(i));
      }
      piece->record_count = recs.size();
      out->push_back(std::move(piece));
      return Status::OK();
    }
    auto [left_region, right_region] = region.Cut(split->axis, split->value);
    RecordBatch left(dim_), right(dim_);
    left.Reserve(split->left_count);
    right.Reserve(split->right_count);
    for (size_t i = 0; i < recs.size(); ++i) {
      RecordBatch& dst =
          recs.values[i * dim_ + split->axis] < split->value ? left : right;
      dst.Append(recs.rids[i], recs.sensitive[i], recs.row(i));
    }
    recs.Clear();
    KANON_RETURN_IF_ERROR(build(std::move(left), std::move(left_region)));
    return build(std::move(right), std::move(right_region));
  };
  return build(std::move(records), leaf->region);
}

Status BufferTree::SplitInternal(BufferNode* node) {
  std::vector<const Region*> regions;
  regions.reserve(node->fanout());
  for (const auto& c : node->children) regions.push_back(&c->region);
  const auto split = ChooseRegionSeparator(
      std::span<const Region* const>(regions.data(), regions.size()),
      config_.split);
  KANON_CHECK_MSG(split.has_value(), "no separating plane (buffer tree)");

  auto [left_region, right_region] =
      node->region.Cut(split->axis, split->value);
  auto make_half = [&](Region region) {
    auto half = std::make_unique<BufferNode>(dim_, /*leaf=*/false);
    half->region = std::move(region);
    half->buffer = std::make_unique<PageChain>(pool_, &codec_);
    return half;
  };
  auto left = make_half(std::move(left_region));
  auto right = make_half(std::move(right_region));
  for (auto& child : node->children) {
    BufferNode* dst = child->region.hi[split->axis] <= split->value
                          ? left.get()
                          : right.get();
    child->parent = dst;
    dst->mbr.ExpandToInclude(child->mbr);
    dst->record_count += child->record_count;
    dst->children.push_back(std::move(child));
  }
  node->children.clear();
  // Re-route any records still buffered at the split node.
  RecordBatch buffered(dim_);
  KANON_RETURN_IF_ERROR(node->buffer->DrainTo(&buffered));
  if (!buffered.empty()) {
    RecordBatch left_stage(dim_), right_stage(dim_);
    for (size_t i = 0; i < buffered.size(); ++i) {
      const auto row = buffered.row(i);
      RecordBatch& dst =
          left->region.ContainsPoint(row) ? left_stage : right_stage;
      dst.Append(buffered.rids[i], buffered.sensitive[i], row);
    }
    KANON_RETURN_IF_ERROR(left->buffer->AppendBatch(left_stage));
    KANON_RETURN_IF_ERROR(right->buffer->AppendBatch(right_stage));
  }
  std::vector<std::unique_ptr<BufferNode>> replacements;
  replacements.push_back(std::move(left));
  replacements.push_back(std::move(right));
  return ReplaceChild(node, std::move(replacements));
}

Status BufferTree::ResolveOverflow(BufferNode* node) {
  while (node != nullptr && node->fanout() > config_.max_fanout) {
    BufferNode* parent = node->parent;
    KANON_RETURN_IF_ERROR(SplitInternal(node));  // destroys `node`
    node = parent;
  }
  return Status::OK();
}

Status BufferTree::ReplaceChild(
    BufferNode* old_child,
    std::vector<std::unique_ptr<BufferNode>> replacements) {
  KANON_CHECK(!replacements.empty());
  BufferNode* parent = old_child->parent;
  if (parent == nullptr) {
    KANON_CHECK(old_child == root_.get());
    if (replacements.size() == 1) {
      replacements[0]->parent = nullptr;
      root_ = std::move(replacements[0]);
      return Status::OK();
    }
    auto new_root = std::make_unique<BufferNode>(dim_, /*leaf=*/false);
    new_root->region = Region::Whole(dim_);
    new_root->buffer = std::make_unique<PageChain>(pool_, &codec_);
    for (auto& r : replacements) {
      r->parent = new_root.get();
      new_root->mbr.ExpandToInclude(r->mbr);
      new_root->record_count += r->record_count;
      new_root->children.push_back(std::move(r));
    }
    root_ = std::move(new_root);
    // A fresh root can immediately exceed the fanout (a leaf-root shattered
    // into many pieces); resolve before returning.
    return ResolveOverflow(root_.get());
  }
  const size_t idx = [&] {
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == old_child) return i;
    }
    KANON_CHECK_MSG(false, "child not found in parent");
    return size_t{0};
  }();
  for (auto& r : replacements) r->parent = parent;
  parent->children[idx] = std::move(replacements[0]);
  parent->children.insert(parent->children.begin() + idx + 1,
                          std::make_move_iterator(replacements.begin() + 1),
                          std::make_move_iterator(replacements.end()));
  // Overflow of `parent` is the caller's job: ResolveOverflow's loop (which
  // reaches here via SplitInternal) advances to the parent itself, and
  // resolving it here too would walk ancestors the loop is about to free.
  return Status::OK();
}

Status BufferTree::Flush() {
  KANON_CHECK_MSG(!flushed_, "Flush called twice");
  flushed_ = true;
  if (root_->is_leaf) return Status::OK();
  // Clear buffers level by level, top-down. Splits during a clear only add
  // nodes whose buffers are empty (the split drains them), so one pass per
  // depth suffices; a root split shifts depth numbering by one, which only
  // causes an already-emptied level to be re-scanned (a no-op).
  for (int depth = 0;; ++depth) {
    std::vector<BufferNode*> level;
    std::function<void(BufferNode*, int)> collect = [&](BufferNode* n,
                                                        int d) {
      if (n->is_leaf) return;
      if (d == depth) {
        level.push_back(n);
        return;
      }
      for (auto& c : n->children) collect(c.get(), d + 1);
    };
    collect(root_.get(), 0);
    if (level.empty()) break;
    for (BufferNode* n : level) {
      if (n->buffer->record_count() > 0) {
        KANON_RETURN_IF_ERROR(Clear(n, /*recurse=*/false));
      }
    }
  }
  // Deletions leave internal MBRs conservatively loose; tighten bottom-up.
  if (had_deletes_) {
    std::function<void(BufferNode*)> tighten = [&](BufferNode* n) {
      if (n->is_leaf) return;
      n->mbr = Mbr(dim_);
      for (auto& c : n->children) {
        tighten(c.get());
        n->mbr.ExpandToInclude(c->mbr);
      }
    };
    tighten(root_.get());
  }
  return Status::OK();
}

int BufferTree::height() const {
  int h = 1;
  const BufferNode* n = root_.get();
  while (!n->is_leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

std::vector<const BufferNode*> BufferTree::OrderedLeaves() const {
  std::vector<const BufferNode*> leaves;
  std::vector<const BufferNode*> stack = {root_.get()};
  while (!stack.empty()) {
    const BufferNode* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      leaves.push_back(n);
      continue;
    }
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
      stack.push_back(it->get());
    }
  }
  return leaves;
}

std::vector<const BufferNode*> BufferTree::NodesAtDepth(int d) const {
  std::vector<const BufferNode*> out;
  std::function<void(const BufferNode*, int)> visit =
      [&](const BufferNode* n, int depth) {
        if (depth == d || n->is_leaf) {
          out.push_back(n);
          return;
        }
        for (const auto& c : n->children) visit(c.get(), depth + 1);
      };
  visit(root_.get(), 0);
  return out;
}

Status BufferTree::ScanLeaf(
    const BufferNode* leaf,
    const std::function<void(uint64_t, int32_t, std::span<const double>)>& fn)
    const {
  KANON_CHECK(leaf->is_leaf);
  return leaf->records->Scan(fn);
}

Status BufferTree::CheckNode(const BufferNode* node) const {
  if (node->is_leaf) {
    if (node->records->record_count() != node->record_count) {
      return Status::Corruption("leaf chain count mismatch");
    }
    if (!had_deletes_ && node->parent != nullptr &&
        node->record_count < config_.min_leaf) {
      return Status::Corruption("underfull buffer-tree leaf");
    }
    Status scan_status = Status::OK();
    const Status s = node->records->Scan(
        [&](uint64_t, int32_t, std::span<const double> p) {
          if (!node->region.ContainsPoint(p) || !node->mbr.ContainsPoint(p)) {
            scan_status = Status::Corruption("record escapes leaf bounds");
          }
        });
    KANON_RETURN_IF_ERROR(s);
    return scan_status;
  }
  if (flushed_ && node->buffer->record_count() != 0) {
    return Status::Corruption("non-empty buffer after flush");
  }
  if (node->children.empty()) {
    return Status::Corruption("internal node with no children");
  }
  size_t count = 0;
  for (const auto& c : node->children) {
    if (c->parent != node) return Status::Corruption("broken parent link");
    for (size_t d = 0; d < dim_; ++d) {
      if (c->region.lo[d] < node->region.lo[d] ||
          c->region.hi[d] > node->region.hi[d]) {
        return Status::Corruption("child region escapes parent");
      }
    }
    count += c->record_count;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    for (size_t j = i + 1; j < node->children.size(); ++j) {
      const Region& a = node->children[i]->region;
      const Region& b = node->children[j]->region;
      bool disjoint = false;
      for (size_t d = 0; d < dim_; ++d) {
        if (a.hi[d] <= b.lo[d] || b.hi[d] <= a.lo[d]) {
          disjoint = true;
          break;
        }
      }
      if (!disjoint) return Status::Corruption("overlapping sibling regions");
    }
  }
  if (count != node->record_count) {
    return Status::Corruption("internal count mismatch");
  }
  for (const auto& c : node->children) {
    KANON_RETURN_IF_ERROR(CheckNode(c.get()));
  }
  return Status::OK();
}

Status BufferTree::CheckInvariants() const { return CheckNode(root_.get()); }

}  // namespace kanon
