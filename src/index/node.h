#ifndef KANON_INDEX_NODE_H_
#define KANON_INDEX_NODE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "index/mbr.h"

namespace kanon {

/// One node of the in-memory R⁺-tree.
///
/// Every node owns a half-open *region* (its cell of the recursive space
/// partition; regions of siblings are disjoint and tile the parent's region)
/// and maintains the *MBR* of the records stored beneath it. The region is
/// what routes insertions deterministically and keeps partitions
/// non-overlapping; the MBR is the compact generalized value the paper's
/// anonymization emits.
///
/// Leaves store their records inline (row-major coordinates plus record id
/// and sensitive code); internal nodes own their children.
struct Node {
  Node(size_t dim, bool leaf) : is_leaf(leaf), mbr(dim), dim_(dim) {}

  bool is_leaf;
  Region region;
  Mbr mbr;
  Node* parent = nullptr;

  // Leaf payload.
  std::vector<uint64_t> rids;
  std::vector<int32_t> sensitive;
  std::vector<double> points;  // row-major, rids.size() * dim

  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  /// Number of records in the subtree (maintained incrementally).
  size_t record_count = 0;

  size_t dim() const { return dim_; }
  size_t fanout() const { return children.size(); }
  size_t leaf_size() const { return rids.size(); }

  std::span<const double> point(size_t i) const {
    return {points.data() + i * dim_, dim_};
  }

  /// Appends a record to a leaf and grows the leaf MBR.
  void AppendRecord(std::span<const double> p, uint64_t rid, int32_t sens) {
    rids.push_back(rid);
    sensitive.push_back(sens);
    points.insert(points.end(), p.begin(), p.end());
    mbr.ExpandToInclude(p);
    ++record_count;
  }

  /// Removes leaf record at position i (swap-with-last; order within a leaf
  /// carries no meaning). Does not recompute the MBR — callers that need a
  /// tight box call RecomputeLeafMbr().
  void RemoveRecordAt(size_t i);

  /// Rebuilds the leaf MBR from the stored points.
  void RecomputeLeafMbr();

  /// Index of this node within parent->children. Node must have a parent.
  size_t IndexInParent() const;

 private:
  size_t dim_;
};

}  // namespace kanon

#endif  // KANON_INDEX_NODE_H_
