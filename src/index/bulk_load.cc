#include "index/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "index/hilbert.h"
#include "storage/external_sort.h"

namespace kanon {

namespace {

/// Chunks an ordered rid list into groups of target_size, folding a
/// too-small tail into the previous group, and computes group MBRs.
std::vector<LeafGroup> ChunkOrdered(const Dataset& dataset,
                                    const std::vector<RecordId>& ordered,
                                    const SortLoadConfig& config) {
  KANON_CHECK(config.target_size >= config.min_size);
  std::vector<LeafGroup> groups;
  const size_t n = ordered.size();
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(begin + config.target_size, n);
    // If the remainder after this group would be a too-small fragment, take
    // it now.
    if (n - end > 0 && n - end < config.min_size) end = n;
    LeafGroup g;
    g.mbr = Mbr(dataset.dim());
    for (size_t i = begin; i < end; ++i) {
      g.rids.push_back(ordered[i]);
      g.mbr.ExpandToInclude(dataset.row(ordered[i]));
    }
    groups.push_back(std::move(g));
    begin = end;
  }
  // A single undersized group can only happen when the dataset itself has
  // fewer than min_size records; nothing more can be done in that case.
  return groups;
}

}  // namespace

std::vector<LeafGroup> CurveBulkLoad(const Dataset& dataset, CurveOrder order,
                                     const SortLoadConfig& config) {
  if (dataset.empty()) return {};
  const Domain domain = dataset.ComputeDomain();
  const GridQuantizer quantizer(domain, config.grid_bits);
  const size_t n = dataset.num_records();
  std::vector<std::pair<CurveKey, RecordId>> keyed(n);
  std::vector<uint32_t> grid(dataset.dim());
  for (RecordId r = 0; r < n; ++r) {
    quantizer.Quantize(dataset.row(r), grid.data());
    const std::span<const uint32_t> g(grid.data(), grid.size());
    keyed[r] = {order == CurveOrder::kHilbert
                    ? HilbertKey(g, config.grid_bits)
                    : ZOrderKey(g, config.grid_bits),
                r};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<RecordId> ordered(n);
  for (size_t i = 0; i < n; ++i) ordered[i] = keyed[i].second;
  return ChunkOrdered(dataset, ordered, config);
}

StatusOr<std::vector<LeafGroup>> CurveBulkLoadExternal(
    const Dataset& dataset, CurveOrder order, const SortLoadConfig& config,
    BufferPool* pool, size_t run_records) {
  if (dataset.empty()) return std::vector<LeafGroup>{};
  const Domain domain = dataset.ComputeDomain();
  const GridQuantizer quantizer(domain, config.grid_bits);
  const int shift = std::max(
      0, config.grid_bits * static_cast<int>(dataset.dim()) - 64);

  ExternalSorter sorter(dataset.dim(), run_records, pool);
  std::vector<uint32_t> grid(dataset.dim());
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    quantizer.Quantize(dataset.row(r), grid.data());
    const std::span<const uint32_t> g(grid.data(), grid.size());
    const CurveKey key = order == CurveOrder::kHilbert
                             ? HilbertKey(g, config.grid_bits)
                             : ZOrderKey(g, config.grid_bits);
    KANON_RETURN_IF_ERROR(sorter.Add(static_cast<uint64_t>(key >> shift), r,
                                     dataset.sensitive(r), dataset.row(r)));
  }
  std::vector<RecordId> ordered;
  ordered.reserve(dataset.num_records());
  KANON_RETURN_IF_ERROR(sorter.Finish(
      [&ordered](uint64_t, uint64_t rid, int32_t, std::span<const double>) {
        ordered.push_back(rid);
      }));
  return ChunkOrdered(dataset, ordered, config);
}

namespace {

void StrRecurse(const Dataset& dataset, std::vector<RecordId>& rids,
                size_t attr, const SortLoadConfig& config,
                std::vector<LeafGroup>* out) {
  const size_t dim = dataset.dim();
  std::sort(rids.begin(), rids.end(), [&](RecordId a, RecordId b) {
    return dataset.value(a, attr) < dataset.value(b, attr);
  });
  if (attr + 1 == dim) {
    auto groups = ChunkOrdered(dataset, rids, config);
    out->insert(out->end(), std::make_move_iterator(groups.begin()),
                std::make_move_iterator(groups.end()));
    return;
  }
  // Number of leaves this set will produce, sliced into ~P^((d-a-1)/(d-a))
  // slabs along the current attribute per the STR recipe.
  const double leaves = std::max(
      1.0, static_cast<double>(rids.size()) / config.target_size);
  const double remaining_dims = static_cast<double>(dim - attr);
  const auto slabs = static_cast<size_t>(std::ceil(
      std::pow(leaves, 1.0 / remaining_dims)));
  const size_t slab_size =
      (rids.size() + slabs - 1) / std::max<size_t>(1, slabs);
  size_t begin = 0;
  while (begin < rids.size()) {
    size_t end = std::min(begin + slab_size, rids.size());
    if (rids.size() - end > 0 && rids.size() - end < config.min_size) {
      end = rids.size();
    }
    std::vector<RecordId> slab(rids.begin() + begin, rids.begin() + end);
    StrRecurse(dataset, slab, attr + 1, config, out);
    begin = end;
  }
}

}  // namespace

std::vector<LeafGroup> StrBulkLoad(const Dataset& dataset,
                                   const SortLoadConfig& config) {
  if (dataset.empty()) return {};
  std::vector<RecordId> rids(dataset.num_records());
  for (RecordId r = 0; r < rids.size(); ++r) rids[r] = r;
  std::vector<LeafGroup> out;
  StrRecurse(dataset, rids, 0, config, &out);
  return out;
}

}  // namespace kanon
