#include "index/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "index/hilbert.h"
#include "storage/external_sort.h"

namespace kanon {

namespace {

/// Chunks an ordered rid list into groups of target_size, folding a
/// too-small tail into the previous group, and computes group MBRs.
std::vector<LeafGroup> ChunkOrdered(const Dataset& dataset,
                                    const std::vector<RecordId>& ordered,
                                    const SortLoadConfig& config) {
  KANON_CHECK(config.target_size >= config.min_size);
  std::vector<LeafGroup> groups;
  const size_t n = ordered.size();
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(begin + config.target_size, n);
    // If the remainder after this group would be a too-small fragment, take
    // it now.
    if (n - end > 0 && n - end < config.min_size) end = n;
    LeafGroup g;
    g.mbr = Mbr(dataset.dim());
    for (size_t i = begin; i < end; ++i) {
      g.rids.push_back(ordered[i]);
      g.mbr.ExpandToInclude(dataset.row(ordered[i]));
    }
    groups.push_back(std::move(g));
    begin = end;
  }
  // A single undersized group can only happen when the dataset itself has
  // fewer than min_size records; nothing more can be done in that case.
  return groups;
}

}  // namespace

std::vector<LeafGroup> CurveBulkLoad(const Dataset& dataset, CurveOrder order,
                                     const SortLoadConfig& config) {
  if (dataset.empty()) return {};
  const Domain domain = dataset.ComputeDomain();
  const GridQuantizer quantizer(domain, config.grid_bits);
  const size_t n = dataset.num_records();
  std::vector<std::pair<CurveKey, RecordId>> keyed(n);
  std::vector<uint32_t> grid(dataset.dim());
  for (RecordId r = 0; r < n; ++r) {
    quantizer.Quantize(dataset.row(r), grid.data());
    const std::span<const uint32_t> g(grid.data(), grid.size());
    keyed[r] = {order == CurveOrder::kHilbert
                    ? HilbertKey(g, config.grid_bits)
                    : ZOrderKey(g, config.grid_bits),
                r};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<RecordId> ordered(n);
  for (size_t i = 0; i < n; ++i) ordered[i] = keyed[i].second;
  return ChunkOrdered(dataset, ordered, config);
}

StatusOr<std::vector<LeafGroup>> CurveBulkLoadExternal(
    const Dataset& dataset, CurveOrder order, const SortLoadConfig& config,
    BufferPool* pool, size_t run_records, ThreadPool* workers) {
  if (dataset.empty()) return std::vector<LeafGroup>{};
  const Domain domain = dataset.ComputeDomain();
  const GridQuantizer quantizer(domain, config.grid_bits);
  const int shift = std::max(
      0, config.grid_bits * static_cast<int>(dataset.dim()) - 64);

  ExternalSorter sorter(dataset.dim(), run_records, pool, workers);
  std::vector<uint32_t> grid(dataset.dim());
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    quantizer.Quantize(dataset.row(r), grid.data());
    const std::span<const uint32_t> g(grid.data(), grid.size());
    const CurveKey key = order == CurveOrder::kHilbert
                             ? HilbertKey(g, config.grid_bits)
                             : ZOrderKey(g, config.grid_bits);
    KANON_RETURN_IF_ERROR(sorter.Add(static_cast<uint64_t>(key >> shift), r,
                                     dataset.sensitive(r), dataset.row(r)));
  }
  std::vector<RecordId> ordered;
  ordered.reserve(dataset.num_records());
  KANON_RETURN_IF_ERROR(sorter.Finish(
      [&ordered](uint64_t, uint64_t rid, int32_t, std::span<const double>) {
        ordered.push_back(rid);
      }));
  return ChunkOrdered(dataset, ordered, config);
}

namespace {

void StrRecurse(const Dataset& dataset, std::vector<RecordId>& rids,
                size_t attr, const SortLoadConfig& config,
                std::vector<LeafGroup>* out) {
  const size_t dim = dataset.dim();
  std::sort(rids.begin(), rids.end(), [&](RecordId a, RecordId b) {
    return dataset.value(a, attr) < dataset.value(b, attr);
  });
  if (attr + 1 == dim) {
    auto groups = ChunkOrdered(dataset, rids, config);
    out->insert(out->end(), std::make_move_iterator(groups.begin()),
                std::make_move_iterator(groups.end()));
    return;
  }
  // Number of leaves this set will produce, sliced into ~P^((d-a-1)/(d-a))
  // slabs along the current attribute per the STR recipe.
  const double leaves = std::max(
      1.0, static_cast<double>(rids.size()) / config.target_size);
  const double remaining_dims = static_cast<double>(dim - attr);
  const auto slabs = static_cast<size_t>(std::ceil(
      std::pow(leaves, 1.0 / remaining_dims)));
  const size_t slab_size =
      (rids.size() + slabs - 1) / std::max<size_t>(1, slabs);
  size_t begin = 0;
  while (begin < rids.size()) {
    size_t end = std::min(begin + slab_size, rids.size());
    if (rids.size() - end > 0 && rids.size() - end < config.min_size) {
      end = rids.size();
    }
    std::vector<RecordId> slab(rids.begin() + begin, rids.begin() + end);
    StrRecurse(dataset, slab, attr + 1, config, out);
    begin = end;
  }
}

}  // namespace

std::vector<LeafGroup> StrBulkLoad(const Dataset& dataset,
                                   const SortLoadConfig& config) {
  if (dataset.empty()) return {};
  std::vector<RecordId> rids(dataset.num_records());
  for (RecordId r = 0; r < rids.size(); ++r) rids[r] = r;
  std::vector<LeafGroup> out;
  StrRecurse(dataset, rids, 0, config, &out);
  return out;
}

namespace {

/// One contiguous range of the arrays with its region of space. `open`
/// means a further cut may still be attempted.
struct Piece {
  Region region;
  size_t begin = 0;
  size_t end = 0;
  bool open = true;

  size_t size() const { return end - begin; }
};

/// Tries to cut `piece` with the tree's split policy. On success the
/// range is stably partitioned in place (left records keep their order,
/// then right records keep theirs — determinism of the serialized leaf
/// order depends on this), `piece` shrinks to the left half and
/// `*right_out` receives the right half. Mirrors SplitLeaf's protocol:
/// a cut is applied only when both halves would satisfy the
/// admissibility predicate, otherwise the piece stays whole (an
/// overfull leaf never weakens the guarantee).
bool TryCutPiece(BuildArrays* arrays, const RTreeConfig& config, Piece* piece,
                 Piece* right_out) {
  const size_t dim = arrays->dim;
  const auto split = ChoosePointSplit(
      arrays->points.data() + piece->begin * dim, piece->size(), dim,
      config.min_leaf, config.split, &piece->region);
  if (!split.has_value()) return false;

  BuildArrays left(dim), right(dim);
  for (size_t i = piece->begin; i < piece->end; ++i) {
    BuildArrays& side =
        arrays->points[i * dim + split->axis] < split->value ? left : right;
    side.rids.push_back(arrays->rids[i]);
    side.sensitive.push_back(arrays->sensitive[i]);
    const auto p = arrays->row(i);
    side.points.insert(side.points.end(), p.begin(), p.end());
  }
  KANON_CHECK(left.rids.size() == split->left_count);
  if (config.leaf_admissible != nullptr &&
      (!config.leaf_admissible(left.sensitive) ||
       !config.leaf_admissible(right.sensitive))) {
    return false;
  }

  // Commit: left half then right half back into the range.
  std::copy(left.rids.begin(), left.rids.end(),
            arrays->rids.begin() + piece->begin);
  std::copy(right.rids.begin(), right.rids.end(),
            arrays->rids.begin() + piece->begin + left.rids.size());
  std::copy(left.sensitive.begin(), left.sensitive.end(),
            arrays->sensitive.begin() + piece->begin);
  std::copy(right.sensitive.begin(), right.sensitive.end(),
            arrays->sensitive.begin() + piece->begin + left.rids.size());
  std::copy(left.points.begin(), left.points.end(),
            arrays->points.begin() + piece->begin * dim);
  std::copy(right.points.begin(), right.points.end(),
            arrays->points.begin() + (piece->begin + left.rids.size()) * dim);

  auto halves = piece->region.Cut(split->axis, split->value);
  right_out->region = std::move(halves.second);
  right_out->begin = piece->begin + left.rids.size();
  right_out->end = piece->end;
  right_out->open = true;
  piece->region = std::move(halves.first);
  piece->end = right_out->begin;
  return true;
}

/// Carves [begin, end) into at most max_fanout region-disjoint pieces by
/// repeatedly cutting the largest still-overfull piece (ties break on the
/// lowest piece index — a deterministic rule). Pieces stay in range
/// order, so sibling order in the built tree is deterministic too.
std::vector<Piece> CutIntoFanout(BuildArrays* arrays,
                                 const RTreeConfig& config,
                                 const Region& region, size_t begin,
                                 size_t end) {
  std::vector<Piece> pieces;
  pieces.push_back({region, begin, end, true});
  while (pieces.size() < config.max_fanout) {
    size_t best = pieces.size();
    size_t best_size = config.max_leaf;  // only pieces beyond a leaf's reach
    for (size_t i = 0; i < pieces.size(); ++i) {
      if (pieces[i].open && pieces[i].size() > best_size) {
        best = i;
        best_size = pieces[i].size();
      }
    }
    if (best == pieces.size()) break;
    Piece right;
    if (!TryCutPiece(arrays, config, &pieces[best], &right)) {
      pieces[best].open = false;
      continue;
    }
    pieces.insert(pieces.begin() + best + 1, std::move(right));
  }
  return pieces;
}

std::unique_ptr<Node> MakeLeaf(const BuildArrays& arrays,
                               const Region& region, size_t begin,
                               size_t end) {
  auto leaf = std::make_unique<Node>(arrays.dim, /*leaf=*/true);
  leaf->region = region;
  for (size_t i = begin; i < end; ++i) {
    leaf->AppendRecord(arrays.row(i), arrays.rids[i], arrays.sensitive[i]);
  }
  return leaf;
}

}  // namespace

std::unique_ptr<Node> BuildSubtree(BuildArrays* arrays,
                                   const RTreeConfig& config,
                                   const Region& region, size_t begin,
                                   size_t end) {
  if (end - begin <= config.max_leaf) {
    return MakeLeaf(*arrays, region, begin, end);
  }
  auto pieces = CutIntoFanout(arrays, config, region, begin, end);
  if (pieces.size() == 1) return MakeLeaf(*arrays, region, begin, end);
  auto node = std::make_unique<Node>(arrays->dim, /*leaf=*/false);
  node->region = region;
  for (const Piece& piece : pieces) {
    auto child =
        BuildSubtree(arrays, config, piece.region, piece.begin, piece.end);
    child->parent = node.get();
    node->record_count += child->record_count;
    node->mbr.ExpandToInclude(child->mbr);
    node->children.push_back(std::move(child));
  }
  return node;
}

StatusOr<RPlusTree> SortedBulkLoadTree(const Dataset& dataset,
                                       const RTreeConfig& config,
                                       CurveOrder order, int grid_bits,
                                       BufferPool* pool, size_t run_records,
                                       ThreadPool* workers) {
  const size_t dim = dataset.dim();
  const size_t n = dataset.num_records();
  if (n == 0) return RPlusTree(dim, config);
  if (workers != nullptr && workers->capacity() == 0) workers = nullptr;

  // 1. Curve keys, computed in record-index chunks across the workers
  // (each chunk writes a disjoint slice of `keys`).
  const Domain domain = dataset.ComputeDomain();
  const GridQuantizer quantizer(domain, grid_bits);
  const int shift = std::max(0, grid_bits * static_cast<int>(dim) - 64);
  std::vector<uint64_t> keys(n);
  const auto compute_keys = [&](size_t begin, size_t end) {
    std::vector<uint32_t> grid(dim);
    for (size_t r = begin; r < end; ++r) {
      quantizer.Quantize(dataset.row(r), grid.data());
      const std::span<const uint32_t> g(grid.data(), grid.size());
      const CurveKey key = order == CurveOrder::kHilbert
                               ? HilbertKey(g, grid_bits)
                               : ZOrderKey(g, grid_bits);
      keys[r] = static_cast<uint64_t>(key >> shift);
    }
  };
  if (workers != nullptr) {
    const size_t chunk =
        std::max<size_t>(1024, n / ((workers->capacity() + 1) * 8));
    const size_t num_chunks = (n + chunk - 1) / chunk;
    workers->ParallelFor(num_chunks, [&](size_t c) {
      compute_keys(c * chunk, std::min(n, (c + 1) * chunk));
    });
  } else {
    compute_keys(0, n);
  }

  // 2. External sort by (curve key, rid); the sorter parallelizes run
  // generation and merging internally.
  ExternalSorter sorter(dim, run_records, pool, workers);
  for (RecordId r = 0; r < n; ++r) {
    KANON_RETURN_IF_ERROR(
        sorter.Add(keys[r], r, dataset.sensitive(r), dataset.row(r)));
  }
  keys.clear();
  keys.shrink_to_fit();
  BuildArrays arrays(dim);
  arrays.rids.reserve(n);
  arrays.sensitive.reserve(n);
  arrays.points.reserve(n * dim);
  KANON_RETURN_IF_ERROR(sorter.Finish(
      [&arrays](uint64_t, uint64_t rid, int32_t sensitive,
                std::span<const double> values) {
        arrays.rids.push_back(rid);
        arrays.sensitive.push_back(sensitive);
        arrays.points.insert(arrays.points.end(), values.begin(),
                             values.end());
      }));

  // 3. Root-level cut, then one concurrent build per top-level piece.
  const Region whole = Region::Whole(dim);
  std::unique_ptr<Node> root;
  if (n <= config.max_leaf) {
    root = MakeLeaf(arrays, whole, 0, n);
  } else {
    auto pieces = CutIntoFanout(&arrays, config, whole, 0, n);
    if (pieces.size() == 1) {
      root = MakeLeaf(arrays, whole, 0, n);
    } else {
      std::vector<std::unique_ptr<Node>> subtrees(pieces.size());
      const auto build = [&](size_t i) {
        subtrees[i] = BuildSubtree(&arrays, config, pieces[i].region,
                                   pieces[i].begin, pieces[i].end);
      };
      if (workers != nullptr) {
        workers->ParallelFor(subtrees.size(), build);
      } else {
        for (size_t i = 0; i < subtrees.size(); ++i) build(i);
      }
      root = std::make_unique<Node>(dim, /*leaf=*/false);
      root->region = whole;
      for (auto& child : subtrees) {
        child->parent = root.get();
        root->record_count += child->record_count;
        root->mbr.ExpandToInclude(child->mbr);
        root->children.push_back(std::move(child));
      }
    }
  }
  return RPlusTree::FromRoot(dim, config, std::move(root));
}

}  // namespace kanon
