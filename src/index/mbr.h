#ifndef KANON_INDEX_MBR_H_
#define KANON_INDEX_MBR_H_

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace kanon {

/// An n-dimensional minimum bounding rectangle (closed box). An empty Mbr
/// (no points added yet) has inverted bounds. In the anonymization setting
/// the MBR of a partition *is* the generalized quasi-identifier value — the
/// paper's "compaction" is exactly replacing partition regions by MBRs.
class Mbr {
 public:
  Mbr() = default;

  /// An empty box of dimensionality `dim`.
  explicit Mbr(size_t dim)
      : lo_(dim, std::numeric_limits<double>::infinity()),
        hi_(dim, -std::numeric_limits<double>::infinity()) {}

  /// A degenerate box covering exactly `point`.
  static Mbr FromPoint(std::span<const double> point);

  /// A box with explicit bounds (lo[i] <= hi[i] required per dimension).
  static Mbr FromBounds(std::vector<double> lo, std::vector<double> hi);

  size_t dim() const { return lo_.size(); }
  bool empty() const { return dim() == 0 || lo_[0] > hi_[0]; }

  double lo(size_t i) const { return lo_[i]; }
  double hi(size_t i) const { return hi_[i]; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

  double Extent(size_t i) const { return empty() ? 0.0 : hi_[i] - lo_[i]; }

  /// Grows the box to cover `point` / `other`.
  void ExpandToInclude(std::span<const double> point);
  void ExpandToInclude(const Mbr& other);

  /// Product of extents. Zero if any side is degenerate, so callers that
  /// rank candidate boxes should break area ties with Margin().
  double Volume() const;

  /// Sum of extents (the "perimeter" proxy used by R*-style heuristics).
  double Margin() const;

  /// Volume increase caused by expanding this box to include `point`.
  double Enlargement(std::span<const double> point) const;

  /// Margin increase caused by expanding this box to include `point` —
  /// discriminates when volumes are degenerate (flat boxes).
  double MarginEnlargement(std::span<const double> point) const;

  bool ContainsPoint(std::span<const double> point) const;
  bool ContainsBox(const Mbr& other) const;

  /// Closed-box intersection test (shared boundaries count as intersecting,
  /// matching the paper's query-match semantics).
  bool Intersects(const Mbr& other) const;

  /// Fraction of this box's volume that lies inside `other`, treating
  /// degenerate extents as matching fully when the slice intersects. Used by
  /// the uniform-assumption query estimator (Section 2.3 of the paper).
  double IntersectionFraction(const Mbr& other) const;

  static Mbr Union(const Mbr& a, const Mbr& b);

  /// "[lo0, hi0]x[lo1, hi1]..." for debugging and table rendering.
  std::string ToString() const;

  bool operator==(const Mbr& other) const = default;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// An axis-aligned *region*: a half-open cell [lo, hi) of the recursive
/// space partition maintained by the R⁺-tree. Regions tile the space, so a
/// point lies in exactly one child region — this is what guarantees the
/// non-overlapping partitions the k-anonymization literature expects.
/// Bounds may be infinite.
struct Region {
  std::vector<double> lo;
  std::vector<double> hi;

  static Region Whole(size_t dim);

  size_t dim() const { return lo.size(); }

  /// Half-open membership: lo[i] <= x[i] < hi[i] on every axis.
  bool ContainsPoint(std::span<const double> point) const;

  /// Splits this region by the hyperplane {x[axis] == value}. The left part
  /// keeps [lo, value), the right part gets [value, hi).
  std::pair<Region, Region> Cut(size_t axis, double value) const;

  std::string ToString() const;
};

}  // namespace kanon

#endif  // KANON_INDEX_MBR_H_
