#ifndef KANON_DP_DP_HIERARCHY_H_
#define KANON_DP_DP_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/mbr.h"

namespace kanon {

/// The canonical bisection hierarchy over a quasi-identifier domain: a
/// complete binary tree of `height` levels of axis-cycling midpoint cuts
/// (depth d splits axis d % dim at the exact midpoint), heap-indexed with
/// node 1 as the root and children 2v / 2v+1.
///
/// The grid is deliberately *data-independent* — a pure function of
/// (domain, height), never of the records or of the R⁺-tree's own split
/// history. That is what makes DP releases comparable and summable across
/// deployments: every shard of a sharded service, and a replication
/// follower of its leader, bins records into the *same* cells, so
/// per-shard exact cell counts simply add and the noisy hierarchy built
/// from the sum is byte-identical no matter how the records were routed.
/// (The R⁺-tree's own node boxes differ per shard and per insertion order,
/// which is exactly why they cannot anchor a cross-shard-deterministic
/// release.)
class DpGrid {
 public:
  /// `height` >= 0; the grid has 2^height leaf cells. Domain extents may
  /// be degenerate (a zero-width axis just makes that cut a no-op
  /// boundary at lo).
  DpGrid(Domain domain, size_t height);

  size_t height() const { return height_; }
  size_t dim() const { return domain_.dim(); }
  const Domain& domain() const { return domain_; }

  size_t num_leaves() const { return size_t{1} << height_; }
  /// Heap-array size: valid node ids are [1, num_nodes()), id 0 unused.
  size_t num_nodes() const { return size_t{2} << height_; }

  /// Level of a heap node id: 0 = root, height() = leaf.
  static size_t NodeLevel(size_t node);

  /// The leaf cell index in [0, num_leaves()) containing `point`.
  /// Coordinates outside the domain clamp to the boundary cell, so every
  /// record lands in exactly one cell.
  size_t LeafCell(std::span<const double> point) const;

  /// The closed box of heap node `node` in [1, num_nodes()).
  Mbr NodeBox(size_t node) const;

  /// The contiguous leaf-cell range [first, last) beneath `node`.
  void LeafRange(size_t node, size_t* first, size_t* last) const;

 private:
  Domain domain_;
  size_t height_;
};

/// Bins `n` row-major points of dimension `grid.dim()` into exact per-cell
/// counts (the input of the noising pass). Pure accumulation: callers add
/// the result of several calls to cover several record sources.
void AccumulateCells(const DpGrid& grid, const double* points, size_t n,
                     std::vector<uint64_t>* cells);

}  // namespace kanon

#endif  // KANON_DP_DP_HIERARCHY_H_
