#ifndef KANON_DP_DP_LEDGER_H_
#define KANON_DP_DP_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "dp/dp_release.h"

namespace kanon {

/// Per-epoch privacy-budget accounting for DP releases.
///
/// The unit of spending is one *distinct* (epsilon, seed) release per
/// release point: by sequential composition, answering n distinct noisy
/// hierarchies of one dataset costs the sum of their epsilons, while
/// re-serving a memoized hierarchy is free (post-processing). The ledger
/// therefore memoizes every built release and only charges on first build;
/// a build that would push the release point's spend past `budget` is
/// refused with ResourceExhausted *before* any noise is drawn — an
/// over-budget request burns nothing.
///
/// A release point is the (epoch, records) pair — the same key replication
/// uses to name publication points, so a follower's ledger lines up with
/// its leader's. Entries for old release points are retained up to
/// `max_points` and evicted oldest-first (their budget is spent forever in
/// the formal sense; the ledger just stops tracking what can no longer be
/// requested).
class DpBudgetLedger {
 public:
  /// `budget` <= 0 means unlimited (no accounting, memoization only).
  explicit DpBudgetLedger(double budget, size_t max_points = 8);

  /// The memoized release for (epoch, records, epsilon, seed), building it
  /// via `build` (charged against the budget) on first request.
  /// InvalidArgument for a non-finite or non-positive epsilon;
  /// ResourceExhausted when building would exceed the budget.
  StatusOr<std::shared_ptr<const DpRelease>> Acquire(
      uint64_t epoch, uint64_t records, double epsilon, uint64_t seed,
      const std::function<std::shared_ptr<const DpRelease>()>& build);

  double budget() const { return budget_; }
  /// Epsilon charged so far against the given release point.
  double Spent(uint64_t epoch, uint64_t records) const;

  uint64_t releases_built() const {
    return built_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Point {
    uint64_t epoch = 0;
    uint64_t records = 0;
    double spent = 0.0;
    /// Keyed by (bit pattern of epsilon, seed): distinct doubles — even
    /// ones comparing equal like -0.0 and 0.0 — are distinct charges.
    std::map<std::pair<uint64_t, uint64_t>,
             std::shared_ptr<const DpRelease>>
        releases;
  };

  Point* FindOrCreatePointLocked(uint64_t epoch, uint64_t records);

  const double budget_;
  const size_t max_points_;
  mutable std::mutex mu_;
  std::deque<Point> points_;
  std::atomic<uint64_t> built_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace kanon

#endif  // KANON_DP_DP_LEDGER_H_
