#ifndef KANON_DP_DP_LEDGER_H_
#define KANON_DP_DP_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "common/status.h"
#include "dp/dp_release.h"

namespace kanon {

struct DpLedgerOptions {
  /// Total epsilon spendable per release point. <= 0 means unlimited (no
  /// accounting, memoization only).
  double budget = 4.0;
  /// Total epsilon spendable across *all* release points over the ledger's
  /// lifetime. <= 0 means unlimited. See the cumulative-loss caveat below:
  /// without this cap, a record present across N epochs suffers up to
  /// N * budget of composed privacy loss over the service lifetime.
  double lifetime_budget = 0.0;
  /// Smallest admissible epsilon per build. A granularity floor, not a
  /// privacy knob: together with the budget it bounds how many distinct
  /// charged builds one release point can accumulate (budget/min_epsilon),
  /// so budget accounting also bounds ledger memory.
  double min_epsilon = 1e-3;
  /// Release points tracked, evicted oldest-first beyond this.
  size_t max_points = 8;
  /// Memoized releases retained per point, LRU-evicted beyond this. An
  /// evicted release that is requested again is rebuilt bit-identically
  /// (the noise is a pure function of (epsilon, key)) and is *not*
  /// re-charged — the charge record survives eviction.
  size_t max_releases_per_point = 32;
};

/// Per-epoch privacy-budget accounting for DP releases.
///
/// The unit of spending is one *distinct* epsilon build per release point:
/// by sequential composition, answering n distinct noisy hierarchies of
/// one dataset costs the sum of their epsilons, while re-serving a
/// memoized (or bit-identically rebuilt) hierarchy is free
/// (post-processing). The ledger charges each epsilon at most once per
/// release point; a build that would push the point's spend past `budget`
/// — or the whole ledger past `lifetime_budget` — is refused with
/// ResourceExhausted *before* any noise is drawn, so an over-budget
/// request burns nothing.
///
/// A release point is the (epoch, records) pair — the same key replication
/// uses to name publication points, so a follower's ledger lines up with
/// its leader's. Entries for old release points are retained up to
/// `max_points` and evicted oldest-first (their budget is spent forever in
/// the formal sense; the ledger just stops tracking what can no longer be
/// requested).
///
/// Cumulative-loss caveat: the per-point budget bounds the loss of each
/// *publication*, not of each *record*. Successive epochs largely contain
/// the same records, so a record present across N published epochs suffers
/// up to N * budget of total epsilon by sequential composition — unbounded
/// over the service lifetime unless `lifetime_budget` (or an external
/// epoch-rate limit) caps it. DESIGN.md §17 spells this out.
class DpBudgetLedger {
 public:
  explicit DpBudgetLedger(DpLedgerOptions options);
  /// Convenience: a ledger with only the per-point budget customized.
  explicit DpBudgetLedger(double budget) : DpBudgetLedger(With(budget)) {}

  /// The memoized release for (epoch, records, epsilon), building it via
  /// `build` (charged against the budgets) on first request.
  /// InvalidArgument for a non-finite, non-positive, or below-granularity
  /// epsilon; ResourceExhausted when charging would exceed a budget.
  StatusOr<std::shared_ptr<const DpRelease>> Acquire(
      uint64_t epoch, uint64_t records, double epsilon,
      const std::function<std::shared_ptr<const DpRelease>()>& build);

  double budget() const { return options_.budget; }
  double lifetime_budget() const { return options_.lifetime_budget; }
  double min_epsilon() const { return options_.min_epsilon; }
  /// Epsilon charged so far against the given release point.
  double Spent(uint64_t epoch, uint64_t records) const;
  /// Epsilon charged so far across every release point this ledger has
  /// ever tracked (survives point eviction).
  double LifetimeSpent() const;

  uint64_t releases_built() const {
    return built_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Memoized releases LRU-evicted under max_releases_per_point.
  uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  struct Point {
    uint64_t epoch = 0;
    uint64_t records = 0;
    double spent = 0.0;
    /// Epsilons (by bit pattern: distinct doubles — even ones comparing
    /// equal like -0.0 and 0.0 — are distinct charges) already charged at
    /// this point. Bounded by budget/min_epsilon when a budget applies.
    std::set<uint64_t> charged;
    /// Memoized releases keyed by epsilon bit pattern, LRU order in `lru`
    /// (most recent at the back). Bounded by max_releases_per_point.
    std::map<uint64_t, std::shared_ptr<const DpRelease>> releases;
    std::list<uint64_t> lru;
  };

  static DpLedgerOptions With(double budget) {
    DpLedgerOptions options;
    options.budget = budget;
    return options;
  }

  Point* FindOrCreatePointLocked(uint64_t epoch, uint64_t records);
  void TouchLocked(Point* point, uint64_t eps_bits);

  const DpLedgerOptions options_;
  mutable std::mutex mu_;
  std::deque<Point> points_;
  double lifetime_spent_ = 0.0;
  std::atomic<uint64_t> built_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> evicted_{0};
};

}  // namespace kanon

#endif  // KANON_DP_DP_LEDGER_H_
