#include "dp/dp_ledger.h"

#include <bit>
#include <cmath>

namespace kanon {

DpBudgetLedger::DpBudgetLedger(double budget, size_t max_points)
    : budget_(budget), max_points_(max_points == 0 ? 1 : max_points) {}

DpBudgetLedger::Point* DpBudgetLedger::FindOrCreatePointLocked(
    uint64_t epoch, uint64_t records) {
  for (Point& p : points_) {
    if (p.epoch == epoch && p.records == records) return &p;
  }
  while (points_.size() >= max_points_) points_.pop_front();
  points_.push_back(Point{epoch, records, 0.0, {}});
  return &points_.back();
}

StatusOr<std::shared_ptr<const DpRelease>> DpBudgetLedger::Acquire(
    uint64_t epoch, uint64_t records, double epsilon, uint64_t seed,
    const std::function<std::shared_ptr<const DpRelease>()>& build) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be a positive finite number");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Point* point = FindOrCreatePointLocked(epoch, records);
  const auto key = std::make_pair(std::bit_cast<uint64_t>(epsilon), seed);
  const auto it = point->releases.find(key);
  if (it != point->releases.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (budget_ > 0.0 && point->spent + epsilon > budget_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "dp budget exhausted for this release point: spent " +
        std::to_string(point->spent) + " of " + std::to_string(budget_) +
        ", requested epsilon " + std::to_string(epsilon));
  }
  std::shared_ptr<const DpRelease> release = build();
  if (release == nullptr) {
    return Status::Internal("dp release build failed");
  }
  point->spent += epsilon;
  point->releases.emplace(key, release);
  built_.fetch_add(1, std::memory_order_relaxed);
  return release;
}

double DpBudgetLedger::Spent(uint64_t epoch, uint64_t records) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Point& p : points_) {
    if (p.epoch == epoch && p.records == records) return p.spent;
  }
  return 0.0;
}

}  // namespace kanon
