#include "dp/dp_ledger.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace kanon {

DpBudgetLedger::DpBudgetLedger(DpLedgerOptions options)
    : options_([&options] {
        options.max_points = std::max<size_t>(options.max_points, 1);
        options.max_releases_per_point =
            std::max<size_t>(options.max_releases_per_point, 1);
        if (!(options.min_epsilon > 0.0)) options.min_epsilon = 0.0;
        return options;
      }()) {}

DpBudgetLedger::Point* DpBudgetLedger::FindOrCreatePointLocked(
    uint64_t epoch, uint64_t records) {
  for (Point& p : points_) {
    if (p.epoch == epoch && p.records == records) return &p;
  }
  while (points_.size() >= options_.max_points) points_.pop_front();
  points_.push_back(Point{epoch, records, 0.0, {}, {}, {}});
  return &points_.back();
}

void DpBudgetLedger::TouchLocked(Point* point, uint64_t eps_bits) {
  point->lru.remove(eps_bits);
  point->lru.push_back(eps_bits);
}

StatusOr<std::shared_ptr<const DpRelease>> DpBudgetLedger::Acquire(
    uint64_t epoch, uint64_t records, double epsilon,
    const std::function<std::shared_ptr<const DpRelease>()>& build) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be a positive finite number");
  }
  // The granularity floor keeps budget accounting meaningful as a memory
  // bound too: without it, epsilon = 1e-300 builds are charged ~nothing
  // and an attacker can force unbounded distinct builds.
  if (epsilon < options_.min_epsilon) {
    return Status::InvalidArgument(
        "epsilon below the server's granularity floor of " +
        std::to_string(options_.min_epsilon));
  }
  std::lock_guard<std::mutex> lock(mu_);
  Point* point = FindOrCreatePointLocked(epoch, records);
  const uint64_t eps_bits = std::bit_cast<uint64_t>(epsilon);
  if (const auto it = point->releases.find(eps_bits);
      it != point->releases.end()) {
    TouchLocked(point, eps_bits);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Rebuilding an already-charged epsilon (its release was LRU-evicted)
  // reproduces the identical bytes from the same (epsilon, key) noise —
  // post-processing, charged nothing. Only a genuinely new epsilon is a
  // fresh draw that must clear both budgets. With no budget configured the
  // charge record is skipped entirely (it would be an unbounded set with
  // nothing to enforce; the spent gauges may then double-count a rebuild
  // after eviction).
  const bool accounting =
      options_.budget > 0.0 || options_.lifetime_budget > 0.0;
  const bool already_charged =
      accounting && point->charged.count(eps_bits) > 0;
  if (!already_charged) {
    if (options_.budget > 0.0 && point->spent + epsilon > options_.budget) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "dp budget exhausted for this release point: spent " +
          std::to_string(point->spent) + " of " +
          std::to_string(options_.budget) + ", requested epsilon " +
          std::to_string(epsilon));
    }
    if (options_.lifetime_budget > 0.0 &&
        lifetime_spent_ + epsilon > options_.lifetime_budget) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "dp lifetime budget exhausted: spent " +
          std::to_string(lifetime_spent_) + " of " +
          std::to_string(options_.lifetime_budget) +
          " across all release points, requested epsilon " +
          std::to_string(epsilon));
    }
  }
  std::shared_ptr<const DpRelease> release = build();
  if (release == nullptr) {
    return Status::Internal("dp release build failed");
  }
  if (!already_charged) {
    point->spent += epsilon;
    lifetime_spent_ += epsilon;
    if (accounting) point->charged.insert(eps_bits);
  }
  point->releases.emplace(eps_bits, release);
  TouchLocked(point, eps_bits);
  while (point->releases.size() > options_.max_releases_per_point) {
    point->releases.erase(point->lru.front());
    point->lru.pop_front();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  built_.fetch_add(1, std::memory_order_relaxed);
  return release;
}

double DpBudgetLedger::Spent(uint64_t epoch, uint64_t records) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Point& p : points_) {
    if (p.epoch == epoch && p.records == records) return p.spent;
  }
  return 0.0;
}

double DpBudgetLedger::LifetimeSpent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lifetime_spent_;
}

}  // namespace kanon
