#ifndef KANON_DP_DP_RELEASE_H_
#define KANON_DP_DP_RELEASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anon/partition.h"
#include "dp/dp_hierarchy.h"
#include "dp/dp_rng.h"

namespace kanon {

/// Per-level budget split of an (epsilon)-DP hierarchical release of
/// `height`+1 levels (root = level 0, leaves = level height). Geometric
/// schedule per Cormode et al.'s Private Spatial Decompositions: level i
/// gets epsilon * 2^(i/3) / sum_j 2^(j/3), so deeper levels — whose counts
/// are both smaller and more numerous — receive geometrically more budget.
/// The levels observe *disjoint* record partitions only within a level, so
/// sequential composition across the height+1 levels spends exactly
/// `epsilon` in total.
std::vector<double> SplitDpBudget(double epsilon, size_t height);

/// The noisy hierarchy of one DP release: counts[v] for heap node v in
/// [1, 2 << height), after consistency post-processing — every count is a
/// non-negative integer and counts[v] == counts[2v] + counts[2v+1] at
/// every internal node, exactly.
struct DpHierarchyCounts {
  size_t height = 0;
  std::vector<int64_t> counts;
};

/// Builds the noisy consistent hierarchy from exact leaf-cell counts:
///
///   1. exact up-sum of `cells` into a heap of height `height`;
///   2. two-sided geometric noise per node, the level-i nodes at decay
///      alpha_i = exp(-eps_i) with eps_i from SplitDpBudget, drawn from a
///      CounterRng keyed by (key, bits-of-epsilon) at counters 2v/2v+1 —
///      a pure function of (cells, epsilon, key), nothing else. The key is
///      the server-held secret of DpNoiseKey: it never appears in any
///      request, release body, or metric;
///   3. Hay-style consistency: an inverse-variance-weighted up pass
///      combines each node's own noisy count with the sum of its
///      children's estimates, a down pass distributes the residual so
///      parent == sum(children) in the reals;
///   4. deterministic top-down integerization: the rounded non-negative
///      root total is recursively split among children proportionally to
///      their (clamped) real estimates, keeping both non-negativity and
///      exact parent == sum(children) at every node.
DpHierarchyCounts NoisyConsistentHierarchy(const std::vector<uint64_t>& cells,
                                           size_t height, double epsilon,
                                           const DpNoiseKey& key);

/// Estimated count of `query` from the noisy hierarchy: nodes fully inside
/// contribute their count, disjoint nodes zero, and partially covered leaf
/// cells contribute count * volume-fraction (the uniformity assumption of
/// Section 2.3, applied to the noisy cell). Never touches raw records.
double DpRangeCount(const DpHierarchyCounts& h, const DpGrid& grid,
                    const Mbr& query);

/// One immutable memoized DP release: the noisy hierarchy plus its
/// canonical serialized body. The body is a pure function of
/// (cells, domain, height, epsilon, key) — deliberately *excluding* the
/// publication epoch, which is transport metadata (X-Kanon-Epoch): a
/// stitched release's epoch is the sum of per-shard epochs and so differs
/// across shard counts even when the released data is identical. The noise
/// key is deliberately *not* stored or serialized: the release carries no
/// material a consumer could use to regenerate the noise.
struct DpRelease {
  double epsilon = 0.0;
  DpGrid grid;
  DpHierarchyCounts counts;
  std::string body;
};

/// Builds the release for exact cell counts over `domain`. `cells` must
/// have 2^height entries.
std::shared_ptr<const DpRelease> BuildDpRelease(
    const std::vector<uint64_t>& cells, const Domain& domain, size_t height,
    double epsilon, const DpNoiseKey& key);

/// Fig-12-style utility summary comparable across release semantics: the
/// average relative error of a fixed, deterministic range-query workload
/// (the grid's node boxes at two coarse levels), answered (a) from the
/// k-anonymous partition boxes under the uniformity assumption and (b)
/// from the DP noisy hierarchy, against exact truth from `cells`.
struct DpUtilityReport {
  size_t num_queries = 0;
  double kanon_avg_rel_error = 0.0;
  double dp_avg_rel_error = 0.0;
};

DpUtilityReport EvaluateReleaseUtility(const std::vector<uint64_t>& cells,
                                       const DpGrid& grid,
                                       const DpHierarchyCounts& dp,
                                       const PartitionSet& kanon);

}  // namespace kanon

#endif  // KANON_DP_DP_RELEASE_H_
