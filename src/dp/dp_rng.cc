#include "dp/dp_rng.h"

#include <cmath>

namespace kanon {

uint64_t DpMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

CounterRng::CounterRng(uint64_t seed, uint64_t stream)
    : key0_(DpMix64(seed ^ 0x9e3779b97f4a7c15ull)),
      key1_(DpMix64(stream ^ 0x6a09e667f3bcc909ull)) {}

uint64_t CounterRng::Bits(uint64_t counter) const {
  // Two mixing rounds with the key injected between them: enough diffusion
  // that consecutive counters share no visible structure, while staying a
  // pure function of (key0, key1, counter).
  return DpMix64(DpMix64(counter + key0_) ^ key1_);
}

double CounterRng::Uniform(uint64_t counter) const {
  // Top 53 bits, centered in the unit lattice: (k + 0.5) * 2^-53 lies
  // strictly inside (0, 1) for every k in [0, 2^53).
  const uint64_t k = Bits(counter) >> 11;
  return (static_cast<double>(k) + 0.5) * 0x1.0p-53;
}

int64_t SampleTwoSidedGeometric(const CounterRng& rng, uint64_t counter,
                                double alpha) {
  if (!(alpha > 0.0)) return 0;
  const double log_alpha = std::log(alpha);  // < 0
  const auto one_sided = [&](uint64_t c) {
    const double u = rng.Uniform(c);
    // floor(log(u) / log(alpha)) is geometric on {0, 1, ...} with success
    // probability 1 - alpha: P(G >= k) = alpha^k.
    return static_cast<int64_t>(std::floor(std::log(u) / log_alpha));
  };
  return one_sided(counter) - one_sided(counter + 1);
}

double TwoSidedGeometricVariance(double alpha) {
  if (!(alpha > 0.0)) return 0.0;
  const double q = 1.0 - alpha;
  return 2.0 * alpha / (q * q);
}

}  // namespace kanon
