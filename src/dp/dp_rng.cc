#include "dp/dp_rng.h"

#include <cmath>
#include <cstring>
#include <random>
#include <string>

namespace kanon {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), used only for key derivation — a few dozen bytes
// once per server start, so clarity beats throughput.

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t Rotr32(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

void Sha256Compress(uint32_t state[8], const uint8_t block[64]) {
  uint32_t w[64];
  for (size_t i = 0; i < 16; ++i) {
    w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
           static_cast<uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (size_t i = 16; i < 64; ++i) {
    const uint32_t s0 =
        Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (size_t i = 0; i < 64; ++i) {
    const uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

// ---------------------------------------------------------------------------
// ChaCha20 block function, djb's original layout: a 64-bit block counter in
// words 12-13 and a 64-bit nonce in words 14-15 (the counter must cover
// 2 * 2^(height+1) draws, which overflows the RFC 8439 32-bit counter at
// the tall grids the CLI admits).

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotr32(d ^ a, 16);
  c += d;
  b = Rotr32(b ^ c, 20);
  a += b;
  d = Rotr32(d ^ a, 24);
  c += d;
  b = Rotr32(b ^ c, 25);
}

}  // namespace

std::array<uint8_t, 32> Sha256(std::string_view data) {
  uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                       0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  while (remaining >= 64) {
    Sha256Compress(state, p);
    p += 64;
    remaining -= 64;
  }
  // Final block(s): message tail, 0x80, zero pad, 64-bit bit length.
  uint8_t tail[128] = {0};
  std::memcpy(tail, p, remaining);
  tail[remaining] = 0x80;
  const size_t tail_blocks = remaining + 9 <= 64 ? 1 : 2;
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  for (size_t i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 1 - i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  Sha256Compress(state, tail);
  if (tail_blocks == 2) Sha256Compress(state, tail + 64);
  std::array<uint8_t, 32> out;
  for (size_t i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state[i]);
  }
  return out;
}

void ChaCha20Block(const std::array<uint8_t, 32>& key, uint64_t counter,
                   uint64_t nonce, uint32_t out[16]) {
  uint32_t state[16];
  state[0] = 0x61707865;  // "expa"
  state[1] = 0x3320646e;  // "nd 3"
  state[2] = 0x79622d32;  // "2-by"
  state[3] = 0x6b206574;  // "te k"
  for (size_t i = 0; i < 8; ++i) state[4 + i] = LoadLe32(&key[4 * i]);
  state[12] = static_cast<uint32_t>(counter);
  state[13] = static_cast<uint32_t>(counter >> 32);
  state[14] = static_cast<uint32_t>(nonce);
  state[15] = static_cast<uint32_t>(nonce >> 32);
  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (size_t i = 0; i < 16; ++i) out[i] = x[i] + state[i];
}

DpNoiseKey DeriveDpNoiseKey(std::string_view secret) {
  std::string tagged = "kanon-dp-noise-key-v1:";
  tagged.append(secret.data(), secret.size());
  DpNoiseKey key;
  key.bytes = Sha256(tagged);
  return key;
}

DpNoiseKey RandomDpNoiseKey() {
  std::random_device entropy;
  DpNoiseKey key;
  for (size_t i = 0; i < key.bytes.size(); i += 4) {
    const uint32_t word = entropy();
    key.bytes[i] = static_cast<uint8_t>(word);
    key.bytes[i + 1] = static_cast<uint8_t>(word >> 8);
    key.bytes[i + 2] = static_cast<uint8_t>(word >> 16);
    key.bytes[i + 3] = static_cast<uint8_t>(word >> 24);
  }
  return key;
}

CounterRng::CounterRng(const DpNoiseKey& key, uint64_t stream)
    : key_bytes_(key.bytes), stream_(stream) {}

uint64_t CounterRng::Bits(uint64_t counter) const {
  uint32_t block[16];
  ChaCha20Block(key_bytes_, counter, stream_, block);
  return static_cast<uint64_t>(block[0]) |
         static_cast<uint64_t>(block[1]) << 32;
}

double CounterRng::Uniform(uint64_t counter) const {
  // Top 53 bits, centered in the unit lattice: (k + 0.5) * 2^-53 lies
  // strictly inside (0, 1) for every k in [0, 2^53).
  const uint64_t k = Bits(counter) >> 11;
  return (static_cast<double>(k) + 0.5) * 0x1.0p-53;
}

int64_t SampleTwoSidedGeometric(const CounterRng& rng, uint64_t counter,
                                double alpha) {
  if (!(alpha > 0.0)) return 0;
  const double log_alpha = std::log(alpha);  // < 0
  const auto one_sided = [&](uint64_t c) {
    const double u = rng.Uniform(c);
    // floor(log(u) / log(alpha)) is geometric on {0, 1, ...} with success
    // probability 1 - alpha: P(G >= k) = alpha^k.
    return static_cast<int64_t>(std::floor(std::log(u) / log_alpha));
  };
  return one_sided(counter) - one_sided(counter + 1);
}

double TwoSidedGeometricVariance(double alpha) {
  if (!(alpha > 0.0)) return 0.0;
  const double q = 1.0 - alpha;
  return 2.0 * alpha / (q * q);
}

}  // namespace kanon
