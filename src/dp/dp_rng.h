#ifndef KANON_DP_DP_RNG_H_
#define KANON_DP_DP_RNG_H_

#include <cstdint>

namespace kanon {

/// SplitMix64 finalizer: a fixed bijective mixer with full avalanche, the
/// primitive under the counter-based generator below.
uint64_t DpMix64(uint64_t x);

/// A stateless counter-based generator: a keyed PRF from a 64-bit counter
/// to 64 random-looking bits. Unlike a sequential PRNG there is no hidden
/// state to advance, so the value drawn for a given counter is a pure
/// function of (seed, stream, counter) — independent of evaluation order,
/// thread count, shard count, or which process (leader or follower) asks.
/// That is exactly the determinism contract the DP release needs: noise for
/// tree node v is drawn at counters 2v and 2v+1, and any party holding the
/// same (epsilon, seed) reproduces it bit-for-bit.
class CounterRng {
 public:
  /// `stream` separates independent uses under one seed (the release keys
  /// it off the epsilon bit pattern, so different epsilons never share
  /// noise).
  CounterRng(uint64_t seed, uint64_t stream);

  /// The 64 PRF bits at `counter`.
  uint64_t Bits(uint64_t counter) const;

  /// A uniform double in the open interval (0, 1) at `counter` — never 0,
  /// so log(u) is always finite.
  double Uniform(uint64_t counter) const;

 private:
  uint64_t key0_;
  uint64_t key1_;
};

/// One draw of two-sided geometric noise with decay `alpha` = exp(-eps):
/// P(X = k) proportional to alpha^|k| — the discrete analogue of the
/// Laplace mechanism, exact for integer counts (Ghosh et al.). Sampled as
/// the difference of two one-sided geometrics read at `counter` and
/// `counter + 1`. alpha <= 0 degenerates to zero noise (infinite budget).
int64_t SampleTwoSidedGeometric(const CounterRng& rng, uint64_t counter,
                                double alpha);

/// Variance of one SampleTwoSidedGeometric draw: 2*alpha / (1-alpha)^2.
double TwoSidedGeometricVariance(double alpha);

}  // namespace kanon

#endif  // KANON_DP_DP_RNG_H_
