#ifndef KANON_DP_DP_RNG_H_
#define KANON_DP_DP_RNG_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace kanon {

/// SHA-256 of `data` — the key-derivation hash under DpNoiseKey. Exposed
/// so tests can pin the implementation against the FIPS 180-4 vectors.
std::array<uint8_t, 32> Sha256(std::string_view data);

/// One 64-byte ChaCha20 keystream block (djb's original 64-bit-counter /
/// 64-bit-nonce layout, 20 rounds) as 16 little-endian words. Exposed so
/// tests can pin the block function against the published vectors.
void ChaCha20Block(const std::array<uint8_t, 32>& key, uint64_t counter,
                   uint64_t nonce, uint32_t out[16]);

/// The 256-bit secret key all DP noise is drawn from. The key is
/// *server-held*: it is never accepted from a request, never serialized
/// into a release body, and never exported through /metrics — a consumer
/// who could learn it could regenerate the noise vector and subtract it,
/// voiding the epsilon-DP guarantee. Determinism across processes (shards
/// of one deployment, a leader and its followers) comes from the operator
/// distributing the same secret out-of-band (--dp-key), exactly like any
/// other shared credential.
struct DpNoiseKey {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const DpNoiseKey& other) const {
    return bytes == other.bytes;
  }
};

/// Derives the noise key from an operator secret: SHA-256 over a
/// domain-separation tag plus the secret, so the same secret always yields
/// the same key and the key never reveals the secret.
DpNoiseKey DeriveDpNoiseKey(std::string_view secret);

/// A fresh key from OS entropy — the default when no --dp-key is
/// configured. Releases are still epsilon-DP (the key is secret and
/// unpredictable); they are just not reproducible across independently
/// started processes.
DpNoiseKey RandomDpNoiseKey();

/// A stateless counter-based generator: a keyed PRF from a 64-bit counter
/// to 64 pseudorandom bits, computed as the first two words of a ChaCha20
/// keystream block at (key, counter, nonce = stream). Unlike a sequential
/// PRNG there is no hidden state to advance, so the value drawn for a
/// given counter is a pure function of (key, stream, counter) —
/// independent of evaluation order, thread count, shard count, or which
/// process (leader or follower) asks. That is exactly the determinism
/// contract the DP release needs: noise for tree node v is drawn at
/// counters 2v and 2v+1, and any party holding the same (epsilon, key)
/// reproduces it bit-for-bit — and nobody else can.
class CounterRng {
 public:
  /// `stream` separates independent uses under one key (the release keys
  /// it off the epsilon bit pattern, so different epsilons never share
  /// noise).
  CounterRng(const DpNoiseKey& key, uint64_t stream);

  /// The 64 PRF bits at `counter`.
  uint64_t Bits(uint64_t counter) const;

  /// A uniform double in the open interval (0, 1) at `counter` — never 0,
  /// so log(u) is always finite.
  double Uniform(uint64_t counter) const;

 private:
  std::array<uint8_t, 32> key_bytes_;
  uint64_t stream_;
};

/// One draw of two-sided geometric noise with decay `alpha` = exp(-eps):
/// P(X = k) proportional to alpha^|k| — the discrete analogue of the
/// Laplace mechanism, exact for integer counts (Ghosh et al.). Sampled as
/// the difference of two one-sided geometrics read at `counter` and
/// `counter + 1`. alpha <= 0 degenerates to zero noise (infinite budget).
int64_t SampleTwoSidedGeometric(const CounterRng& rng, uint64_t counter,
                                double alpha);

/// Variance of one SampleTwoSidedGeometric draw: 2*alpha / (1-alpha)^2.
double TwoSidedGeometricVariance(double alpha);

}  // namespace kanon

#endif  // KANON_DP_DP_RNG_H_
