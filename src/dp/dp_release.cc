#include "dp/dp_release.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "dp/dp_rng.h"

namespace kanon {
namespace {

/// %.17g round-trips every finite double exactly; the body must be
/// byte-stable across processes, so all doubles go through this one
/// formatter.
std::string FmtG17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

int64_t ClampedRound(double v) {
  if (!(v > 0.0)) return 0;
  return static_cast<int64_t>(std::llround(v));
}

}  // namespace

std::vector<double> SplitDpBudget(double epsilon, size_t height) {
  std::vector<double> eps(height + 1);
  double total_weight = 0.0;
  for (size_t i = 0; i <= height; ++i) {
    eps[i] = std::pow(2.0, static_cast<double>(i) / 3.0);
    total_weight += eps[i];
  }
  for (size_t i = 0; i <= height; ++i) {
    eps[i] = epsilon * eps[i] / total_weight;
  }
  return eps;
}

DpHierarchyCounts NoisyConsistentHierarchy(const std::vector<uint64_t>& cells,
                                           size_t height, double epsilon,
                                           const DpNoiseKey& key) {
  const size_t leaves = size_t{1} << height;
  const size_t nodes = size_t{2} << height;  // [0] unused
  KANON_CHECK(cells.size() == leaves);

  // Exact hierarchy.
  std::vector<double> exact(nodes, 0.0);
  for (size_t i = 0; i < leaves; ++i) {
    exact[leaves + i] = static_cast<double>(cells[i]);
  }
  for (size_t v = leaves - 1; v >= 1; --v) {
    exact[v] = exact[2 * v] + exact[2 * v + 1];
  }

  // Per-level noise scales. The RNG stream is the epsilon bit pattern, so
  // two releases at different epsilons never reuse noise under one key.
  const std::vector<double> level_eps = SplitDpBudget(epsilon, height);
  std::vector<double> level_alpha(height + 1);
  std::vector<double> level_var(height + 1);
  for (size_t i = 0; i <= height; ++i) {
    level_alpha[i] = std::exp(-level_eps[i]);
    // A vanishing variance breaks the inverse-variance weights below;
    // floor it so an enormous epsilon degrades to "trust this level
    // completely" instead of dividing by zero.
    level_var[i] =
        std::max(TwoSidedGeometricVariance(level_alpha[i]), 1e-12);
  }
  const CounterRng rng(key, std::bit_cast<uint64_t>(epsilon));

  std::vector<double> noisy(nodes, 0.0);
  for (size_t v = 1; v < nodes; ++v) {
    const size_t level = DpGrid::NodeLevel(v);
    noisy[v] = exact[v] + static_cast<double>(SampleTwoSidedGeometric(
                              rng, 2 * v, level_alpha[level]));
  }

  // Hay-style consistency, up pass: combine each node's own noisy count
  // with the (independent) sum of its children's estimates, weighting by
  // inverse variance.
  std::vector<double> est(nodes, 0.0);  // post-up-pass estimate
  std::vector<double> var(nodes, 0.0);  // its variance
  for (size_t v = nodes - 1; v >= 1; --v) {
    const size_t level = DpGrid::NodeLevel(v);
    if (v >= leaves) {
      est[v] = noisy[v];
      var[v] = level_var[level];
      continue;
    }
    const double child_sum = est[2 * v] + est[2 * v + 1];
    const double child_var = var[2 * v] + var[2 * v + 1];
    const double w_own = 1.0 / level_var[level];
    const double w_children = 1.0 / child_var;
    est[v] = (noisy[v] * w_own + child_sum * w_children) /
             (w_own + w_children);
    var[v] = 1.0 / (w_own + w_children);
  }

  // Down pass: push each node's residual into its children proportionally
  // to their variances, making parent == sum(children) exact in the reals.
  for (size_t v = 1; v < leaves; ++v) {
    const size_t l = 2 * v;
    const size_t r = 2 * v + 1;
    const double residual = est[v] - (est[l] + est[r]);
    const double total_var = var[l] + var[r];
    const double share =
        total_var > 0.0 ? var[l] / total_var : 0.5;
    est[l] += residual * share;
    est[r] += residual * (1.0 - share);
  }

  // Deterministic top-down integerization: round the root once, then split
  // every integer total among the children proportionally to their clamped
  // real estimates. Non-negativity and parent == sum(children) hold by
  // construction at every node.
  DpHierarchyCounts out;
  out.height = height;
  out.counts.assign(nodes, 0);
  out.counts[1] = ClampedRound(est[1]);
  for (size_t v = 1; v < leaves; ++v) {
    const int64_t total = out.counts[v];
    const double a = std::max(0.0, est[2 * v]);
    const double b = std::max(0.0, est[2 * v + 1]);
    int64_t left;
    if (a + b > 0.0) {
      left = ClampedRound(static_cast<double>(total) * a / (a + b));
    } else {
      left = total / 2;
    }
    if (left > total) left = total;
    out.counts[2 * v] = left;
    out.counts[2 * v + 1] = total - left;
  }
  return out;
}

namespace {

double RangeCountNode(const DpHierarchyCounts& h, const DpGrid& grid,
                      const Mbr& query, size_t v) {
  const int64_t count = h.counts[v];
  if (count == 0) return 0.0;
  const Mbr box = grid.NodeBox(v);
  if (!box.Intersects(query)) return 0.0;
  if (query.ContainsBox(box)) return static_cast<double>(count);
  if (DpGrid::NodeLevel(v) == h.height) {
    return static_cast<double>(count) * box.IntersectionFraction(query);
  }
  return RangeCountNode(h, grid, query, 2 * v) +
         RangeCountNode(h, grid, query, 2 * v + 1);
}

}  // namespace

double DpRangeCount(const DpHierarchyCounts& h, const DpGrid& grid,
                    const Mbr& query) {
  if (h.counts.size() < 2) return 0.0;
  return RangeCountNode(h, grid, query, 1);
}

std::shared_ptr<const DpRelease> BuildDpRelease(
    const std::vector<uint64_t>& cells, const Domain& domain, size_t height,
    double epsilon, const DpNoiseKey& key) {
  DpGrid grid(domain, height);
  DpHierarchyCounts counts =
      NoisyConsistentHierarchy(cells, height, epsilon, key);

  // Canonical body. The consistent hierarchy is fully determined by its
  // leaf row (parents are exact sums), so the leaves are the release;
  // "records" is the *noisy* root total — no exact count ever leaves the
  // mechanism, and no noise-key material does either.
  std::string body = "{\"semantics\":\"dp\",\"epsilon\":" + FmtG17(epsilon) +
                     ",\"height\":" + std::to_string(height) +
                     ",\"dim\":" + std::to_string(domain.dim());
  body += ",\"domain\":[";
  for (size_t a = 0; a < domain.dim(); ++a) {
    if (a > 0) body += ',';
    body += '[' + FmtG17(domain.lo[a]) + ',' + FmtG17(domain.hi[a]) + ']';
  }
  body += "],\"records\":" + std::to_string(counts.counts[1]);
  body += ",\"cells\":[";
  const size_t leaves = grid.num_leaves();
  for (size_t i = 0; i < leaves; ++i) {
    if (i > 0) body += ',';
    body += std::to_string(counts.counts[leaves + i]);
  }
  body += "]}";

  return std::make_shared<const DpRelease>(DpRelease{
      epsilon, std::move(grid), std::move(counts), std::move(body)});
}

DpUtilityReport EvaluateReleaseUtility(const std::vector<uint64_t>& cells,
                                       const DpGrid& grid,
                                       const DpHierarchyCounts& dp,
                                       const PartitionSet& kanon) {
  DpUtilityReport report;
  double kanon_err = 0.0;
  double dp_err = 0.0;
  // Node boxes at two coarse levels: deterministic, cell-aligned (truth is
  // exact), and spanning two selectivities like the paper's fig-12 sweep.
  // On grids of height <= 2 both picks clamp to the same level; evaluate
  // that query set once, not twice.
  const size_t coarse = std::min<size_t>(grid.height(), 2);
  const size_t fine = std::min<size_t>(grid.height(), 4);
  std::vector<size_t> levels = {coarse};
  if (fine != coarse) levels.push_back(fine);
  for (const size_t level : levels) {
    const size_t first = size_t{1} << level;
    for (size_t v = first; v < first * 2; ++v) {
      size_t lo, hi;
      grid.LeafRange(v, &lo, &hi);
      double truth = 0.0;
      for (size_t c = lo; c < hi; ++c) {
        truth += static_cast<double>(cells[c]);
      }
      const Mbr query = grid.NodeBox(v);
      double kanon_est = 0.0;
      for (const Partition& p : kanon.partitions) {
        kanon_est += static_cast<double>(p.size()) *
                     p.box.IntersectionFraction(query);
      }
      const double dp_est = DpRangeCount(dp, grid, query);
      const double denom = std::max(truth, 1.0);
      kanon_err += std::abs(kanon_est - truth) / denom;
      dp_err += std::abs(dp_est - truth) / denom;
      ++report.num_queries;
    }
  }
  if (report.num_queries > 0) {
    report.kanon_avg_rel_error = kanon_err / report.num_queries;
    report.dp_avg_rel_error = dp_err / report.num_queries;
  }
  return report;
}

}  // namespace kanon
