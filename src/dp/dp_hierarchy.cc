#include "dp/dp_hierarchy.h"

#include <bit>
#include <utility>

#include "common/check.h"

namespace kanon {

DpGrid::DpGrid(Domain domain, size_t height)
    : domain_(std::move(domain)), height_(height) {
  KANON_CHECK(domain_.dim() > 0);
  KANON_CHECK(height_ < 40);
}

size_t DpGrid::NodeLevel(size_t node) {
  KANON_DCHECK(node >= 1);
  return std::bit_width(node) - 1;
}

size_t DpGrid::LeafCell(std::span<const double> point) const {
  KANON_DCHECK(point.size() == dim());
  std::vector<double> lo = domain_.lo;
  std::vector<double> hi = domain_.hi;
  size_t cell = 0;
  for (size_t depth = 0; depth < height_; ++depth) {
    const size_t axis = depth % dim();
    const double mid = lo[axis] + (hi[axis] - lo[axis]) / 2.0;
    // Half-open cut [lo, mid) | [mid, hi): a point exactly at the midpoint
    // goes right, and out-of-domain points clamp into the boundary cell.
    if (point[axis] < mid) {
      hi[axis] = mid;
      cell = cell * 2;
    } else {
      lo[axis] = mid;
      cell = cell * 2 + 1;
    }
  }
  return cell;
}

Mbr DpGrid::NodeBox(size_t node) const {
  KANON_DCHECK(node >= 1 && node < num_nodes());
  std::vector<double> lo = domain_.lo;
  std::vector<double> hi = domain_.hi;
  const size_t level = NodeLevel(node);
  for (size_t depth = 0; depth < level; ++depth) {
    const size_t axis = depth % dim();
    const double mid = lo[axis] + (hi[axis] - lo[axis]) / 2.0;
    if ((node >> (level - 1 - depth)) & 1) {
      lo[axis] = mid;
    } else {
      hi[axis] = mid;
    }
  }
  return Mbr::FromBounds(std::move(lo), std::move(hi));
}

void DpGrid::LeafRange(size_t node, size_t* first, size_t* last) const {
  const size_t level = NodeLevel(node);
  const size_t below = height_ - level;  // levels between node and leaves
  const size_t index_in_level = node - (size_t{1} << level);
  *first = index_in_level << below;
  *last = (index_in_level + 1) << below;
}

void AccumulateCells(const DpGrid& grid, const double* points, size_t n,
                     std::vector<uint64_t>* cells) {
  if (cells->size() != grid.num_leaves()) {
    cells->assign(grid.num_leaves(), 0);
  }
  const size_t dim = grid.dim();
  for (size_t i = 0; i < n; ++i) {
    ++(*cells)[grid.LeafCell({points + i * dim, dim})];
  }
}

}  // namespace kanon
