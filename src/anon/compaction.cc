#include "anon/compaction.h"

#include <cmath>

namespace kanon {

Mbr CompactedBox(const Dataset& dataset, const Partition& p) {
  Mbr box(dataset.dim());
  for (RecordId r : p.rids) box.ExpandToInclude(dataset.row(r));
  if (box.empty()) return box;
  // Hierarchy-aware widening for categorical attributes: the published
  // value must correspond to a hierarchy node, so take the LCA's range.
  std::vector<double> lo = box.lo();
  std::vector<double> hi = box.hi();
  const Schema& schema = dataset.schema();
  for (size_t a = 0; a < dataset.dim(); ++a) {
    const AttributeSpec& spec = schema.attribute(a);
    if (spec.type == AttributeType::kCategorical && spec.hierarchy) {
      const Hierarchy& h = *spec.hierarchy;
      const auto& node = h.node(h.Lca(static_cast<int>(std::floor(lo[a])),
                                      static_cast<int>(std::ceil(hi[a]))));
      lo[a] = node.lo;
      hi[a] = node.hi;
    }
  }
  return Mbr::FromBounds(std::move(lo), std::move(hi));
}

void CompactPartitions(const Dataset& dataset, PartitionSet* ps) {
  for (Partition& p : ps->partitions) {
    p.box = CompactedBox(dataset, p);
  }
}

}  // namespace kanon
