#ifndef KANON_ANON_GRID_ANONYMIZER_H_
#define KANON_ANON_GRID_ANONYMIZER_H_

#include "anon/constraints.h"
#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// Configuration of the grid baseline.
struct GridAnonymizerOptions {
  /// Cells per axis (the grid resolution). 0 picks a resolution so the
  /// expected cell population is ~2k for the requested k.
  size_t cells_per_axis = 0;
  /// Axes actually gridded; with many attributes a full grid has far more
  /// cells than records, so by default only the `max_grid_axes` widest
  /// (normalized) attributes are cut, the rest pass through uncut.
  size_t max_grid_axes = 3;
  /// Emit tight MBR boxes (compaction) instead of raw cell boxes. The grid
  /// file is the paper's canonical example of an index that does *not*
  /// maintain MBRs (Section 4) — set false for the faithful uncompacted
  /// output that the compaction procedure then improves dramatically.
  bool compact = false;
};

/// A grid-file-style anonymization baseline: the domain is cut into a
/// uniform grid, every non-empty cell is a candidate partition, and cells
/// are merged in Z-order until each group satisfies k (the same
/// whole-cells-only discipline as the leaf scan, so the k floor always
/// holds). Boxes are the grid cells' unions — deliberately loose — making
/// this the natural "index without MBRs" testbed for retrofitted
/// compaction (paper Section 4: "we propose a compaction procedure ... for
/// any index, such as the grid file, that does not maintain MBRs").
class GridAnonymizer {
 public:
  explicit GridAnonymizer(GridAnonymizerOptions options = {})
      : options_(options) {}

  StatusOr<PartitionSet> Anonymize(const Dataset& dataset, size_t k) const;

 private:
  GridAnonymizerOptions options_;
};

}  // namespace kanon

#endif  // KANON_ANON_GRID_ANONYMIZER_H_
