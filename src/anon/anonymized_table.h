#ifndef KANON_ANON_ANONYMIZED_TABLE_H_
#define KANON_ANON_ANONYMIZED_TABLE_H_

#include <string>
#include <vector>

#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// The published form of an anonymization: every record's quasi-identifier
/// vector replaced by its partition's generalized box, sensitive value kept.
/// This is the "anonymized table" the paper's query experiments run against.
class AnonymizedTable {
 public:
  /// Materializes the table. `ps` must cover the dataset.
  static StatusOr<AnonymizedTable> FromPartitions(const Dataset& dataset,
                                                  PartitionSet ps);

  size_t num_records() const { return record_to_partition_.size(); }
  size_t num_partitions() const { return partitions_.num_partitions(); }
  const PartitionSet& partitions() const { return partitions_; }

  /// Generalized box published for record `rid`.
  const Mbr& BoxOf(RecordId rid) const {
    return partitions_.partitions[record_to_partition_[rid]].box;
  }

  uint32_t PartitionOf(RecordId rid) const {
    return record_to_partition_[rid];
  }

  int32_t SensitiveOf(RecordId rid) const { return sensitive_[rid]; }

  /// Renders one published row: numeric attributes as "[lo-hi]" (or the
  /// plain value when degenerate), categoricals via their hierarchy's LCA
  /// label when available ("*" style), mirroring the paper's Figure 1(b).
  std::string RenderRow(const Schema& schema, RecordId rid) const;

  /// Writes the full generalized table as CSV (one "lo..hi" cell per QI
  /// attribute plus the sensitive code).
  Status WriteCsv(const std::string& path, const Schema& schema) const;

 private:
  AnonymizedTable() = default;

  PartitionSet partitions_;
  std::vector<uint32_t> record_to_partition_;
  std::vector<int32_t> sensitive_;
};

}  // namespace kanon

#endif  // KANON_ANON_ANONYMIZED_TABLE_H_
