#ifndef KANON_ANON_COMPACTION_H_
#define KANON_ANON_COMPACTION_H_

#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// The compaction procedure of Section 4: replaces every partition's
/// generalized box by the minimum bounding box of the records it actually
/// contains. Numeric attributes shrink to [min, max]; categorical
/// attributes with a generalization hierarchy widen the raw code range to
/// the range of the values' lowest common ancestor (the paper: "the
/// procedure chooses the lowest common ancestor in the hierarchy"); ordered
/// categoricals without a hierarchy behave like numerics.
///
/// Compaction is deliberately independent of how the partitions were
/// produced — the paper's point is that it retrofits onto *any*
/// k-anonymization algorithm (it is applied to Mondrian output in Fig 9/10).
void CompactPartitions(const Dataset& dataset, PartitionSet* ps);

/// Compacts a single partition; returns the new box without mutating `p`.
Mbr CompactedBox(const Dataset& dataset, const Partition& p);

}  // namespace kanon

#endif  // KANON_ANON_COMPACTION_H_
