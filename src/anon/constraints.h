#ifndef KANON_ANON_CONSTRAINTS_H_
#define KANON_ANON_CONSTRAINTS_H_

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "data/dataset.h"

namespace kanon {

/// A publication predicate deciding whether a candidate group of records is
/// admissible as one equivalence class. The paper's position (Section 4/6)
/// is that the *definition* of an allowable partition is an input — plain
/// k-anonymity, l-diversity, (α,k)-anonymity — and the anonymizer's job is
/// the most precise partitioning that respects it. Constraints must be
/// monotone upward: a superset of an admissible group stays admissible
/// (true for all three provided here), which is what makes overfull leaves
/// and leaf-scan accumulation safe.
class PartitionConstraint {
 public:
  virtual ~PartitionConstraint() = default;

  /// Decides on the multiset of sensitive codes of the candidate group.
  virtual bool AdmissibleCodes(std::span<const int32_t> codes) const = 0;

  /// Convenience overload gathering codes from the dataset.
  bool Admissible(const Dataset& dataset,
                  std::span<const RecordId> rids) const;

  virtual std::string Name() const = 0;

  /// Adapter usable as RTreeConfig::leaf_admissible.
  std::function<bool(std::span<const int32_t>)> AsLeafPredicate() const;
};

/// Plain k-anonymity: the group has at least k members.
class KAnonymity : public PartitionConstraint {
 public:
  explicit KAnonymity(size_t k) : k_(k) {}
  bool AdmissibleCodes(std::span<const int32_t> codes) const override;
  std::string Name() const override;
  size_t k() const { return k_; }

 private:
  size_t k_;
};

/// Distinct l-diversity on top of k-anonymity: at least l distinct
/// sensitive values in the group (Machanavajjhala et al.).
class DistinctLDiversity : public PartitionConstraint {
 public:
  DistinctLDiversity(size_t k, size_t l) : k_(k), l_(l) {}
  bool AdmissibleCodes(std::span<const int32_t> codes) const override;
  std::string Name() const override;

 private:
  size_t k_;
  size_t l_;
};

/// (α,k)-anonymity (Wong et al.): at least k members and no sensitive value
/// occupying more than an α fraction of the group.
class AlphaKAnonymity : public PartitionConstraint {
 public:
  AlphaKAnonymity(double alpha, size_t k) : alpha_(alpha), k_(k) {}
  bool AdmissibleCodes(std::span<const int32_t> codes) const override;
  std::string Name() const override;

 private:
  double alpha_;
  size_t k_;
};

/// Entropy l-diversity (Machanavajjhala et al.): the entropy of the
/// sensitive-value distribution within the group must be at least log(l)
/// (on top of the k-anonymity size floor). Strictly stronger than distinct
/// l-diversity for the same l.
class EntropyLDiversity : public PartitionConstraint {
 public:
  EntropyLDiversity(size_t k, double l) : k_(k), l_(l) {}
  bool AdmissibleCodes(std::span<const int32_t> codes) const override;
  std::string Name() const override;

 private:
  size_t k_;
  double l_;
};

/// Recursive (c,l)-diversity (Machanavajjhala et al.): with sensitive value
/// frequencies r_1 >= r_2 >= ... >= r_m, require
/// r_1 < c * (r_l + r_{l+1} + ... + r_m) — the most frequent value must not
/// dominate the tail beyond factor c. Also enforces the k size floor.
class RecursiveCLDiversity : public PartitionConstraint {
 public:
  RecursiveCLDiversity(size_t k, double c, size_t l)
      : k_(k), c_(c), l_(l) {}
  bool AdmissibleCodes(std::span<const int32_t> codes) const override;
  std::string Name() const override;

 private:
  size_t k_;
  double c_;
  size_t l_;
};

}  // namespace kanon

#endif  // KANON_ANON_CONSTRAINTS_H_
