#include "anon/anonymized_table.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace kanon {

StatusOr<AnonymizedTable> AnonymizedTable::FromPartitions(
    const Dataset& dataset, PartitionSet ps) {
  KANON_RETURN_IF_ERROR(ps.CheckCovers(dataset));
  AnonymizedTable table;
  table.record_to_partition_ =
      RecordToPartition(ps, dataset.num_records());
  table.partitions_ = std::move(ps);
  table.sensitive_.reserve(dataset.num_records());
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    table.sensitive_.push_back(dataset.sensitive(r));
  }
  return table;
}

namespace {

std::string FormatCell(const AttributeSpec& spec, double lo, double hi) {
  std::ostringstream os;
  if (spec.type == AttributeType::kCategorical && spec.hierarchy) {
    const Hierarchy& h = *spec.hierarchy;
    const int lo_code = static_cast<int>(std::floor(lo));
    const int hi_code = static_cast<int>(std::ceil(hi));
    const auto& node = h.node(h.Lca(lo_code, hi_code));
    if (node.lo == lo_code && node.hi == hi_code && node.parent >= 0) {
      os << node.label;  // an exact hierarchy node: print its label
    } else if (lo_code == hi_code) {
      os << lo_code;  // single unlabeled value: the code itself
    } else {
      os << h.LcaLabel(lo_code, hi_code);
    }
    return os.str();
  }
  if (lo == hi) {
    os << lo;
  } else {
    os << "[" << lo << " - " << hi << "]";
  }
  return os.str();
}

}  // namespace

std::string AnonymizedTable::RenderRow(const Schema& schema,
                                       RecordId rid) const {
  const Mbr& box = BoxOf(rid);
  std::ostringstream os;
  for (size_t a = 0; a < schema.dim(); ++a) {
    if (a > 0) os << ", ";
    os << FormatCell(schema.attribute(a), box.lo(a), box.hi(a));
  }
  os << ", " << sensitive_[rid];
  return os.str();
}

Status AnonymizedTable::WriteCsv(const std::string& path,
                                 const Schema& schema) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (size_t a = 0; a < schema.dim(); ++a) {
    out << schema.attribute(a).name << ",";
  }
  out << schema.sensitive_name() << "\n";
  for (RecordId r = 0; r < num_records(); ++r) {
    const Mbr& box = BoxOf(r);
    for (size_t a = 0; a < schema.dim(); ++a) {
      out << box.lo(a) << ".." << box.hi(a) << ",";
    }
    out << sensitive_[r] << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace kanon
