#ifndef KANON_ANON_MONDRIAN_H_
#define KANON_ANON_MONDRIAN_H_

#include "anon/constraints.h"
#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// Configuration of the Mondrian baseline.
struct MondrianConfig {
  /// Strict multidimensional partitioning (every cut is a value boundary:
  /// ties stay on one side). The relaxed variant may move median ties
  /// across the cut, yielding more balanced partitions on duplicate-heavy
  /// data.
  bool strict = true;
  /// Optional publication predicate; defaults to k-anonymity with the k
  /// passed to Anonymize. A cut is allowable only if both halves satisfy it.
  const PartitionConstraint* constraint = nullptr;
};

/// Clean-room reimplementation of the greedy top-down Mondrian
/// multidimensional k-anonymization (LeFevre, DeWitt, Ramakrishnan,
/// ICDE 2006) — the baseline the paper compares against:
///
///   partition(P): pick the attribute with the widest normalized extent in
///   P; cut at the median; recurse while both halves remain allowable
///   (>= k records). When no allowable cut exists on any attribute, emit P.
///
/// Emitted boxes are the *recursive cut boxes* starting from the full
/// domain — the uncompacted output the paper measures; apply
/// CompactPartitions for the "Mondrian compacted" series.
class Mondrian {
 public:
  explicit Mondrian(MondrianConfig config = {}) : config_(config) {}

  PartitionSet Anonymize(const Dataset& dataset, size_t k) const;

 private:
  MondrianConfig config_;
};

}  // namespace kanon

#endif  // KANON_ANON_MONDRIAN_H_
