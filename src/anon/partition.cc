#include "anon/partition.h"

#include <algorithm>
#include <limits>

namespace kanon {

size_t PartitionSet::total_records() const {
  size_t n = 0;
  for (const auto& p : partitions) n += p.size();
  return n;
}

size_t PartitionSet::min_partition_size() const {
  size_t m = std::numeric_limits<size_t>::max();
  for (const auto& p : partitions) m = std::min(m, p.size());
  return partitions.empty() ? 0 : m;
}

size_t PartitionSet::max_partition_size() const {
  size_t m = 0;
  for (const auto& p : partitions) m = std::max(m, p.size());
  return m;
}

Status PartitionSet::CheckCovers(const Dataset& dataset) const {
  std::vector<char> seen(dataset.num_records(), 0);
  for (const auto& p : partitions) {
    for (RecordId r : p.rids) {
      if (r >= dataset.num_records()) {
        return Status::Corruption("partition references unknown record");
      }
      if (seen[r]) {
        return Status::Corruption("record appears in two partitions");
      }
      seen[r] = 1;
      if (!p.box.ContainsPoint(dataset.row(r))) {
        return Status::Corruption(
            "record lies outside its partition's generalized box");
      }
    }
  }
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    if (!seen[r]) return Status::Corruption("record not covered");
  }
  return Status::OK();
}

Status PartitionSet::CheckKAnonymous(size_t k) const {
  for (const auto& p : partitions) {
    if (p.size() < k) {
      return Status::FailedPrecondition(
          "partition of size " + std::to_string(p.size()) +
          " violates k=" + std::to_string(k));
    }
  }
  return Status::OK();
}

std::vector<uint32_t> RecordToPartition(const PartitionSet& ps, size_t n) {
  std::vector<uint32_t> map(n, std::numeric_limits<uint32_t>::max());
  for (uint32_t i = 0; i < ps.partitions.size(); ++i) {
    for (RecordId r : ps.partitions[i].rids) {
      if (r < n) map[r] = i;
    }
  }
  return map;
}

}  // namespace kanon
