#include "anon/leaf_scan.h"

#include <algorithm>

namespace kanon {

Mbr ClipRegionToDomain(const Region& region, const Domain& domain) {
  std::vector<double> lo(region.dim()), hi(region.dim());
  for (size_t d = 0; d < region.dim(); ++d) {
    lo[d] = std::max(region.lo[d], domain.lo[d]);
    hi[d] = std::min(region.hi[d], domain.hi[d]);
    if (lo[d] > hi[d]) lo[d] = hi[d];  // region beyond the data: collapse
  }
  return Mbr::FromBounds(std::move(lo), std::move(hi));
}

std::vector<LeafGroup> ExtractLeafGroups(const RPlusTree& tree,
                                         const Domain* domain) {
  std::vector<LeafGroup> out;
  for (const Node* leaf : tree.OrderedLeaves()) {
    if (leaf->leaf_size() == 0) continue;  // post-deletion empty leaf
    LeafGroup g;
    g.rids = leaf->rids;
    g.mbr = leaf->mbr;
    if (domain != nullptr) {
      g.region = ClipRegionToDomain(leaf->region, *domain);
    }
    out.push_back(std::move(g));
  }
  return out;
}

StatusOr<std::vector<LeafGroup>> ExtractLeafGroups(const BufferTree& tree,
                                                   const Domain* domain) {
  std::vector<LeafGroup> out;
  for (const BufferNode* leaf : tree.OrderedLeaves()) {
    if (leaf->record_count == 0) continue;
    LeafGroup g;
    g.mbr = leaf->mbr;
    if (domain != nullptr) {
      g.region = ClipRegionToDomain(leaf->region, *domain);
    }
    g.rids.reserve(leaf->record_count);
    KANON_RETURN_IF_ERROR(tree.ScanLeaf(
        leaf, [&g](uint64_t rid, int32_t, std::span<const double>) {
          g.rids.push_back(rid);
        }));
    out.push_back(std::move(g));
  }
  return out;
}

namespace {

// The LS1-LS4 scan, parameterized over how a range element becomes a
// LeafGroup so the owned-array and shared-fragment entry points share one
// implementation.
template <typename Range, typename Deref>
PartitionSet LeafScanImpl(const Range& leaves, size_t k1, Deref deref) {
  PartitionSet out;
  Partition current;
  size_t dim = leaves.empty() ? 0 : deref(leaves.front()).mbr.dim();
  current.box = Mbr(dim);
  size_t remaining = 0;
  for (const auto& e : leaves) remaining += deref(e).rids.size();

  for (const auto& e : leaves) {
    const LeafGroup& g = deref(e);
    current.rids.insert(current.rids.end(), g.rids.begin(), g.rids.end());
    current.box.ExpandToInclude(g.mbr);
    remaining -= g.rids.size();
    // LS4: if the leftovers cannot form a full group, absorb them here
    // rather than emitting an undersized final partition.
    if (current.size() >= k1 && remaining >= k1) {
      out.partitions.push_back(std::move(current));
      current = Partition();
      current.box = Mbr(dim);
    }
  }
  if (!current.rids.empty()) out.partitions.push_back(std::move(current));
  return out;
}

}  // namespace

PartitionSet LeafScan(std::span<const LeafGroup> leaves, size_t k1) {
  return LeafScanImpl(leaves, k1,
                      [](const LeafGroup& g) -> const LeafGroup& { return g; });
}

PartitionSet LeafScan(std::span<const std::shared_ptr<const LeafGroup>> leaves,
                      size_t k1) {
  return LeafScanImpl(
      leaves, k1,
      [](const std::shared_ptr<const LeafGroup>& g) -> const LeafGroup& {
        return *g;
      });
}

PartitionSet LeafScanWithConstraint(std::span<const LeafGroup> leaves,
                                    const Dataset& dataset,
                                    const PartitionConstraint& constraint) {
  PartitionSet out;
  const size_t dim = dataset.dim();
  const size_t num_leaves = leaves.size();

  // Constraints are monotone upward, so "the suffix of leaves starting at i
  // forms an admissible group" is monotone in i: one backward sweep finds
  // the last admissible suffix start. A group may be closed after leaf i
  // only if the remainder (suffix i+1) is still admissible — the constraint
  // analogue of step LS4, which folds the tail into the final group.
  std::vector<char> suffix_admissible(num_leaves + 1, 0);
  {
    std::vector<int32_t> codes;
    for (size_t i = num_leaves; i-- > 0;) {
      for (RecordId r : leaves[i].rids) {
        codes.push_back(dataset.sensitive(r));
      }
      suffix_admissible[i] =
          suffix_admissible[i + 1] || constraint.AdmissibleCodes(codes)
              ? 1
              : 0;
      if (suffix_admissible[i] && suffix_admissible[i + 1]) {
        // Once both are known admissible, all earlier suffixes are too.
        for (size_t j = 0; j < i; ++j) suffix_admissible[j] = 1;
        break;
      }
    }
  }

  Partition current;
  current.box = Mbr(dim);
  std::vector<int32_t> codes;
  for (size_t i = 0; i < num_leaves; ++i) {
    const LeafGroup& g = leaves[i];
    current.rids.insert(current.rids.end(), g.rids.begin(), g.rids.end());
    current.box.ExpandToInclude(g.mbr);
    for (RecordId r : g.rids) codes.push_back(dataset.sensitive(r));
    if (!constraint.AdmissibleCodes(codes)) continue;
    if (!suffix_admissible[i + 1]) continue;  // absorb the tail (LS4)
    out.partitions.push_back(std::move(current));
    current = Partition();
    current.box = Mbr(dim);
    codes.clear();
  }
  if (!current.rids.empty()) out.partitions.push_back(std::move(current));
  return out;
}

}  // namespace kanon
