#include "anon/constraints.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace kanon {

bool PartitionConstraint::Admissible(const Dataset& dataset,
                                     std::span<const RecordId> rids) const {
  std::vector<int32_t> codes;
  codes.reserve(rids.size());
  for (RecordId r : rids) codes.push_back(dataset.sensitive(r));
  return AdmissibleCodes(codes);
}

std::function<bool(std::span<const int32_t>)>
PartitionConstraint::AsLeafPredicate() const {
  return [this](std::span<const int32_t> codes) {
    return AdmissibleCodes(codes);
  };
}

bool KAnonymity::AdmissibleCodes(std::span<const int32_t> codes) const {
  return codes.size() >= k_;
}

std::string KAnonymity::Name() const {
  return std::to_string(k_) + "-anonymity";
}

bool DistinctLDiversity::AdmissibleCodes(
    std::span<const int32_t> codes) const {
  if (codes.size() < k_) return false;
  std::unordered_set<int32_t> distinct;
  for (int32_t c : codes) {
    distinct.insert(c);
    if (distinct.size() >= l_) return true;
  }
  return distinct.size() >= l_;
}

std::string DistinctLDiversity::Name() const {
  return std::to_string(k_) + "-anonymity + distinct " + std::to_string(l_) +
         "-diversity";
}

bool AlphaKAnonymity::AdmissibleCodes(std::span<const int32_t> codes) const {
  if (codes.size() < k_) return false;
  std::unordered_map<int32_t, size_t> freq;
  size_t max_freq = 0;
  for (int32_t c : codes) {
    max_freq = std::max(max_freq, ++freq[c]);
  }
  return static_cast<double>(max_freq) <=
         alpha_ * static_cast<double>(codes.size());
}

std::string AlphaKAnonymity::Name() const {
  return "(" + std::to_string(alpha_) + ", " + std::to_string(k_) +
         ")-anonymity";
}

bool EntropyLDiversity::AdmissibleCodes(
    std::span<const int32_t> codes) const {
  if (codes.size() < k_ || codes.empty()) return false;
  std::unordered_map<int32_t, size_t> freq;
  for (int32_t c : codes) ++freq[c];
  const double n = static_cast<double>(codes.size());
  double entropy = 0.0;
  for (const auto& [code, count] : freq) {
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log(p);
  }
  return entropy >= std::log(l_) - 1e-12;
}

std::string EntropyLDiversity::Name() const {
  return std::to_string(k_) + "-anonymity + entropy " +
         std::to_string(l_) + "-diversity";
}

bool RecursiveCLDiversity::AdmissibleCodes(
    std::span<const int32_t> codes) const {
  if (codes.size() < k_ || codes.empty()) return false;
  std::unordered_map<int32_t, size_t> freq;
  for (int32_t c : codes) ++freq[c];
  std::vector<size_t> counts;
  counts.reserve(freq.size());
  for (const auto& [code, count] : freq) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<size_t>());
  if (counts.size() < l_) return false;  // fewer than l distinct values
  size_t tail = 0;
  for (size_t i = l_ - 1; i < counts.size(); ++i) tail += counts[i];
  return static_cast<double>(counts[0]) <
         c_ * static_cast<double>(tail);
}

std::string RecursiveCLDiversity::Name() const {
  return "recursive (" + std::to_string(c_) + ", " + std::to_string(l_) +
         ")-diversity + " + std::to_string(k_) + "-anonymity";
}

}  // namespace kanon
