#ifndef KANON_ANON_MULTIGRANULAR_H_
#define KANON_ANON_MULTIGRANULAR_H_

#include <span>
#include <vector>

#include "anon/partition.h"
#include "index/buffer_tree.h"
#include "index/rplus_tree.h"

namespace kanon {

/// Multi-granular anonymization (paper Section 3): the data owner releases
/// several anonymizations of the *same* table at different granularities
/// (e.g. 5-anonymous to trusted researchers, 50-anonymous to the Internet).
/// Safety under collusion follows from Lemma 1: if every record is k-bound
/// — always published together with the same >= k companions (its leaf) —
/// then no combination of releases isolates fewer than k candidates.

/// Hierarchical algorithm (Section 3.1): the release at depth d maps every
/// node at that depth to one partition containing all records of its
/// subtree, with the subtree MBR as the generalized value. Depth
/// tree.height()-1 gives the finest (leaf) release; depth 0 is one partition
/// holding everything.
PartitionSet ReleaseAtDepth(const RPlusTree& tree, int depth);

/// All releases, finest (leaves) first.
std::vector<PartitionSet> HierarchicalReleases(const RPlusTree& tree);

/// Same algorithm over a flushed buffer tree (leaf payloads are scanned
/// from paged storage).
StatusOr<PartitionSet> ReleaseAtDepth(const BufferTree& tree, int depth);
StatusOr<std::vector<PartitionSet>> HierarchicalReleases(
    const BufferTree& tree);

/// Verifies the k-bound condition across releases: every partition of every
/// release must be a union of whole base leaves, and every base leaf must
/// hold at least k records. This is the sufficient condition of Lemma 1 —
/// both the hierarchical and the leaf-scan algorithm satisfy it by
/// construction, and this checker is what the property tests assert.
Status VerifyKBound(const PartitionSet& base_leaves,
                    std::span<const PartitionSet> releases, size_t k,
                    size_t num_records);

}  // namespace kanon

#endif  // KANON_ANON_MULTIGRANULAR_H_
