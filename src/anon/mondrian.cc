#include "anon/mondrian.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace kanon {

namespace {

/// Workspace for the recursive partitioning: records are permuted in place
/// inside one rid array, so recursion costs O(1) extra memory per frame.
struct MondrianRun {
  const Dataset* dataset;
  const MondrianConfig* config;
  size_t k;
  KAnonymity default_constraint;
  Domain domain;
  std::vector<RecordId> rids;
  PartitionSet out;

  MondrianRun(const Dataset& d, const MondrianConfig& c, size_t k_in)
      : dataset(&d),
        config(&c),
        k(k_in),
        default_constraint(k_in),
        domain(d.ComputeDomain()) {
    rids.resize(d.num_records());
    std::iota(rids.begin(), rids.end(), RecordId{0});
  }

  const PartitionConstraint& constraint() const {
    return config->constraint != nullptr ? *config->constraint
                                         : default_constraint;
  }

  bool Admissible(RecordId* begin, RecordId* end) const {
    std::vector<int32_t> codes;
    codes.reserve(end - begin);
    for (RecordId* it = begin; it != end; ++it) {
      codes.push_back(dataset->sensitive(*it));
    }
    return constraint().AdmissibleCodes(codes);
  }

  void Emit(RecordId* begin, RecordId* end, const Mbr& box) {
    Partition p;
    p.rids.assign(begin, end);
    p.box = box;
    out.partitions.push_back(std::move(p));
  }

  void Recurse(RecordId* begin, RecordId* end, const Mbr& box) {
    const size_t n = static_cast<size_t>(end - begin);
    const size_t dim = dataset->dim();
    if (n < 2 * k) {  // cannot possibly produce two >= k halves
      Emit(begin, end, box);
      return;
    }

    // Rank attributes by normalized extent of the *actual* values (the
    // Mondrian heuristic: "split the quasi-identifier attribute with the
    // largest range of values").
    std::vector<std::pair<double, size_t>> ranked;
    ranked.reserve(dim);
    for (size_t a = 0; a < dim; ++a) {
      double lo = dataset->value(*begin, a);
      double hi = lo;
      for (RecordId* it = begin; it != end; ++it) {
        const double v = dataset->value(*it, a);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const double norm = domain.Extent(a) > 0.0
                              ? (hi - lo) / domain.Extent(a)
                              : 0.0;
      ranked.emplace_back(-norm, a);
    }
    std::sort(ranked.begin(), ranked.end());

    for (const auto& [neg_extent, attr] : ranked) {
      // Strict mode cannot cut an attribute without spread; relaxed mode
      // may still halve a duplicate run by count (ties land on both sides),
      // which is what lets relaxed Mondrian keep improving discernibility
      // on duplicate-heavy data.
      if (neg_extent >= 0.0 && config->strict) break;
      // Median of the attribute over this range.
      RecordId* mid = begin + n / 2;
      std::nth_element(begin, mid, end, [&](RecordId x, RecordId y) {
        return dataset->value(x, attr) < dataset->value(y, attr);
      });
      const double median = dataset->value(*mid, attr);

      RecordId* cut = nullptr;
      double left_hi = median;
      if (config->strict) {
        // Strict partitioning: a record's membership depends only on its
        // value. Try v <= median | v > median, then v < median | v >=.
        RecordId* cut_le = std::partition(begin, end, [&](RecordId r) {
          return dataset->value(r, attr) <= median;
        });
        if (SidesOk(begin, cut_le, end)) {
          cut = cut_le;
        } else {
          RecordId* cut_lt = std::partition(begin, end, [&](RecordId r) {
            return dataset->value(r, attr) < median;
          });
          if (SidesOk(begin, cut_lt, end)) {
            cut = cut_lt;
            left_hi = median;  // boundary value owned by the right side
          }
        }
      } else {
        // Relaxed partitioning: balance exactly, letting median ties land
        // on either side.
        std::nth_element(begin, mid, end, [&](RecordId x, RecordId y) {
          return dataset->value(x, attr) < dataset->value(y, attr);
        });
        if (SidesOk(begin, mid, end)) cut = mid;
      }
      if (cut == nullptr) continue;

      Mbr left_box = box;
      Mbr right_box = box;
      {
        std::vector<double> lo = box.lo(), hi = box.hi();
        hi[attr] = left_hi;
        left_box = Mbr::FromBounds(std::move(lo), std::move(hi));
        std::vector<double> lo2 = box.lo(), hi2 = box.hi();
        lo2[attr] = left_hi;
        right_box = Mbr::FromBounds(std::move(lo2), std::move(hi2));
      }
      Recurse(begin, cut, left_box);
      Recurse(cut, end, right_box);
      return;
    }
    Emit(begin, end, box);
  }

  bool SidesOk(RecordId* begin, RecordId* cut, RecordId* end) const {
    const auto left = static_cast<size_t>(cut - begin);
    const auto right = static_cast<size_t>(end - cut);
    if (left < k || right < k) return false;
    if (config->constraint == nullptr) return true;  // size check suffices
    return Admissible(begin, cut) && Admissible(cut, end);
  }
};

}  // namespace

PartitionSet Mondrian::Anonymize(const Dataset& dataset, size_t k) const {
  KANON_CHECK(k >= 1);
  if (dataset.empty()) return PartitionSet{};
  MondrianRun run(dataset, config_, k);
  const Domain& d = run.domain;
  Mbr root_box = Mbr::FromBounds(d.lo, d.hi);
  run.Recurse(run.rids.data(), run.rids.data() + run.rids.size(), root_box);
  return std::move(run.out);
}

}  // namespace kanon
