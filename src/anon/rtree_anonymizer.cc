#include "anon/rtree_anonymizer.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace kanon {

namespace {

RTreeConfig MakeTreeConfig(const RTreeAnonymizerOptions& options) {
  RTreeConfig config;
  config.min_leaf = options.base_k;
  config.max_leaf =
      std::max(options.base_k * options.leaf_capacity_factor,
               2 * options.base_k);  // splittable into two >= base_k halves
  config.max_fanout = options.max_fanout;
  config.split = options.split;
  if (options.constraint != nullptr) {
    config.leaf_admissible = options.constraint->AsLeafPredicate();
  }
  return config;
}

/// Picks the page size for the buffer-tree backend: one leaf per page (the
/// paper's model — leaves *are* index pages), rounded up to a 256-byte
/// boundary and capped at the configured page size. An 8 KiB page holding a
/// 15-record leaf would waste ~85% of every frame and thrash the pool.
size_t LeafPageSize(const RTreeAnonymizerOptions& options, size_t dim) {
  const RecordCodec codec(dim);
  const size_t max_leaf =
      std::max(options.base_k * options.leaf_capacity_factor,
               2 * options.base_k);
  const size_t natural = RecordPageView::kHeaderSize +
                         (max_leaf + 1) * codec.record_size();
  const size_t rounded = (natural + 255) / 256 * 256;
  return std::min(std::max<size_t>(512, rounded), options.page_size);
}

BufferTreeConfig MakeBufferConfig(const RTreeAnonymizerOptions& options,
                                  size_t page_size, size_t dim) {
  BufferTreeConfig config;
  const RTreeConfig base = MakeTreeConfig(options);
  config.min_leaf = base.min_leaf;
  config.max_leaf = base.max_leaf;
  config.max_fanout = base.max_fanout;
  config.split = base.split;
  config.leaf_admissible = base.leaf_admissible;
  // options.buffer_pages is expressed in default-size pages; convert so the
  // clear threshold (in records) is independent of the actual page size.
  const RecordCodec codec(dim);
  const size_t per_page =
      (page_size - RecordPageView::kHeaderSize) / codec.record_size();
  const size_t per_default_page =
      (kDefaultPageSize - RecordPageView::kHeaderSize) / codec.record_size();
  const size_t target_records =
      std::max<size_t>(1, options.buffer_pages * per_default_page);
  config.buffer_pages = std::max<size_t>(1, target_records / per_page);
  return config;
}

}  // namespace

RTreeAnonymizer::RTreeAnonymizer(RTreeAnonymizerOptions options)
    : options_(options) {
  KANON_CHECK(options_.base_k >= 1);
  KANON_CHECK(options_.leaf_capacity_factor >= 2);
}

StatusOr<RTreeAnonymizer::BuildResult> RTreeAnonymizer::BuildLeaves(
    const Dataset& dataset) const {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  const Domain domain = dataset.ComputeDomain();
  BuildResult result;

  // Split decisions must compare attribute extents on a normalized scale
  // (a raw zipcode range dwarfs a raw quantity range); fill the
  // normalizer from the data unless the caller provided one.
  RTreeAnonymizerOptions options = options_;
  if (options.split.domain_extent.empty()) {
    options.split.domain_extent.reserve(dataset.dim());
    for (size_t a = 0; a < dataset.dim(); ++a) {
      options.split.domain_extent.push_back(domain.Extent(a));
    }
  }

  if (options.backend == RTreeAnonymizerOptions::Backend::kTupleLoading) {
    RPlusTree tree(dataset.dim(), MakeTreeConfig(options));
    for (RecordId r = 0; r < dataset.num_records(); ++r) {
      tree.Insert(dataset.row(r), r, dataset.sensitive(r));
    }
    result.leaves = ExtractLeafGroups(tree, &domain);
    result.tree_height = tree.height();
    return result;
  }

  if (options.backend == RTreeAnonymizerOptions::Backend::kSortedBulkLoad) {
    std::unique_ptr<Pager> pager;
    if (options.use_disk) {
      KANON_ASSIGN_OR_RETURN(auto file_pager,
                             FilePager::Create(options.page_size));
      pager = std::move(file_pager);
    } else {
      pager = std::make_unique<MemPager>(options.page_size);
    }
    const size_t frames =
        std::max<size_t>(16, options.memory_budget_bytes / options.page_size);
    BufferPool pool(pager.get(), frames);
    // Run size from the memory budget alone: run boundaries are part of
    // the deterministic pipeline and must not vary with the thread count.
    const RecordCodec spill_codec(dataset.dim() + 1);
    const size_t run_records =
        options.sort_run_records > 0
            ? options.sort_run_records
            : std::max<size_t>(
                  1024, options.memory_budget_bytes / 4 /
                            spill_codec.record_size());
    std::unique_ptr<ThreadPool> workers;
    if (options.threads > 1) {
      workers = std::make_unique<ThreadPool>(options.threads - 1);
    }
    KANON_ASSIGN_OR_RETURN(
        RPlusTree tree,
        SortedBulkLoadTree(dataset, MakeTreeConfig(options), options.curve,
                           options.grid_bits, &pool, run_records,
                           workers.get()));
    result.leaves = ExtractLeafGroups(tree, &domain);
    result.tree_height = tree.height();
    result.io = pager->stats();
    result.cache = pool.stats();
    return result;
  }

  // Buffer-tree bulk load through a bounded buffer pool.
  const size_t page_size = LeafPageSize(options, dataset.dim());
  std::unique_ptr<Pager> pager;
  if (options.use_disk) {
    KANON_ASSIGN_OR_RETURN(auto file_pager, FilePager::Create(page_size));
    pager = std::move(file_pager);
  } else {
    pager = std::make_unique<MemPager>(page_size);
  }
  const size_t frames =
      std::max<size_t>(8, options.memory_budget_bytes / page_size);
  BufferPool pool(pager.get(), frames);
  BufferTree tree(dataset.dim(),
                  MakeBufferConfig(options, page_size, dataset.dim()),
                  &pool);
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    KANON_RETURN_IF_ERROR(
        tree.Insert(dataset.row(r), r, dataset.sensitive(r)));
  }
  KANON_RETURN_IF_ERROR(tree.Flush());
  KANON_ASSIGN_OR_RETURN(result.leaves, ExtractLeafGroups(tree, &domain));
  result.tree_height = tree.height();
  result.io = pager->stats();
  result.cache = pool.stats();
  return result;
}

PartitionSet RTreeAnonymizer::Granularize(const Dataset& dataset,
                                          std::span<const LeafGroup> leaves,
                                          size_t k) const {
  const size_t k1 = std::max(k, options_.base_k);
  PartitionSet out;
  if (options_.compact) {
    if (options_.constraint != nullptr) {
      out = LeafScanWithConstraint(leaves, dataset, *options_.constraint);
    } else {
      out = LeafScan(leaves, k1);
    }
    return out;
  }
  // Uncompacted emission: scan over the leaf *regions* so the published
  // boxes are the index cells rather than tight record bounds.
  std::vector<LeafGroup> region_view(leaves.begin(), leaves.end());
  for (LeafGroup& g : region_view) {
    if (!g.region.empty()) g.mbr = g.region;
  }
  if (options_.constraint != nullptr) {
    return LeafScanWithConstraint(region_view, dataset, *options_.constraint);
  }
  return LeafScan(region_view, k1);
}

StatusOr<PartitionSet> RTreeAnonymizer::Anonymize(const Dataset& dataset,
                                                  size_t k) const {
  KANON_ASSIGN_OR_RETURN(BuildResult built, BuildLeaves(dataset));
  return Granularize(dataset, built.leaves, k);
}

namespace {

RTreeAnonymizerOptions WithDomainHint(RTreeAnonymizerOptions options,
                                      const Domain* domain_hint) {
  if (domain_hint != nullptr && options.split.domain_extent.empty()) {
    for (size_t a = 0; a < domain_hint->dim(); ++a) {
      options.split.domain_extent.push_back(domain_hint->Extent(a));
    }
  }
  return options;
}

}  // namespace

IncrementalAnonymizer::IncrementalAnonymizer(size_t dim,
                                             RTreeAnonymizerOptions options,
                                             const Domain* domain_hint)
    : options_(WithDomainHint(std::move(options), domain_hint)),
      tree_(dim, MakeTreeConfig(options_)) {}

void IncrementalAnonymizer::Insert(std::span<const double> point,
                                   RecordId rid, int32_t sensitive) {
  tree_.Insert(point, rid, sensitive);
}

void IncrementalAnonymizer::AdoptTree(RPlusTree tree) {
  KANON_CHECK_MSG(tree.dim() == tree_.dim(),
                  "adopted tree dimensionality mismatch");
  KANON_CHECK_MSG(tree.config().min_leaf == tree_.config().min_leaf &&
                      tree.config().max_leaf == tree_.config().max_leaf &&
                      tree.config().max_fanout == tree_.config().max_fanout,
                  "adopted tree structural config mismatch");
  tree_ = std::move(tree);
}

bool IncrementalAnonymizer::Delete(std::span<const double> point,
                                   RecordId rid) {
  return tree_.Delete(point, rid);
}

void IncrementalAnonymizer::InsertBatch(const Dataset& dataset,
                                        RecordId begin, RecordId end) {
  KANON_CHECK(begin <= end && end <= dataset.num_records());
  for (RecordId r = begin; r < end; ++r) {
    tree_.Insert(dataset.row(r), r, dataset.sensitive(r));
  }
}

void IncrementalAnonymizer::Vacuum() {
  // Collect the live records, then reinsert in a shuffled order: leaf
  // (spatial) order would feed the adaptive splitter a sorted stream and
  // produce systematically skewed early cuts.
  struct Rec {
    std::vector<double> point;
    RecordId rid;
    int32_t sensitive;
  };
  std::vector<Rec> records;
  records.reserve(tree_.size());
  for (const Node* leaf : tree_.OrderedLeaves()) {
    for (size_t i = 0; i < leaf->leaf_size(); ++i) {
      const auto p = leaf->point(i);
      records.push_back(Rec{{p.begin(), p.end()},
                            leaf->rids[i],
                            leaf->sensitive[i]});
    }
  }
  Rng rng(0x5eedULL + records.size());
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.Uniform(i)]);
  }
  RPlusTree rebuilt(tree_.dim(), MakeTreeConfig(options_));
  for (const Rec& r : records) {
    rebuilt.Insert(r.point, r.rid, r.sensitive);
  }
  tree_ = std::move(rebuilt);
}

PartitionSet IncrementalAnonymizer::Snapshot(const Dataset& dataset,
                                             size_t k) const {
  const Domain domain = dataset.ComputeDomain();
  const std::vector<LeafGroup> leaves = ExtractLeafGroups(tree_, &domain);
  RTreeAnonymizer granularizer(options_);
  return granularizer.Granularize(dataset, leaves, k);
}

}  // namespace kanon
