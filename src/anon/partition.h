#ifndef KANON_ANON_PARTITION_H_
#define KANON_ANON_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "index/mbr.h"

namespace kanon {

/// One equivalence class of an anonymized table: the records it contains and
/// the generalized quasi-identifier value that replaces theirs (a closed
/// box; interval per numeric attribute, code range per categorical).
struct Partition {
  std::vector<RecordId> rids;
  Mbr box;

  size_t size() const { return rids.size(); }
};

/// A complete anonymization of a dataset.
struct PartitionSet {
  std::vector<Partition> partitions;

  size_t num_partitions() const { return partitions.size(); }
  size_t total_records() const;
  size_t min_partition_size() const;
  size_t max_partition_size() const;

  /// Every record 0..n-1 appears in exactly one partition, and lies inside
  /// that partition's box.
  Status CheckCovers(const Dataset& dataset) const;

  /// Every partition holds at least k records.
  Status CheckKAnonymous(size_t k) const;
};

/// Inverse map: record id -> index of its partition. `n` is the dataset
/// size; records not covered map to UINT32_MAX (CheckCovers rejects that).
std::vector<uint32_t> RecordToPartition(const PartitionSet& ps, size_t n);

}  // namespace kanon

#endif  // KANON_ANON_PARTITION_H_
