#include "anon/multigranular.h"

#include <limits>
#include <unordered_map>

namespace kanon {

namespace {

void CollectSubtreeRecords(const Node* node, Partition* out) {
  if (node->is_leaf) {
    out->rids.insert(out->rids.end(), node->rids.begin(), node->rids.end());
    return;
  }
  for (const auto& c : node->children) CollectSubtreeRecords(c.get(), out);
}

}  // namespace

PartitionSet ReleaseAtDepth(const RPlusTree& tree, int depth) {
  PartitionSet out;
  for (const Node* n : tree.NodesAtDepth(depth)) {
    if (n->record_count == 0) continue;
    Partition p;
    p.box = n->mbr;  // subtree MBR = compacted generalized value
    CollectSubtreeRecords(n, &p);
    out.partitions.push_back(std::move(p));
  }
  return out;
}

std::vector<PartitionSet> HierarchicalReleases(const RPlusTree& tree) {
  std::vector<PartitionSet> releases;
  for (int depth = tree.height() - 1; depth >= 0; --depth) {
    releases.push_back(ReleaseAtDepth(tree, depth));
  }
  return releases;
}

namespace {

Status CollectSubtreeRecords(const BufferTree& tree, const BufferNode* node,
                             Partition* out) {
  if (node->is_leaf) {
    return tree.ScanLeaf(
        node, [out](uint64_t rid, int32_t, std::span<const double>) {
          out->rids.push_back(rid);
        });
  }
  for (const auto& c : node->children) {
    KANON_RETURN_IF_ERROR(CollectSubtreeRecords(tree, c.get(), out));
  }
  return Status::OK();
}

}  // namespace

StatusOr<PartitionSet> ReleaseAtDepth(const BufferTree& tree, int depth) {
  PartitionSet out;
  for (const BufferNode* n : tree.NodesAtDepth(depth)) {
    if (n->record_count == 0) continue;
    Partition p;
    p.box = n->mbr;
    p.rids.reserve(n->record_count);
    KANON_RETURN_IF_ERROR(CollectSubtreeRecords(tree, n, &p));
    out.partitions.push_back(std::move(p));
  }
  return out;
}

StatusOr<std::vector<PartitionSet>> HierarchicalReleases(
    const BufferTree& tree) {
  std::vector<PartitionSet> releases;
  for (int depth = tree.height() - 1; depth >= 0; --depth) {
    KANON_ASSIGN_OR_RETURN(PartitionSet release,
                           ReleaseAtDepth(tree, depth));
    releases.push_back(std::move(release));
  }
  return releases;
}

Status VerifyKBound(const PartitionSet& base_leaves,
                    std::span<const PartitionSet> releases, size_t k,
                    size_t num_records) {
  // Every base leaf must itself satisfy the anonymity floor.
  KANON_RETURN_IF_ERROR(base_leaves.CheckKAnonymous(k));

  std::vector<uint32_t> leaf_of = RecordToPartition(base_leaves, num_records);
  for (RecordId r = 0; r < num_records; ++r) {
    if (leaf_of[r] == std::numeric_limits<uint32_t>::max()) {
      return Status::FailedPrecondition("record not covered by base leaves");
    }
  }

  for (const PartitionSet& release : releases) {
    for (const Partition& p : release.partitions) {
      // Count how many members of each base leaf appear in this partition;
      // k-boundness requires all-or-nothing membership.
      std::unordered_map<uint32_t, size_t> members;
      for (RecordId r : p.rids) {
        if (r >= num_records) {
          return Status::FailedPrecondition("release references unknown rid");
        }
        ++members[leaf_of[r]];
      }
      for (const auto& [leaf_idx, count] : members) {
        if (count != base_leaves.partitions[leaf_idx].size()) {
          return Status::FailedPrecondition(
              "partition splits a base leaf: record set is not a union of "
              "whole leaves (k-bound violated)");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace kanon
