#ifndef KANON_ANON_LEAF_SCAN_H_
#define KANON_ANON_LEAF_SCAN_H_

#include <memory>
#include <span>

#include "anon/constraints.h"
#include "anon/partition.h"
#include "index/bulk_load.h"
#include "index/buffer_tree.h"
#include "index/rplus_tree.h"

namespace kanon {

/// Extracts the ordered leaves of an index as (rids, MBR) groups — the
/// common currency the anonymization layer operates on. When `domain` is
/// provided, each group's `region` is filled with the leaf's index region
/// clipped to the domain (the uncompacted generalized value).
std::vector<LeafGroup> ExtractLeafGroups(const RPlusTree& tree,
                                         const Domain* domain = nullptr);
StatusOr<std::vector<LeafGroup>> ExtractLeafGroups(
    const BufferTree& tree, const Domain* domain = nullptr);

/// Intersects a half-open index region with the closed domain box.
Mbr ClipRegionToDomain(const Region& region, const Domain& domain);

/// Algorithm LeafScan (paper Fig 5): scans whole leaves in tree order,
/// accumulating them into partitions until each partition holds at least
/// `k1` records; the final fragment (fewer than k1 records left) merges into
/// the last partition (step LS4). Because partitions are unions of whole
/// leaves, every record stays k-bound to its leaf and Lemma 1 guarantees
/// k-anonymity across any set of granularities released this way.
///
/// Partition boxes are the union of member-leaf MBRs, which equals the MBR
/// of the member records (leaf MBRs are tight) — i.e. output is compacted.
PartitionSet LeafScan(std::span<const LeafGroup> leaves, size_t k1);

/// Shared-fragment variant: the same scan over leaves held by pointer. The
/// service's snapshots share unchanged per-leaf fragments across
/// publications (a delta merge retires only the leaves it spliced), so the
/// scan must not require a contiguous owned array.
PartitionSet LeafScan(
    std::span<const std::shared_ptr<const LeafGroup>> leaves, size_t k1);

/// Generalized leaf scan: accumulate leaves until `constraint` admits the
/// group (monotone constraints only). Needs the dataset to read sensitive
/// codes. With KAnonymity(k1) this reduces to LeafScan(leaves, k1).
PartitionSet LeafScanWithConstraint(std::span<const LeafGroup> leaves,
                                    const Dataset& dataset,
                                    const PartitionConstraint& constraint);

}  // namespace kanon

#endif  // KANON_ANON_LEAF_SCAN_H_
