#include "anon/grid_anonymizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "anon/compaction.h"
#include "common/check.h"
#include "index/hilbert.h"

namespace kanon {

StatusOr<PartitionSet> GridAnonymizer::Anonymize(const Dataset& dataset,
                                                 size_t k) const {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (k < 1) return Status::InvalidArgument("k must be positive");
  const size_t dim = dataset.dim();
  const Domain domain = dataset.ComputeDomain();

  // Pick the gridded axes: the widest ones have the most to gain from
  // being cut (ties to the Mondrian heuristic). Normalization is by the
  // domain itself, so "width" means having distinct values at all.
  std::vector<size_t> axes(dim);
  std::iota(axes.begin(), axes.end(), 0);
  std::sort(axes.begin(), axes.end(), [&](size_t a, size_t b) {
    return domain.Extent(a) > domain.Extent(b);
  });
  std::vector<size_t> gridded;
  for (size_t a : axes) {
    if (gridded.size() >= options_.max_grid_axes) break;
    if (domain.Extent(a) > 0.0) gridded.push_back(a);
  }
  if (gridded.empty()) {
    // Fully degenerate data: one partition.
    PartitionSet out;
    Partition p;
    p.rids.resize(dataset.num_records());
    std::iota(p.rids.begin(), p.rids.end(), RecordId{0});
    p.box = Mbr::FromBounds(domain.lo, domain.hi);
    out.partitions.push_back(std::move(p));
    return out;
  }

  size_t cells = options_.cells_per_axis;
  if (cells == 0) {
    // Aim at ~2k records per cell: cells_per_axis^|gridded| ~ n / (2k).
    const double target_cells =
        static_cast<double>(dataset.num_records()) /
        (2.0 * static_cast<double>(k));
    cells = static_cast<size_t>(std::floor(std::pow(
        std::max(1.0, target_cells), 1.0 / static_cast<double>(
                                             gridded.size()))));
    cells = std::clamp<size_t>(cells, 1, 64);
  }
  const int bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(static_cast<double>(cells)))));

  // Assign every record to its cell; cells are keyed by the Z-order of
  // their coordinates so the later merge walks spatially adjacent cells.
  struct Cell {
    std::vector<RecordId> rids;
    std::vector<size_t> coords;
  };
  std::map<CurveKey, Cell> cell_map;  // ordered: Z-order walk for free
  std::vector<uint32_t> zcoord(gridded.size());
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    const auto row = dataset.row(r);
    for (size_t i = 0; i < gridded.size(); ++i) {
      const size_t a = gridded[i];
      const double frac = (row[a] - domain.lo[a]) / domain.Extent(a);
      auto c = static_cast<size_t>(frac * static_cast<double>(cells));
      if (c >= cells) c = cells - 1;
      zcoord[i] = static_cast<uint32_t>(c);
    }
    const CurveKey key =
        ZOrderKey({zcoord.data(), zcoord.size()}, bits);
    Cell& cell = cell_map[key];
    if (cell.rids.empty()) {
      cell.coords.assign(zcoord.begin(), zcoord.end());
    }
    cell.rids.push_back(r);
  }

  // Box of one cell: gridded axes get their cell slice, others the full
  // domain — the uncompacted grid-file view.
  auto cell_box = [&](const Cell& cell) {
    std::vector<double> lo = domain.lo;
    std::vector<double> hi = domain.hi;
    for (size_t i = 0; i < gridded.size(); ++i) {
      const size_t a = gridded[i];
      const double step = domain.Extent(a) / static_cast<double>(cells);
      lo[a] = domain.lo[a] + step * static_cast<double>(cell.coords[i]);
      hi[a] = cell.coords[i] + 1 == cells
                  ? domain.hi[a]
                  : lo[a] + step;
    }
    return Mbr::FromBounds(std::move(lo), std::move(hi));
  };

  // Merge whole cells in Z-order until every group reaches k, folding a
  // too-small tail into the last group (the leaf-scan discipline).
  PartitionSet out;
  Partition current;
  current.box = Mbr(dim);
  size_t remaining = dataset.num_records();
  for (const auto& [key, cell] : cell_map) {
    current.rids.insert(current.rids.end(), cell.rids.begin(),
                        cell.rids.end());
    current.box.ExpandToInclude(cell_box(cell));
    remaining -= cell.rids.size();
    if (current.size() >= k && remaining >= k) {
      out.partitions.push_back(std::move(current));
      current = Partition();
      current.box = Mbr(dim);
    }
  }
  if (!current.rids.empty()) out.partitions.push_back(std::move(current));

  if (options_.compact) CompactPartitions(dataset, &out);
  return out;
}

}  // namespace kanon
