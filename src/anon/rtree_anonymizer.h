#ifndef KANON_ANON_RTREE_ANONYMIZER_H_
#define KANON_ANON_RTREE_ANONYMIZER_H_

#include <memory>

#include "anon/constraints.h"
#include "anon/leaf_scan.h"
#include "anon/partition.h"
#include "data/dataset.h"
#include "index/buffer_tree.h"
#include "index/bulk_load.h"
#include "index/rplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace kanon {

/// Options shared by the bulk and incremental R⁺-tree anonymizers.
struct RTreeAnonymizerOptions {
  /// Base anonymity of the index (minimum leaf occupancy). Requested k
  /// values >= base_k are served from the same index via leaf scan, which is
  /// why the paper's Fig 7(a) shows k-independent anonymization times.
  size_t base_k = 5;
  /// Max leaf = leaf_capacity_factor * base_k (the paper's c). The default
  /// of 2 (B-tree-style 50% minimum occupancy) keeps equivalence classes
  /// close to k, which the discernibility penalty rewards.
  size_t leaf_capacity_factor = 2;
  size_t max_fanout = 16;
  SplitConfig split;
  /// Optional publication constraint (l-diversity, (α,k), ...). Applied to
  /// index leaf splits and to the leaf scan. Not owned; must outlive the
  /// anonymizer.
  const PartitionConstraint* constraint = nullptr;
  /// Emit compacted (MBR) boxes. When false, partitions carry their index
  /// *regions* clipped to the data domain — the uncompacted view, kept for
  /// the compaction ablation.
  bool compact = true;

  // Bulk-loading backend knobs.
  enum class Backend {
    kBufferTree,      // paged buffer-tree load (default; larger-than-memory)
    kTupleLoading,    // record-at-a-time inserts into the in-memory tree
    kSortedBulkLoad,  // external curve sort + top-down build (parallelizable)
  };
  Backend backend = Backend::kBufferTree;
  /// Memory budget for the buffer pool backing the buffer tree.
  size_t memory_budget_bytes = 64ull << 20;
  size_t page_size = kDefaultPageSize;
  size_t buffer_pages = 8;
  /// Back the buffer tree with a real temp file instead of heap pages.
  bool use_disk = false;

  // kSortedBulkLoad knobs. The build is deterministic in `threads`: any
  // value produces the same tree and the same partitions.
  /// Total threads for the sorted bulk load (1 = serial; N spawns N-1
  /// workers and the calling thread participates).
  size_t threads = 1;
  /// Space-filling curve and quantization resolution of the sort order.
  CurveOrder curve = CurveOrder::kHilbert;
  int grid_bits = 10;
  /// In-memory sorted-run size in records; 0 derives it from the memory
  /// budget (and never from `threads`, to keep run boundaries fixed).
  size_t sort_run_records = 0;
};

/// Bulk anonymizer: builds the spatial index at base_k, then emits a
/// k1-anonymization (k1 >= base_k) via the leaf-scan algorithm.
class RTreeAnonymizer {
 public:
  explicit RTreeAnonymizer(RTreeAnonymizerOptions options = {});

  /// Anonymizes the dataset at granularity k (>= options.base_k; smaller k
  /// is clamped up to base_k).
  StatusOr<PartitionSet> Anonymize(const Dataset& dataset, size_t k) const;

  /// Builds the index once and returns its ordered leaf groups, letting the
  /// caller run leaf scans at several granularities (how the k-sweep
  /// benchmarks amortize the build). Also reports pager I/O and buffer-pool
  /// cache stats (both zero for the in-memory tuple-loading backend).
  struct BuildResult {
    std::vector<LeafGroup> leaves;
    PagerStats io;
    BufferPoolStats cache;
    int tree_height = 0;
  };
  StatusOr<BuildResult> BuildLeaves(const Dataset& dataset) const;

  /// Leaf scan + box emission at granularity k over prebuilt leaves.
  PartitionSet Granularize(const Dataset& dataset,
                           std::span<const LeafGroup> leaves, size_t k) const;

  const RTreeAnonymizerOptions& options() const { return options_; }

 private:
  RTreeAnonymizerOptions options_;
};

/// Incremental anonymizer (paper Section 2.2): maintains an in-memory
/// R⁺-tree under record-at-a-time inserts and deletes; any granularity
/// k >= base_k can be published at any time via Snapshot, without touching
/// the records already indexed — unlike top-down algorithms, which must
/// re-anonymize the whole table per batch.
class IncrementalAnonymizer {
 public:
  /// `domain_hint` (when known, e.g. from schema metadata) normalizes split
  /// decisions across attributes of different scales; without it, raw
  /// extents are compared.
  IncrementalAnonymizer(size_t dim, RTreeAnonymizerOptions options = {},
                        const Domain* domain_hint = nullptr);

  void Insert(std::span<const double> point, RecordId rid,
              int32_t sensitive);
  bool Delete(std::span<const double> point, RecordId rid);

  /// Inserts every record of `dataset` whose id is in [begin, end).
  void InsertBatch(const Dataset& dataset, RecordId begin, RecordId end);

  size_t size() const { return tree_.size(); }
  const RPlusTree& tree() const { return tree_; }

  /// Mutable access for the LSM delta merge, which folds flushed memtable
  /// runs into the live tree in place instead of adopting a rebuilt one.
  /// Callers own the invariant burden (see RPlusTree::mutable_root).
  RPlusTree* mutable_tree() { return &tree_; }

  /// Replaces the (empty) tree with one restored from persistent storage —
  /// the crash-recovery entry point (src/durability/recovery.h). The
  /// adopted tree must share this anonymizer's dimensionality and
  /// structural configuration; note the restored tree keeps its original
  /// leaf_admissible predicate semantics only if this anonymizer was
  /// constructed with the same constraint.
  void AdoptTree(RPlusTree tree);

  /// Publishes the current records as a k-anonymization (k >= base_k).
  PartitionSet Snapshot(const Dataset& dataset, size_t k) const;

  /// Rebuilds the index from the currently live records. Heavy churn
  /// (deletions leave deficient leaves in place; early inserts fix region
  /// boundaries that later data outgrows) slowly erodes partition quality;
  /// an occasional vacuum restores bulk-load quality at bulk-load cost.
  void Vacuum();

 private:
  RTreeAnonymizerOptions options_;
  RPlusTree tree_;
};

}  // namespace kanon

#endif  // KANON_ANON_RTREE_ANONYMIZER_H_
