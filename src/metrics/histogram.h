#ifndef KANON_METRICS_HISTOGRAM_H_
#define KANON_METRICS_HISTOGRAM_H_

#include <span>
#include <vector>

#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// An equi-width histogram over one attribute's domain.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> mass;  // sums to ~1 for non-degenerate input

  size_t num_bins() const { return mass.size(); }
  double BinWidth() const {
    return mass.empty() ? 0.0
                        : (hi - lo) / static_cast<double>(mass.size());
  }
};

/// Equi-width histogram over raw samples, with bounds taken from the sample
/// min/max. Not tied to a Dataset — used e.g. by the serving layer for its
/// ingest batch-size distribution. Empty input yields an empty histogram.
Histogram SampleHistogram(std::span<const double> samples, size_t num_bins);

/// Histogram of the original data on attribute `attr`: each record adds
/// 1/n to the bin containing its exact value.
Histogram OriginalHistogram(const Dataset& dataset, size_t attr,
                            size_t num_bins);

/// Histogram of the anonymized table on attribute `attr`: every record's
/// mass (1/n) is spread uniformly over its partition box's interval on
/// that attribute — the way an analyst would reconstruct a marginal from a
/// generalized table. Bins use the original data's domain so the two
/// histograms are directly comparable.
Histogram AnonymizedHistogram(const Dataset& dataset, const PartitionSet& ps,
                              size_t attr, size_t num_bins);

/// Total variation distance between two comparable histograms:
/// 0.5 * sum |a_i - b_i|, in [0, 1]. The attribute-level utility loss of
/// the anonymization.
double TotalVariationDistance(const Histogram& a, const Histogram& b);

/// Earth mover's distance in bin units (1-D Wasserstein over the
/// cumulative difference), normalized by the number of bins so the result
/// lies in [0, 1]. More forgiving than total variation to mass that moved
/// only slightly.
double EarthMoversDistance(const Histogram& a, const Histogram& b);

/// Per-attribute total variation distances, plus their mean — a utility
/// summary of the whole anonymization ("how distorted are the published
/// marginals").
struct MarginalUtilityReport {
  std::vector<double> tv_per_attribute;
  std::vector<double> emd_per_attribute;
  double mean_tv = 0.0;
  double mean_emd = 0.0;
};

MarginalUtilityReport ComputeMarginalUtility(const Dataset& dataset,
                                             const PartitionSet& ps,
                                             size_t num_bins = 32);

}  // namespace kanon

#endif  // KANON_METRICS_HISTOGRAM_H_
