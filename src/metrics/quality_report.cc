#include "metrics/quality_report.h"

#include <sstream>

#include "metrics/discernibility.h"
#include "metrics/kl_divergence.h"

namespace kanon {

QualityReport ComputeQuality(const Dataset& dataset, const PartitionSet& ps,
                             const CertaintyOptions& options) {
  QualityReport report;
  report.discernibility = DiscernibilityPenalty(ps);
  report.certainty = CertaintyPenalty(dataset, ps, options);
  report.average_ncp = AverageNcp(dataset, ps, options);
  report.kl_divergence = KlDivergence(dataset, ps);
  report.num_partitions = ps.num_partitions();
  report.min_partition = ps.min_partition_size();
  report.max_partition = ps.max_partition_size();
  return report;
}

std::string FormatQuality(const QualityReport& report) {
  std::ostringstream os;
  os << "DM=" << report.discernibility << " CM=" << report.certainty
     << " avgNCP=" << report.average_ncp << " KL=" << report.kl_divergence
     << " partitions=" << report.num_partitions << " ["
     << report.min_partition << ".." << report.max_partition << "]";
  return os.str();
}

}  // namespace kanon
