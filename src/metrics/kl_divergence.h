#ifndef KANON_METRICS_KL_DIVERGENCE_H_
#define KANON_METRICS_KL_DIVERGENCE_H_

#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// KL divergence between the original and anonymized distributions (Kifer &
/// Gehrke, "Injecting utility into anonymized datasets"):
///
///   KL(T) = sum over records t of p1(t) * log(p1(t) / p2(t))
///
/// where p1(t) = mult(t)/n is the empirical probability of t's exact
/// quasi-identifier vector, and p2(t) spreads each partition's mass
/// uniformly over the discrete cells of its generalized box:
/// p2(t) = (|P_t|/n) / cells(P_t), with cells counted over each attribute's
/// active domain (the distinct values occurring in the data). Lower is
/// better; 0 means the anonymized table preserves the exact distribution.
double KlDivergence(const Dataset& dataset, const PartitionSet& ps);

}  // namespace kanon

#endif  // KANON_METRICS_KL_DIVERGENCE_H_
