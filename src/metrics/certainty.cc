#include "metrics/certainty.h"

#include <cmath>

namespace kanon {

double NcpOfBox(const Dataset& dataset, const Domain& domain, const Mbr& box,
                const CertaintyOptions& options) {
  const Schema& schema = dataset.schema();
  double ncp = 0.0;
  for (size_t a = 0; a < dataset.dim(); ++a) {
    const double w =
        a < options.weights.size() ? options.weights[a] : 1.0;
    const AttributeSpec& spec = schema.attribute(a);
    double term = 0.0;
    if (spec.type == AttributeType::kCategorical && spec.hierarchy) {
      const Hierarchy& h = *spec.hierarchy;
      const int lo = static_cast<int>(std::floor(box.lo(a)));
      const int hi = static_cast<int>(std::ceil(box.hi(a)));
      if (lo != hi) {
        term = static_cast<double>(h.LcaLeafCount(lo, hi)) /
               static_cast<double>(h.num_leaves());
      }
    } else {
      const double extent = domain.Extent(a);
      if (extent > 0.0) term = box.Extent(a) / extent;
    }
    ncp += w * term;
  }
  return ncp;
}

double CertaintyPenalty(const Dataset& dataset, const PartitionSet& ps,
                        const CertaintyOptions& options) {
  const Domain domain = dataset.ComputeDomain();
  double cm = 0.0;
  for (const Partition& p : ps.partitions) {
    cm += static_cast<double>(p.size()) *
          NcpOfBox(dataset, domain, p.box, options);
  }
  return cm;
}

double AverageNcp(const Dataset& dataset, const PartitionSet& ps,
                  const CertaintyOptions& options) {
  const size_t n = ps.total_records();
  if (n == 0 || dataset.dim() == 0) return 0.0;
  return CertaintyPenalty(dataset, ps, options) /
         (static_cast<double>(n) * static_cast<double>(dataset.dim()));
}

}  // namespace kanon
