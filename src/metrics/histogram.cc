#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace kanon {

namespace {

Histogram MakeFrame(const Domain& domain, size_t attr, size_t num_bins) {
  Histogram h;
  h.lo = domain.lo[attr];
  h.hi = domain.hi[attr];
  h.mass.assign(std::max<size_t>(1, num_bins), 0.0);
  return h;
}

size_t BinOf(const Histogram& h, double value) {
  if (h.hi <= h.lo) return 0;
  const double frac = (value - h.lo) / (h.hi - h.lo);
  auto bin = static_cast<size_t>(frac * static_cast<double>(h.num_bins()));
  return std::min(bin, h.num_bins() - 1);
}

}  // namespace

Histogram SampleHistogram(std::span<const double> samples, size_t num_bins) {
  Histogram h;
  if (samples.empty()) return h;
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  h.lo = *lo;
  h.hi = *hi;
  h.mass.assign(std::max<size_t>(1, num_bins), 0.0);
  const double w = 1.0 / static_cast<double>(samples.size());
  for (const double v : samples) h.mass[BinOf(h, v)] += w;
  return h;
}

Histogram OriginalHistogram(const Dataset& dataset, size_t attr,
                            size_t num_bins) {
  KANON_CHECK(!dataset.empty() && attr < dataset.dim());
  const Domain domain = dataset.ComputeDomain();
  Histogram h = MakeFrame(domain, attr, num_bins);
  const double w = 1.0 / static_cast<double>(dataset.num_records());
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    h.mass[BinOf(h, dataset.value(r, attr))] += w;
  }
  return h;
}

Histogram AnonymizedHistogram(const Dataset& dataset, const PartitionSet& ps,
                              size_t attr, size_t num_bins) {
  KANON_CHECK(!dataset.empty() && attr < dataset.dim());
  const Domain domain = dataset.ComputeDomain();
  Histogram h = MakeFrame(domain, attr, num_bins);
  const double n = static_cast<double>(dataset.num_records());
  const double bin_width = h.BinWidth();
  for (const Partition& p : ps.partitions) {
    const double mass = static_cast<double>(p.size()) / n;
    const double lo = p.box.lo(attr);
    const double hi = p.box.hi(attr);
    if (bin_width <= 0.0 || hi <= lo) {
      // Degenerate interval (or domain): all mass lands in one bin.
      h.mass[BinOf(h, lo)] += mass;
      continue;
    }
    // Spread the partition's mass uniformly over [lo, hi], clipped to the
    // histogram frame.
    const size_t first = BinOf(h, lo);
    const size_t last = BinOf(h, hi);
    for (size_t b = first; b <= last; ++b) {
      const double bin_lo = h.lo + bin_width * static_cast<double>(b);
      const double bin_hi = bin_lo + bin_width;
      const double overlap =
          std::min(hi, bin_hi) - std::max(lo, bin_lo);
      if (overlap > 0.0) {
        h.mass[b] += mass * overlap / (hi - lo);
      }
    }
  }
  return h;
}

double TotalVariationDistance(const Histogram& a, const Histogram& b) {
  KANON_CHECK(a.num_bins() == b.num_bins());
  double tv = 0.0;
  for (size_t i = 0; i < a.num_bins(); ++i) {
    tv += std::abs(a.mass[i] - b.mass[i]);
  }
  return 0.5 * tv;
}

double EarthMoversDistance(const Histogram& a, const Histogram& b) {
  KANON_CHECK(a.num_bins() == b.num_bins());
  if (a.num_bins() <= 1) return 0.0;
  double cumulative = 0.0;
  double emd = 0.0;
  for (size_t i = 0; i < a.num_bins(); ++i) {
    cumulative += a.mass[i] - b.mass[i];
    emd += std::abs(cumulative);
  }
  return emd / static_cast<double>(a.num_bins());
}

MarginalUtilityReport ComputeMarginalUtility(const Dataset& dataset,
                                             const PartitionSet& ps,
                                             size_t num_bins) {
  MarginalUtilityReport report;
  report.tv_per_attribute.reserve(dataset.dim());
  report.emd_per_attribute.reserve(dataset.dim());
  for (size_t a = 0; a < dataset.dim(); ++a) {
    const Histogram original = OriginalHistogram(dataset, a, num_bins);
    const Histogram anonymized =
        AnonymizedHistogram(dataset, ps, a, num_bins);
    report.tv_per_attribute.push_back(
        TotalVariationDistance(original, anonymized));
    report.emd_per_attribute.push_back(
        EarthMoversDistance(original, anonymized));
    report.mean_tv += report.tv_per_attribute.back();
    report.mean_emd += report.emd_per_attribute.back();
  }
  if (dataset.dim() > 0) {
    report.mean_tv /= static_cast<double>(dataset.dim());
    report.mean_emd /= static_cast<double>(dataset.dim());
  }
  return report;
}

}  // namespace kanon
