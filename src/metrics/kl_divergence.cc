#include "metrics/kl_divergence.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

namespace kanon {

namespace {

/// Hashable byte-key of a quasi-identifier vector.
std::string RowKey(std::span<const double> row) {
  std::string key(row.size() * sizeof(double), '\0');
  std::memcpy(key.data(), row.data(), key.size());
  return key;
}

}  // namespace

double KlDivergence(const Dataset& dataset, const PartitionSet& ps) {
  const size_t n = dataset.num_records();
  if (n == 0) return 0.0;
  const size_t dim = dataset.dim();

  // Multiplicity of each exact QI vector.
  std::unordered_map<std::string, size_t> mult;
  mult.reserve(n * 2);
  for (RecordId r = 0; r < n; ++r) {
    ++mult[RowKey(dataset.row(r))];
  }

  // Active domain per attribute: sorted distinct values.
  std::vector<std::vector<double>> active(dim);
  for (size_t a = 0; a < dim; ++a) {
    std::vector<double>& vals = active[a];
    vals.reserve(n);
    for (RecordId r = 0; r < n; ++r) vals.push_back(dataset.value(r, a));
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  }

  // Number of active-domain cells inside a box.
  auto cells_in_box = [&](const Mbr& box) {
    double cells = 1.0;
    for (size_t a = 0; a < dim; ++a) {
      const auto& vals = active[a];
      const auto lo_it =
          std::lower_bound(vals.begin(), vals.end(), box.lo(a));
      const auto hi_it =
          std::upper_bound(vals.begin(), vals.end(), box.hi(a));
      const auto count = static_cast<double>(hi_it - lo_it);
      cells *= std::max(1.0, count);
    }
    return cells;
  };

  const double dn = static_cast<double>(n);
  double kl = 0.0;
  for (const Partition& p : ps.partitions) {
    const double cells = cells_in_box(p.box);
    const double p2 = (static_cast<double>(p.size()) / dn) / cells;
    for (RecordId r : p.rids) {
      const double p1 =
          static_cast<double>(mult.at(RowKey(dataset.row(r)))) / dn;
      // Each record contributes with weight 1/n (the sum over distinct
      // tuples of p1*log(p1/p2) equals the per-record average).
      kl += (1.0 / dn) * std::log(p1 / p2);
    }
  }
  return kl;
}

}  // namespace kanon
