#ifndef KANON_METRICS_DISCERNIBILITY_H_
#define KANON_METRICS_DISCERNIBILITY_H_

#include "anon/partition.h"

namespace kanon {

/// Discernibility penalty (Bayardo & Agrawal): DM(T) = sum over partitions
/// of |P|^2 — every record is charged the size of its equivalence class.
/// Depends only on partition cardinalities, which is why compaction cannot
/// change it (paper Fig 10a).
double DiscernibilityPenalty(const PartitionSet& ps);

/// DM normalized by its lower bound n*k (all partitions exactly k): 1.0 is
/// optimal. Convenient for cross-size comparisons.
double NormalizedDiscernibility(const PartitionSet& ps, size_t k);

}  // namespace kanon

#endif  // KANON_METRICS_DISCERNIBILITY_H_
