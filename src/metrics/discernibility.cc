#include "metrics/discernibility.h"

namespace kanon {

double DiscernibilityPenalty(const PartitionSet& ps) {
  double dm = 0.0;
  for (const Partition& p : ps.partitions) {
    const double s = static_cast<double>(p.size());
    dm += s * s;
  }
  return dm;
}

double NormalizedDiscernibility(const PartitionSet& ps, size_t k) {
  const double n = static_cast<double>(ps.total_records());
  if (n == 0.0 || k == 0) return 0.0;
  return DiscernibilityPenalty(ps) / (n * static_cast<double>(k));
}

}  // namespace kanon
