#ifndef KANON_METRICS_CERTAINTY_H_
#define KANON_METRICS_CERTAINTY_H_

#include <vector>

#include "anon/partition.h"
#include "data/dataset.h"

namespace kanon {

/// Options for the certainty metric.
struct CertaintyOptions {
  /// Per-attribute importance weights w_i (empty = all 1.0) — the weighted
  /// NCP of Xu et al. that the paper adopts.
  std::vector<double> weights;
};

/// Normalized certainty penalty of one generalized box for one attribute
/// set: NCP(t) = sum_i w_i * |t.A_i| / |T.A_i|. Numeric attributes use
/// extent ratios; categorical attributes with a hierarchy charge the leaf
/// count under the published node (0 when the value is a single leaf),
/// following Xu et al.
double NcpOfBox(const Dataset& dataset, const Domain& domain, const Mbr& box,
                const CertaintyOptions& options = {});

/// Certainty penalty of the whole anonymization:
/// CM(T) = sum over records of NCP(record's box).
double CertaintyPenalty(const Dataset& dataset, const PartitionSet& ps,
                        const CertaintyOptions& options = {});

/// CM / (n * dim): average per-record, per-attribute penalty in [0, 1]
/// (assuming unit weights). Comparable across data sets.
double AverageNcp(const Dataset& dataset, const PartitionSet& ps,
                  const CertaintyOptions& options = {});

}  // namespace kanon

#endif  // KANON_METRICS_CERTAINTY_H_
