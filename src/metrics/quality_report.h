#ifndef KANON_METRICS_QUALITY_REPORT_H_
#define KANON_METRICS_QUALITY_REPORT_H_

#include <string>

#include "anon/partition.h"
#include "data/dataset.h"
#include "metrics/certainty.h"

namespace kanon {

/// The three quality measures the paper evaluates, computed together.
struct QualityReport {
  double discernibility = 0.0;
  double certainty = 0.0;
  double average_ncp = 0.0;
  double kl_divergence = 0.0;
  size_t num_partitions = 0;
  size_t min_partition = 0;
  size_t max_partition = 0;
};

/// Computes every metric over one anonymization.
QualityReport ComputeQuality(const Dataset& dataset, const PartitionSet& ps,
                             const CertaintyOptions& options = {});

/// One-line rendering for bench output.
std::string FormatQuality(const QualityReport& report);

}  // namespace kanon

#endif  // KANON_METRICS_QUALITY_REPORT_H_
