#ifndef KANON_COMMON_CHECK_H_
#define KANON_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

/// Invariant checks that stay on in release builds. Violations indicate
/// programming errors inside the library, never bad user input (bad input is
/// reported through Status).
#define KANON_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "KANON_CHECK failed at " << __FILE__ << ":"           \
                << __LINE__ << ": " #cond << std::endl;                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define KANON_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "KANON_CHECK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " #cond << " — " << msg << std::endl; \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define KANON_DCHECK(cond) KANON_CHECK(cond)
#else
#define KANON_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // KANON_COMMON_CHECK_H_
