#ifndef KANON_COMMON_RANDOM_H_
#define KANON_COMMON_RANDOM_H_

#include <cstdint>

namespace kanon {

/// Deterministic, fast pseudo-random generator (xoshiro256** with a
/// SplitMix64-seeded state). Used everywhere instead of std::mt19937 so
/// experiment runs are reproducible across platforms and standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal variate (Box–Muller).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Zipf-like skewed integer in [0, n) with exponent `s` (s = 0 is uniform).
  /// Implemented by inverse-CDF over a precomputation-free approximation,
  /// adequate for workload generation.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kanon

#endif  // KANON_COMMON_RANDOM_H_
