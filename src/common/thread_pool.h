#ifndef KANON_COMMON_THREAD_POOL_H_
#define KANON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/thread.h"

namespace kanon {

/// Fixed-size pool of worker threads with per-worker task deques and
/// work stealing: a worker pops its own deque LIFO (cache-warm, newest
/// first) and steals FIFO from the next non-empty neighbour (oldest
/// first, the classic Chase-Lev discipline). Tasks here are coarse —
/// sort a run, merge a group of spill chains, build a subtree — so one
/// pool-wide mutex guards all deques; the stealing structure is about
/// task-ordering locality, not lock-freedom, and keeps the pool easy to
/// prove race-free under TSan.
///
/// Execution guarantee: every task Submit() accepts is executed exactly
/// once — by a worker, by Shutdown()'s drain, or (when the pool is
/// already stopped) inline in the submitting thread. Work never
/// silently disappears, so callers may park completion state (promises,
/// latches, Status slots) inside task closures.
///
/// The pool is oblivious to task failures by design: tasks return void
/// and report errors through whatever state they capture. Nothing in
/// the tree throws, so no exception barrier is needed.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Zero is legal and makes Submit() run
  /// everything inline and ParallelFor() degrade to the caller's loop —
  /// the natural spelling of "--threads 1".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();  // implies Shutdown()

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (callers typically add themselves:
  /// ParallelFor uses capacity() workers plus the calling thread).
  size_t capacity() const { return workers_.size(); }

  /// Enqueues `task` for execution. After Shutdown() (or with zero
  /// workers) the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Stops the pool: workers finish every queued task, then exit and
  /// are joined. Idempotent; concurrent Submit() calls remain safe and
  /// keep the execution guarantee.
  void Shutdown();

  /// Runs fn(0) … fn(n-1), each exactly once, distributing indices over
  /// the workers *and* the calling thread; returns when all have
  /// completed. Indices are claimed from one atomic counter, so any
  /// invocation may run on any thread in any order — fn must only write
  /// state disjoint per index. Not re-entrant from inside a pool task
  /// (a worker blocking here could deadlock the pool).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t me);
  /// Pops the next task for worker `me` (own back first, then steals a
  /// neighbour's front). Requires mu_ held; returns false when all
  /// deques are empty.
  bool PopTask(size_t me, std::function<void()>* out);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  size_t next_queue_ = 0;  // round-robin Submit target
  bool stop_ = false;
  std::vector<JoinableThread> workers_;
};

}  // namespace kanon

#endif  // KANON_COMMON_THREAD_POOL_H_
