#ifndef KANON_COMMON_SYSINFO_H_
#define KANON_COMMON_SYSINFO_H_

#include <string>

namespace kanon {

/// Describes the host the experiments run on. The paper's Table 1 lists the
/// authors' 2007 testbed; every bench binary prints the equivalent of that
/// table for the current machine so paper-vs-measured comparisons carry the
/// hardware context.
struct SystemInfo {
  std::string compiler;
  std::string os;
  std::string cpu;
  long memory_mb = 0;
  int logical_cores = 0;
};

/// Collects best-effort host information (from /proc on Linux; fields may be
/// "unknown" elsewhere).
SystemInfo QuerySystemInfo();

/// Renders `info` as the paper's Table 1 layout.
std::string FormatSystemInfoTable(const SystemInfo& info);

}  // namespace kanon

#endif  // KANON_COMMON_SYSINFO_H_
