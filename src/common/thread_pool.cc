#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace kanon {

ThreadPool::ThreadPool(size_t num_threads) : queues_(num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_ && !queues_.empty()) {
      queues_[next_queue_].push_back(std::move(task));
      next_queue_ = (next_queue_ + 1) % queues_.size();
      lock.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Stopped (or zero workers): the execution guarantee still holds —
  // run the task in the submitting thread.
  task();
}

bool ThreadPool::PopTask(size_t me, std::function<void()>* out) {
  if (queues_.empty()) return false;  // zero-worker pool has no deques
  if (!queues_[me].empty()) {  // own work: newest first (LIFO)
    *out = std::move(queues_[me].back());
    queues_[me].pop_back();
    return true;
  }
  for (size_t k = 1; k < queues_.size(); ++k) {  // steal: oldest first (FIFO)
    const size_t victim = (me + k) % queues_.size();
    if (!queues_[victim].empty()) {
      *out = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t me) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (PopTask(me, &task)) {
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (stop_) return;  // all deques drained and no more work coming
    cv_.wait(lock);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.Join();
  // Workers only exit with every deque empty, and Submit runs inline
  // once stop_ is visible, so nothing is left behind — but drain
  // defensively so the guarantee survives future refactors.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!PopTask(0, &task)) break;
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (capacity() == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  auto drain = [state, n, &fn] {
    size_t i;
    while ((i = state->next.fetch_add(1)) < n) {
      fn(i);
      if (state->completed.fetch_add(1) + 1 == n) {
        // Lock so the finish signal cannot slip between the waiter's
        // predicate check and its wait.
        std::lock_guard<std::mutex> lock(state->mu);
        state->done.notify_all();
      }
    }
  };
  // Helper tasks capture fn by reference: ParallelFor does not return
  // until completed == n, and a helper that outlives its useful life
  // (claimed index >= n) never touches fn again.
  const size_t helpers = std::min(capacity(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();  // the caller participates
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->completed.load() == n; });
}

}  // namespace kanon
