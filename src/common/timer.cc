#include "common/timer.h"

// Timer is header-only; this translation unit exists so the target always
// has at least one symbol per module and to anchor future additions.
namespace kanon {}
