#ifndef KANON_COMMON_CRC32_H_
#define KANON_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace kanon {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `n` bytes,
/// slice-by-4 table driven. `seed` chains incremental computations:
/// Crc32(a+b) == Crc32(b, nb, Crc32(a, na)). Shared by the write-ahead
/// log's entry framing and the pager's page checksums, so a single codec
/// guards every byte the durability subsystem puts on disk.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace kanon

#endif  // KANON_COMMON_CRC32_H_
