#ifndef KANON_COMMON_STATUS_H_
#define KANON_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace kanon {

/// Error categories used across the library. Mirrors the small set of
/// conditions a caller can meaningfully react to.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The library does not throw across
/// public API boundaries; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites (`return value;` / `return Status::NotFound(...)`) readable.
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT: intentional
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT: intentional
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "StatusOr constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "StatusOr::value() on error: " << status().ToString()
                << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace kanon

/// Propagates a non-OK Status to the caller.
#define KANON_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::kanon::Status _kanon_status = (expr);          \
    if (!_kanon_status.ok()) return _kanon_status;   \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define KANON_ASSIGN_OR_RETURN(lhs, expr)       \
  KANON_ASSIGN_OR_RETURN_IMPL_(                 \
      KANON_STATUS_CONCAT_(_kanon_sor_, __LINE__), lhs, expr)
#define KANON_STATUS_CONCAT_INNER_(a, b) a##b
#define KANON_STATUS_CONCAT_(a, b) KANON_STATUS_CONCAT_INNER_(a, b)
#define KANON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // KANON_COMMON_STATUS_H_
