#include "common/sysinfo.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace kanon {

namespace {

std::string ReadCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto pos = line.find(':');
      if (pos != std::string::npos && pos + 2 <= line.size()) {
        return line.substr(pos + 2);
      }
    }
  }
  return "unknown";
}

long ReadMemoryMb() {
  std::ifstream in("/proc/meminfo");
  std::string key;
  long kb = 0;
  while (in >> key >> kb) {
    if (key == "MemTotal:") return kb / 1024;
    std::string rest;
    std::getline(in, rest);
  }
  return 0;
}

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string OsString() {
  std::ifstream in("/etc/os-release");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("PRETTY_NAME=", 0) == 0) {
      std::string v = line.substr(12);
      if (v.size() >= 2 && v.front() == '"') v = v.substr(1, v.size() - 2);
      return v;
    }
  }
  return "unknown";
}

}  // namespace

SystemInfo QuerySystemInfo() {
  SystemInfo info;
  info.compiler = CompilerString();
  info.os = OsString();
  info.cpu = ReadCpuModel();
  info.memory_mb = ReadMemoryMb();
  info.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

std::string FormatSystemInfoTable(const SystemInfo& info) {
  std::ostringstream os;
  os << "System configuration (cf. paper Table 1):\n";
  os << "  Compiler         " << info.compiler << "\n";
  os << "  Operating system " << info.os << "\n";
  os << "  CPU              " << info.cpu << " (" << info.logical_cores
     << " logical cores)\n";
  os << "  Memory           " << info.memory_mb << " MB\n";
  return os.str();
}

}  // namespace kanon
