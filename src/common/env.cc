#include "common/env.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/check.h"

namespace kanon {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " failed for " + path + ": " + std::strerror(errno);
}

}  // namespace

Status WritableFile::Append(const void* data, size_t n) {
  const char* src = static_cast<const char*>(data);
  while (n > 0) {
    KANON_ASSIGN_OR_RETURN(const size_t written, AppendPartial(src, n));
    KANON_CHECK(written >= 1 && written <= n);
    src += written;
    n -= written;
  }
  return Status::OK();
}

Status RandomAccessFile::ReadAt(uint64_t offset, char* buf, size_t n,
                                size_t* bytes_read) {
  *bytes_read = 0;
  while (n > 0) {
    KANON_ASSIGN_OR_RETURN(const size_t got,
                           ReadAtPartial(offset, buf, n));
    if (got == 0) break;  // end of file
    KANON_CHECK(got <= n);
    offset += got;
    buf += got;
    n -= got;
    *bytes_read += got;
  }
  return Status::OK();
}

Status RandomRWFile::ReadAt(uint64_t offset, char* buf, size_t n,
                            size_t* bytes_read) {
  *bytes_read = 0;
  while (n > 0) {
    KANON_ASSIGN_OR_RETURN(const size_t got,
                           ReadAtPartial(offset, buf, n));
    if (got == 0) break;  // end of file
    KANON_CHECK(got <= n);
    offset += got;
    buf += got;
    n -= got;
    *bytes_read += got;
  }
  return Status::OK();
}

Status RandomRWFile::WriteAt(uint64_t offset, const char* data, size_t n) {
  while (n > 0) {
    KANON_ASSIGN_OR_RETURN(const size_t written,
                           WriteAtPartial(offset, data, n));
    KANON_CHECK(written >= 1 && written <= n);
    offset += written;
    data += written;
    n -= written;
  }
  return Status::OK();
}

namespace {

/// fd-backed append file. A small user-space buffer keeps a group-commit
/// window's worth of appends in one write syscall; the EINTR/short-write
/// loop lives in WriteRaw, the single place bytes cross into the kernel.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    buffer_.reserve(kBufferSize);
  }
  ~PosixWritableFile() override { (void)Close(); }

  Status Flush() override {
    if (buffer_.empty()) return Status::OK();
    KANON_RETURN_IF_ERROR(WriteRaw(buffer_.data(), buffer_.size()));
    buffer_.clear();
    return Status::OK();
  }

  Status Sync() override {
    KANON_RETURN_IF_ERROR(Flush());
    if (fdatasync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fdatasync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const Status flushed = Flush();
    const int rc = close(fd_);
    fd_ = -1;
    KANON_RETURN_IF_ERROR(flushed);
    if (rc != 0) return Status::IoError(ErrnoMessage("close", path_));
    return Status::OK();
  }

 protected:
  StatusOr<size_t> AppendPartial(const char* data, size_t n) override {
    if (buffer_.size() + n <= kBufferSize) {
      buffer_.insert(buffer_.end(), data, data + n);
      return n;
    }
    KANON_RETURN_IF_ERROR(Flush());
    if (n >= kBufferSize) {
      // Oversized append: write through, skip the copy.
      KANON_RETURN_IF_ERROR(WriteRaw(data, n));
      return n;
    }
    buffer_.insert(buffer_.end(), data, data + n);
    return n;
  }

 private:
  static constexpr size_t kBufferSize = 1u << 16;

  Status WriteRaw(const char* data, size_t n) {
    while (n > 0) {
      const ssize_t written = write(fd_, data, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("write", path_));
      }
      data += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  int fd_;
  const std::string path_;
  std::vector<char> buffer_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { close(fd_); }

 protected:
  StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                 size_t n) override {
    for (;;) {
      const ssize_t got = pread(fd_, buf, n, static_cast<off_t>(offset));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("pread", path_));
      }
      return static_cast<size_t>(got);
    }
  }

 private:
  const int fd_;
  const std::string path_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomRWFile() override { close(fd_); }

  Status Sync() override {
    if (fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

 protected:
  StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                 size_t n) override {
    for (;;) {
      const ssize_t got = pread(fd_, buf, n, static_cast<off_t>(offset));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("pread", path_));
      }
      return static_cast<size_t>(got);
    }
  }

  StatusOr<size_t> WriteAtPartial(uint64_t offset, const char* data,
                                  size_t n) override {
    for (;;) {
      const ssize_t written = pwrite(fd_, data, n, static_cast<off_t>(offset));
      if (written < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("pwrite", path_));
      }
      return static_cast<size_t>(written);
    }
  }

 private:
  const int fd_;
  const std::string path_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    const int fd = open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    const int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IoError(ErrnoMessage("open", path));
    }
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(fd, path));
  }

  StatusOr<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) override {
    const int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    const int fd = open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
    return std::unique_ptr<RandomRWFile>(new PosixRandomRWFile(fd, path));
  }

  StatusOr<std::unique_ptr<RandomRWFile>> NewTempRWFile(
      const std::string& dir) override {
    std::string templ =
        (dir.empty() ? std::string("/tmp") : dir) + "/kanon_tmp_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = mkstemp(buf.data());
    if (fd < 0) return Status::IoError(ErrnoMessage("mkstemp", templ));
    // Unlink immediately: the file lives only as long as the handle.
    unlink(buf.data());
    return std::unique_ptr<RandomRWFile>(
        new PosixRandomRWFile(fd, buf.data()));
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create directory " + dir + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return access(path.c_str(), F_OK) == 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IoError(ErrnoMessage("stat", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
      return Status::IoError(ErrnoMessage("opendir", dir));
    }
    std::vector<std::string> names;
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    closedir(d);
    return names;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError(ErrnoMessage("rename", from + " -> " + to));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IoError(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IoError(ErrnoMessage("truncate", path));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IoError(ErrnoMessage("open directory", dir));
    const int rc = fsync(fd);
    close(fd);
    if (rc != 0) return Status::IoError(ErrnoMessage("fsync directory", dir));
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  out->clear();
  KANON_ASSIGN_OR_RETURN(auto file, env->NewRandomAccessFile(path));
  uint64_t offset = 0;
  char buf[1u << 16];
  for (;;) {
    size_t got = 0;
    KANON_RETURN_IF_ERROR(file->ReadAt(offset, buf, sizeof(buf), &got));
    out->append(buf, got);
    offset += got;
    if (got < sizeof(buf)) return Status::OK();
  }
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWriteError:
      return "write-error";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kSyncError:
      return "sync-error";
    case FaultKind::kReadCorruption:
      return "read-corruption";
  }
  return "unknown";
}

namespace {

Status InjectedError(FaultKind kind, const std::string& path) {
  return Status::IoError(std::string("injected ") + FaultKindName(kind) +
                         " (" + path + ")");
}

}  // namespace

/// Wraps a base WritableFile; the env decides which appends/syncs fault.
class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base, std::string path,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    FaultKind kind;
    size_t torn = 0;
    if (env_->MaybeInject(FaultInjectionEnv::OpType::kSync, path_, 0, 0,
                          &kind, &torn)) {
      // The data may or may not have reached the platter — exactly the
      // ambiguity a real fsync failure leaves behind.
      return InjectedError(kind, path_);
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 protected:
  StatusOr<size_t> AppendPartial(const char* data, size_t n) override {
    FaultKind kind;
    size_t torn = 0;
    if (env_->MaybeInject(FaultInjectionEnv::OpType::kWrite, path_, 0, n,
                          &kind, &torn)) {
      if (kind == FaultKind::kTornWrite && torn > 0) {
        // Persist a prefix, then fail — and push it past any user-space
        // buffer so the torn bytes really reach the file.
        (void)base_->Append(data, torn);
        (void)base_->Flush();
      }
      return InjectedError(kind, path_);
    }
    KANON_RETURN_IF_ERROR(base_->Append(data, n));
    return n;
  }

 private:
  std::unique_ptr<WritableFile> base_;
  const std::string path_;
  FaultInjectionEnv* const env_;
};

class FaultyRandomAccessFile final : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         std::string path, FaultInjectionEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

 protected:
  StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                 size_t n) override {
    size_t got = 0;
    KANON_RETURN_IF_ERROR(base_->ReadAt(offset, buf, n, &got));
    FaultKind kind;
    size_t torn = 0;
    if (got > 0 &&
        env_->MaybeInject(FaultInjectionEnv::OpType::kRead, path_, offset,
                          got, &kind, &torn)) {
      buf[torn % got] ^= 1u << (torn % 8);  // deterministic bit flip
    }
    return got;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  const std::string path_;
  FaultInjectionEnv* const env_;
};

class FaultyRandomRWFile final : public RandomRWFile {
 public:
  FaultyRandomRWFile(std::unique_ptr<RandomRWFile> base, std::string path,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Sync() override {
    FaultKind kind;
    size_t torn = 0;
    if (env_->MaybeInject(FaultInjectionEnv::OpType::kSync, path_, 0, 0,
                          &kind, &torn)) {
      return InjectedError(kind, path_);
    }
    return base_->Sync();
  }

 protected:
  StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                 size_t n) override {
    size_t got = 0;
    KANON_RETURN_IF_ERROR(base_->ReadAt(offset, buf, n, &got));
    FaultKind kind;
    size_t torn = 0;
    if (got > 0 &&
        env_->MaybeInject(FaultInjectionEnv::OpType::kRead, path_, offset,
                          got, &kind, &torn)) {
      buf[torn % got] ^= 1u << (torn % 8);
    }
    return got;
  }

  StatusOr<size_t> WriteAtPartial(uint64_t offset, const char* data,
                                  size_t n) override {
    FaultKind kind;
    size_t torn = 0;
    if (env_->MaybeInject(FaultInjectionEnv::OpType::kWrite, path_, offset,
                          n, &kind, &torn)) {
      if (kind == FaultKind::kTornWrite && torn > 0) {
        (void)base_->WriteAt(offset, data, torn);
      }
      return InjectedError(kind, path_);
    }
    KANON_RETURN_IF_ERROR(base_->WriteAt(offset, data, n));
    return n;
  }

 private:
  std::unique_ptr<RandomRWFile> base_;
  const std::string path_;
  FaultInjectionEnv* const env_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, FaultInjectionOptions options)
    : base_(base), options_(std::move(options)), rng_(options_.seed) {
  if (options_.mean_ops_between_faults > 0) {
    next_fault_at_ =
        1 + rng_.Uniform(2ull * options_.mean_ops_between_faults);
  }
}

bool FaultInjectionEnv::MaybeInject(OpType type, const std::string& path,
                                    uint64_t offset, size_t n,
                                    FaultKind* kind, size_t* torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.path_filter.empty() &&
      path.find(options_.path_filter) == std::string::npos) {
    return false;
  }
  ++ops_;
  const uint64_t write_no = type == OpType::kWrite ? ++writes_ : writes_;
  const uint64_t sync_no = type == OpType::kSync ? ++syncs_ : syncs_;
  const uint64_t read_no = type == OpType::kRead ? ++reads_ : reads_;
  *torn_prefix = 0;

  bool inject = false;
  if (options_.break_after_ops > 0 && ops_ >= options_.break_after_ops &&
      type != OpType::kRead) {
    broken_ = true;
    *kind = type == OpType::kSync ? FaultKind::kSyncError
                                  : FaultKind::kWriteError;
    inject = true;
  } else if (type == OpType::kWrite && options_.fail_nth_write > 0 &&
             write_no == options_.fail_nth_write) {
    *kind = options_.torn_writes ? FaultKind::kTornWrite
                                 : FaultKind::kWriteError;
    inject = true;
  } else if (type == OpType::kSync && options_.fail_nth_sync > 0 &&
             sync_no == options_.fail_nth_sync) {
    *kind = FaultKind::kSyncError;
    inject = true;
  } else if (type == OpType::kRead && options_.corrupt_nth_read > 0 &&
             read_no == options_.corrupt_nth_read) {
    *kind = FaultKind::kReadCorruption;
    inject = true;
  } else if (next_fault_at_ > 0 && ops_ >= next_fault_at_) {
    next_fault_at_ =
        ops_ + 1 + rng_.Uniform(2ull * options_.mean_ops_between_faults);
    switch (type) {
      case OpType::kWrite:
        *kind = options_.torn_writes ? FaultKind::kTornWrite
                                     : FaultKind::kWriteError;
        inject = true;
        break;
      case OpType::kSync:
        if (options_.sync_faults) {
          *kind = FaultKind::kSyncError;
          inject = true;
        }
        break;
      case OpType::kRead:
        if (options_.read_faults) {
          *kind = FaultKind::kReadCorruption;
          inject = true;
        }
        break;
    }
  }
  if (!inject) return false;
  if (*kind == FaultKind::kTornWrite && n > 0) {
    *torn_prefix = rng_.Uniform(n);
  } else if (*kind == FaultKind::kReadCorruption && n > 0) {
    *torn_prefix = rng_.Uniform(n * 8);  // reused as the bit index seed
  }
  trace_.push_back({ops_, *kind, path, offset, n});
  return true;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  KANON_ASSIGN_OR_RETURN(auto file, base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(std::move(file), path, this));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  KANON_ASSIGN_OR_RETURN(auto file, base_->NewRandomAccessFile(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultyRandomAccessFile(std::move(file), path, this));
}

StatusOr<std::unique_ptr<RandomRWFile>> FaultInjectionEnv::NewRandomRWFile(
    const std::string& path, bool truncate) {
  KANON_ASSIGN_OR_RETURN(auto file, base_->NewRandomRWFile(path, truncate));
  return std::unique_ptr<RandomRWFile>(
      new FaultyRandomRWFile(std::move(file), path, this));
}

StatusOr<std::unique_ptr<RandomRWFile>> FaultInjectionEnv::NewTempRWFile(
    const std::string& dir) {
  KANON_ASSIGN_OR_RETURN(auto file, base_->NewTempRWFile(dir));
  return std::unique_ptr<RandomRWFile>(
      new FaultyRandomRWFile(std::move(file), "<temp>", this));
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

uint64_t FaultInjectionEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultInjectionEnv::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.size();
}

bool FaultInjectionEnv::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

std::vector<FaultEvent> FaultInjectionEnv::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

std::string FaultInjectionEnv::TraceSummary(size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_.empty()) return "";
  std::ostringstream os;
  os << "fault trace (seed=" << options_.seed << ", " << trace_.size()
     << " injected over " << ops_ << " ops):";
  const size_t shown = std::min(max_events, trace_.size());
  for (size_t i = 0; i < shown; ++i) {
    const FaultEvent& e = trace_[i];
    os << "\n  op " << e.op << ": " << FaultKindName(e.kind) << " " << e.path
       << " +" << e.offset << " (" << e.bytes << " bytes)";
  }
  if (shown < trace_.size()) {
    os << "\n  ... " << (trace_.size() - shown) << " more";
  }
  return os.str();
}

}  // namespace kanon
