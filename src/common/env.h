#ifndef KANON_COMMON_ENV_H_
#define KANON_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kanon {

/// File abstractions with POSIX semantics at the virtual boundary: the
/// *Partial hooks may transfer fewer bytes than asked (a short write on a
/// nearly-full disk, a read crossing EOF) and the non-virtual public
/// methods wrap them in resume loops, so every caller in the tree gets
/// full-transfer-or-error behaviour from one audited place instead of ~22
/// hand-rolled call sites. Routing all storage, WAL and checkpoint I/O
/// through Env is what makes FaultInjectionEnv able to exercise ENOSPC,
/// torn writes, failed fsyncs and read bit rot deterministically in tests.

/// Append-only file (WAL segments, checkpoint manifests). Close() is
/// idempotent and implied by the destructor; only Sync() makes the
/// appended bytes crash-durable, and its Status is the caller's only
/// evidence of durability.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends all `n` bytes, resuming on short writes. The implementation
  /// may buffer in user space; Flush() pushes buffered bytes to the OS and
  /// Sync() additionally makes them durable.
  Status Append(const void* data, size_t n);

  virtual Status Flush() { return Status::OK(); }
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

 protected:
  /// Accepts at least 1 and at most `n` bytes, or errors. EINTR must be
  /// handled below this boundary (return the partial count instead).
  virtual StatusOr<size_t> AppendPartial(const char* data, size_t n) = 0;
};

/// Read-only positional file (WAL replay, manifest load).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`, resuming short reads; *bytes_read
  /// < n only at end of file.
  Status ReadAt(uint64_t offset, char* buf, size_t n, size_t* bytes_read);

 protected:
  /// Returns bytes transferred; 0 means end of file.
  virtual StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                         size_t n) = 0;
};

/// Positional read/write file (pager backing stores).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Reads up to `n` bytes at `offset`; *bytes_read < n only at EOF.
  Status ReadAt(uint64_t offset, char* buf, size_t n, size_t* bytes_read);

  /// Writes all `n` bytes at `offset`, resuming on short writes.
  Status WriteAt(uint64_t offset, const char* data, size_t n);

  virtual Status Sync() = 0;

 protected:
  virtual StatusOr<size_t> ReadAtPartial(uint64_t offset, char* buf,
                                         size_t n) = 0;
  virtual StatusOr<size_t> WriteAtPartial(uint64_t offset, const char* data,
                                          size_t n) = 0;
};

/// The file-system boundary of the library. Env::Default() is the real
/// POSIX implementation; FaultInjectionEnv decorates any Env with a
/// deterministic fault schedule. All paths are plain std::string paths.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Creates/opens `path` for appending. With `truncate` existing contents
  /// are discarded, otherwise appends after them.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) = 0;

  /// Opens `path` read-only. NotFound when it does not exist.
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Creates/opens `path` for positional read/write.
  virtual StatusOr<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate = false) = 0;

  /// An anonymous temp file in `dir` ("" = system default) that vanishes
  /// with its handle.
  virtual StatusOr<std::unique_ptr<RandomRWFile>> NewTempRWFile(
      const std::string& dir = "") = 0;

  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  /// File (not directory) names inside `dir`, unordered.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory so renames/creations/unlinks inside it survive a
  /// crash.
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Reads the whole of `path` into `*out`. NotFound when it does not exist.
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

/// What a FaultInjectionEnv can do to an I/O operation.
enum class FaultKind {
  kWriteError,      // write fails, nothing persisted (classic ENOSPC)
  kTornWrite,       // a prefix persists, then the write fails
  kSyncError,       // fsync/fdatasync reports failure
  kReadCorruption,  // read succeeds but one bit is flipped
};

const char* FaultKindName(FaultKind kind);

/// One injected fault, recorded in the per-run trace so a failing seeded
/// run can be diagnosed and replayed.
struct FaultEvent {
  uint64_t op = 0;  // data-plane operation index the fault fired at
  FaultKind kind = FaultKind::kWriteError;
  std::string path;
  uint64_t offset = 0;  // 0 for append-files
  size_t bytes = 0;     // size of the faulted transfer
};

/// Deterministic fault schedule of a FaultInjectionEnv. Two runs with the
/// same options over the same operation sequence inject exactly the same
/// faults — reproduce a failure by re-running with the seed its report
/// printed.
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// Random transient faults: about one every this many matching
  /// data-plane operations (0 disables the random schedule). Gaps are
  /// drawn uniformly from [1, 2*mean] with the seeded Rng.
  uint32_t mean_ops_between_faults = 0;

  /// Hard break: from this matching operation on, every write and sync
  /// fails (a dead/full disk). 0 = never.
  uint64_t break_after_ops = 0;

  /// Only operations on paths containing this substring count and fault
  /// ("" = all files). Lets a test kill the WAL but not the checkpoint.
  std::string path_filter;

  /// Random write faults persist a seeded prefix before failing (torn
  /// write) instead of failing cleanly.
  bool torn_writes = true;
  /// Include sync failures in the random schedule.
  bool sync_faults = false;
  /// Include read bit-flips in the random schedule.
  bool read_faults = false;

  // One-shot deterministic triggers (1-based per-kind counters, 0 = off).
  uint64_t fail_nth_write = 0;
  uint64_t fail_nth_sync = 0;
  uint64_t corrupt_nth_read = 0;
};

/// An Env decorator that executes the configured fault schedule on the
/// data plane (writes, syncs, reads) of matching files and records every
/// injected fault. Metadata operations (rename, remove, truncate, dir
/// sync) pass through unfaulted — they model the *consequences* of data
/// faults, and faulting them too makes schedules impossible to reason
/// about. Thread-safe: the service's ingest thread and a test thread may
/// drive it concurrently.
class FaultInjectionEnv : public Env {
 public:
  FaultInjectionEnv(Env* base, FaultInjectionOptions options);

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate = false) override;
  StatusOr<std::unique_ptr<RandomRWFile>> NewTempRWFile(
      const std::string& dir = "") override;
  Status CreateDirs(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

  const FaultInjectionOptions& fault_options() const { return options_; }
  /// Matching data-plane operations observed so far.
  uint64_t ops() const;
  /// Faults injected so far.
  uint64_t injected() const;
  /// True once the hard break (break_after_ops) has engaged.
  bool broken() const;
  std::vector<FaultEvent> trace() const;
  /// Multi-line human-readable trace for run reports ("" when clean).
  std::string TraceSummary(size_t max_events = 16) const;

 private:
  friend class FaultyWritableFile;
  friend class FaultyRandomAccessFile;
  friend class FaultyRandomRWFile;

  enum class OpType { kWrite, kSync, kRead };

  /// Counts the operation and decides whether (and how) to fault it.
  /// Returns a prefix length to persist before failing via *torn_prefix
  /// (only meaningful for kTornWrite).
  bool MaybeInject(OpType type, const std::string& path, uint64_t offset,
                   size_t n, FaultKind* kind, size_t* torn_prefix);

  Env* const base_;
  const FaultInjectionOptions options_;

  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t reads_ = 0;
  uint64_t next_fault_at_ = 0;  // 0 = random schedule off
  bool broken_ = false;
  std::vector<FaultEvent> trace_;
  Rng rng_;
};

}  // namespace kanon

#endif  // KANON_COMMON_ENV_H_
