#ifndef KANON_COMMON_VERSION_H_
#define KANON_COMMON_VERSION_H_

namespace kanon {

/// Library version, exported by /metrics as kanon_build_info{version=...}
/// so dashboards can tell deployments apart. Bump per release-worthy
/// change to the serving surface.
inline constexpr const char kVersionString[] = "0.6.0";

}  // namespace kanon

#endif  // KANON_COMMON_VERSION_H_
