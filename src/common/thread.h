#ifndef KANON_COMMON_THREAD_H_
#define KANON_COMMON_THREAD_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"

namespace kanon {

/// A thread that joins on destruction — exceptions or early returns in the
/// owner cannot leak a running thread past its captured state's lifetime.
class JoinableThread {
 public:
  JoinableThread() = default;
  explicit JoinableThread(std::function<void()> fn)
      : thread_(std::move(fn)) {}
  ~JoinableThread() { Join(); }

  JoinableThread(JoinableThread&&) = default;
  JoinableThread& operator=(JoinableThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  JoinableThread(const JoinableThread&) = delete;
  JoinableThread& operator=(const JoinableThread&) = delete;

  bool joinable() const { return thread_.joinable(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

/// A bounded multi-producer multi-consumer blocking queue. Producers block
/// (Push) or fail fast (TryPush) when the queue is at capacity; consumers
/// block until an item arrives, the queue closes, or a caller-supplied wake
/// condition fires. Close() makes every subsequent push fail and lets
/// consumers drain the remaining items before Pop/PopBatch report exhaustion.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    KANON_CHECK(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  size_t capacity() const { return capacity_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Blocks while the queue is full. Returns false iff the queue was closed
  /// (the item is dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (returns false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Appends up to `max` items to `out` in FIFO order, blocking until at
  /// least one is available, the queue is closed and empty, or `wake`
  /// (checked under the queue lock) returns true. Returns the number of
  /// items appended; 0 means the queue is drained-and-closed or `wake`
  /// fired on an empty queue.
  size_t PopBatch(std::vector<T>* out, size_t max,
                  const std::function<bool()>& wake = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] {
      return closed_ || !items_.empty() || (wake != nullptr && wake());
    });
    const size_t n = std::min(max, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Closes the queue: pushes fail from now on, blocked producers and
  /// consumers wake. Items already queued remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Wakes blocked consumers so they re-evaluate their `wake` condition
  /// (used to deliver out-of-band control signals, e.g. "publish now").
  void Notify() { not_empty_.notify_all(); }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kanon

#endif  // KANON_COMMON_THREAD_H_
