#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace kanon {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  KANON_DCHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  KANON_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  // Avoid log(0).
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  KANON_DCHECK(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF on the continuous bounded-Pareto approximation of the Zipf
  // distribution; exact normalization is unnecessary for workload skew.
  const double u = NextDouble();
  double rank;
  if (std::abs(s - 1.0) < 1e-9) {
    rank = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
  } else {
    const double t =
        std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
    rank = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s)) - 1.0;
  }
  auto idx = static_cast<uint64_t>(rank);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace kanon
