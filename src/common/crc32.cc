#include "common/crc32.h"

namespace kanon {

namespace {

struct Crc32Tables {
  uint32_t t[4][256];

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (c >> 1) ^ 0xEDB88320u : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const Crc32Tables& tab = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    crc = tab.t[3][crc & 0xffu] ^ tab.t[2][(crc >> 8) & 0xffu] ^
          tab.t[1][(crc >> 16) & 0xffu] ^ tab.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xffu];
  }
  return ~crc;
}

}  // namespace kanon
