#ifndef KANON_COMMON_TIMER_H_
#define KANON_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kanon {

/// Simple monotonic wall-clock stopwatch used by the bench harnesses.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kanon

#endif  // KANON_COMMON_TIMER_H_
