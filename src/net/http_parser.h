#ifndef KANON_NET_HTTP_PARSER_H_
#define KANON_NET_HTTP_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kanon::net {

/// One parsed HTTP/1.x request. Header names are stored lower-cased (field
/// names are case-insensitive per RFC 9110); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;            // "GET", "POST", ... (verbatim)
  std::string target;            // raw request target ("/release?k1=20")
  std::string path;              // target up to '?', percent-decoded
  std::string query;             // raw query string after '?' ("" if none)
  int minor_version = 1;         // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;        // after Connection / version defaulting

  /// Case-insensitive header lookup (`name` must be lower-case). Returns
  /// nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// Tuning limits of the incremental parser. Every buffer the parser grows
/// is bounded by one of these, so a malicious peer cannot balloon memory.
struct HttpParserLimits {
  size_t max_request_line = 8 << 10;   // method + target + version
  size_t max_header_bytes = 32 << 10;  // total header block
  size_t max_headers = 100;            // individual fields
  size_t max_body_bytes = 8 << 20;     // Content-Length ceiling
};

/// An incremental, allocation-bounded HTTP/1.0 / 1.1 request parser.
///
/// Feed() consumes bytes as they arrive from the socket — a request torn
/// across arbitrarily many reads parses identically to one delivered whole,
/// and bytes beyond the first complete request stay buffered so pipelined
/// requests parse back-to-back without re-feeding. Typical loop:
///
///   parser.Append(data);                 // bytes from one read()
///   HttpRequest req;
///   while (parser.Next(&req) == HttpParseResult::kComplete) {
///     ... handle req ...
///   }
///   if (parser.result() == HttpParseResult::kError) { respond 4xx/5xx }
///
/// The parser handles Content-Length bodies; Transfer-Encoding is refused
/// with 501 (the serving protocol never needs chunked uploads: NDJSON
/// batches have a known length). Parse errors are sticky: once kError the
/// connection must be answered with error_http_status() and closed.
enum class HttpParseResult { kNeedMore, kComplete, kError };

class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  /// Buffers `data` (bytes read off the wire) for parsing.
  void Append(std::string_view data);

  /// Attempts to parse the next complete request out of the buffered
  /// bytes. kComplete fills `*out` and consumes the request's bytes;
  /// kNeedMore leaves the partial request buffered; kError latches the
  /// error (see error() / error_http_status()).
  HttpParseResult Next(HttpRequest* out);

  /// The latched result of the most recent Next() call.
  HttpParseResult result() const { return result_; }

  /// Why parsing failed (meaningful only after kError)...
  const Status& error() const { return error_; }
  /// ...and the HTTP status code to answer with (400, 413, 431, 501, 505).
  int error_http_status() const { return error_http_status_; }

  /// True while a request is partially buffered (distinguishes an idle
  /// keep-alive connection from one torn mid-request, for timeouts).
  bool mid_request() const { return !buffer_.empty(); }

  /// True exactly once per request whose headers carried
  /// "Expect: 100-continue" and whose body has not fully arrived — the
  /// server answers with an interim "100 Continue" so clients (curl) send
  /// the body immediately instead of waiting out their expect timeout.
  bool ConsumePendingContinue() {
    const bool pending = pending_continue_;
    pending_continue_ = false;
    return pending;
  }

  /// Total bytes currently buffered (diagnostics).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  HttpParseResult Fail(int http_status, Status status);

  HttpParserLimits limits_;
  std::string buffer_;
  HttpParseResult result_ = HttpParseResult::kNeedMore;
  Status error_;
  int error_http_status_ = 0;
  bool pending_continue_ = false;
  bool continue_announced_ = false;
};

/// Splits a raw query string ("a=1&b=x%20y") into decoded key/value pairs.
/// '+' decodes to space; malformed %-escapes are kept verbatim.
std::vector<std::pair<std::string, std::string>> ParseQuery(
    std::string_view query);

/// Returns the first value for `key` in parsed query params, or nullptr.
const std::string* QueryParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view key);

/// Percent-decodes `s` ('+' becomes space). Malformed escapes pass through.
std::string UrlDecode(std::string_view s);

}  // namespace kanon::net

#endif  // KANON_NET_HTTP_PARSER_H_
