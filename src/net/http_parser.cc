#include "net/http_parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace kanon::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// A "token" per RFC 9110 — what methods and header names are made of.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool AllTokenChars(std::string_view s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(), [](char c) { return IsTokenChar(c); });
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

void HttpParser::Append(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

HttpParseResult HttpParser::Fail(int http_status, Status status) {
  result_ = HttpParseResult::kError;
  error_ = std::move(status);
  error_http_status_ = http_status;
  return result_;
}

HttpParseResult HttpParser::Next(HttpRequest* out) {
  if (result_ == HttpParseResult::kError) return result_;  // sticky

  // Locate the end of the header block. Lines are CRLF-terminated; a bare
  // LF is tolerated (robustness: curl --data-binary pipelines and hand-
  // written test traffic), so scan for "\n\r\n" / "\n\n" after any LF.
  size_t header_end = std::string::npos;  // index one past the blank line
  size_t pos = buffer_.find('\n');
  while (pos != std::string::npos) {
    if (pos + 1 < buffer_.size() && buffer_[pos + 1] == '\n') {
      header_end = pos + 2;
      break;
    }
    if (pos + 2 < buffer_.size() && buffer_[pos + 1] == '\r' &&
        buffer_[pos + 2] == '\n') {
      header_end = pos + 3;
      break;
    }
    pos = buffer_.find('\n', pos + 1);
  }

  if (header_end == std::string::npos) {
    // Still inside the header block: bound the damage a peer can do by
    // never terminating it.
    const size_t first_eol = buffer_.find('\n');
    if (first_eol == std::string::npos &&
        buffer_.size() > limits_.max_request_line) {
      return Fail(414, Status::InvalidArgument("request line too long"));
    }
    if (buffer_.size() > limits_.max_request_line + limits_.max_header_bytes) {
      return Fail(431, Status::InvalidArgument("header block too large"));
    }
    return result_ = HttpParseResult::kNeedMore;
  }
  if (header_end > limits_.max_request_line + limits_.max_header_bytes) {
    return Fail(431, Status::InvalidArgument("header block too large"));
  }

  // --- Request line -------------------------------------------------------
  std::string_view head(buffer_.data(), header_end);
  size_t line_end = head.find('\n');
  std::string_view request_line = head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  if (request_line.size() > limits_.max_request_line) {
    return Fail(414, Status::InvalidArgument("request line too long"));
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, Status::InvalidArgument("malformed request line: " +
                                             std::string(request_line)));
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!AllTokenChars(method) || target.empty() || target.front() != '/') {
    return Fail(400, Status::InvalidArgument("malformed request line: " +
                                             std::string(request_line)));
  }
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      (version[7] != '0' && version[7] != '1')) {
    return Fail(505, Status::InvalidArgument("unsupported version: " +
                                             std::string(version)));
  }

  HttpRequest req;
  req.method = std::string(method);
  req.target = std::string(target);
  req.minor_version = version[7] - '0';
  const size_t qmark = target.find('?');
  req.path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    req.query = std::string(target.substr(qmark + 1));
  }

  // --- Header fields ------------------------------------------------------
  size_t cursor = line_end + 1;
  while (cursor < header_end) {
    size_t eol = head.find('\n', cursor);
    std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) break;  // blank line: end of headers
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos ||
        !AllTokenChars(line.substr(0, colon))) {
      return Fail(400, Status::InvalidArgument("malformed header field: " +
                                               std::string(line)));
    }
    if (req.headers.size() >= limits_.max_headers) {
      return Fail(431, Status::InvalidArgument("too many header fields"));
    }
    req.headers.emplace_back(ToLower(line.substr(0, colon)),
                             std::string(Trim(line.substr(colon + 1))));
  }

  // --- Body ---------------------------------------------------------------
  if (req.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, Status::Unimplemented(
                         "transfer-encoding not supported; send "
                         "Content-Length-framed bodies"));
  }
  size_t content_length = 0;
  if (const std::string* cl = req.FindHeader("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0') {
      return Fail(400, Status::InvalidArgument("bad Content-Length: " + *cl));
    }
    content_length = static_cast<size_t>(v);
    if (content_length > limits_.max_body_bytes) {
      return Fail(413, Status::InvalidArgument(
                           "body of " + *cl + " bytes exceeds limit of " +
                           std::to_string(limits_.max_body_bytes)));
    }
  }
  if (buffer_.size() - header_end < content_length) {
    const std::string* expect = req.FindHeader("expect");
    if (expect != nullptr && ToLower(*expect) == "100-continue" &&
        !continue_announced_) {
      pending_continue_ = true;
      continue_announced_ = true;
    }
    return result_ = HttpParseResult::kNeedMore;
  }
  req.body.assign(buffer_, header_end, content_length);
  continue_announced_ = false;

  // --- Connection persistence ---------------------------------------------
  std::string connection;
  if (const std::string* c = req.FindHeader("connection")) {
    connection = ToLower(*c);
  }
  req.keep_alive = req.minor_version >= 1 ? connection != "close"
                                          : connection == "keep-alive";

  buffer_.erase(0, header_end + content_length);
  *out = std::move(req);
  return result_ = HttpParseResult::kComplete;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexVal(s[i + 1]) >= 0 &&
               HexVal(s[i + 2]) >= 0) {
      out += static_cast<char>(HexVal(s[i + 1]) * 16 + HexVal(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQuery(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(UrlDecode(pair), "");
      } else {
        params.emplace_back(UrlDecode(pair.substr(0, eq)),
                            UrlDecode(pair.substr(eq + 1)));
      }
    }
    start = end + 1;
  }
  return params;
}

const std::string* QueryParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace kanon::net
