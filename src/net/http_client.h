#ifndef KANON_NET_HTTP_CLIENT_H_
#define KANON_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kanon::net {

/// One parsed HTTP response on the client side.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// A minimal blocking HTTP/1.1 client over one keep-alive connection —
/// enough to drive the server from tests, the serve_smoke bench and the
/// examples without external tooling. Not a general client: no TLS, no
/// redirects, no chunked responses (the server never sends them).
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(HttpClient&& other) noexcept { *this = std::move(other); }
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (IPv4 numeric or "localhost") with the given
  /// socket send/receive timeout.
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_s = 10.0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Issues one request and blocks for the full response. Interim 100
  /// responses are consumed transparently. The connection survives for
  /// reuse unless the server answered Connection: close.
  StatusOr<ClientResponse> Get(const std::string& target);
  StatusOr<ClientResponse> Post(const std::string& target,
                                std::string_view body,
                                const std::string& content_type =
                                    "application/x-ndjson");

 private:
  StatusOr<ClientResponse> RoundTrip(const std::string& request_bytes);

  int fd_ = -1;
  std::string host_;
  std::string residual_;  // bytes read past the previous response
};

}  // namespace kanon::net

#endif  // KANON_NET_HTTP_CLIENT_H_
