#ifndef KANON_NET_HTTP_CLIENT_H_
#define KANON_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kanon::net {

/// One parsed HTTP response on the client side.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// A blocking HTTP/1.1 client over one keep-alive connection — drives the
/// server from tests, the serve_smoke bench, the examples, and the
/// replication tailer. Not a general client: no TLS, no redirects, no
/// chunked responses (the server never sends them). Every socket operation
/// — including connect — is bounded by the timeout passed to Connect, so a
/// peer that dies mid-request surfaces as an IoError instead of a hang.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }

  HttpClient(HttpClient&& other) noexcept { *this = std::move(other); }
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to host:port (IPv4 numeric or "localhost"). `timeout_s`
  /// bounds the connect itself (non-blocking connect + poll) as well as
  /// every later send/receive on the socket.
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_s = 10.0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Issues one request and blocks for the full response. Interim 100
  /// responses are consumed transparently. The connection survives for
  /// reuse unless the server answered Connection: close.
  StatusOr<ClientResponse> Get(const std::string& target);
  StatusOr<ClientResponse> Post(const std::string& target,
                                std::string_view body,
                                const std::string& content_type =
                                    "application/x-ndjson");

 private:
  StatusOr<ClientResponse> RoundTrip(const std::string& request_bytes);

  int fd_ = -1;
  std::string host_;
  std::string residual_;  // bytes read past the previous response
};

/// Caps for GetWithRetry.
struct RetryOptions {
  int max_attempts = 3;            // total tries, including the first
  double backoff_initial_s = 0.05; // sleep before the 2nd try
  double backoff_max_s = 1.0;      // exponential backoff cap
  double timeout_s = 5.0;          // per-attempt connect + socket timeout
};

/// Issues a GET, (re)connecting `client` to host:port as needed, and
/// retries *transport* failures (connect refused, timeout, torn response)
/// up to max_attempts with capped exponential backoff. HTTP error statuses
/// are returned as-is — a 503 is an answer, not a transport fault, and the
/// caller decides how to react to it. On a transport failure the
/// connection is already closed (RoundTrip's contract), so the next
/// attempt reconnects from scratch.
StatusOr<ClientResponse> GetWithRetry(HttpClient& client,
                                      const std::string& host, uint16_t port,
                                      const std::string& target,
                                      const RetryOptions& retry = {});

}  // namespace kanon::net

#endif  // KANON_NET_HTTP_CLIENT_H_
