#ifndef KANON_NET_REPLICATION_H_
#define KANON_NET_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/status.h"
#include "net/anon_http.h"
#include "net/http_client.h"
#include "service/follower_core.h"

namespace kanon::net {

/// Replication state machine of a follower, exported one-hot in /metrics.
enum class ReplState : int {
  kBootstrapping = 0,  // fetching manifest / downloading a checkpoint
  kFollowing,          // tailing the leader WAL; within the staleness bound
  kLagging,            // connected but past --max-staleness-ms
  kDisconnected,       // leader unreachable; backing off before a retry
};
constexpr int kNumReplStates = 4;
const char* ReplStateName(ReplState state);

/// Everything /repl/manifest reports, parsed.
struct LeaderManifest {
  size_t shards = 1;
  size_t shard = 0;
  size_t dim = 0;
  size_t base_k = 0;
  size_t leaf_capacity_factor = 0;
  size_t max_fanout = 0;
  bool compact = true;
  bool lsm = false;
  /// DP grid height the leader bins publication cells at (0 = DP off).
  /// Adopted by the follower so both sides' DP releases share one grid.
  size_t dp_height = 10;
  uint64_t durable_lsn = 0;
  uint64_t epoch = 0;
  uint64_t epoch_records = 0;
  uint64_t checkpoint_lsn = 0;  // 0 = no checkpoint, bootstrap is WAL-only
  CheckpointManifest checkpoint;  // valid only when checkpoint_lsn > 0
};

/// One /repl/wal response: raw CRC-framed entries plus the tailing state
/// machine's inputs from the X-Kanon-* headers.
struct WalBatch {
  std::string frames;
  uint64_t first_lsn = 0;
  uint64_t last_lsn = 0;      // 0 = empty batch
  uint64_t durable_lsn = 0;   // leader's fsynced horizon at response time
  uint64_t epoch = 0;         // leader's latest published epoch (0 = none)
  uint64_t epoch_records = 0; // records covered by that epoch
};

/// Typed HTTP client for the leader's /repl endpoints. Maps protocol
/// signals onto Status codes the state machine dispatches on:
///   410 Gone            -> NotFound     (artifact superseded: re-fetch the
///                                        manifest / re-bootstrap)
///   other HTTP >= 400   -> Unavailable  (leader up but not serving this;
///                                        retry with backoff)
///   transport faults    -> IoError      (as reported by HttpClient —
///                                        includes timeouts and torn
///                                        responses; reconnect + backoff)
/// A torn or CRC-damaged body is never partially surfaced: the caller
/// re-requests everything after its last applied LSN.
class ReplicationClient {
 public:
  ReplicationClient(std::string host, uint16_t port, size_t shard,
                    double timeout_s);

  StatusOr<LeaderManifest> FetchManifest();
  StatusOr<std::string> FetchCheckpoint(uint64_t lsn);
  StatusOr<WalBatch> FetchWal(uint64_t from_lsn, uint64_t max_lsn,
                              size_t max_bytes);

  /// Drops the connection so the next fetch reconnects from scratch.
  void Disconnect() { client_.Close(); }

  uint64_t bytes_total() const {
    return bytes_total_.load(std::memory_order_relaxed);
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  StatusOr<ClientResponse> Fetch(const std::string& target);

  const std::string host_;
  const uint16_t port_;
  const size_t shard_;
  const double timeout_s_;
  HttpClient client_;
  std::atomic<uint64_t> bytes_total_{0};
};

struct FollowerOptions {
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;
  size_t shard = 0;
  /// Core publication/staleness knobs. The anonymizer configuration inside
  /// is overwritten from the leader manifest at bootstrap (base_k and tree
  /// shape must match the leader or releases would diverge).
  FollowerCoreOptions core;
  /// Directory for the checkpoint download (must exist or be creatable).
  std::string scratch_dir = "/tmp";
  /// With stale reads rejected, /release answers 503 past the staleness
  /// bound instead of serving with a degraded-health header.
  bool reject_stale_reads = false;
  double request_timeout_s = 5.0;
  /// Idle poll cadence while caught up.
  uint64_t poll_interval_ms = 50;
  /// Reconnect backoff: initial, doubling per consecutive failure, capped,
  /// with up to 25% multiplicative jitter (decorrelates a replica fleet
  /// re-connecting after a leader restart).
  uint64_t backoff_initial_ms = 100;
  uint64_t backoff_max_ms = 5000;
  uint64_t jitter_seed = 0;  // 0 = seed from the clock
  size_t max_batch_bytes = 1u << 20;
  /// Retry-After attached to follower 503s.
  unsigned retry_after_s = 1;
  /// DP serving knobs (see AnonHttpOptions): the follower keeps its own
  /// budget ledger, but its releases are byte-identical to the leader's at
  /// the same publication point and epsilon — provided the operator gave
  /// both the same noise-key secret (dp_key). An empty dp_key means a
  /// random per-process key: still DP, not leader-identical.
  double dp_budget = 4.0;
  double dp_lifetime_budget = 0.0;
  std::string dp_key;
  bool dp_metrics_utility = false;
  Env* env = nullptr;  // nullptr = Env::Default()
};

/// A read replica: bootstraps a FollowerCore from the leader's checkpoint,
/// tails its WAL, and publishes epoch snapshots — all on one background
/// thread, resilient to every fault the protocol can express. The thread
/// never exits on error: leader down means capped-backoff reconnects, a
/// GC'd WAL range means an automatic re-bootstrap, a torn batch means
/// re-requesting from the last applied LSN. Serving threads read the core
/// lock-free the whole time.
class ReplicatedFollower {
 public:
  ReplicatedFollower(Domain domain, FollowerOptions options);
  ~ReplicatedFollower();

  ReplicatedFollower(const ReplicatedFollower&) = delete;
  ReplicatedFollower& operator=(const ReplicatedFollower&) = delete;

  /// Starts the replication thread. Returns immediately; bootstrap and
  /// catch-up happen in the background (watch state() / healthz).
  void Start();
  void Stop();

  ReplState state() const {
    return static_cast<ReplState>(state_.load(std::memory_order_acquire));
  }
  FollowerCore* core() { return core_.get(); }
  const FollowerCore* core() const { return core_.get(); }

  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_total() const { return client_.bytes_total(); }
  /// Leader's durable LSN / epoch as of the last successful poll.
  uint64_t leader_durable_lsn() const {
    return leader_durable_lsn_.load(std::memory_order_relaxed);
  }
  uint64_t leader_epoch() const {
    return leader_epoch_.load(std::memory_order_relaxed);
  }
  /// LSNs known durable on the leader but not yet applied here.
  uint64_t lag_lsn() const {
    const uint64_t durable = leader_durable_lsn();
    const uint64_t applied = core_->applied_lsn();
    return durable > applied ? durable - applied : 0;
  }

  const FollowerOptions& options() const { return options_; }

 private:
  enum class TailResult {
    kImmediate,  // a batch was applied; poll again right away
    kIdle,       // caught up; idle-wait one poll interval
    kFault,      // transport/decode fault; backoff before retrying
  };

  void RunLoop();
  /// One bootstrap attempt; true on success (core adopted a starting
  /// point), false on a retryable failure (backoff applied by the caller).
  bool BootstrapOnce();
  /// One tail poll against the leader's /repl/wal.
  TailResult TailOnce();
  void OnTransportFault(const Status& status);
  /// Sleeps the capped-exponential-backoff delay (interruptible by Stop).
  void Backoff();
  bool SleepFor(uint64_t ms);  // false when Stop interrupted the wait
  void SetState(ReplState state) {
    state_.store(static_cast<int>(state), std::memory_order_release);
  }

  const FollowerOptions options_;
  std::unique_ptr<FollowerCore> core_;
  ReplicationClient client_;
  Env* const env_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  std::atomic<int> state_{static_cast<int>(ReplState::kBootstrapping)};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> leader_durable_lsn_{0};
  std::atomic<uint64_t> leader_epoch_{0};
  std::atomic<uint64_t> leader_epoch_records_{0};

  // Replication-thread-only state (no synchronization needed).
  bool bootstrapped_ = false;
  bool lsm_warned_ = false;
  uint64_t consecutive_failures_ = 0;
  uint64_t jitter_state_ = 0;
};

/// The HTTP face of a follower: read endpoints served lock-free off the
/// core's published snapshot, writes redirected to the leader, health and
/// metrics wired to the replication state machine.
///
///   GET  /release, /release/query   RenderRelease off the follower's
///         snapshot — byte-identical to the leader's at the same epoch —
///         plus X-Kanon-Staleness-Ms (ms since last caught up;
///         -1 = never). Past --max-staleness-ms: either served anyway
///         (default) or 503 with --stale-reads=reject.
///   GET  /release/dp, /release/dp/query   DP reads off the same snapshot
///         via the shared DpServing: at a leader publication point the
///         body is byte-identical to the leader's for the same epsilon
///         when both share one noise-key secret. Budget-ledgered locally,
///         staleness-gated like the other reads.
///   POST /ingest   421 Misdirected Request + Location on the leader: a
///         replica never takes writes.
///   GET  /healthz  200 only while following within the staleness bound;
///         503 (with Retry-After) while bootstrapping, lagging or
///         disconnected.
///   GET  /metrics  kanon_repl_* series: one-hot state, lag in LSNs and
///         ms, reconnect/bootstrap/batch/byte counters, applied LSN and
///         published epoch.
class FollowerFrontend {
 public:
  explicit FollowerFrontend(ReplicatedFollower* follower)
      : follower_(follower),
        dp_(DpServingOptions{follower->options().dp_budget,
                             follower->options().dp_lifetime_budget,
                             follower->options().dp_key,
                             follower->options().dp_metrics_utility,
                             follower->options().retry_after_s}) {}

  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleReadRelease(const HttpRequest& request);
  HttpResponse HandleDpRead(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  /// Non-null when the staleness policy forbids serving this read.
  std::unique_ptr<HttpResponse> StaleRejection(double staleness) const;

  ReplicatedFollower* const follower_;
  DpServing dp_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace kanon::net

#endif  // KANON_NET_REPLICATION_H_
