#include "net/anon_http.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/timer.h"
#include "common/version.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "metrics/histogram.h"
#include "net/http_parser.h"
#include "net/http_status.h"

namespace kanon::net {

namespace {

/// %.17g round-trips every finite double exactly, so two serializations of
/// the same release compare byte-equal.
std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FmtDoubleShort(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string_view TrimWs(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// First query key not in `allowed`, or nullptr. Read endpoints reject
/// unknown parameters instead of ignoring them: a typo (epsilo=0.1) that
/// silently serves the default would look honored while it is not.
const std::string* UnknownQueryParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : params) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) return &key;
  }
  return nullptr;
}

/// Strict boolean flag: only "0" and "1" are meaningful; anything else is
/// the caller asking for something this server does not do.
Status ParseFlagParam(const std::string& value, std::string_view name,
                      bool* out) {
  if (value != "0" && value != "1") {
    return Status::InvalidArgument(std::string(name) +
                                   " must be 0 or 1, got '" + value + "'");
  }
  *out = value == "1";
  return Status::OK();
}

/// The shared "no shard has published yet" 503, with the caller's
/// configured Retry-After cadence.
HttpResponse NothingPublished(unsigned retry_after_s) {
  HttpResponse resp = HttpResponse::FromStatus(Status::Unavailable(
      "no shard has published yet; ingest at least base_k records"));
  for (auto& [name, value] : resp.headers) {
    if (name == "Retry-After") value = std::to_string(retry_after_s);
  }
  return resp;
}

/// Parses the optional epsilon of the DP endpoints. Absent epsilon means
/// 1.0. There is deliberately no seed parameter: the noise is drawn from
/// the server-held secret key, and a client-choosable seed would let the
/// client regenerate and subtract the noise.
Status ParseEpsilonParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    double* epsilon) {
  *epsilon = 1.0;
  if (const std::string* v = QueryParam(params, "epsilon")) {
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0' || !std::isfinite(parsed) ||
        parsed <= 0.0) {
      return Status::InvalidArgument(
          "epsilon must be a positive finite number, got '" + *v + "'");
    }
    *epsilon = parsed;
  }
  return Status::OK();
}

/// Parses a comma-separated list of exactly `dim` finite numbers (the
/// per-dimension bounds of a DP range query).
Status ParseBoundsParam(const std::string& value, size_t dim,
                        std::string_view name, std::vector<double>* out) {
  out->clear();
  size_t start = 0;
  while (start <= value.size()) {
    size_t end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    const std::string field(
        TrimWs(std::string_view(value.data() + start, end - start)));
    char* parse_end = nullptr;
    const double v = std::strtod(field.c_str(), &parse_end);
    if (field.empty() || parse_end == field.c_str() || *parse_end != '\0' ||
        !std::isfinite(v)) {
      return Status::InvalidArgument(std::string(name) +
                                     " has an unparseable number in '" +
                                     value + "'");
    }
    out->push_back(v);
    start = end + 1;
  }
  if (out->size() != dim) {
    return Status::InvalidArgument(
        std::string(name) + " has " + std::to_string(out->size()) +
        " values, want " + std::to_string(dim) + " (one per dimension)");
  }
  return Status::OK();
}

}  // namespace

void AppendPromMetric(std::string* out, std::string_view name,
                      std::string_view type, double value,
                      std::string_view labels) {
  out->append("# TYPE ");
  out->append(name);
  out->append(" ");
  out->append(type);
  out->append("\n");
  out->append(name);
  if (!labels.empty()) {
    out->append("{");
    out->append(labels);
    out->append("}");
  }
  out->append(" ");
  out->append(FmtDoubleShort(value));
  out->append("\n");
}

const char* EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kIngest: return "ingest";
    case Endpoint::kRelease: return "release";
    case Endpoint::kDp: return "dp";
    case Endpoint::kHealthz: return "healthz";
    case Endpoint::kMetrics: return "metrics";
    case Endpoint::kRepl: return "repl";
    case Endpoint::kOther: return "other";
  }
  return "other";
}

Status ParseRecordLine(std::string_view line, size_t dim,
                       std::vector<double>* point, int32_t* sensitive) {
  point->clear();
  *sensitive = 0;
  std::string_view s = TrimWs(line);
  const bool json_array = !s.empty() && s.front() == '[';
  if (json_array) {
    if (s.back() != ']') {
      return Status::InvalidArgument("unterminated JSON array: " +
                                     std::string(line));
    }
    s.remove_prefix(1);
    s.remove_suffix(1);
  }
  // Both accepted forms are now a comma-separated list of numbers.
  size_t start = 0;
  const std::string flat(s);
  while (start <= flat.size()) {
    size_t end = flat.find(',', start);
    if (end == std::string::npos) end = flat.size();
    const std::string field(TrimWs(
        std::string_view(flat.data() + start, end - start)));
    if (field.empty()) {
      return Status::InvalidArgument("empty field in record: " +
                                     std::string(line));
    }
    char* parse_end = nullptr;
    const double v = std::strtod(field.c_str(), &parse_end);
    if (parse_end == field.c_str() || *parse_end != '\0' || !std::isfinite(v)) {
      return Status::InvalidArgument("unparseable number '" + field +
                                     "' in record: " + std::string(line));
    }
    point->push_back(v);
    start = end + 1;
  }
  if (point->size() == dim + 1) {
    *sensitive = static_cast<int32_t>(point->back());
    point->pop_back();
  } else if (point->size() != dim) {
    return Status::InvalidArgument(
        "record has " + std::to_string(point->size()) + " values, want " +
        std::to_string(dim) + " (or " + std::to_string(dim + 1) +
        " with a sensitive code): " + std::string(line));
  }
  return Status::OK();
}

std::string PartitionsJson(const PartitionSet& ps, bool with_rids) {
  std::string out = "[";
  for (size_t p = 0; p < ps.partitions.size(); ++p) {
    const Partition& part = ps.partitions[p];
    if (p != 0) out += ",";
    out += "{\"count\":" + std::to_string(part.size()) + ",\"lo\":[";
    for (size_t i = 0; i < part.box.dim(); ++i) {
      if (i != 0) out += ",";
      out += FmtDouble(part.box.lo(i));
    }
    out += "],\"hi\":[";
    for (size_t i = 0; i < part.box.dim(); ++i) {
      if (i != 0) out += ",";
      out += FmtDouble(part.box.hi(i));
    }
    out += "]";
    if (with_rids) {
      out += ",\"rids\":[";
      for (size_t i = 0; i < part.rids.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(part.rids[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]";
  return out;
}

AnonHttpFrontend::AnonHttpFrontend(ShardedAnonymizationService* service,
                                   AnonHttpOptions options)
    : service_(service),
      options_(options),
      dp_(DpServingOptions{options_.dp_budget, options_.dp_lifetime_budget,
                           options_.dp_key, options_.dp_metrics_utility,
                           options_.retry_after_s}) {}

HttpResponse AnonHttpFrontend::Handle(const HttpRequest& request) {
  Timer timer;
  Endpoint endpoint = Endpoint::kOther;
  HttpResponse response = Route(request, &endpoint);
  Observe(endpoint, response.status, timer.ElapsedMillis());
  return response;
}

HttpResponse AnonHttpFrontend::Route(const HttpRequest& request,
                                     Endpoint* endpoint) {
  const std::string& path = request.path;
  if (path == "/ingest") {
    *endpoint = Endpoint::kIngest;
    if (request.method != "POST") {
      return HttpResponse::Json(
          405, HttpErrorBody(Status::InvalidArgument(
                   "POST records to /ingest (got " + request.method + ")")));
    }
    return HandleIngest(request);
  }
  if (path == "/release" || path == "/release/query") {
    *endpoint = Endpoint::kRelease;
    if (request.method != "GET") {
      return HttpResponse::Json(
          405, HttpErrorBody(Status::InvalidArgument(
                   "GET releases from " + path + " (got " + request.method +
                   ")")));
    }
    return HandleRelease(request);
  }
  if (path == "/release/dp" || path == "/release/dp/query") {
    *endpoint = Endpoint::kDp;
    if (request.method != "GET") {
      return HttpResponse::Json(
          405, HttpErrorBody(Status::InvalidArgument(
                   "GET releases from " + path + " (got " + request.method +
                   ")")));
    }
    return HandleDp(request);
  }
  if (path == "/healthz") {
    *endpoint = Endpoint::kHealthz;
    return HandleHealthz();
  }
  if (path == "/metrics") {
    *endpoint = Endpoint::kMetrics;
    return HandleMetrics();
  }
  if (path == "/repl/manifest" || path == "/repl/wal" ||
      path.rfind("/repl/checkpoint/", 0) == 0) {
    *endpoint = Endpoint::kRepl;
    if (request.method != "GET") {
      return HttpResponse::Json(
          405, HttpErrorBody(Status::InvalidArgument(
                   "GET " + path + " (got " + request.method + ")")));
    }
    return HandleRepl(request);
  }
  *endpoint = Endpoint::kOther;
  return HttpResponse::FromStatus(
      Status::NotFound("no route for " + path +
                       " (have /ingest, /release, /release/query, "
                       "/release/dp, /release/dp/query, /healthz, /metrics, "
                       "/repl/*)"));
}

HttpResponse AnonHttpFrontend::HandleIngest(const HttpRequest& request) {
  const size_t dim = service_->dim();
  std::vector<double> point;
  int32_t sensitive = 0;
  size_t accepted = 0;
  size_t line_number = 0;

  std::string_view body = request.body;
  size_t start = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string_view::npos) end = body.size();
    const std::string_view line =
        TrimWs(body.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;

    if (Status s = ParseRecordLine(line, dim, &point, &sensitive); !s.ok()) {
      return HttpResponse::Json(
          400, "{\"error\":\"InvalidArgument\",\"message\":\"" +
                   JsonEscape(s.message()) + "\",\"line\":" +
                   std::to_string(line_number) + ",\"accepted\":" +
                   std::to_string(accepted) + "}");
    }
    Status s = service_->Ingest(point, sensitive);
    if (!s.ok()) {
      // The service answers FailedPrecondition while stopping; over the
      // wire that is indistinguishable from (and handled like) temporary
      // unavailability. Backpressure and degradation keep their codes and
      // flow through the shared map: kResourceExhausted -> 429,
      // kUnavailable -> 503.
      if (s.code() == StatusCode::kFailedPrecondition) {
        s = Status::Unavailable("service is stopping: " + s.message());
      }
      HttpResponse resp = HttpResponse::Json(
          HttpStatusFromStatusCode(s.code()),
          "{\"error\":\"" + std::string(StatusCodeToString(s.code())) +
              "\",\"message\":\"" + JsonEscape(s.message()) +
              "\",\"line\":" + std::to_string(line_number) +
              ",\"accepted\":" + std::to_string(accepted) + "}");
      resp.headers.emplace_back("Retry-After",
                                std::to_string(options_.retry_after_s));
      accepted_.fetch_add(accepted, std::memory_order_relaxed);
      return resp;
    }
    ++accepted;
  }
  accepted_.fetch_add(accepted, std::memory_order_relaxed);
  return HttpResponse::Json(
      200, "{\"accepted\":" + std::to_string(accepted) + "}");
}

HttpResponse AnonHttpFrontend::HandleRelease(const HttpRequest& request) {
  return RenderRelease(service_->CurrentStitched().get(), request,
                       options_.retry_after_s);
}

HttpResponse AnonHttpFrontend::HandleDp(const HttpRequest& request) {
  const auto stitched = service_->CurrentStitched();
  if (request.path == "/release/dp") {
    return dp_.HandleRelease(stitched.get(), request);
  }
  return dp_.HandleQuery(stitched.get(), request);
}

HttpResponse RenderRelease(const StitchedSnapshot* stitched,
                           const HttpRequest& request,
                           unsigned retry_after_s) {
  const auto params = ParseQuery(request.query);
  if (const std::string* bad =
          UnknownQueryParam(params, {"k1", "summary", "rids"})) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "unknown query parameter '" + *bad + "' (have k1, summary, rids)"));
  }
  size_t k1 = 0;  // 0 = the snapshot's base granularity
  bool summary = false;
  bool with_rids = false;
  if (const std::string* v = QueryParam(params, "k1")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' || parsed == 0) {
      return HttpResponse::FromStatus(
          Status::InvalidArgument("k1 must be a positive integer, got '" +
                                  *v + "'"));
    }
    k1 = static_cast<size_t>(parsed);
  }
  if (const std::string* v = QueryParam(params, "summary")) {
    if (Status s = ParseFlagParam(*v, "summary", &summary); !s.ok()) {
      return HttpResponse::FromStatus(s);
    }
  }
  if (const std::string* v = QueryParam(params, "rids")) {
    if (Status s = ParseFlagParam(*v, "rids", &with_rids); !s.ok()) {
      return HttpResponse::FromStatus(s);
    }
  }

  if (stitched == nullptr) return NothingPublished(retry_after_s);
  const StitchedInfo& info = stitched->info();
  const size_t effective_k1 = std::max(k1, info.base_k);
  const PartitionSet release = stitched->Release(effective_k1);

  // Per-shard epochs make staleness observable: shard i's slice of this
  // release is exactly as fresh as shard_epochs[i] (0 = not covered yet).
  std::string shard_epochs = "[";
  for (size_t i = 0; i < info.shard_epochs.size(); ++i) {
    if (i != 0) shard_epochs += ",";
    shard_epochs += std::to_string(info.shard_epochs[i]);
  }
  shard_epochs += "]";

  std::string body = "{\"epoch\":" + std::to_string(info.epoch) +
                     ",\"records\":" + std::to_string(info.records) +
                     ",\"base_k\":" + std::to_string(info.base_k) +
                     ",\"k1\":" + std::to_string(effective_k1) +
                     ",\"shards\":" + std::to_string(info.num_shards) +
                     ",\"shard_epochs\":" + shard_epochs +
                     ",\"num_partitions\":" +
                     std::to_string(release.num_partitions()) +
                     ",\"min_partition\":" +
                     std::to_string(release.min_partition_size()) +
                     ",\"max_partition\":" +
                     std::to_string(release.max_partition_size()) +
                     ",\"avg_ncp\":" +
                     FmtDouble(AverageBoxNcp(release, stitched->domain()));
  if (!summary) {
    body += ",\"partitions\":" + PartitionsJson(release, with_rids);
  }
  body += "}";
  return HttpResponse::Json(200, std::move(body));
}

namespace {

/// The serving key: the configured shared secret, or a fresh random key
/// when none is configured (releases stay DP; they are just not
/// reproducible across independently started processes).
DpNoiseKey ServingKey(const std::string& secret) {
  return secret.empty() ? RandomDpNoiseKey() : DeriveDpNoiseKey(secret);
}

}  // namespace

DpServing::DpServing(const DpServingOptions& options)
    : key_(ServingKey(options.key_secret)),
      utility_in_metrics_(options.utility_in_metrics),
      retry_after_s_(options.retry_after_s),
      ledger_([&options] {
        DpLedgerOptions ledger_options;
        ledger_options.budget = options.budget;
        ledger_options.lifetime_budget = options.lifetime_budget;
        return ledger_options;
      }()) {}

StatusOr<std::shared_ptr<const DpRelease>> DpServing::Acquire(
    const StitchedSnapshot& stitched, double epsilon) {
  size_t height = 0;
  KANON_ASSIGN_OR_RETURN(DpCells cells, stitched.SummedDpCells(&height));
  const StitchedInfo& info = stitched.info();
  // The ledger memoizes per (release point, epsilon): only the first build
  // of a distinct epsilon draws noise and is charged.
  return ledger_.Acquire(info.epoch, info.records, epsilon, [&] {
    return BuildDpRelease(*cells, stitched.domain(), height, epsilon, key_);
  });
}

HttpResponse DpServing::HandleRelease(const StitchedSnapshot* stitched,
                                      const HttpRequest& request) {
  const auto params = ParseQuery(request.query);
  if (const std::string* bad = UnknownQueryParam(params, {"epsilon"})) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "unknown query parameter '" + *bad + "' (have epsilon)"));
  }
  double epsilon = 0.0;
  if (Status s = ParseEpsilonParam(params, &epsilon); !s.ok()) {
    return HttpResponse::FromStatus(s);
  }
  if (stitched == nullptr) return NothingPublished(retry_after_s_);
  auto release_or = Acquire(*stitched, epsilon);
  if (!release_or.ok()) {
    // kResourceExhausted -> 429 (budget spent for this release point),
    // kFailedPrecondition -> 409 (publisher runs with DP off).
    HttpResponse resp = HttpResponse::FromStatus(release_or.status());
    for (auto& [name, value] : resp.headers) {
      if (name == "Retry-After") value = std::to_string(retry_after_s_);
    }
    return resp;
  }
  // The epoch is transport metadata, not part of the released body: a
  // stitched epoch is the sum of per-shard epochs and would differ across
  // shard counts even when the released data is byte-identical.
  HttpResponse resp = HttpResponse::Json(200, (*release_or)->body);
  resp.headers.emplace_back("X-Kanon-Epoch",
                            std::to_string(stitched->info().epoch));
  return resp;
}

HttpResponse DpServing::HandleQuery(const StitchedSnapshot* stitched,
                                    const HttpRequest& request) {
  const auto params = ParseQuery(request.query);
  if (const std::string* bad =
          UnknownQueryParam(params, {"epsilon", "lo", "hi"})) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "unknown query parameter '" + *bad + "' (have lo, hi, epsilon)"));
  }
  double epsilon = 0.0;
  if (Status s = ParseEpsilonParam(params, &epsilon); !s.ok()) {
    return HttpResponse::FromStatus(s);
  }
  const std::string* lo_s = QueryParam(params, "lo");
  const std::string* hi_s = QueryParam(params, "hi");
  if (lo_s == nullptr || hi_s == nullptr) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "lo and hi are required (comma-separated per-dimension bounds)"));
  }
  if (stitched == nullptr) return NothingPublished(retry_after_s_);
  const size_t dim = stitched->domain().dim();
  std::vector<double> lo;
  std::vector<double> hi;
  if (Status s = ParseBoundsParam(*lo_s, dim, "lo", &lo); !s.ok()) {
    return HttpResponse::FromStatus(s);
  }
  if (Status s = ParseBoundsParam(*hi_s, dim, "hi", &hi); !s.ok()) {
    return HttpResponse::FromStatus(s);
  }
  for (size_t d = 0; d < dim; ++d) {
    if (lo[d] > hi[d]) {
      return HttpResponse::FromStatus(Status::InvalidArgument(
          "lo[" + std::to_string(d) + "] > hi[" + std::to_string(d) +
          "]: empty query box"));
    }
  }
  auto release_or = Acquire(*stitched, epsilon);
  if (!release_or.ok()) {
    HttpResponse resp = HttpResponse::FromStatus(release_or.status());
    for (auto& [name, value] : resp.headers) {
      if (name == "Retry-After") value = std::to_string(retry_after_s_);
    }
    return resp;
  }
  const DpRelease& release = **release_or;
  const Mbr query = Mbr::FromBounds(lo, hi);
  // Answered from the memoized noisy hierarchy only — post-processing of
  // an already-released hierarchy, so repeat queries cost no budget and
  // raw records are never touched.
  const double count = DpRangeCount(release.counts, release.grid, query);
  std::string body = "{\"semantics\":\"dp\",\"epsilon\":" +
                     FmtDouble(release.epsilon) + ",\"lo\":[";
  for (size_t d = 0; d < dim; ++d) {
    if (d != 0) body += ",";
    body += FmtDouble(lo[d]);
  }
  body += "],\"hi\":[";
  for (size_t d = 0; d < dim; ++d) {
    if (d != 0) body += ",";
    body += FmtDouble(hi[d]);
  }
  body += "],\"count\":" + FmtDouble(count) + "}";
  HttpResponse resp = HttpResponse::Json(200, std::move(body));
  resp.headers.emplace_back("X-Kanon-Epoch",
                            std::to_string(stitched->info().epoch));
  return resp;
}

void DpServing::AppendMetrics(std::string* out,
                              const StitchedSnapshot* stitched) {
  AppendPromMetric(out, "kanon_dp_budget", "gauge", ledger_.budget());
  AppendPromMetric(out, "kanon_dp_lifetime_budget", "gauge",
                   ledger_.lifetime_budget());
  AppendPromMetric(out, "kanon_dp_lifetime_spent", "gauge",
                   ledger_.LifetimeSpent());
  AppendPromMetric(out, "kanon_dp_releases_total", "counter",
                   static_cast<double>(ledger_.releases_built()));
  AppendPromMetric(out, "kanon_dp_cache_hits_total", "counter",
                   static_cast<double>(ledger_.cache_hits()));
  AppendPromMetric(out, "kanon_dp_rejected_total", "counter",
                   static_cast<double>(ledger_.rejected()));
  AppendPromMetric(out, "kanon_dp_evicted_total", "counter",
                   static_cast<double>(ledger_.evicted()));
  if (stitched == nullptr) return;
  const StitchedInfo& info = stitched->info();
  AppendPromMetric(out, "kanon_dp_budget_spent", "gauge",
                   ledger_.Spent(info.epoch, info.records));
  size_t height = 0;
  const auto cells_or = stitched->SummedDpCells(&height);
  if (!cells_or.ok()) return;  // DP cell accounting disabled on the publisher
  AppendPromMetric(out, "kanon_dp_height", "gauge",
                   static_cast<double>(height));

  // Fig-12-style utility pair, cached per release point and evaluated at a
  // fixed internal epsilon=1 release off the server key, so repeat scrapes
  // are deterministic and never draw on the request budget. It is still a
  // truth-derived statistic (|est - truth| / truth against exact counts),
  // published *outside* the DP accounting — which is why it is off unless
  // the operator opted in for a trusted-plane /metrics (DESIGN.md §17).
  if (!utility_in_metrics_) return;
  DpUtilityReport report;
  {
    std::lock_guard<std::mutex> lock(util_mu_);
    if (!util_valid_ || util_epoch_ != info.epoch ||
        util_records_ != info.records) {
      const DpGrid grid(stitched->domain(), height);
      const DpHierarchyCounts dp =
          NoisyConsistentHierarchy(**cells_or, height, 1.0, key_);
      util_ = EvaluateReleaseUtility(**cells_or, grid, dp,
                                     stitched->Release(info.base_k));
      util_valid_ = true;
      util_epoch_ = info.epoch;
      util_records_ = info.records;
    }
    report = util_;
  }
  AppendPromMetric(out, "kanon_release_utility_queries", "gauge",
                   static_cast<double>(report.num_queries));
  out->append("# TYPE kanon_release_avg_range_error gauge\n");
  out->append("kanon_release_avg_range_error{semantics=\"kanon\"} " +
              FmtDoubleShort(report.kanon_avg_rel_error) + "\n");
  out->append("kanon_release_avg_range_error{semantics=\"dp\"} " +
              FmtDoubleShort(report.dp_avg_rel_error) + "\n");
}

HttpResponse AnonHttpFrontend::HandleHealthz() {
  const ServiceHealth health = service_->health();
  const auto stitched = service_->CurrentStitched();
  std::string body = "{\"health\":\"" +
                     std::string(ServiceHealthName(health)) + "\"";
  body += ",\"shards\":[";
  for (size_t i = 0; i < service_->num_shards(); ++i) {
    if (i != 0) body += ",";
    body += "\"" +
            std::string(ServiceHealthName(service_->shard(i)->health())) +
            "\"";
  }
  body += "]";
  if (stitched != nullptr) {
    const StitchedInfo& info = stitched->info();
    body += ",\"epoch\":" + std::to_string(info.epoch) +
            ",\"records\":" + std::to_string(info.records);
  }
  if (health != ServiceHealth::kServing) {
    // Reads still work in every state; only ingest is down. Say so.
    body += ",\"reads\":\"available\",\"degraded_reason\":\"" +
            JsonEscape(service_->degraded_reason()) + "\"";
  }
  body += "}";
  HttpResponse resp = HttpResponse::Json(
      health == ServiceHealth::kServing ? 200 : 503, std::move(body));
  if (resp.status == 503) {
    // Degraded healthz backs probers off like every other 503.
    resp.headers.emplace_back("Retry-After",
                              std::to_string(options_.retry_after_s));
  }
  return resp;
}

HttpResponse AnonHttpFrontend::HandleRepl(const HttpRequest& request) {
  const DurabilityOptions& durability = service_->options().service.durability;
  if (!durability.enabled()) {
    return HttpResponse::FromStatus(Status::FailedPrecondition(
        "replication requires a durable leader (start with --wal-dir)"));
  }
  const auto params = ParseQuery(request.query);
  size_t shard = 0;
  if (const std::string* v = QueryParam(params, "shard")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' ||
        parsed >= service_->num_shards()) {
      return HttpResponse::FromStatus(Status::InvalidArgument(
          "shard must be in [0, " + std::to_string(service_->num_shards()) +
          "), got '" + *v + "'"));
    }
    shard = static_cast<size_t>(parsed);
  }
  const std::string dir = ShardWalDir(durability.wal_dir, shard);
  Env* env = options_.repl_env != nullptr ? options_.repl_env : Env::Default();
  if (request.path == "/repl/manifest") {
    return HandleReplManifest(dir, shard, env);
  }
  if (request.path == "/repl/wal") {
    return HandleReplWal(request, dir, shard, env);
  }
  return HandleReplCheckpoint(dir, request.path, env);
}

namespace {

/// 410 Gone with the standard error-body shape: the requested replication
/// artifact was superseded (checkpoint GC'd, WAL range truncated). The
/// client's move is a fresh /repl/manifest, not a retry.
HttpResponse ReplGone(const std::string& message) {
  return HttpResponse::Json(
      410, "{\"error\":\"Gone\",\"message\":\"" + JsonEscape(message) + "\"}");
}

}  // namespace

HttpResponse AnonHttpFrontend::HandleReplManifest(const std::string& dir,
                                                  size_t shard, Env* env) {
  const AnonymizationService* svc = service_->shard(shard);
  const ServiceStats stats = svc->Stats();
  uint64_t epoch = 0;
  uint64_t epoch_records = 0;
  if (const auto snapshot = svc->CurrentSnapshot()) {
    epoch = snapshot->info().epoch;
    epoch_records = snapshot->info().records;
  }
  const ServiceOptions& opts = service_->options().service;
  std::string body =
      "{\"shards\":" + std::to_string(service_->num_shards()) +
      ",\"shard\":" + std::to_string(shard) +
      ",\"dim\":" + std::to_string(service_->dim()) +
      ",\"base_k\":" + std::to_string(opts.anonymizer.base_k) +
      ",\"leaf_capacity_factor\":" +
      std::to_string(opts.anonymizer.leaf_capacity_factor) +
      ",\"max_fanout\":" + std::to_string(opts.anonymizer.max_fanout) +
      ",\"compact\":" + std::string(opts.anonymizer.compact ? "1" : "0") +
      ",\"lsm\":" + std::string(opts.lsm.enabled() ? "1" : "0") +
      ",\"dp_height\":" + std::to_string(opts.dp_height) +
      ",\"durable_lsn\":" + std::to_string(stats.wal_synced_lsn) +
      ",\"epoch\":" + std::to_string(epoch) +
      ",\"epoch_records\":" + std::to_string(epoch_records);
  const auto manifest_or = LoadManifest(dir, env);
  if (manifest_or.ok()) {
    const CheckpointManifest& m = *manifest_or;
    body += ",\"checkpoint_lsn\":" + std::to_string(m.checkpoint_lsn) +
            ",\"checkpoint\":{\"file\":\"" + JsonEscape(m.file) +
            "\",\"page_size\":" + std::to_string(m.page_size) +
            ",\"min_leaf\":" + std::to_string(m.min_leaf) +
            ",\"max_leaf\":" + std::to_string(m.max_leaf) +
            ",\"max_fanout\":" + std::to_string(m.max_fanout) +
            ",\"first_page\":" + std::to_string(m.snapshot.first_page) +
            ",\"byte_size\":" + std::to_string(m.snapshot.byte_size) +
            ",\"record_count\":" + std::to_string(m.snapshot.record_count) +
            ",\"crc32\":" + std::to_string(m.snapshot.crc32) + "}";
  } else if (manifest_or.status().code() == StatusCode::kNotFound) {
    body += ",\"checkpoint_lsn\":0";  // fresh leader: bootstrap is WAL-only
  } else {
    return HttpResponse::FromStatus(manifest_or.status());
  }
  body += "}";
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse AnonHttpFrontend::HandleReplCheckpoint(const std::string& dir,
                                                    const std::string& path,
                                                    Env* env) {
  const std::string lsn_str = path.substr(std::strlen("/repl/checkpoint/"));
  char* end = nullptr;
  const unsigned long long lsn = std::strtoull(lsn_str.c_str(), &end, 10);
  if (end == lsn_str.c_str() || *end != '\0' || lsn == 0) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "expected /repl/checkpoint/<lsn>, got '" + path + "'"));
  }
  const auto manifest_or = LoadManifest(dir, env);
  if (!manifest_or.ok()) {
    if (manifest_or.status().code() == StatusCode::kNotFound) {
      return ReplGone("no checkpoint exists yet; re-fetch /repl/manifest");
    }
    return HttpResponse::FromStatus(manifest_or.status());
  }
  const CheckpointManifest& m = *manifest_or;
  if (m.checkpoint_lsn != lsn) {
    return ReplGone("checkpoint at lsn " + lsn_str +
                    " was superseded (current: lsn " +
                    std::to_string(m.checkpoint_lsn) +
                    "); re-fetch /repl/manifest");
  }
  std::string bytes;
  const Status read = ReadFileToString(env, dir + "/" + m.file, &bytes);
  if (!read.ok()) {
    if (read.code() == StatusCode::kNotFound) {
      // GC'd between the manifest load and this read.
      return ReplGone("checkpoint file " + m.file +
                      " disappeared mid-fetch; re-fetch /repl/manifest");
    }
    return HttpResponse::FromStatus(read);
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "application/octet-stream";
  resp.body = std::move(bytes);
  resp.headers.emplace_back("X-Kanon-Checkpoint-Lsn", std::to_string(lsn));
  return resp;
}

HttpResponse AnonHttpFrontend::HandleReplWal(const HttpRequest& request,
                                             const std::string& dir,
                                             size_t shard, Env* env) {
  const auto params = ParseQuery(request.query);
  uint64_t from_lsn = 0;
  if (const std::string* v = QueryParam(params, "from_lsn")) {
    char* end = nullptr;
    from_lsn = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') from_lsn = 0;
  }
  if (from_lsn == 0) {
    return HttpResponse::FromStatus(Status::InvalidArgument(
        "from_lsn must be a positive integer (the first LSN wanted)"));
  }
  size_t max_bytes = 1u << 20;
  if (const std::string* v = QueryParam(params, "max_bytes")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (end != v->c_str() && *end == '\0' && parsed > 0) {
      max_bytes = static_cast<size_t>(parsed);
    }
  }
  max_bytes = std::min(max_bytes, options_.repl_max_batch_bytes);
  uint64_t max_lsn = 0;  // 0 = durable horizon only
  if (const std::string* v = QueryParam(params, "max_lsn")) {
    char* end = nullptr;
    max_lsn = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') max_lsn = 0;
  }

  const AnonymizationService* svc = service_->shard(shard);
  const uint64_t durable_lsn = svc->Stats().wal_synced_lsn;
  // Never ship past the durable horizon: un-fsynced entries could vanish in
  // a crash and have their LSNs reassigned — a follower that applied the
  // old bytes could never tell.
  uint64_t cap = durable_lsn;
  if (max_lsn > 0) cap = std::min(cap, max_lsn);

  auto range_or = ReadWalRange(dir, service_->dim(), from_lsn, cap,
                               max_bytes, env);
  if (!range_or.ok()) {
    if (range_or.status().code() == StatusCode::kNotFound) {
      return ReplGone(range_or.status().message());
    }
    return HttpResponse::FromStatus(range_or.status());
  }
  WalRangeResult range = std::move(range_or).value();

  // The epoch target rides along on every poll, so a caught-up follower
  // needs no second request to learn the leader published again. Read
  // *after* the WAL so the advertised (epoch, records) never refers to
  // entries the follower cannot fetch on its next poll.
  uint64_t epoch = 0;
  uint64_t epoch_records = 0;
  if (const auto snapshot = svc->CurrentSnapshot()) {
    epoch = snapshot->info().epoch;
    epoch_records = snapshot->info().records;
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "application/octet-stream";
  resp.body = std::move(range.frames);
  resp.headers.emplace_back("X-Kanon-First-Lsn",
                            std::to_string(range.first_lsn));
  resp.headers.emplace_back("X-Kanon-Last-Lsn", std::to_string(range.last_lsn));
  resp.headers.emplace_back("X-Kanon-Durable-Lsn",
                            std::to_string(durable_lsn));
  resp.headers.emplace_back("X-Kanon-Epoch", std::to_string(epoch));
  resp.headers.emplace_back("X-Kanon-Epoch-Records",
                            std::to_string(epoch_records));
  return resp;
}

HttpResponse AnonHttpFrontend::HandleMetrics() {
  const ShardedServiceStats sharded = service_->Stats();
  const ServiceStats& stats = sharded.total;
  std::string out;
  out.reserve(16 << 10);

  // Build identity first: dashboards join every other series against it.
  out += "# TYPE kanon_build_info gauge\n";
  out += "kanon_build_info{version=\"" + std::string(kVersionString) +
         "\",backend=\"" + backend_label_ + "\"} 1\n";
  AppendPromMetric(&out, "kanon_shards", "gauge",
               static_cast<double>(service_->num_shards()));

  // Serving-layer counters (aggregated across shards; per-shard series
  // with a shard label follow below).
  AppendPromMetric(&out, "kanon_enqueued_total", "counter",
               static_cast<double>(stats.enqueued));
  AppendPromMetric(&out, "kanon_rejected_total", "counter",
               static_cast<double>(stats.rejected));
  AppendPromMetric(&out, "kanon_inserted_total", "counter",
               static_cast<double>(stats.inserted));
  AppendPromMetric(&out, "kanon_batches_total", "counter",
               static_cast<double>(stats.batches));
  AppendPromMetric(&out, "kanon_snapshots_total", "counter",
               static_cast<double>(stats.snapshots));
  AppendPromMetric(&out, "kanon_queue_depth", "gauge",
               static_cast<double>(stats.queue_depth));
  AppendPromMetric(&out, "kanon_snapshot_age_seconds", "gauge",
               stats.snapshot_age_s);
  AppendPromMetric(&out, "kanon_last_snapshot_build_ms", "gauge",
               stats.last_snapshot_build_ms);

  // Durability counters (all zero without a WAL; exported regardless so
  // dashboards need no conditional wiring).
  AppendPromMetric(&out, "kanon_durable", "gauge", stats.durable ? 1 : 0);
  AppendPromMetric(&out, "kanon_recovered_total", "counter",
               static_cast<double>(stats.recovered));
  AppendPromMetric(&out, "kanon_wal_appended_total", "counter",
               static_cast<double>(stats.wal_appended));
  AppendPromMetric(&out, "kanon_wal_bytes_total", "counter",
               static_cast<double>(stats.wal_bytes));
  AppendPromMetric(&out, "kanon_wal_syncs_total", "counter",
               static_cast<double>(stats.wal_syncs));
  AppendPromMetric(&out, "kanon_wal_synced_lsn", "gauge",
               static_cast<double>(stats.wal_synced_lsn));
  AppendPromMetric(&out, "kanon_checkpoints_total", "counter",
               static_cast<double>(stats.checkpoints));
  AppendPromMetric(&out, "kanon_last_checkpoint_lsn", "gauge",
               static_cast<double>(stats.last_checkpoint_lsn));
  AppendPromMetric(&out, "kanon_wal_retries_total", "counter",
               static_cast<double>(stats.wal_retries));
  AppendPromMetric(&out, "kanon_wal_recoveries_total", "counter",
               static_cast<double>(stats.wal_recoveries));
  AppendPromMetric(&out, "kanon_unavailable_total", "counter",
               static_cast<double>(stats.unavailable));
  AppendPromMetric(&out, "kanon_dropped_total", "counter",
               static_cast<double>(stats.dropped));
  AppendPromMetric(&out, "kanon_wal_poisoned", "gauge",
               stats.wal_poisoned ? 1 : 0);

  // Write-absorbing LSM ingest tier (all zero while the memtable is off).
  AppendPromMetric(&out, "kanon_memtable_enabled", "gauge",
               stats.memtable_enabled ? 1 : 0);
  AppendPromMetric(&out, "kanon_memtable_records", "gauge",
               static_cast<double>(stats.memtable_records));
  AppendPromMetric(&out, "kanon_memtable_bytes", "gauge",
               static_cast<double>(stats.memtable_bytes));
  AppendPromMetric(&out, "kanon_merges_total", "counter",
               static_cast<double>(stats.merges));
  AppendPromMetric(&out, "kanon_delta_merges_total", "counter",
               static_cast<double>(stats.delta_merges));
  AppendPromMetric(&out, "kanon_merge_escalations_total", "counter",
               static_cast<double>(stats.merge_escalations));
  AppendPromMetric(&out, "kanon_last_merge_ms", "gauge", stats.last_merge_ms);
  AppendPromMetric(&out, "kanon_merge_ms_total", "counter",
               stats.merge_ms_total);
  AppendPromMetric(&out, "kanon_snapshot_build_ms_total", "counter",
               stats.snapshot_build_ms_total);
  AppendPromMetric(&out, "kanon_fragments_reused_total", "counter",
               static_cast<double>(stats.fragments_reused));
  AppendPromMetric(&out, "kanon_fragments_built_total", "counter",
               static_cast<double>(stats.fragments_built));
  // Ingest-thread time attribution: what the memtable actually absorbs.
  AppendPromMetric(&out, "kanon_ingest_queue_wait_ms_total", "counter",
               stats.queue_wait_ms);
  AppendPromMetric(&out, "kanon_ingest_apply_ms_total", "counter",
               stats.apply_ms);

  // Differentially private release subsystem: ledger counters plus the
  // per-release-point utility pair (k-anon vs DP range-query error).
  dp_.AppendMetrics(&out, service_->CurrentStitched().get());

  // Health as a one-hot state vector (the Prometheus idiom for enums).
  out += "# TYPE kanon_health gauge\n";
  for (const ServiceHealth h : {ServiceHealth::kServing,
                                ServiceHealth::kDegraded,
                                ServiceHealth::kStopped}) {
    out += "kanon_health{state=\"" + std::string(ServiceHealthName(h)) +
           "\"} " + (stats.health == h ? "1" : "0") + "\n";
  }

  // Per-shard series. Only the counters that vary interestingly across
  // shards get a labeled breakdown; everything else stays aggregate to
  // keep the exposition small at high shard counts.
  struct PerShardSeries {
    const char* name;
    const char* type;
    uint64_t ServiceStats::* field;
  };
  static constexpr PerShardSeries kPerShard[] = {
      {"kanon_shard_enqueued_total", "counter", &ServiceStats::enqueued},
      {"kanon_shard_rejected_total", "counter", &ServiceStats::rejected},
      {"kanon_shard_inserted_total", "counter", &ServiceStats::inserted},
      {"kanon_shard_snapshots_total", "counter", &ServiceStats::snapshots},
      {"kanon_shard_recovered_total", "counter", &ServiceStats::recovered},
      {"kanon_shard_wal_appended_total", "counter",
       &ServiceStats::wal_appended},
      {"kanon_shard_memtable_records", "gauge",
       &ServiceStats::memtable_records},
      {"kanon_shard_memtable_bytes", "gauge", &ServiceStats::memtable_bytes},
      {"kanon_shard_merges_total", "counter", &ServiceStats::merges},
  };
  for (const PerShardSeries& series : kPerShard) {
    out += "# TYPE " + std::string(series.name) + " " + series.type + "\n";
    for (size_t i = 0; i < sharded.shards.size(); ++i) {
      out += std::string(series.name) + "{shard=\"" + std::to_string(i) +
             "\"} " + std::to_string(sharded.shards[i].*series.field) + "\n";
    }
  }
  out += "# TYPE kanon_shard_queue_depth gauge\n";
  for (size_t i = 0; i < sharded.shards.size(); ++i) {
    out += "kanon_shard_queue_depth{shard=\"" + std::to_string(i) + "\"} " +
           std::to_string(sharded.shards[i].queue_depth) + "\n";
  }
  out += "# TYPE kanon_shard_degraded gauge\n";
  for (size_t i = 0; i < sharded.shards.size(); ++i) {
    out += "kanon_shard_degraded{shard=\"" + std::to_string(i) + "\"} " +
           (sharded.shards[i].health == ServiceHealth::kDegraded ? "1"
                                                                 : "0") +
           "\n";
  }

  // Merge-duration distribution, one histogram per shard (each shard's
  // single-writer thread merges independently, so mixing their samples
  // would blur exactly the signal the label preserves). Buckets come from
  // the shard's bounded sample ring; _count is the ring's exact size while
  // _sum is reconstructed from bucket midpoints (the ring keeps no total).
  out += "# TYPE kanon_merge_duration_ms histogram\n";
  for (size_t i = 0; i < sharded.shards.size(); ++i) {
    const ServiceStats& s = sharded.shards[i];
    if (s.merge_samples == 0) continue;
    const std::string shard_label = "shard=\"" + std::to_string(i) + "\"";
    const Histogram& hist = s.merge_duration_ms;
    const double n = static_cast<double>(s.merge_samples);
    double cumulative = 0.0;
    double sum = 0.0;
    for (size_t b = 0; b < hist.num_bins(); ++b) {
      cumulative += hist.mass[b] * n;
      const double le =
          hist.lo + hist.BinWidth() * static_cast<double>(b + 1);
      sum += hist.mass[b] * n * (le - hist.BinWidth() / 2.0);
      out += "kanon_merge_duration_ms_bucket{" + shard_label + ",le=\"" +
             FmtDoubleShort(le) + "\"} " +
             std::to_string(static_cast<uint64_t>(cumulative + 0.5)) + "\n";
    }
    out += "kanon_merge_duration_ms_bucket{" + shard_label +
           ",le=\"+Inf\"} " + std::to_string(s.merge_samples) + "\n";
    out += "kanon_merge_duration_ms_sum{" + shard_label + "} " +
           FmtDoubleShort(sum) + "\n";
    out += "kanon_merge_duration_ms_count{" + shard_label + "} " +
           std::to_string(s.merge_samples) + "\n";
  }

  // Listener counters, when the server wired itself in.
  if (server_stats_ != nullptr) {
    const HttpServerStats http = server_stats_();
    AppendPromMetric(&out, "kanon_http_connections_accepted_total", "counter",
                 static_cast<double>(http.connections_accepted));
    AppendPromMetric(&out, "kanon_http_connections_refused_total", "counter",
                 static_cast<double>(http.connections_refused));
    AppendPromMetric(&out, "kanon_http_open_connections", "gauge",
                 static_cast<double>(http.open_connections));
    AppendPromMetric(&out, "kanon_http_parse_errors_total", "counter",
                 static_cast<double>(http.parse_errors));
    AppendPromMetric(&out, "kanon_http_timeouts_total", "counter",
                 static_cast<double>(http.timeouts));
  }

  // Per-endpoint request counts and latency distribution. The histogram is
  // built from the bounded sample ring via metrics/histogram's equi-width
  // SampleHistogram, rendered cumulatively the Prometheus way.
  out += "# TYPE kanon_http_requests_total counter\n";
  for (size_t e = 0; e < kNumEndpoints; ++e) {
    EndpointMetrics& em = metrics_[e];
    std::lock_guard<std::mutex> lock(em.mu);
    for (const auto& [code, count] : em.by_code) {
      out += "kanon_http_requests_total{endpoint=\"" +
             std::string(EndpointName(static_cast<Endpoint>(e))) +
             "\",code=\"" + std::to_string(code) + "\"} " +
             std::to_string(count) + "\n";
    }
  }
  out += "# TYPE kanon_http_request_latency_ms histogram\n";
  for (size_t e = 0; e < kNumEndpoints; ++e) {
    EndpointMetrics& em = metrics_[e];
    std::lock_guard<std::mutex> lock(em.mu);
    if (em.count == 0) continue;
    const std::string label =
        std::string(EndpointName(static_cast<Endpoint>(e)));
    const Histogram hist =
        SampleHistogram(em.latencies_ms, options_.latency_bins);
    const double n = static_cast<double>(em.latencies_ms.size());
    double cumulative = 0.0;
    for (size_t b = 0; b < hist.num_bins(); ++b) {
      cumulative += hist.mass[b] * n;
      const double le = hist.lo + hist.BinWidth() * static_cast<double>(b + 1);
      out += "kanon_http_request_latency_ms_bucket{endpoint=\"" + label +
             "\",le=\"" + FmtDoubleShort(le) + "\"} " +
             std::to_string(static_cast<uint64_t>(cumulative + 0.5)) + "\n";
    }
    out += "kanon_http_request_latency_ms_bucket{endpoint=\"" + label +
           "\",le=\"+Inf\"} " + std::to_string(em.latencies_ms.size()) + "\n";
    out += "kanon_http_request_latency_ms_sum{endpoint=\"" + label + "\"} " +
           FmtDoubleShort(em.sum_ms) + "\n";
    out += "kanon_http_request_latency_ms_count{endpoint=\"" + label +
           "\"} " + std::to_string(em.count) + "\n";
  }

  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = std::move(out);
  return resp;
}

void AnonHttpFrontend::Observe(Endpoint endpoint, int http_status,
                               double latency_ms) {
  EndpointMetrics& em = metrics_[static_cast<size_t>(endpoint)];
  std::lock_guard<std::mutex> lock(em.mu);
  ++em.by_code[http_status];
  ++em.count;
  em.sum_ms += latency_ms;
  if (em.latencies_ms.size() < options_.latency_samples) {
    em.latencies_ms.push_back(latency_ms);
  } else if (!em.latencies_ms.empty()) {
    em.latencies_ms[em.next] = latency_ms;
    em.next = (em.next + 1) % em.latencies_ms.size();
  }
}

}  // namespace kanon::net
