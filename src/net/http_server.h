#ifndef KANON_NET_HTTP_SERVER_H_
#define KANON_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread.h"
#include "common/thread_pool.h"
#include "net/http_parser.h"
#include "net/poller.h"

namespace kanon::net {

/// What a handler returns. The server adds Content-Length, Connection and
/// Date-free framing; handlers fill status, media type and body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers, e.g. {"Retry-After", "1"} on 429/503.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Forces Connection: close after this response.
  bool close_connection = false;

  static HttpResponse Json(int status, std::string body);
  static HttpResponse Text(int status, std::string body);
  /// An error response via the shared StatusCode -> HTTP map
  /// (net/http_status.h), with the canonical JSON error body.
  static HttpResponse FromStatus(const Status& status);
};

/// Serializes `resp` into wire bytes. `keep_alive` decides the Connection
/// header (and is overridden by resp.close_connection). Exposed for tests.
std::string SerializeResponse(const HttpResponse& resp, bool keep_alive);

/// Request handler. Runs on a worker-pool thread (or on the event loop
/// when the pool is disabled); must be thread-safe and may block — e.g. on
/// the ingest queue's kBlock backpressure — without stalling other
/// connections.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// IPv4 listen address ("127.0.0.1", "0.0.0.0"; "localhost" accepted).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Handler worker threads (the PR-4 ThreadPool). 0 runs handlers inline
  /// on the event loop — only sensible for never-blocking handlers.
  size_t num_threads = 4;
  /// Connections beyond this are answered 503 and closed at accept.
  size_t max_connections = 1024;
  /// Parser bounds; max_body_bytes is the --max-body-bytes CLI knob.
  HttpParserLimits parser;
  /// A keep-alive connection with no request in flight is closed after
  /// this long...
  double idle_timeout_s = 60.0;
  /// ...a connection torn mid-request is answered 408 and closed after
  /// this long...
  double read_timeout_s = 10.0;
  /// ...and one that will not accept response bytes is closed after this.
  double write_timeout_s = 10.0;
  /// Shutdown(): how long in-flight requests may take to finish before
  /// their connections are force-closed.
  double drain_timeout_s = 10.0;
  /// False forces the portable poll() event loop even where epoll exists
  /// (tests exercise both paths on Linux this way).
  bool use_epoll = true;
};

/// Point-in-time counters of the listener (all cumulative since Start).
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t requests = 0;             // complete requests parsed
  uint64_t responses = 0;            // responses fully written
  uint64_t parse_errors = 0;
  uint64_t timeouts = 0;             // idle + read + write expiries
  size_t open_connections = 0;
};

/// A dependency-free, multi-threaded HTTP/1.1 server: one event-loop
/// thread multiplexes all sockets through epoll (poll fallback); complete
/// requests are dispatched to a worker pool; responses flow back to the
/// loop over a completion queue and a self-pipe wakeup. Connections are
/// strictly pipelined-in-order: one request per connection is in flight at
/// a time, later pipelined requests stay buffered until the response ships.
///
///   accept -> [event loop: read/parse] -> ThreadPool handler
///                     ^                        |
///                     +--- completion queue <--+
///
/// The loop never blocks on a handler and handlers never touch sockets, so
/// a handler blocked on ingest backpressure delays only its own
/// connection. Shutdown() is the graceful-drain half of SIGTERM handling:
/// stop accepting, cut idle connections, let in-flight requests finish
/// (bounded by drain_timeout_s), then join the loop and the pool.
class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();  // implies Shutdown()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the event loop + worker pool. On success
  /// port() returns the actual bound port (the --port 0 contract).
  Status Start();

  uint16_t port() const { return port_; }
  /// The actually-bound port — identical to port(), under the name the
  /// serving CLI and scripts use when started with --listen :0.
  uint16_t bound_port() const { return port_; }
  const std::string& host() const { return options_.host; }
  bool using_epoll() const { return using_epoll_; }

  /// Graceful drain (see class comment). Idempotent, thread-safe, callable
  /// from a signal-watching thread.
  void Shutdown();

  HttpServerStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    uint64_t gen = 0;      // matches completions to this conn, not a
                           // later one that reused the fd
    HttpParser parser;
    std::string out;       // response bytes not yet written
    size_t out_off = 0;
    bool handling = false; // a request of this conn is in the pool
    bool close_after_write = false;
    bool saw_eof = false;  // peer half-closed; no more request bytes come
    Clock::time_point deadline = Clock::time_point::max();
  };

  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    std::string bytes;
    bool close_after = false;
  };

  void Loop();
  void AcceptPending();
  void HandleConnEvent(int fd, const PollEvent& ev);
  /// Parses buffered bytes and dispatches at most one request.
  void Advance(int fd, Conn* conn);
  void Dispatch(int fd, uint64_t gen, HttpRequest request);
  void QueueResponse(int fd, Conn* conn, std::string bytes, bool close_after);
  /// Writes pending bytes; on completion re-arms reading (or closes).
  void FlushWrites(int fd, Conn* conn);
  void DrainCompletions();
  void SweepTimeouts(Clock::time_point now);
  void DestroyConn(int fd);
  void Wake();
  int NextTimeoutMs(Clock::time_point now) const;
  void UpdateReadDeadline(Conn* conn);

  const HttpServerOptions options_;
  const HttpHandler handler_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  uint16_t port_ = 0;
  bool using_epoll_ = false;

  std::unique_ptr<Poller> poller_;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<int, Conn> conns_;  // event-loop thread only
  uint64_t next_gen_ = 0;                // event-loop thread only

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;

  // Stats (written by the loop thread; read from anywhere).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<size_t> open_connections_{0};

  JoinableThread loop_thread_;  // last member: joins before the rest dies
};

}  // namespace kanon::net

#endif  // KANON_NET_HTTP_SERVER_H_
