#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#define KANON_NET_HAVE_EPOLL 1
#include <sys/epoll.h>
#endif

namespace kanon::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

#if KANON_NET_HAVE_EPOLL

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }
  bool is_epoll() const override { return true; }

  Status Add(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, read, write);
  }
  Status Modify(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  void Remove(int fd) override {
    epoll_event ev{};
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  StatusOr<size_t> Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    out->clear();
    epoll_event events[128];
    int n;
    do {
      n = epoll_wait(epfd_, events, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(ev);
    }
    return static_cast<size_t>(n);
  }

 private:
  Status Ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (write) ev.events |= EPOLLOUT;
    if (epoll_ctl(epfd_, op, fd, &ev) != 0) return Errno("epoll_ctl");
    return Status::OK();
  }

  int epfd_;
};

#endif  // KANON_NET_HAVE_EPOLL

class PollPoller final : public Poller {
 public:
  bool is_epoll() const override { return false; }

  Status Add(int fd, bool read, bool write) override {
    if (index_.count(fd) != 0) {
      return Status::InvalidArgument("fd already registered");
    }
    index_[fd] = fds_.size();
    fds_.push_back({fd, Events(read, write), 0});
    return Status::OK();
  }

  Status Modify(int fd, bool read, bool write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return Status::NotFound("fd not registered");
    fds_[it->second].events = Events(read, write);
    return Status::OK();
  }

  void Remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const size_t i = it->second;
    index_.erase(it);
    if (i + 1 != fds_.size()) {  // swap-with-last keeps the scan dense
      fds_[i] = fds_.back();
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
  }

  StatusOr<size_t> Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    out->clear();
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Errno("poll");
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(ev);
    }
    return out->size();
  }

 private:
  static short Events(bool read, bool write) {
    short ev = 0;
    if (read) ev |= POLLIN;
    if (write) ev |= POLLOUT;
    return ev;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, size_t> index_;
};

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool prefer_epoll) {
#if KANON_NET_HAVE_EPOLL
  if (prefer_epoll) {
    auto poller = std::make_unique<EpollPoller>();
    if (poller->ok()) return poller;
  }
#else
  (void)prefer_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace kanon::net
