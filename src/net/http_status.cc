#include "net/http_status.h"

#include <cstdio>

namespace kanon::net {

int HttpStatusFromStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kIoError:
      return 500;
    case StatusCode::kCorruption:
      return 500;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kResourceExhausted:
      return 429;  // reject-backpressure: retry later, the queue is full
    case StatusCode::kUnavailable:
      return 503;  // degraded / stopping: reads may still work
  }
  return 500;  // unreachable; keeps non-exhaustive callers defined
}

const char* HttpReasonPhrase(int http_status) {
  switch (http_status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 421: return "Misdirected Request";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default:  return http_status < 500 ? "Error" : "Server Error";
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HttpErrorBody(const Status& status) {
  return "{\"error\":\"" + std::string(StatusCodeToString(status.code())) +
         "\",\"message\":\"" + JsonEscape(status.message()) + "\"}";
}

}  // namespace kanon::net
