#ifndef KANON_NET_HTTP_STATUS_H_
#define KANON_NET_HTTP_STATUS_H_

#include <string>

#include "common/status.h"

namespace kanon::net {

/// The one shared StatusCode -> HTTP status mapping of the network layer.
/// Every error response the server emits goes through this table, so the
/// protocol contract — kUnavailable is 503, kInvalidArgument is 400,
/// reject-backpressure (kResourceExhausted) is 429 — is defined and tested
/// in exactly one place. The switch is exhaustive: adding a StatusCode
/// without extending it is a compile error (-Werror=switch in CI builds
/// with -Wall).
int HttpStatusFromStatusCode(StatusCode code);

/// Canonical reason phrase for the HTTP status codes this server emits
/// ("OK", "Bad Request"...). Unknown codes fall back to their class
/// ("Error") so a response line is always well-formed.
const char* HttpReasonPhrase(int http_status);

/// A minimal JSON error document for `status`:
///   {"error":"<CodeName>","message":"<escaped message>"}
/// Shared by every error path so clients can rely on one shape.
std::string HttpErrorBody(const Status& status);

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace kanon::net

#endif  // KANON_NET_HTTP_STATUS_H_
