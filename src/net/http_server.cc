#include "net/http_server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/http_status.h"

namespace kanon::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

constexpr char kContinueBytes[] = "HTTP/1.1 100 Continue\r\n\r\n";

}  // namespace

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::FromStatus(const Status& status) {
  HttpResponse resp =
      Json(HttpStatusFromStatusCode(status.code()), HttpErrorBody(status));
  // Every overload/degraded answer — not just /ingest backpressure —
  // carries Retry-After, so load balancers, health checks and replication
  // tailers all back off the same way.
  if (resp.status == 429 || resp.status == 503) {
    resp.headers.emplace_back("Retry-After", "1");
  }
  return resp;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  if (resp.close_connection) keep_alive = false;
  std::string out;
  out.reserve(resp.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += HttpReasonPhrase(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : resp.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return out;
}

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  KANON_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  std::string host = options_.host.empty() ? "0.0.0.0" : options_.host;
  if (host == "localhost") host = "127.0.0.1";
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable IPv4 listen host: " + host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Errno(("bind " + host + ":" +
                            std::to_string(options_.port)).c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    const Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(bound.sin_port);
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    const Status s = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  KANON_RETURN_IF_ERROR(SetNonBlocking(wake_r_));
  KANON_RETURN_IF_ERROR(SetNonBlocking(wake_w_));

  poller_ = Poller::Create(options_.use_epoll);
  using_epoll_ = poller_->is_epoll();
  KANON_RETURN_IF_ERROR(poller_->Add(listen_fd_, /*read=*/true, false));
  KANON_RETURN_IF_ERROR(poller_->Add(wake_r_, /*read=*/true, false));

  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  started_.store(true);
  loop_thread_ = JoinableThread([this] { Loop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    if (!started_.load()) return;
    draining_.store(true);
    Wake();
    loop_thread_.Join();
    if (pool_ != nullptr) pool_->Shutdown();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    listen_fd_ = wake_r_ = wake_w_ = -1;
  });
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_refused = connections_refused_.load();
  s.requests = requests_.load();
  s.responses = responses_.load();
  s.parse_errors = parse_errors_.load();
  s.timeouts = timeouts_.load();
  s.open_connections = open_connections_.load();
  return s;
}

void HttpServer::Wake() {
  if (wake_w_ < 0) return;
  const char b = 1;
  [[maybe_unused]] ssize_t n = write(wake_w_, &b, 1);  // EAGAIN = already woke
}

int HttpServer::NextTimeoutMs(Clock::time_point now) const {
  Clock::time_point next = Clock::time_point::max();
  for (const auto& [fd, conn] : conns_) {
    if (conn.deadline < next) next = conn.deadline;
  }
  if (next == Clock::time_point::max()) {
    // No deadlines pending: wake periodically anyway so drain checks and
    // stats stay fresh even if a wakeup write is ever lost.
    return 500;
  }
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count();
  return ms <= 0 ? 0 : static_cast<int>(std::min<long long>(ms, 500));
}

void HttpServer::Loop() {
  std::vector<PollEvent> events;
  bool listener_closed = false;
  Clock::time_point drain_deadline = Clock::time_point::max();

  while (true) {
    const Clock::time_point now = Clock::now();
    if (draining_.load()) {
      if (!listener_closed) {
        listener_closed = true;
        poller_->Remove(listen_fd_);
        drain_deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(options_.drain_timeout_s));
        // Cut every connection with no response in flight: requests not yet
        // fully received were never acknowledged, so closing them is safe.
        std::vector<int> idle;
        for (const auto& [fd, conn] : conns_) {
          if (!conn.handling && conn.out.empty()) idle.push_back(fd);
        }
        for (const int fd : idle) DestroyConn(fd);
      }
      if (conns_.empty() || now >= drain_deadline) break;
    }

    auto waited = poller_->Wait(NextTimeoutMs(now), &events);
    if (!waited.ok()) break;  // poller failure: nothing recoverable below

    for (const PollEvent& ev : events) {
      if (ev.fd == listen_fd_) {
        if (!listener_closed) AcceptPending();
      } else if (ev.fd == wake_r_) {
        char buf[256];
        while (read(wake_r_, buf, sizeof(buf)) > 0) {
        }
      } else {
        HandleConnEvent(ev.fd, ev);
      }
    }
    DrainCompletions();
    SweepTimeouts(Clock::now());
  }

  // Loop exit: force-close whatever drain left behind. Stale completions
  // are dropped by the gen check next DrainCompletions — which never runs
  // again, so just free the sockets.
  std::vector<int> leftover;
  leftover.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) leftover.push_back(fd);
  for (const int fd : leftover) DestroyConn(fd);
}

void HttpServer::AcceptPending() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE and friends: try again on the next readable event
    }
    if (conns_.size() >= options_.max_connections) {
      // Best-effort 503 so the peer sees overload, not a mystery RST.
      static const std::string kOverloaded = SerializeResponse(
          HttpResponse::FromStatus(
              Status::Unavailable("connection limit reached")),
          /*keep_alive=*/false);
      [[maybe_unused]] ssize_t n =
          write(fd, kOverloaded.data(), kOverloaded.size());
      ::close(fd);
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.gen = ++next_gen_;
    conn.parser = HttpParser(options_.parser);
    conn.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           options_.idle_timeout_s));
    if (!poller_->Add(fd, /*read=*/true, false).ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void HttpServer::UpdateReadDeadline(Conn* conn) {
  const double timeout = conn->parser.mid_request()
                             ? options_.read_timeout_s
                             : options_.idle_timeout_s;
  conn->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout));
}

void HttpServer::HandleConnEvent(int fd, const PollEvent& ev) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;  // destroyed earlier this batch
  Conn* conn = &it->second;

  if (ev.error) {
    DestroyConn(fd);
    return;
  }
  if (ev.writable && !conn->out.empty()) {
    FlushWrites(fd, conn);
    it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = &it->second;
  }
  if (!ev.readable) return;

  char buf[16 << 10];
  while (true) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn->parser.Append(std::string_view(buf, static_cast<size_t>(n)));
      // Stop slurping once a request is parseable: responses go out in
      // order, so there is no point buffering further pipelined bytes
      // faster than we answer them.
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      if (conn->parser.buffered_bytes() >
          options_.parser.max_body_bytes + options_.parser.max_header_bytes) {
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed its write side
      // Complete requests already buffered still get answered (half-close
      // clients exist); a request torn mid-flight can never complete and
      // is dropped in Advance.
      conn->saw_eof = true;
      if (!conn->handling && conn->out.empty() &&
          !conn->parser.mid_request()) {
        DestroyConn(fd);
        return;
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DestroyConn(fd);
    return;
  }
  Advance(fd, conn);
}

void HttpServer::Advance(int fd, Conn* conn) {
  if (conn->handling || !conn->out.empty()) return;  // strictly in order

  HttpRequest request;
  const HttpParseResult result = conn->parser.Next(&request);
  switch (result) {
    case HttpParseResult::kComplete:
      requests_.fetch_add(1, std::memory_order_relaxed);
      conn->handling = true;
      conn->deadline = Clock::time_point::max();  // handler's clock now
      poller_->Modify(fd, /*read=*/false, /*write=*/false);
      Dispatch(fd, conn->gen, std::move(request));
      return;
    case HttpParseResult::kNeedMore:
      if (conn->saw_eof) {  // torn mid-request, can never complete
        DestroyConn(fd);
        return;
      }
      if (conn->parser.ConsumePendingContinue()) {
        QueueResponse(fd, conn,
                      std::string(kContinueBytes, sizeof(kContinueBytes) - 1),
                      /*close_after=*/false);
        if (conns_.find(fd) == conns_.end()) return;
      }
      UpdateReadDeadline(conn);
      poller_->Modify(fd, /*read=*/true, /*write=*/!conn->out.empty());
      return;
    case HttpParseResult::kError: {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse resp = HttpResponse::FromStatus(conn->parser.error());
      resp.status = conn->parser.error_http_status();
      QueueResponse(fd, conn, SerializeResponse(resp, /*keep_alive=*/false),
                    /*close_after=*/true);
      return;
    }
  }
}

void HttpServer::Dispatch(int fd, uint64_t gen, HttpRequest request) {
  auto task = [this, fd, gen, request = std::move(request)]() {
    const HttpResponse response = handler_(request);
    const bool keep_alive =
        request.keep_alive && !response.close_connection && !draining_.load();
    Completion done;
    done.fd = fd;
    done.gen = gen;
    done.bytes = SerializeResponse(response, keep_alive);
    done.close_after = !keep_alive;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    Wake();
  };
  if (pool_ != nullptr) {
    pool_->Submit(std::move(task));
  } else {
    task();  // inline mode: handler must not block
  }
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.fd);
    if (it == conns_.end() || it->second.gen != done.gen) continue;
    Conn* conn = &it->second;
    conn->handling = false;
    responses_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(done.fd, conn, std::move(done.bytes), done.close_after);
  }
}

void HttpServer::QueueResponse(int fd, Conn* conn, std::string bytes,
                               bool close_after) {
  conn->out += bytes;
  conn->close_after_write = conn->close_after_write || close_after;
  FlushWrites(fd, conn);
}

void HttpServer::FlushWrites(int fd, Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = write(fd, conn->out.data() + conn->out_off,
                            conn->out.size() - conn->out_off);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.write_timeout_s));
      poller_->Modify(fd, /*read=*/false, /*write=*/true);
      return;
    }
    DestroyConn(fd);
    return;
  }
  // Fully flushed.
  conn->out.clear();
  conn->out_off = 0;
  if (conn->close_after_write) {
    DestroyConn(fd);
    return;
  }
  if (draining_.load() && !conn->handling) {
    DestroyConn(fd);
    return;
  }
  if (conn->saw_eof && !conn->handling && !conn->parser.mid_request()) {
    DestroyConn(fd);
    return;
  }
  UpdateReadDeadline(conn);
  poller_->Modify(fd, /*read=*/true, /*write=*/false);
  if (!conn->handling) Advance(fd, conn);  // next pipelined request, if any
}

void HttpServer::SweepTimeouts(Clock::time_point now) {
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn.deadline <= now) expired.push_back(fd);
  }
  for (const int fd : expired) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = &it->second;
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->handling && conn->out.empty() && conn->parser.mid_request()) {
      // Torn mid-request: tell the peer why before hanging up.
      static const std::string kTimeout = SerializeResponse(
          HttpResponse{408, "application/json",
                       "{\"error\":\"RequestTimeout\",\"message\":"
                       "\"request not completed in time\"}",
                       {},
                       true},
          false);
      [[maybe_unused]] ssize_t n = write(fd, kTimeout.data(), kTimeout.size());
    }
    DestroyConn(fd);
  }
}

void HttpServer::DestroyConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  poller_->Remove(fd);
  ::close(fd);
  conns_.erase(it);
  open_connections_.store(conns_.size(), std::memory_order_relaxed);
}

}  // namespace kanon::net
