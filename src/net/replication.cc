#include "net/replication.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "durability/wal.h"
#include "net/http_status.h"

namespace kanon::net {

const char* ReplStateName(ReplState state) {
  switch (state) {
    case ReplState::kBootstrapping: return "bootstrapping";
    case ReplState::kFollowing: return "following";
    case ReplState::kLagging: return "lagging";
    case ReplState::kDisconnected: return "disconnected";
  }
  return "unknown";
}

namespace {

/// Extracts the number following `"key":` in a flat JSON object emitted by
/// our own serializer (no whitespace, unique keys). Returns `fallback`
/// when the key is absent.
uint64_t JsonU64(const std::string& body, const std::string& key,
                 uint64_t fallback = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = body.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtoull(body.c_str() + at + needle.size(), nullptr, 10);
}

std::string JsonStr(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = body.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  const size_t end = body.find('"', begin);
  if (end == std::string::npos) return "";
  return body.substr(begin, end - begin);
}

uint64_t HeaderU64(const ClientResponse& resp, std::string_view name) {
  const std::string* v = resp.FindHeader(name);
  if (v == nullptr) return 0;
  return std::strtoull(v->c_str(), nullptr, 10);
}

std::string ErrorMessage(const ClientResponse& resp) {
  const std::string msg = JsonStr(resp.body, "message");
  return msg.empty() ? ("HTTP " + std::to_string(resp.status)) : msg;
}

}  // namespace

ReplicationClient::ReplicationClient(std::string host, uint16_t port,
                                     size_t shard, double timeout_s)
    : host_(std::move(host)),
      port_(port),
      shard_(shard),
      timeout_s_(timeout_s) {}

StatusOr<ClientResponse> ReplicationClient::Fetch(const std::string& target) {
  if (!client_.connected()) {
    KANON_RETURN_IF_ERROR(client_.Connect(host_, port_, timeout_s_));
  }
  return client_.Get(target);
}

StatusOr<LeaderManifest> ReplicationClient::FetchManifest() {
  KANON_ASSIGN_OR_RETURN(
      ClientResponse resp,
      Fetch("/repl/manifest?shard=" + std::to_string(shard_)));
  if (resp.status != 200) {
    return Status::Unavailable("leader /repl/manifest: " +
                               ErrorMessage(resp));
  }
  const std::string& body = resp.body;
  LeaderManifest m;
  m.shards = JsonU64(body, "shards", 1);
  m.shard = JsonU64(body, "shard");
  m.dim = JsonU64(body, "dim");
  m.base_k = JsonU64(body, "base_k");
  m.leaf_capacity_factor = JsonU64(body, "leaf_capacity_factor", 2);
  m.max_fanout = JsonU64(body, "max_fanout", 16);
  m.compact = JsonU64(body, "compact", 1) != 0;
  m.lsm = JsonU64(body, "lsm") != 0;
  m.dp_height = JsonU64(body, "dp_height", 10);
  m.durable_lsn = JsonU64(body, "durable_lsn");
  m.epoch = JsonU64(body, "epoch");
  m.epoch_records = JsonU64(body, "epoch_records");
  m.checkpoint_lsn = JsonU64(body, "checkpoint_lsn");
  if (m.dim == 0 || m.base_k == 0) {
    return Status::Corruption("leader manifest missing dim/base_k: " + body);
  }
  if (m.checkpoint_lsn > 0) {
    m.checkpoint.dim = m.dim;
    m.checkpoint.checkpoint_lsn = m.checkpoint_lsn;
    m.checkpoint.file = JsonStr(body, "file");
    m.checkpoint.page_size = JsonU64(body, "page_size");
    m.checkpoint.min_leaf = JsonU64(body, "min_leaf");
    m.checkpoint.max_leaf = JsonU64(body, "max_leaf");
    m.checkpoint.max_fanout = JsonU64(body, "max_fanout");
    m.checkpoint.snapshot.first_page = JsonU64(body, "first_page");
    m.checkpoint.snapshot.byte_size = JsonU64(body, "byte_size");
    m.checkpoint.snapshot.record_count = JsonU64(body, "record_count");
    m.checkpoint.snapshot.crc32 =
        static_cast<uint32_t>(JsonU64(body, "crc32"));
    if (m.checkpoint.file.empty() || m.checkpoint.page_size == 0) {
      return Status::Corruption("leader manifest checkpoint malformed: " +
                                body);
    }
  }
  return m;
}

StatusOr<std::string> ReplicationClient::FetchCheckpoint(uint64_t lsn) {
  KANON_ASSIGN_OR_RETURN(
      ClientResponse resp,
      Fetch("/repl/checkpoint/" + std::to_string(lsn) +
            "?shard=" + std::to_string(shard_)));
  if (resp.status == 410) {
    return Status::NotFound("leader checkpoint " + std::to_string(lsn) +
                            " superseded: " + ErrorMessage(resp));
  }
  if (resp.status != 200) {
    return Status::Unavailable("leader /repl/checkpoint: " +
                               ErrorMessage(resp));
  }
  bytes_total_.fetch_add(resp.body.size(), std::memory_order_relaxed);
  return std::move(resp.body);
}

StatusOr<WalBatch> ReplicationClient::FetchWal(uint64_t from_lsn,
                                               uint64_t max_lsn,
                                               size_t max_bytes) {
  KANON_ASSIGN_OR_RETURN(
      ClientResponse resp,
      Fetch("/repl/wal?shard=" + std::to_string(shard_) +
            "&from_lsn=" + std::to_string(from_lsn) +
            "&max_lsn=" + std::to_string(max_lsn) +
            "&max_bytes=" + std::to_string(max_bytes)));
  if (resp.status == 410) {
    return Status::NotFound("leader WAL range gone: " + ErrorMessage(resp));
  }
  if (resp.status != 200) {
    return Status::Unavailable("leader /repl/wal: " + ErrorMessage(resp));
  }
  WalBatch batch;
  batch.first_lsn = HeaderU64(resp, "x-kanon-first-lsn");
  batch.last_lsn = HeaderU64(resp, "x-kanon-last-lsn");
  batch.durable_lsn = HeaderU64(resp, "x-kanon-durable-lsn");
  batch.epoch = HeaderU64(resp, "x-kanon-epoch");
  batch.epoch_records = HeaderU64(resp, "x-kanon-epoch-records");
  batch.frames = std::move(resp.body);
  bytes_total_.fetch_add(batch.frames.size(), std::memory_order_relaxed);
  return batch;
}

ReplicatedFollower::ReplicatedFollower(Domain domain, FollowerOptions options)
    : options_(std::move(options)),
      core_(std::make_unique<FollowerCore>(domain.dim(), std::move(domain),
                                           options_.core)),
      client_(options_.leader_host, options_.leader_port, options_.shard,
              options_.request_timeout_s),
      env_(options_.env != nullptr ? options_.env : Env::Default()) {
  jitter_state_ = options_.jitter_seed != 0
                      ? options_.jitter_seed
                      : static_cast<uint64_t>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count()) |
                            1;
}

ReplicatedFollower::~ReplicatedFollower() { Stop(); }

void ReplicatedFollower::Start() {
  thread_ = std::thread([this] { RunLoop(); });
}

void ReplicatedFollower::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool ReplicatedFollower::SleepFor(uint64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms),
               [this] { return stopping_; });
  return !stopping_;
}

void ReplicatedFollower::Backoff() {
  uint64_t delay = options_.backoff_initial_ms;
  const uint64_t doublings =
      consecutive_failures_ > 1 ? consecutive_failures_ - 1 : 0;
  for (uint64_t i = 0; i < doublings && delay < options_.backoff_max_ms;
       ++i) {
    delay *= 2;
  }
  if (delay > options_.backoff_max_ms) delay = options_.backoff_max_ms;
  // xorshift64* jitter in [0.75, 1.0): a fleet of replicas that lost the
  // same leader at the same instant must not retry in lockstep.
  jitter_state_ ^= jitter_state_ << 13;
  jitter_state_ ^= jitter_state_ >> 7;
  jitter_state_ ^= jitter_state_ << 17;
  const double unit =
      static_cast<double>(jitter_state_ % 1000000) / 1000000.0;
  delay = static_cast<uint64_t>(static_cast<double>(delay) *
                                (0.75 + 0.25 * unit));
  if (delay == 0) delay = 1;
  SleepFor(delay);
}

void ReplicatedFollower::OnTransportFault(const Status& status) {
  (void)status;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  ++consecutive_failures_;
  client_.Disconnect();
  SetState(ReplState::kDisconnected);
}

bool ReplicatedFollower::BootstrapOnce() {
  SetState(ReplState::kBootstrapping);
  auto manifest_or = client_.FetchManifest();
  if (!manifest_or.ok()) {
    OnTransportFault(manifest_or.status());
    return false;
  }
  const LeaderManifest& m = *manifest_or;
  if (m.dim != core_->dim()) {
    // A config error, not a transient: keep retrying (the operator may
    // repoint --follow), but say why.
    std::fprintf(stderr,
                 "repl: leader dim %zu != follower domain dim %zu; "
                 "check --domain\n",
                 m.dim, core_->dim());
    ++consecutive_failures_;
    return false;
  }
  core_->ConfigureFromLeader(m.base_k, m.leaf_capacity_factor, m.max_fanout,
                             m.compact, m.dp_height);
  if (m.lsm && !lsm_warned_) {
    lsm_warned_ = true;
    std::fprintf(stderr,
                 "repl: leader runs an LSM memtable; follower releases are "
                 "epoch-aligned but may not be byte-identical until the "
                 "leader's memtable is flushed\n");
  }
  if (m.checkpoint_lsn > 0) {
    auto bytes_or = client_.FetchCheckpoint(m.checkpoint_lsn);
    if (!bytes_or.ok()) {
      if (bytes_or.status().code() == StatusCode::kNotFound) {
        // GC'd between manifest and download: re-fetch the manifest on the
        // next round — resumable bootstrap, not an error loop.
        ++consecutive_failures_;
        return false;
      }
      OnTransportFault(bytes_or.status());
      return false;
    }
    const std::string path =
        options_.scratch_dir + "/follower-checkpoint-" +
        std::to_string(m.checkpoint_lsn) + ".db";
    Status wrote = [&]() -> Status {
      (void)env_->CreateDirs(options_.scratch_dir);
      KANON_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env_->NewWritableFile(path, /*truncate=*/true));
      KANON_RETURN_IF_ERROR(
          file->Append(bytes_or->data(), bytes_or->size()));
      return file->Close();
    }();
    if (wrote.ok()) {
      // AdoptCheckpoint CRC-verifies the download against the manifest
      // before any page is trusted.
      wrote = core_->AdoptCheckpoint(m.checkpoint, path, env_);
    }
    (void)env_->RemoveFile(path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "repl: checkpoint adoption failed: %s\n",
                   wrote.ToString().c_str());
      core_->ResetForBootstrap();
      ++consecutive_failures_;
      return false;
    }
  }
  leader_durable_lsn_.store(m.durable_lsn, std::memory_order_relaxed);
  leader_epoch_.store(m.epoch, std::memory_order_relaxed);
  leader_epoch_records_.store(m.epoch_records, std::memory_order_relaxed);
  consecutive_failures_ = 0;
  bootstrapped_ = true;
  core_->NoteBootstrap();
  return true;
}

ReplicatedFollower::TailResult ReplicatedFollower::TailOnce() {
  const uint64_t applied = core_->applied_lsn();
  const uint64_t target_records =
      leader_epoch_records_.load(std::memory_order_relaxed);
  // Cap at the leader's published record count: the follower applies
  // exactly the prefix each epoch covers, which is what makes its release
  // at that epoch byte-identical. When already at (or past) the target the
  // capped request comes back empty with fresh headers — the cheap
  // "anything new?" poll.
  const uint64_t max_lsn =
      target_records > applied ? target_records : applied;
  auto batch_or =
      client_.FetchWal(applied + 1, max_lsn, options_.max_batch_bytes);
  if (!batch_or.ok()) {
    if (batch_or.status().code() == StatusCode::kNotFound) {
      // The range we need was truncated behind a newer checkpoint: the
      // typed "need a new checkpoint" signal. Start over from the
      // manifest; readers keep the last published snapshot meanwhile.
      std::fprintf(stderr, "repl: %s; re-bootstrapping\n",
                   batch_or.status().message().c_str());
      core_->ResetForBootstrap();
      bootstrapped_ = false;
      return TailResult::kImmediate;
    }
    OnTransportFault(batch_or.status());
    return TailResult::kFault;
  }
  WalBatch batch = std::move(batch_or).value();
  leader_durable_lsn_.store(batch.durable_lsn, std::memory_order_relaxed);
  leader_epoch_.store(batch.epoch, std::memory_order_relaxed);
  leader_epoch_records_.store(batch.epoch_records,
                              std::memory_order_relaxed);
  consecutive_failures_ = 0;

  bool applied_any = false;
  if (!batch.frames.empty()) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    Status apply_error;
    const Status decoded = DecodeWalFrames(
        batch.frames, core_->dim(),
        [&](uint64_t lsn, std::span<const double> point, int32_t sensitive) {
          if (!apply_error.ok()) return;  // skip the rest of a bad batch
          apply_error = core_->Apply(lsn, point, sensitive);
        });
    // Entries before a defective frame are individually CRC-verified and
    // already applied — that progress is kept. The connection is dropped
    // and the next request starts from applied_lsn()+1, so the damaged
    // frame is re-fetched, never skipped.
    if (!decoded.ok() || !apply_error.ok()) {
      OnTransportFault(decoded.ok() ? apply_error : decoded);
      return TailResult::kFault;
    }
    applied_any = true;
  }

  const uint64_t now_applied = core_->applied_lsn();
  if (batch.epoch_records > 0 && now_applied == batch.epoch_records) {
    // At a leader publication point: publish it here too. PublishEpoch is
    // idempotent on the (epoch, records) pair — and deliberately not
    // monotonic in epoch, since a restarted leader renumbers from 1.
    if (core_->PublishEpoch(batch.epoch)) {
      core_->MarkCaughtUp();
    }
  }
  if (!applied_any) {
    // Empty batch under the epoch cap: everything the leader has published
    // is applied here (published implies durable implies fetchable, so a
    // publication we lacked would have produced entries).
    core_->MarkCaughtUp();
  }
  SetState(core_->fresh() ? ReplState::kFollowing : ReplState::kLagging);
  return applied_any ? TailResult::kImmediate : TailResult::kIdle;
}

void ReplicatedFollower::RunLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (!bootstrapped_) {
      if (!BootstrapOnce()) {
        if (!SleepFor(0)) return;  // fast stop check
        Backoff();
        continue;
      }
      SetState(ReplState::kFollowing);
      continue;
    }
    switch (TailOnce()) {
      case TailResult::kImmediate:
        break;
      case TailResult::kIdle:
        if (!core_->fresh()) SetState(ReplState::kLagging);
        if (!SleepFor(options_.poll_interval_ms)) return;
        break;
      case TailResult::kFault:
        Backoff();
        break;
    }
  }
}

namespace {

std::string StalenessValue(double staleness_ms) {
  if (!std::isfinite(staleness_ms)) return "-1";
  return std::to_string(static_cast<long long>(staleness_ms));
}

}  // namespace

HttpResponse FollowerFrontend::Handle(const HttpRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string& path = request.path;
  if (path == "/release" || path == "/release/query") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Json(
          405, "{\"error\":\"method not allowed\",\"allow\":\"GET\"}");
    }
    return HandleReadRelease(request);
  }
  if (path == "/release/dp" || path == "/release/dp/query") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Json(
          405, "{\"error\":\"method not allowed\",\"allow\":\"GET\"}");
    }
    return HandleDpRead(request);
  }
  if (path == "/ingest") {
    // A replica never takes writes; 421 tells a misconfigured client which
    // server does. (308 would make well-behaved clients resubmit there
    // transparently, but silently rerouting PII ingestion is worse than
    // failing loudly.)
    HttpResponse resp = HttpResponse::Json(
        421,
        "{\"error\":\"Misdirected Request\",\"message\":\"this server is a "
        "read replica; POST /ingest to the leader\"}");
    resp.headers.emplace_back(
        "Location", "http://" + follower_->options().leader_host + ":" +
                        std::to_string(follower_->options().leader_port) +
                        "/ingest");
    return resp;
  }
  if (path == "/healthz") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Json(
          405, "{\"error\":\"method not allowed\",\"allow\":\"GET\"}");
    }
    return HandleHealthz();
  }
  if (path == "/metrics") {
    if (request.method != "GET" && request.method != "HEAD") {
      return HttpResponse::Json(
          405, "{\"error\":\"method not allowed\",\"allow\":\"GET\"}");
    }
    return HandleMetrics();
  }
  return HttpResponse::Json(
      404,
      "{\"error\":\"not found\",\"paths\":[\"/release\",\"/release/query\","
      "\"/release/dp\",\"/release/dp/query\",\"/healthz\",\"/metrics\"]}");
}

std::unique_ptr<HttpResponse> FollowerFrontend::StaleRejection(
    double staleness) const {
  const FollowerCore* core = follower_->core();
  const bool stale =
      staleness > static_cast<double>(core->max_staleness_ms());
  if (!stale || !follower_->options().reject_stale_reads) return nullptr;
  auto resp = std::make_unique<HttpResponse>(
      HttpResponse::FromStatus(Status::Unavailable(
          "replica is stale (" + StalenessValue(staleness) +
          " ms since last caught up, bound " +
          std::to_string(core->max_staleness_ms()) + " ms)")));
  resp->headers.emplace_back("X-Kanon-Staleness-Ms",
                             StalenessValue(staleness));
  return resp;
}

HttpResponse FollowerFrontend::HandleReadRelease(const HttpRequest& request) {
  const FollowerCore* core = follower_->core();
  const double staleness = core->staleness_ms();
  if (auto rejection = StaleRejection(staleness)) return *rejection;
  HttpResponse resp = RenderRelease(core->CurrentStitched().get(), request,
                                    follower_->options().retry_after_s);
  resp.headers.emplace_back("X-Kanon-Staleness-Ms",
                            StalenessValue(staleness));
  return resp;
}

HttpResponse FollowerFrontend::HandleDpRead(const HttpRequest& request) {
  const FollowerCore* core = follower_->core();
  const double staleness = core->staleness_ms();
  if (auto rejection = StaleRejection(staleness)) return *rejection;
  const auto stitched = core->CurrentStitched();
  HttpResponse resp = request.path == "/release/dp"
                          ? dp_.HandleRelease(stitched.get(), request)
                          : dp_.HandleQuery(stitched.get(), request);
  resp.headers.emplace_back("X-Kanon-Staleness-Ms",
                            StalenessValue(staleness));
  return resp;
}

HttpResponse FollowerFrontend::HandleHealthz() {
  const FollowerCore* core = follower_->core();
  const ReplState state = follower_->state();
  const bool healthy = state == ReplState::kFollowing && core->fresh();
  std::string body = "{\"status\":\"";
  body += healthy ? "serving" : "degraded";
  body += "\",\"role\":\"follower\",\"repl_state\":\"";
  body += ReplStateName(state);
  body += "\",\"applied_lsn\":" + std::to_string(core->applied_lsn());
  body += ",\"epoch\":" + std::to_string(core->epoch());
  body += ",\"staleness_ms\":" + StalenessValue(core->staleness_ms());
  body += ",\"leader\":\"" + follower_->options().leader_host + ":" +
          std::to_string(follower_->options().leader_port) + "\"";
  body += ",\"reconnects\":" + std::to_string(follower_->reconnects());
  body += "}";
  HttpResponse resp = HttpResponse::Json(healthy ? 200 : 503,
                                         std::move(body));
  if (resp.status == 503) {
    resp.headers.emplace_back(
        "Retry-After",
        std::to_string(follower_->options().retry_after_s));
  }
  return resp;
}

HttpResponse FollowerFrontend::HandleMetrics() {
  const FollowerCore* core = follower_->core();
  const ReplState state = follower_->state();
  std::string out;
  out.reserve(4096);
  for (int i = 0; i < kNumReplStates; ++i) {
    AppendPromMetric(&out, "kanon_repl_state", "gauge",
                     state == static_cast<ReplState>(i) ? 1 : 0,
                     "state=\"" +
                         std::string(ReplStateName(
                             static_cast<ReplState>(i))) +
                         "\"");
  }
  AppendPromMetric(&out, "kanon_repl_lag_lsn", "gauge",
                   static_cast<double>(follower_->lag_lsn()));
  const double staleness = core->staleness_ms();
  AppendPromMetric(&out, "kanon_repl_lag_ms", "gauge",
                   std::isfinite(staleness) ? staleness : -1);
  AppendPromMetric(&out, "kanon_repl_reconnects_total", "counter",
                   static_cast<double>(follower_->reconnects()));
  AppendPromMetric(&out, "kanon_repl_bootstraps_total", "counter",
                   static_cast<double>(core->bootstraps()));
  AppendPromMetric(&out, "kanon_repl_batches_total", "counter",
                   static_cast<double>(follower_->batches()));
  AppendPromMetric(&out, "kanon_repl_bytes_total", "counter",
                   static_cast<double>(follower_->bytes_total()));
  AppendPromMetric(&out, "kanon_repl_applied_lsn", "gauge",
                   static_cast<double>(core->applied_lsn()));
  AppendPromMetric(&out, "kanon_repl_epoch", "gauge",
                   static_cast<double>(core->epoch()));
  AppendPromMetric(&out, "kanon_repl_leader_epoch", "gauge",
                   static_cast<double>(follower_->leader_epoch()));
  AppendPromMetric(&out, "kanon_follower_records", "gauge",
                   static_cast<double>(core->records()));
  AppendPromMetric(&out, "kanon_follower_requests_total", "counter",
                   static_cast<double>(
                       requests_.load(std::memory_order_relaxed)));
  // DP serving: ledger counters + the per-release-point utility pair, same
  // series names as the leader so one dashboard covers both roles.
  dp_.AppendMetrics(&out, core->CurrentStitched().get());
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = std::move(out);
  return resp;
}

}  // namespace kanon::net
