#ifndef KANON_NET_ANON_HTTP_H_
#define KANON_NET_ANON_HTTP_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/http_server.h"
#include "shard/sharded_service.h"

namespace kanon::net {

/// Endpoint families the front-end tracks metrics for.
enum class Endpoint : size_t {
  kIngest = 0,
  kRelease,
  kHealthz,
  kMetrics,
  kOther,
};
constexpr size_t kNumEndpoints = 5;
const char* EndpointName(Endpoint endpoint);

struct AnonHttpOptions {
  /// Per-endpoint latency reservoir (a ring of the most recent samples;
  /// bounds memory on a long-running server while keeping the histogram
  /// representative of current traffic).
  size_t latency_samples = 8192;
  /// Buckets rendered per endpoint in the /metrics latency histogram.
  size_t latency_bins = 12;
  /// Advisory Retry-After (seconds) attached to 429/503 ingest responses.
  unsigned retry_after_s = 1;
};

/// The HTTP face of the (sharded) anonymization service — maps the
/// service's concurrency, routing and health contracts onto protocol
/// semantics:
///
///   POST /ingest           NDJSON batch (or a single line): each line is a
///                          JSON array or bare CSV of dim (or dim+1, last =
///                          sensitive code) numbers, routed to its shard by
///                          the service's ShardRouter. 200 {"accepted":N};
///                          per-line errors keep their shard's semantics:
///                          429 on reject-backpressure, 503 while that
///                          shard is degraded or stopping — both with the
///                          accepted count so far, so clients know exactly
///                          what was acked.
///   GET  /release          base-granularity stitched release of the
///                          current per-shard epoch snapshots (lock-free;
///                          never blocks ingest). The body records
///                          "shards" and per-shard "shard_epochs" so the
///                          staleness of every slice is observable.
///   GET  /release/query    ?k1=N multigranular stitched release;
///                          &summary=1 omits the partition list; &rids=1
///                          includes (shard-local) record ids.
///   GET  /healthz          200 while every shard serves; 503 when any
///                          shard is degraded or the service stopped, with
///                          per-shard health in the body.
///   GET  /metrics          Prometheus text exposition: aggregate
///                          ServiceStats and durability counters, per-shard
///                          series with a shard label, kanon_build_info,
///                          queue depth, listener stats and per-endpoint
///                          latency histograms (built on metrics/histogram).
///
/// Handle() is thread-safe and is exactly the HttpHandler the HttpServer
/// worker pool runs; it may block inside Ingest under kBlock backpressure,
/// which is the intended end-to-end backpressure path: a full shard queue
/// slows that shard's HTTP clients down instead of growing memory.
class AnonHttpFrontend {
 public:
  explicit AnonHttpFrontend(ShardedAnonymizationService* service,
                            AnonHttpOptions options = {});

  /// The handler to hand to HttpServer.
  HttpResponse Handle(const HttpRequest& request);

  /// Optional: lets /metrics include listener-level counters. Set before
  /// the server starts taking traffic.
  void SetServerStats(std::function<HttpServerStats()> fn) {
    server_stats_ = std::move(fn);
  }

  /// Event backend label for kanon_build_info ("epoll" / "poll"). Set
  /// after HttpServer::Start, before traffic.
  void SetBackendLabel(std::string backend) {
    backend_label_ = std::move(backend);
  }

  /// Records ingested over HTTP and acknowledged with 200 (the
  /// zero-lost-acks invariant is stated against this counter).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct EndpointMetrics {
    std::mutex mu;
    std::vector<double> latencies_ms;  // ring, bounded by latency_samples
    size_t next = 0;
    double sum_ms = 0.0;
    uint64_t count = 0;
    std::map<int, uint64_t> by_code;
  };

  HttpResponse Route(const HttpRequest& request, Endpoint* endpoint);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleRelease(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  void Observe(Endpoint endpoint, int http_status, double latency_ms);

  ShardedAnonymizationService* const service_;
  const AnonHttpOptions options_;
  std::function<HttpServerStats()> server_stats_;
  std::string backend_label_ = "inproc";
  std::atomic<uint64_t> accepted_{0};
  std::array<EndpointMetrics, kNumEndpoints> metrics_;
};

/// Parses one ingest line — a JSON array "[1, 2.5, 3]" or bare CSV
/// "1,2.5,3" — into a point of exactly `dim` values plus an optional
/// trailing sensitive code (when the line has dim+1 values). Exposed for
/// tests.
Status ParseRecordLine(std::string_view line, size_t dim,
                       std::vector<double>* point, int32_t* sensitive);

/// Renders the partition list of a release as a JSON array (deterministic
/// formatting: %.17g round-trips doubles exactly). Shared by the endpoint
/// and by tests asserting HTTP and in-process releases are identical.
std::string PartitionsJson(const PartitionSet& ps, bool with_rids);

}  // namespace kanon::net

#endif  // KANON_NET_ANON_HTTP_H_
