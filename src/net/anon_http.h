#ifndef KANON_NET_ANON_HTTP_H_
#define KANON_NET_ANON_HTTP_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dp/dp_ledger.h"
#include "net/http_server.h"
#include "shard/sharded_service.h"

namespace kanon::net {

/// Endpoint families the front-end tracks metrics for.
enum class Endpoint : size_t {
  kIngest = 0,
  kRelease,
  kDp,
  kHealthz,
  kMetrics,
  kRepl,
  kOther,
};
constexpr size_t kNumEndpoints = 7;
const char* EndpointName(Endpoint endpoint);

struct AnonHttpOptions {
  /// Per-endpoint latency reservoir (a ring of the most recent samples;
  /// bounds memory on a long-running server while keeping the histogram
  /// representative of current traffic).
  size_t latency_samples = 8192;
  /// Buckets rendered per endpoint in the /metrics latency histogram.
  size_t latency_bins = 12;
  /// Advisory Retry-After (seconds) attached to 429/503 ingest responses.
  unsigned retry_after_s = 1;
  /// Env for the replication endpoints' reads of WAL segments and
  /// checkpoint files (nullptr = Env::Default()). Kept separate from the
  /// service's durability env so fault injection on the write path does
  /// not leak into replication serving unless a test wires it there.
  Env* repl_env = nullptr;
  /// Hard cap on one /repl/wal response body; requests asking for more are
  /// clamped (the follower just asks again from its new position).
  size_t repl_max_batch_bytes = 8u << 20;
  /// Total epsilon spendable per release point on /release/dp (<= 0 =
  /// unlimited).
  double dp_budget = 4.0;
  /// Total epsilon spendable across *all* release points (<= 0 =
  /// unlimited): the cap on cumulative per-record loss over the service
  /// lifetime (see DpBudgetLedger).
  double dp_lifetime_budget = 0.0;
  /// Operator secret the server-held noise key is derived from. Empty =
  /// a fresh random key per process (still DP; not reproducible across
  /// servers). Give every shard/leader/follower of one deployment the
  /// same secret (--dp-key) for byte-identical releases. Never accepted
  /// from requests, never serialized anywhere.
  std::string dp_key;
  /// Publish the truth-derived kanon_release_avg_range_error utility pair
  /// in /metrics. Off by default: the statistic is computed against exact
  /// counts outside the DP accounting, so it is only safe when /metrics
  /// is scraped from a trusted operator plane (see DESIGN.md §17).
  bool dp_metrics_utility = false;
};

/// Configuration of the shared DP serving half (see DpServing).
struct DpServingOptions {
  double budget = 4.0;           // per release point, <= 0 = unlimited
  double lifetime_budget = 0.0;  // across all points, <= 0 = unlimited
  /// Operator secret the noise key is derived from; empty = random
  /// per-process key. See AnonHttpOptions::dp_key.
  std::string key_secret;
  /// Publish the truth-derived utility pair in /metrics (trusted-plane
  /// only; see AnonHttpOptions::dp_metrics_utility).
  bool utility_in_metrics = false;
  unsigned retry_after_s = 1;
};

/// The DP serving half shared by the leader frontend and the replication
/// follower: parameter parsing, the per-release-point budget ledger, the
/// memoized noisy hierarchies, range queries answered from them, and the
/// kanon_dp_* metrics. Both sides delegating here is what makes a
/// follower's /release/dp body byte-identical to its leader's at the same
/// publication point — there is exactly one serializer and one noise path,
/// provided the operator configured both with the same noise-key secret.
///
///   GET /release/dp?epsilon=     the full noisy hierarchy's leaf cells
///        (consistent, non-negative, parent == sum(children)); a pure
///        function of (record multiset, domain, height, epsilon, server
///        key), so identical at any shard count. Epoch rides in
///        X-Kanon-Epoch. 429 once the release point's distinct epsilon
///        builds would exceed a budget; re-serving a memoized release is
///        free.
///   GET /release/dp/query?lo=&hi=&epsilon=   a range count answered from
///        the memoized hierarchy — never from raw records.
///
/// The noise is drawn from a server-held secret key; there is no seed
/// parameter (a client-choosable or published seed would let any consumer
/// regenerate and subtract the noise, voiding the DP guarantee). Unknown
/// or malformed query parameters — including `seed` — are 400s, never
/// ignored.
class DpServing {
 public:
  explicit DpServing(const DpServingOptions& options);

  HttpResponse HandleRelease(const StitchedSnapshot* stitched,
                             const HttpRequest& request);
  HttpResponse HandleQuery(const StitchedSnapshot* stitched,
                           const HttpRequest& request);

  /// Appends kanon_dp_* series; with utility_in_metrics also the
  /// fig-12-style kanon_release_avg_range_error{semantics=...} pair for
  /// the current release point (cached per point; evaluated at a fixed
  /// internal epsilon so scraping /metrics never draws on the budget —
  /// but computed against exact truth, hence the trusted-plane gate).
  void AppendMetrics(std::string* out, const StitchedSnapshot* stitched);

  const DpBudgetLedger& ledger() const { return ledger_; }

 private:
  StatusOr<std::shared_ptr<const DpRelease>> Acquire(
      const StitchedSnapshot& stitched, double epsilon);

  const DpNoiseKey key_;
  const bool utility_in_metrics_;
  const unsigned retry_after_s_;
  DpBudgetLedger ledger_;

  std::mutex util_mu_;
  bool util_valid_ = false;
  uint64_t util_epoch_ = 0;
  uint64_t util_records_ = 0;
  DpUtilityReport util_;
};

/// The HTTP face of the (sharded) anonymization service — maps the
/// service's concurrency, routing and health contracts onto protocol
/// semantics:
///
///   POST /ingest           NDJSON batch (or a single line): each line is a
///                          JSON array or bare CSV of dim (or dim+1, last =
///                          sensitive code) numbers, routed to its shard by
///                          the service's ShardRouter. 200 {"accepted":N};
///                          per-line errors keep their shard's semantics:
///                          429 on reject-backpressure, 503 while that
///                          shard is degraded or stopping — both with the
///                          accepted count so far, so clients know exactly
///                          what was acked.
///   GET  /release          base-granularity stitched release of the
///                          current per-shard epoch snapshots (lock-free;
///                          never blocks ingest). The body records
///                          "shards" and per-shard "shard_epochs" so the
///                          staleness of every slice is observable.
///   GET  /release/query    ?k1=N multigranular stitched release;
///                          &summary=1 omits the partition list; &rids=1
///                          includes (shard-local) record ids.
///   GET  /release/dp       ?epsilon= (epsilon)-DP release of the
///                          stitched record multiset (see DpServing),
///                          noised from the server-held secret key:
///                          byte-identical at any shard count, 429 once
///                          the release point's budget is spent.
///   GET  /release/dp/query ?lo=&hi=&epsilon= range count answered
///                          from the memoized noisy hierarchy.
///   GET  /healthz          200 while every shard serves; 503 when any
///                          shard is degraded or the service stopped, with
///                          per-shard health in the body.
///   GET  /metrics          Prometheus text exposition: aggregate
///                          ServiceStats and durability counters, per-shard
///                          series with a shard label, kanon_build_info,
///                          queue depth, listener stats and per-endpoint
///                          latency histograms (built on metrics/histogram).
///   GET  /repl/manifest    Replication bootstrap metadata for one shard
///                          (?shard=i, default 0): checkpoint manifest,
///                          durable (fsynced) LSN horizon and the current
///                          published epoch. 409 unless the leader runs
///                          with durability on.
///   GET  /repl/checkpoint/<lsn>  The raw checkpoint file bytes named by
///                          the manifest (verifiable against its recorded
///                          CRC32). 410 Gone once that checkpoint has been
///                          superseded and GC'd — re-fetch the manifest.
///   GET  /repl/wal         ?from_lsn=&max_bytes=&max_lsn=&shard= —
///                          CRC-framed WAL entries straight from the
///                          segment files, capped at the durable horizon.
///                          410 Gone when from_lsn was truncated behind a
///                          checkpoint (the typed "need a new checkpoint"
///                          signal); response headers X-Kanon-First-Lsn,
///                          X-Kanon-Last-Lsn, X-Kanon-Durable-Lsn,
///                          X-Kanon-Epoch, X-Kanon-Epoch-Records carry the
///                          tailing state machine's inputs.
///
/// Handle() is thread-safe and is exactly the HttpHandler the HttpServer
/// worker pool runs; it may block inside Ingest under kBlock backpressure,
/// which is the intended end-to-end backpressure path: a full shard queue
/// slows that shard's HTTP clients down instead of growing memory.
class AnonHttpFrontend {
 public:
  explicit AnonHttpFrontend(ShardedAnonymizationService* service,
                            AnonHttpOptions options = {});

  /// The handler to hand to HttpServer.
  HttpResponse Handle(const HttpRequest& request);

  /// Optional: lets /metrics include listener-level counters. Set before
  /// the server starts taking traffic.
  void SetServerStats(std::function<HttpServerStats()> fn) {
    server_stats_ = std::move(fn);
  }

  /// Event backend label for kanon_build_info ("epoll" / "poll"). Set
  /// after HttpServer::Start, before traffic.
  void SetBackendLabel(std::string backend) {
    backend_label_ = std::move(backend);
  }

  /// Records ingested over HTTP and acknowledged with 200 (the
  /// zero-lost-acks invariant is stated against this counter).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// The DP budget ledger behind /release/dp (read-only counters).
  const DpBudgetLedger& dp_ledger() const { return dp_.ledger(); }

 private:
  struct EndpointMetrics {
    std::mutex mu;
    std::vector<double> latencies_ms;  // ring, bounded by latency_samples
    size_t next = 0;
    double sum_ms = 0.0;
    uint64_t count = 0;
    std::map<int, uint64_t> by_code;
  };

  HttpResponse Route(const HttpRequest& request, Endpoint* endpoint);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleRelease(const HttpRequest& request);
  HttpResponse HandleDp(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  HttpResponse HandleRepl(const HttpRequest& request);
  HttpResponse HandleReplManifest(const std::string& dir, size_t shard,
                                  Env* env);
  HttpResponse HandleReplCheckpoint(const std::string& dir,
                                    const std::string& path, Env* env);
  HttpResponse HandleReplWal(const HttpRequest& request,
                             const std::string& dir, size_t shard, Env* env);
  void Observe(Endpoint endpoint, int http_status, double latency_ms);

  ShardedAnonymizationService* const service_;
  const AnonHttpOptions options_;
  DpServing dp_;
  std::function<HttpServerStats()> server_stats_;
  std::string backend_label_ = "inproc";
  std::atomic<uint64_t> accepted_{0};
  std::array<EndpointMetrics, kNumEndpoints> metrics_;
};

/// Parses one ingest line — a JSON array "[1, 2.5, 3]" or bare CSV
/// "1,2.5,3" — into a point of exactly `dim` values plus an optional
/// trailing sensitive code (when the line has dim+1 values). Exposed for
/// tests.
Status ParseRecordLine(std::string_view line, size_t dim,
                       std::vector<double>* point, int32_t* sensitive);

/// Renders the partition list of a release as a JSON array (deterministic
/// formatting: %.17g round-trips doubles exactly). Shared by the endpoint
/// and by tests asserting HTTP and in-process releases are identical.
std::string PartitionsJson(const PartitionSet& ps, bool with_rids);

/// Renders a full GET /release(/query) response off a stitched snapshot —
/// deterministic byte-for-byte in the snapshot's contents, which is what
/// lets a replication follower at the same epoch serve the identical body.
/// `stitched` == nullptr yields the 503 "nothing published yet" response.
/// Shared by AnonHttpFrontend and the follower frontend.
HttpResponse RenderRelease(const StitchedSnapshot* stitched,
                           const HttpRequest& request, unsigned retry_after_s);

/// Appends one `# TYPE` + sample line in the Prometheus text exposition.
/// Shared by the leader's /metrics and the follower's.
void AppendPromMetric(std::string* out, std::string_view name,
                      std::string_view type, double value,
                      std::string_view labels = "");

}  // namespace kanon::net

#endif  // KANON_NET_ANON_HTTP_H_
