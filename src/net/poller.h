#ifndef KANON_NET_POLLER_H_
#define KANON_NET_POLLER_H_

#include <memory>
#include <vector>

#include "common/status.h"

namespace kanon::net {

/// Readiness notification for one file descriptor.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  // HUP / ERR — the connection is dead
};

/// A minimal level-triggered readiness multiplexer. Two implementations:
/// epoll(7) on Linux (scales past the poll() O(fds) scan) and a portable
/// poll(2) fallback for everything else. The server picks epoll when the
/// platform has it unless the caller forces the fallback — which is also
/// how tests exercise both paths on one machine.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` with the given interest set. One registration per fd.
  virtual Status Add(int fd, bool read, bool write) = 0;
  /// Replaces the interest set of a registered fd.
  virtual Status Modify(int fd, bool read, bool write) = 0;
  /// Unregisters `fd` (callers close the fd themselves).
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready fds
  /// to `*out` (cleared first). Returns the number of events; 0 on timeout.
  /// EINTR is retried internally.
  virtual StatusOr<size_t> Wait(int timeout_ms, std::vector<PollEvent>* out) = 0;

  /// True when this poller is the epoll implementation (diagnostics).
  virtual bool is_epoll() const = 0;

  /// Creates the platform's best poller, or the portable poll() fallback
  /// when `prefer_epoll` is false (or epoll is unavailable).
  static std::unique_ptr<Poller> Create(bool prefer_epoll = true);
};

}  // namespace kanon::net

#endif  // KANON_NET_POLLER_H_
