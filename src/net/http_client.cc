#include "net/http_client.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/time.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace kanon::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

const std::string* ClientResponse::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  Close();
  fd_ = other.fd_;
  host_ = std::move(other.host_);
  residual_ = std::move(other.residual_);
  other.fd_ = -1;
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  residual_.clear();
}

Status HttpClient::Connect(const std::string& host, uint16_t port,
                           double timeout_s) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");

  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - tv.tv_sec) * 1e6);
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("unparseable IPv4 host: " + host);
  }
  // Bounded connect: a plain blocking connect() ignores SO_SNDTIMEO on
  // Linux and can hang for minutes against a dead or blackholed peer.
  // Flip to non-blocking, poll for writability, read SO_ERROR, flip back.
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const Status s = Errno(("connect " + resolved + ":" +
                              std::to_string(port)).c_str());
      Close();
      return s;
    }
    pollfd pfd{fd_, POLLOUT, 0};
    int rc;
    do {
      rc = poll(&pfd, 1, static_cast<int>(timeout_s * 1000));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      Close();
      return Status::IoError("connect " + resolved + ":" +
                             std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (rc < 0 ||
        getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      if (err != 0) errno = err;
      const Status s = Errno(("connect " + resolved + ":" +
                              std::to_string(port)).c_str());
      Close();
      return s;
    }
  }
  fcntl(fd_, F_SETFL, flags);
  host_ = resolved + ":" + std::to_string(port);
  return Status::OK();
}

StatusOr<ClientResponse> HttpClient::Get(const std::string& target) {
  return RoundTrip("GET " + target + " HTTP/1.1\r\nHost: " + host_ +
                   "\r\n\r\n");
}

StatusOr<ClientResponse> HttpClient::Post(const std::string& target,
                                          std::string_view body,
                                          const std::string& content_type) {
  std::string req = "POST " + target + " HTTP/1.1\r\nHost: " + host_ +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n\r\n";
  req.append(body.data(), body.size());
  return RoundTrip(req);
}

StatusOr<ClientResponse> HttpClient::RoundTrip(
    const std::string& request_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");

  size_t sent = 0;
  while (sent < request_bytes.size()) {
    const ssize_t n =
        send(fd_, request_bytes.data() + sent, request_bytes.size() - sent,
             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("send");
      Close();
      return s;
    }
    sent += static_cast<size_t>(n);
  }

  std::string buf = std::move(residual_);
  residual_.clear();
  while (true) {
    // A complete header block yet?
    const size_t header_end = [&]() -> size_t {
      const size_t crlf = buf.find("\r\n\r\n");
      return crlf == std::string::npos ? std::string::npos : crlf + 4;
    }();
    if (header_end != std::string::npos) {
      // Parse status line + headers.
      ClientResponse resp;
      const size_t line_end = buf.find("\r\n");
      const std::string status_line = buf.substr(0, line_end);
      if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
        Close();
        return Status::Corruption("malformed status line: " + status_line);
      }
      resp.status = std::atoi(status_line.c_str() + 9);

      size_t cursor = line_end + 2;
      while (cursor < header_end - 2) {
        const size_t eol = buf.find("\r\n", cursor);
        const std::string line = buf.substr(cursor, eol - cursor);
        cursor = eol + 2;
        if (line.empty()) break;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::string value = line.substr(colon + 1);
        const size_t first = value.find_first_not_of(" \t");
        value = first == std::string::npos ? "" : value.substr(first);
        resp.headers.emplace_back(ToLower(line.substr(0, colon)), value);
      }

      if (resp.status == 100) {  // interim; the real response follows
        buf.erase(0, header_end);
        continue;
      }

      size_t content_length = 0;
      if (const std::string* cl = resp.FindHeader("content-length")) {
        content_length = std::strtoull(cl->c_str(), nullptr, 10);
      }
      if (buf.size() - header_end >= content_length) {
        resp.body = buf.substr(header_end, content_length);
        residual_ = buf.substr(header_end + content_length);
        const std::string* connection = resp.FindHeader("connection");
        if (connection != nullptr && ToLower(*connection) == "close") {
          Close();
        }
        return resp;
      }
    }

    char chunk[16 << 10];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = errno == EAGAIN || errno == EWOULDBLOCK
                           ? Status::IoError("response timed out")
                           : Errno("recv");
      Close();
      return s;
    }
    if (n == 0) {
      Close();
      return Status::IoError("connection closed mid-response");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<ClientResponse> GetWithRetry(HttpClient& client,
                                      const std::string& host, uint16_t port,
                                      const std::string& target,
                                      const RetryOptions& retry) {
  Status last = Status::IoError("no attempts made");
  double backoff_s = retry.backoff_initial_s;
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2, retry.backoff_max_s);
    }
    if (!client.connected()) {
      const Status s = client.Connect(host, port, retry.timeout_s);
      if (!s.ok()) {
        last = s;
        continue;
      }
    }
    StatusOr<ClientResponse> resp = client.Get(target);
    if (resp.ok()) return resp;
    last = resp.status();
  }
  return last;
}

}  // namespace kanon::net
