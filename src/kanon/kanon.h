#ifndef KANON_KANON_H_
#define KANON_KANON_H_

/// Umbrella header: the full public API of the kanon library, an
/// implementation of "K-Anonymization as Spatial Indexing: Toward Scalable
/// and Incremental Anonymization" (Iwuchukwu & Naughton, VLDB 2007).
///
/// Typical use:
///
///   kanon::Dataset data = kanon::Adult::LoadOrSynthesize("adult.data", 30000);
///   kanon::RTreeAnonymizer anonymizer;
///   auto partitions = anonymizer.Anonymize(data, /*k=*/10);
///   auto table = kanon::AnonymizedTable::FromPartitions(data,
///                                                       *std::move(partitions));

#include "anon/anonymized_table.h"
#include "anon/compaction.h"
#include "anon/constraints.h"
#include "anon/grid_anonymizer.h"
#include "anon/leaf_scan.h"
#include "anon/mondrian.h"
#include "anon/multigranular.h"
#include "anon/partition.h"
#include "anon/rtree_anonymizer.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/status.h"
#include "common/sysinfo.h"
#include "common/timer.h"
#include "data/adult.h"
#include "data/agrawal_generator.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/hierarchy.h"
#include "data/landsend_generator.h"
#include "data/schema.h"
#include "data/schema_spec.h"
#include "durability/checkpoint.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "index/buffer_tree.h"
#include "index/bulk_load.h"
#include "index/hilbert.h"
#include "index/mbr.h"
#include "index/rplus_tree.h"
#include "index/split.h"
#include "index/tree_persistence.h"
#include "metrics/certainty.h"
#include "metrics/discernibility.h"
#include "metrics/histogram.h"
#include "metrics/kl_divergence.h"
#include "metrics/quality_report.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "query/workload.h"
#include "service/anonymization_service.h"
#include "service/ingest_queue.h"
#include "service/service_stats.h"
#include "service/snapshot.h"
#include "shard/shard_router.h"
#include "shard/sharded_service.h"
#include "shard/stitched_snapshot.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/spill_file.h"

#endif  // KANON_KANON_H_
