#include "lsm/merge.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/schema.h"
#include "index/node.h"
#include "storage/buffer_pool.h"
#include "storage/external_sort.h"

namespace kanon {

namespace {

size_t DeriveRunRecords(size_t dim, const MergeOptions& options) {
  if (options.sort_run_records > 0) return options.sort_run_records;
  // From the memory budget alone — run boundaries are part of the
  // deterministic pipeline and must not vary with the thread count.
  const RecordCodec spill_codec(dim + 1);
  return std::max<size_t>(
      1024, options.memory_budget_bytes / 4 / spill_codec.record_size());
}

}  // namespace

MergeScheduler::MergeScheduler(size_t dim, MergeOptions options)
    : dim_(dim),
      options_(options),
      run_records_(DeriveRunRecords(dim, options)) {
  KANON_CHECK(dim >= 1);
  KANON_CHECK_MSG(options_.memtable_bytes > 0 || options_.merge_every > 0,
                  "MergeScheduler needs at least one flush trigger");
  if (options_.threads > 1) {
    workers_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

bool MergeScheduler::ShouldMerge(const Memtable& run,
                                 uint64_t since_merge) const {
  if (run.empty()) return false;
  if (options_.memtable_bytes > 0 && run.bytes() >= options_.memtable_bytes) {
    return true;
  }
  return options_.merge_every > 0 && since_merge >= options_.merge_every;
}

StatusOr<RPlusTree> MergeScheduler::Merge(const RPlusTree& tree,
                                          const Memtable& run) {
  KANON_CHECK(tree.dim() == dim_ && run.dim() == dim_);
  const uint64_t total = tree.size() + run.size();
  // Gather the union addressed by rid. Dense rids make the rid the row
  // index, so the rebuilt tree assigns every record its original id and
  // successive merges compose without any translation table.
  std::vector<double> points(total * dim_);
  std::vector<int32_t> sensitives(total);
  std::vector<uint8_t> seen(total, 0);
  const auto put = [&](std::span<const double> point, RecordId rid,
                       int32_t sensitive) {
    KANON_CHECK_MSG(rid < total && !seen[rid],
                    "merge requires dense, disjoint rids (rid=" << rid
                                                                << ")");
    seen[rid] = 1;
    std::copy(point.begin(), point.end(), points.begin() + rid * dim_);
    sensitives[rid] = sensitive;
  };
  for (const Node* leaf : tree.OrderedLeaves()) {
    for (size_t i = 0; i < leaf->leaf_size(); ++i) {
      put(leaf->point(i), leaf->rids[i], leaf->sensitive[i]);
    }
  }
  for (size_t i = 0; i < run.size(); ++i) {
    put(run.point(i), run.rid(i), run.sensitive(i));
  }
  Dataset dataset(Schema::Numeric(dim_));
  for (uint64_t r = 0; r < total; ++r) {
    dataset.Append({points.data() + r * dim_, dim_}, sensitives[r]);
  }
  // Spill traffic stays in memory: a merge must not introduce durable
  // state of its own (the WAL is the only durability the run needs, and a
  // crash mid-merge then costs nothing on recovery).
  MemPager pager(options_.page_size);
  const size_t frames =
      std::max<size_t>(16, options_.memory_budget_bytes / options_.page_size);
  BufferPool pool(&pager, frames);
  return SortedBulkLoadTree(dataset, tree.config(), options_.curve,
                            options_.grid_bits, &pool, run_records_,
                            workers_.get());
}

}  // namespace kanon
