#include "lsm/memtable.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "index/hilbert.h"

namespace kanon {

Memtable::Memtable(size_t dim)
    : dim_(dim),
      record_bytes_(dim * sizeof(double) + sizeof(RecordId) +
                    sizeof(int32_t)) {
  KANON_CHECK(dim >= 1);
}

void Memtable::Append(std::span<const double> point, RecordId rid,
                      int32_t sensitive) {
  KANON_CHECK(point.size() == dim_);
  points_.insert(points_.end(), point.begin(), point.end());
  rids_.push_back(rid);
  sensitives_.push_back(sensitive);
}

void Memtable::Clear() {
  points_.clear();
  rids_.clear();
  sensitives_.clear();
  sorted_.clear();
  sorted_limit_ = 0;
}

std::vector<LeafGroup> Memtable::OverlayGroups(const Domain& domain,
                                               CurveOrder order, int grid_bits,
                                               size_t min_size,
                                               size_t target_size,
                                               size_t* held_back) const {
  KANON_CHECK(domain.dim() == dim_ && target_size >= min_size &&
              min_size >= 1);
  const size_t n = size();
  if (held_back != nullptr) *held_back = 0;
  if (n < min_size) {
    if (held_back != nullptr) *held_back = n;
    return {};
  }
  if (order != sorted_order_ || grid_bits != sorted_grid_bits_ ||
      domain.lo != sorted_domain_.lo || domain.hi != sorted_domain_.hi) {
    sorted_.clear();
    sorted_limit_ = 0;
    sorted_order_ = order;
    sorted_grid_bits_ = grid_bits;
    sorted_domain_ = domain;
  }
  if (sorted_limit_ < n) {
    const GridQuantizer quantizer(domain, grid_bits);
    std::vector<uint32_t> grid(dim_);
    const size_t prefix = sorted_.size();
    sorted_.reserve(n);
    for (size_t i = sorted_limit_; i < n; ++i) {
      quantizer.Quantize(point(i), grid.data());
      const std::span<const uint32_t> g(grid.data(), grid.size());
      sorted_.emplace_back(order == CurveOrder::kHilbert
                               ? HilbertKey(g, grid_bits)
                               : ZOrderKey(g, grid_bits),
                           i);
    }
    // Key ties break on slot so the overlay order matches the merge's
    // (key, rid) total order (rids are appended in increasing order, so
    // the slot index is a rid proxy).
    std::sort(sorted_.begin() + prefix, sorted_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + prefix,
                       sorted_.end());
    sorted_limit_ = n;
  }
  const auto& keyed = sorted_;
  std::vector<LeafGroup> groups;
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(begin + target_size, n);
    if (n - end > 0 && n - end < min_size) end = n;
    LeafGroup g;
    g.mbr = Mbr(dim_);
    g.rids.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const size_t slot = keyed[i].second;
      g.rids.push_back(rids_[slot]);
      g.mbr.ExpandToInclude(point(slot));
    }
    groups.push_back(std::move(g));
    begin = end;
  }
  return groups;
}

}  // namespace kanon
