#ifndef KANON_LSM_MERGE_H_
#define KANON_LSM_MERGE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/bulk_load.h"
#include "index/rplus_tree.h"
#include "lsm/memtable.h"
#include "storage/pager.h"

namespace kanon {

/// When and how the memtable is folded back into the R⁺-tree.
struct MergeOptions {
  /// Flush once the memtable's resident footprint reaches this (0 = no
  /// byte trigger).
  size_t memtable_bytes = 16u << 20;
  /// Flush every this many absorbed records (0 = no record trigger).
  /// Either trigger firing flushes; checkpoints and Stop always force one.
  uint64_t merge_every = 0;
  /// Threads for the rebuild (1 = serial). The result is byte-identical
  /// at every thread count — see SortedBulkLoadTree.
  size_t threads = 1;
  /// Curve + quantization of the sort order (match the anonymizer's).
  CurveOrder curve = CurveOrder::kHilbert;
  int grid_bits = 10;
  /// Spill configuration for the external sort backing the rebuild.
  size_t memory_budget_bytes = 64ull << 20;
  size_t page_size = kDefaultPageSize;
  size_t sort_run_records = 0;  // 0 derives from the memory budget
};

/// Merges flushed memtable runs into the live R⁺-tree. A merge is a full
/// deterministic rebuild: every live record — current tree leaves plus the
/// run — is gathered in rid order and fed through the parallel
/// SortedBulkLoadTree pipeline (curve keys → external (key, rid) sort →
/// top-down region-disciplined build). Because that pipeline is a pure
/// function of the record multiset, the merged tree is byte-identical to
/// the tree a from-scratch bulk load of the same records would produce,
/// regardless of how the records were spread across earlier flushes, the
/// thread count, or crash/recovery boundaries — the invariant the
/// differential tests pin.
///
/// Merges run on the service's single ingest thread and touch no durable
/// state (spill traffic goes through an in-memory pager): a crash mid-merge
/// loses nothing the WAL doesn't already hold. The caller publishes the
/// adopted tree as a new epoch snapshot, so readers flip atomically from
/// the pre-merge view to the post-merge view and never observe a
/// half-merged tree.
class MergeScheduler {
 public:
  MergeScheduler(size_t dim, MergeOptions options);

  const MergeOptions& options() const { return options_; }

  /// Whether a trigger fires for the current run. `since_merge` counts
  /// records absorbed since the last flush (it can exceed run.size() only
  /// transiently; both triggers are checked against their own quantity).
  bool ShouldMerge(const Memtable& run, uint64_t since_merge) const;

  /// Rebuilds the tree over tree ∪ run. Requires dense rids across the
  /// union (rid == LSN - 1, the service invariant): the union of a tree
  /// holding rids [0, t) from earlier flushes and a run holding [t, n)
  /// occupies exactly [0, n). The input tree is not modified; on success
  /// the caller adopts the result and clears the run.
  StatusOr<RPlusTree> Merge(const RPlusTree& tree, const Memtable& run);

 private:
  const size_t dim_;
  const MergeOptions options_;
  const size_t run_records_;
  std::unique_ptr<ThreadPool> workers_;  // null when options_.threads <= 1
};

}  // namespace kanon

#endif  // KANON_LSM_MERGE_H_
