#ifndef KANON_LSM_MERGE_H_
#define KANON_LSM_MERGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/bulk_load.h"
#include "index/rplus_tree.h"
#include "lsm/memtable.h"
#include "storage/pager.h"

namespace kanon {

/// How a flush reaches the tree.
///
///  * kFull — rebuild the whole tree from tree ∪ run through the sorted
///    bulk-load pipeline. O(total records) per flush, but byte-identical
///    to a from-scratch load of the same records: the reference backend
///    every differential test compares against.
///  * kDelta — route the run's records to the leaves whose regions
///    contain them and locally rebuild only those sub-ranges, splicing
///    the results back in place. O(delta · fanout-neighborhood) per
///    flush — flat-ish in the dataset size — at the cost of abandoning
///    byte-identity with the full rebuild; equivalence is pinned by the
///    differential oracle instead (same record multiset, every leaf ≥ k,
///    disjoint covering partitions, equal range-query answers).
enum class MergeMode { kFull, kDelta };

/// What one MergeInto call actually did — the observability surface the
/// delta-merge tests and the service's fragment cache both key off.
struct MergeStats {
  /// The path taken. A kDelta request can legitimately come back kFull:
  /// empty/leaf-only trees, deltas large relative to the tree, and
  /// compaction escalations that reach the root all fall back.
  MergeMode mode = MergeMode::kFull;
  /// Disjoint sub-ranges locally rebuilt and spliced (0 on the full path).
  size_t sites_rebuilt = 0;
  /// Records gathered through local rebuilds (tree records re-indexed
  /// plus routed delta records). The sublinearity claim is about this
  /// number staying proportional to the delta, not the dataset.
  size_t records_reindexed = 0;
  /// Rebuild sites escalated to a parent region because the sub-range's
  /// projected leaf count overflowed one node's fanout.
  size_t escalations = 0;
  /// Leaf nodes removed from the tree by splices. The pointers are
  /// already freed — they are identity keys for cache eviction (the
  /// service's per-leaf release-fragment cache), never dereferenced.
  std::vector<const Node*> retired_leaves;
};

/// When and how the memtable is folded back into the R⁺-tree.
struct MergeOptions {
  /// Flush once the memtable's resident footprint reaches this (0 = no
  /// byte trigger).
  size_t memtable_bytes = 16u << 20;
  /// Flush every this many absorbed records (0 = no record trigger).
  /// Either trigger firing flushes; checkpoints and Stop always force one.
  uint64_t merge_every = 0;
  /// Threads for the rebuild (1 = serial). The result is byte-identical
  /// at every thread count — see SortedBulkLoadTree.
  size_t threads = 1;
  /// Curve + quantization of the sort order (match the anonymizer's).
  CurveOrder curve = CurveOrder::kHilbert;
  int grid_bits = 10;
  /// Spill configuration for the external sort backing the rebuild.
  size_t memory_budget_bytes = 64ull << 20;
  size_t page_size = kDefaultPageSize;
  size_t sort_run_records = 0;  // 0 derives from the memory budget
  /// Full rebuild vs in-place delta merge (see MergeMode).
  MergeMode mode = MergeMode::kFull;
  /// Delta merges fall back to a full rebuild when the run holds at least
  /// 1/this of the tree's records (local rebuilds would touch most leaves
  /// anyway, and the full path yields the better-packed tree). 0 never
  /// falls back on size.
  size_t delta_full_fraction = 4;
};

/// Merges flushed memtable runs into the live R⁺-tree. A merge is a full
/// deterministic rebuild: every live record — current tree leaves plus the
/// run — is gathered in rid order and fed through the parallel
/// SortedBulkLoadTree pipeline (curve keys → external (key, rid) sort →
/// top-down region-disciplined build). Because that pipeline is a pure
/// function of the record multiset, the merged tree is byte-identical to
/// the tree a from-scratch bulk load of the same records would produce,
/// regardless of how the records were spread across earlier flushes, the
/// thread count, or crash/recovery boundaries — the invariant the
/// differential tests pin.
///
/// Merges run on the service's single ingest thread and touch no durable
/// state (spill traffic goes through an in-memory pager): a crash mid-merge
/// loses nothing the WAL doesn't already hold. The caller publishes the
/// adopted tree as a new epoch snapshot, so readers flip atomically from
/// the pre-merge view to the post-merge view and never observe a
/// half-merged tree.
class MergeScheduler {
 public:
  MergeScheduler(size_t dim, MergeOptions options);

  const MergeOptions& options() const { return options_; }

  /// Whether a trigger fires for the current run. `since_merge` counts
  /// records absorbed since the last flush (it can exceed run.size() only
  /// transiently; both triggers are checked against their own quantity).
  bool ShouldMerge(const Memtable& run, uint64_t since_merge) const;

  /// Rebuilds the tree over tree ∪ run. Requires dense rids across the
  /// union (rid == LSN - 1, the service invariant): the union of a tree
  /// holding rids [0, t) from earlier flushes and a run holding [t, n)
  /// occupies exactly [0, n). The input tree is not modified; on success
  /// the caller adopts the result and clears the run.
  StatusOr<RPlusTree> Merge(const RPlusTree& tree, const Memtable& run);

  /// Folds `run` into `*tree` honoring options().mode. On the delta path
  /// the tree is mutated in place: each run record is routed to the leaf
  /// whose region contains it, touched sub-ranges are rebuilt through the
  /// same region-disciplined BuildSubtree the full pipeline uses — sorted
  /// by (curve key, rid) under the fixed service `domain`, so the local
  /// order is stable across flush cadences — and the results are spliced
  /// back 1-for-1 (regions tile space, so a rebuilt sub-range owns
  /// exactly its old region and the tiling is preserved). A sub-range
  /// whose projected leaf count overflows one node's fanout escalates the
  /// rebuild to its parent's region (the compaction trigger); reaching
  /// the root, an empty or single-leaf tree, or a run ≥ tree /
  /// delta_full_fraction falls back to the full rebuild. Unlike Merge,
  /// the delta path needs no dense-rid invariant.
  ///
  /// Runs on the single ingest thread; readers are unaffected because
  /// they only ever see copied snapshot groups, never the live tree.
  StatusOr<MergeStats> MergeInto(RPlusTree* tree, const Memtable& run,
                                 const Domain& domain);

 private:
  const size_t dim_;
  const MergeOptions options_;
  const size_t run_records_;
  std::unique_ptr<ThreadPool> workers_;  // null when options_.threads <= 1
};

}  // namespace kanon

#endif  // KANON_LSM_MERGE_H_
