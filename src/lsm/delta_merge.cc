#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "index/hilbert.h"
#include "index/node.h"
#include "lsm/merge.h"

namespace kanon {

namespace {

/// Leaf pointers under `node` in left-to-right order.
void CollectLeaves(const Node* node, std::vector<const Node*>* out) {
  if (node->is_leaf) {
    out->push_back(node);
    return;
  }
  for (const auto& child : node->children) CollectLeaves(child.get(), out);
}

/// Subtree height (leaf = 0), memoized per merge. Only nodes on touched
/// root paths are ever queried, and a node's height is needed at most
/// once per flush.
size_t SubtreeHeight(const Node* node,
                     std::unordered_map<const Node*, size_t>* memo) {
  if (node->is_leaf) return 0;
  const auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  size_t h = 0;
  for (const auto& child : node->children) {
    h = std::max(h, 1 + SubtreeHeight(child.get(), memo));
  }
  (*memo)[node] = h;
  return h;
}

/// The record budget one node at `node`'s level can own without its leaf
/// count overflowing a single node's fanout per level: max_leaf records
/// per leaf, max_fanout children per internal level. Saturates instead of
/// overflowing.
size_t LevelCapacity(const RTreeConfig& config, size_t height) {
  size_t cap = config.max_leaf;
  for (size_t i = 0; i < height; ++i) {
    if (cap > std::numeric_limits<size_t>::max() / config.max_fanout) {
      return std::numeric_limits<size_t>::max();
    }
    cap *= config.max_fanout;
  }
  return cap;
}

/// Appends every record under `node` to `arrays` (tree order).
void GatherSubtree(const Node* node, BuildArrays* arrays) {
  if (node->is_leaf) {
    for (size_t i = 0; i < node->leaf_size(); ++i) {
      arrays->rids.push_back(node->rids[i]);
      arrays->sensitive.push_back(node->sensitive[i]);
      const auto p = node->point(i);
      arrays->points.insert(arrays->points.end(), p.begin(), p.end());
    }
    return;
  }
  for (const auto& child : node->children) GatherSubtree(child.get(), arrays);
}

}  // namespace

StatusOr<MergeStats> MergeScheduler::MergeInto(RPlusTree* tree,
                                               const Memtable& run,
                                               const Domain& domain) {
  KANON_CHECK(tree != nullptr && tree->dim() == dim_ && run.dim() == dim_ &&
              domain.dim() == dim_);
  MergeStats stats;
  if (run.empty()) {
    // An empty-delta flush is a no-op on either path: nothing to route,
    // nothing to rebuild, nothing retired.
    stats.mode = MergeMode::kDelta;
    return stats;
  }
  const RTreeConfig& config = tree->config();
  // The full rebuild remains the reference backend: requested explicitly,
  // for trees too small to have sub-ranges worth isolating, and for runs
  // so large relative to the tree that local rebuilds would touch most
  // leaves anyway.
  const bool full_path =
      options_.mode == MergeMode::kFull || tree->size() == 0 ||
      tree->root()->is_leaf ||
      (options_.delta_full_fraction > 0 &&
       run.size() * options_.delta_full_fraction >= tree->size());
  if (full_path) {
    KANON_ASSIGN_OR_RETURN(RPlusTree merged, Merge(*tree, run));
    *tree = std::move(merged);
    stats.mode = MergeMode::kFull;
    return stats;
  }
  stats.mode = MergeMode::kDelta;

  // 1. Route every run record to the unique leaf whose region contains
  // it. Regions are half-open and tile all of space from the root's
  // Region::Whole, so routing is total and unambiguous.
  Node* root = tree->mutable_root();
  std::unordered_map<Node*, std::vector<size_t>> routed;  // leaf -> slots
  std::vector<Node*> touched;  // first-touch order: deterministic
  for (size_t i = 0; i < run.size(); ++i) {
    Node* node = root;
    while (!node->is_leaf) {
      Node* next = nullptr;
      for (const auto& child : node->children) {
        if (child->region.ContainsPoint(run.point(i))) {
          next = child.get();
          break;
        }
      }
      KANON_CHECK_MSG(next != nullptr,
                      "run record escapes the region tiling");
      node = next;
    }
    const auto [it, inserted] = routed.try_emplace(node);
    if (inserted) touched.push_back(node);
    it->second.push_back(i);
  }

  // 2. Compaction trigger: pick each touched leaf's rebuild site by
  // escalating to the parent region while the sub-range's projected
  // record count overflows its level's capacity — i.e. while the rebuilt
  // subtree's leaf count would exceed one node's fanout per level it
  // already spans. Escalation folds siblings into the rebuild, which is
  // what redistributes a delta that concentrated in one region. Reaching
  // the root means the whole tree overflowed its shape: full rebuild.
  std::unordered_map<const Node*, size_t> delta_count;
  for (Node* leaf : touched) {
    const size_t d = routed[leaf].size();
    for (Node* a = leaf; a != nullptr; a = a->parent) delta_count[a] += d;
  }
  std::unordered_map<const Node*, size_t> heights;
  std::unordered_set<const Node*> site_set;
  for (Node* leaf : touched) {
    Node* site = leaf;
    while (site->parent != nullptr &&
           site->record_count + delta_count[site] >
               LevelCapacity(config, SubtreeHeight(site, &heights))) {
      site = site->parent;
      ++stats.escalations;
    }
    if (site->parent == nullptr) {
      KANON_ASSIGN_OR_RETURN(RPlusTree merged, Merge(*tree, run));
      *tree = std::move(merged);
      stats.mode = MergeMode::kFull;
      return stats;
    }
    site_set.insert(site);
  }

  // 3. Collapse nested sites: each touched leaf belongs to the highest
  // site on its root path, so the final sites are pairwise disjoint
  // subtrees and every routed record lands in exactly one rebuild.
  std::vector<Node*> sites;                              // first-seen order
  std::unordered_map<Node*, std::vector<size_t>> site_slots;
  for (Node* leaf : touched) {
    Node* chosen = nullptr;
    for (Node* a = leaf; a != nullptr; a = a->parent) {
      if (site_set.contains(a)) chosen = a;
    }
    KANON_CHECK(chosen != nullptr);
    const auto [it, inserted] = site_slots.try_emplace(chosen);
    if (inserted) sites.push_back(chosen);
    const std::vector<size_t>& mine = routed[leaf];
    it->second.insert(it->second.end(), mine.begin(), mine.end());
  }

  // 4. Rebuild each site's record set through the same region-disciplined
  // build the full pipeline uses, sorted by (curve key, rid) under the
  // *fixed service domain* — not the data-dependent ComputeDomain of the
  // full pipeline — so the local order is stable across flush cadences.
  // Sites are disjoint subtrees, so builds run concurrently; the result
  // is identical at every thread count because each build is a pure
  // function of its own site.
  const GridQuantizer quantizer(domain, options_.grid_bits);
  const int shift =
      std::max(0, options_.grid_bits * static_cast<int>(dim_) - 64);
  std::vector<std::unique_ptr<Node>> rebuilt(sites.size());
  std::vector<size_t> gathered(sites.size(), 0);
  const auto build_site = [&](size_t s) {
    Node* site = sites[s];
    const std::vector<size_t>& slots = site_slots.find(site)->second;
    const size_t total = site->record_count + slots.size();
    BuildArrays raw(dim_);
    raw.rids.reserve(total);
    raw.sensitive.reserve(total);
    raw.points.reserve(total * dim_);
    GatherSubtree(site, &raw);
    for (const size_t slot : slots) {
      raw.rids.push_back(run.rid(slot));
      raw.sensitive.push_back(run.sensitive(slot));
      const auto p = run.point(slot);
      raw.points.insert(raw.points.end(), p.begin(), p.end());
    }
    std::vector<uint64_t> keys(total);
    std::vector<uint32_t> grid(dim_);
    for (size_t i = 0; i < total; ++i) {
      quantizer.Quantize(raw.row(i), grid.data());
      const std::span<const uint32_t> g(grid.data(), grid.size());
      const CurveKey key = options_.curve == CurveOrder::kHilbert
                               ? HilbertKey(g, options_.grid_bits)
                               : ZOrderKey(g, options_.grid_bits);
      keys[i] = static_cast<uint64_t>(key >> shift);
    }
    std::vector<size_t> perm(total);
    for (size_t i = 0; i < total; ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      if (keys[a] != keys[b]) return keys[a] < keys[b];
      return raw.rids[a] < raw.rids[b];
    });
    BuildArrays arrays(dim_);
    arrays.rids.reserve(total);
    arrays.sensitive.reserve(total);
    arrays.points.reserve(total * dim_);
    for (const size_t i : perm) {
      arrays.rids.push_back(raw.rids[i]);
      arrays.sensitive.push_back(raw.sensitive[i]);
      const auto p = raw.row(i);
      arrays.points.insert(arrays.points.end(), p.begin(), p.end());
    }
    rebuilt[s] = BuildSubtree(&arrays, config, site->region, 0, total);
    gathered[s] = total;
  };
  if (workers_ != nullptr) {
    workers_->ParallelFor(sites.size(), build_site);
  } else {
    for (size_t s = 0; s < sites.size(); ++s) build_site(s);
  }

  // 5. Splice. A rebuilt subtree owns exactly its site's region, so the
  // 1-for-1 child swap preserves the sibling tiling; the parent's fanout
  // is unchanged. Records are only ever added by a merge, so ancestor
  // MBRs grow monotonically and expand-only updates stay exact.
  for (size_t s = 0; s < sites.size(); ++s) {
    Node* site = sites[s];
    Node* parent = site->parent;
    CollectLeaves(site, &stats.retired_leaves);
    const size_t added = rebuilt[s]->record_count - site->record_count;
    const Mbr grown = rebuilt[s]->mbr;
    rebuilt[s]->parent = parent;
    parent->children[site->IndexInParent()] = std::move(rebuilt[s]);
    for (Node* a = parent; a != nullptr; a = a->parent) {
      a->record_count += added;
      a->mbr.ExpandToInclude(grown);
    }
    ++stats.sites_rebuilt;
    stats.records_reindexed += gathered[s];
  }
  return stats;
}

}  // namespace kanon
