#ifndef KANON_LSM_MEMTABLE_H_
#define KANON_LSM_MEMTABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/bulk_load.h"
#include "index/hilbert.h"

namespace kanon {

/// The write-absorbing tier of the LSM ingest path: an in-memory run of
/// acknowledged records that have been WAL-logged but not yet merged into
/// the R⁺-tree. Appends are O(dim) copies into flat columns — no tree
/// maintenance at all — which is where the ingest-throughput win over
/// record-at-a-time inserts comes from; the records reach the index later,
/// in bulk, through MergeScheduler.
///
/// Single-writer like the tree it feeds: only the service's ingest thread
/// touches a Memtable. Readers never see it directly — publication copies
/// its contents into immutable overlay LeafGroups (OverlayGroups below),
/// and durability never depends on it (the WAL already holds every record;
/// crash recovery replays the tail right back into a fresh memtable).
class Memtable {
 public:
  explicit Memtable(size_t dim);

  /// Absorbs one acknowledged record. `rid` is the service's dense record
  /// id (LSN - 1); the memtable preserves arrival order.
  void Append(std::span<const double> point, RecordId rid, int32_t sensitive);

  size_t dim() const { return dim_; }
  size_t size() const { return rids_.size(); }
  bool empty() const { return rids_.empty(); }
  /// Approximate resident footprint (payload columns only) — the quantity
  /// the --memtable-bytes flush trigger is compared against.
  size_t bytes() const { return rids_.size() * record_bytes_; }

  std::span<const double> point(size_t i) const {
    return {points_.data() + i * dim_, dim_};
  }
  RecordId rid(size_t i) const { return rids_[i]; }
  int32_t sensitive(size_t i) const { return sensitives_[i]; }

  /// Drops every record (after a merge adopted them into the tree).
  /// Capacity is kept — the steady-state fill/flush cycle allocates
  /// nothing.
  void Clear();

  /// The memtable's contribution to a published snapshot between flushes:
  /// the resident records sorted by (curve key, rid) — the same order the
  /// eventual merge will use — and chunked into leaf-sized groups of
  /// `target_size` with any tail smaller than `min_size` folded into the
  /// previous group. Every group therefore holds >= min_size (= base_k)
  /// records, so overlay groups compose with tree leaves under LeafScan
  /// without ever releasing a memtable resident below the k bound. When
  /// fewer than min_size records are resident no group can be formed at
  /// all; they are withheld and reported via `held_back`.
  ///
  /// The (curve key, slot) order is cached across calls: a publication only
  /// keys and sorts the records appended since the previous one and merges
  /// that delta into the cached sorted prefix, so steady-cadence snapshots
  /// cost O(delta log delta + resident) instead of re-sorting every
  /// resident record each time.
  std::vector<LeafGroup> OverlayGroups(const Domain& domain, CurveOrder order,
                                       int grid_bits, size_t min_size,
                                       size_t target_size,
                                       size_t* held_back) const;

 private:
  const size_t dim_;
  const size_t record_bytes_;
  std::vector<double> points_;  // row-major, size() * dim
  std::vector<RecordId> rids_;
  std::vector<int32_t> sensitives_;

  // Publication-order cache: (curve key, slot) sorted pairs covering the
  // first sorted_limit_ residents, plus the quantization parameters they
  // were keyed under (a parameter change discards the cache). Only the
  // single-writer ingest thread calls OverlayGroups, so the mutable cache
  // needs no synchronization.
  mutable std::vector<std::pair<CurveKey, size_t>> sorted_;
  mutable size_t sorted_limit_ = 0;
  mutable CurveOrder sorted_order_ = CurveOrder::kHilbert;
  mutable int sorted_grid_bits_ = -1;
  mutable Domain sorted_domain_;
};

}  // namespace kanon

#endif  // KANON_LSM_MEMTABLE_H_
