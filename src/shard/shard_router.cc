#include "shard/shard_router.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace kanon {

namespace {

/// FNV-1a over the bit patterns of the point. -0.0 is canonicalized to
/// +0.0 so two encodings of the same value never land on different shards.
uint64_t HashPoint(std::span<const double> point) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const double v : point) {
    const double canonical = v == 0.0 ? 0.0 : v;
    uint64_t bits;
    std::memcpy(&bits, &canonical, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace

const char* ShardByName(ShardBy shard_by) {
  switch (shard_by) {
    case ShardBy::kHash:
      return "hash";
    case ShardBy::kRange:
      return "range";
  }
  return "hash";
}

StatusOr<ShardBy> ShardByFromName(const std::string& name) {
  if (name == "hash") return ShardBy::kHash;
  if (name == "range") return ShardBy::kRange;
  return Status::InvalidArgument("unknown shard policy '" + name +
                                 "' (have: hash, range)");
}

ShardRouter::ShardRouter(ShardingOptions options, const Domain& domain)
    : options_(options),
      range_lo_(domain.dim() > 0 ? domain.lo[0] : 0.0),
      range_width_(domain.dim() > 0 ? domain.hi[0] - domain.lo[0] : 0.0) {
  KANON_CHECK(options_.num_shards >= 1);
  KANON_CHECK(domain.dim() >= 1);
}

size_t ShardRouter::ShardOf(std::span<const double> point) const {
  const size_t n = options_.num_shards;
  if (n == 1) return 0;
  KANON_DCHECK(!point.empty());
  if (options_.shard_by == ShardBy::kHash) {
    return static_cast<size_t>(HashPoint(point) % n);
  }
  // Range: equi-width buckets of attribute 0 over the domain; outliers
  // clamp into the boundary shards (every record must route somewhere).
  if (range_width_ <= 0.0) return 0;
  const double frac = (point[0] - range_lo_) / range_width_;
  if (!(frac > 0.0)) return 0;  // also catches NaN
  if (frac >= 1.0) return n - 1;
  const size_t shard = static_cast<size_t>(frac * static_cast<double>(n));
  return shard < n ? shard : n - 1;
}

}  // namespace kanon
