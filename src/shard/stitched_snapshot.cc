#include "shard/stitched_snapshot.h"

namespace kanon {

PartitionSet StitchedSnapshot::Release(size_t k1) const {
  PartitionSet out;
  for (const std::shared_ptr<const Snapshot>& part : parts_) {
    if (part == nullptr) continue;
    PartitionSet ps = part->Release(k1);
    out.partitions.insert(out.partitions.end(),
                          std::make_move_iterator(ps.partitions.begin()),
                          std::make_move_iterator(ps.partitions.end()));
  }
  return out;
}

}  // namespace kanon
