#include "shard/stitched_snapshot.h"

namespace kanon {

StatusOr<DpCells> StitchedSnapshot::SummedDpCells(size_t* height) const {
  auto sum = std::make_shared<std::vector<uint64_t>>();
  size_t h = 0;
  bool any = false;
  for (const std::shared_ptr<const Snapshot>& part : parts_) {
    if (part == nullptr) continue;
    if (part->dp_cells() == nullptr) {
      return Status::FailedPrecondition(
          "snapshot carries no dp cell counts (service runs with "
          "dp_height 0)");
    }
    const std::vector<uint64_t>& cells = *part->dp_cells();
    if (!any) {
      h = part->dp_height();
      sum->assign(cells.size(), 0);
      any = true;
    } else if (part->dp_height() != h || cells.size() != sum->size()) {
      return Status::Internal(
          "dp grid height differs between shards; cell vectors cannot be "
          "summed");
    }
    for (size_t i = 0; i < cells.size(); ++i) (*sum)[i] += cells[i];
  }
  if (!any) {
    return Status::FailedPrecondition(
        "no covered shard carries dp cell counts");
  }
  *height = h;
  return DpCells(std::move(sum));
}

PartitionSet StitchedSnapshot::Release(size_t k1) const {
  PartitionSet out;
  for (const std::shared_ptr<const Snapshot>& part : parts_) {
    if (part == nullptr) continue;
    PartitionSet ps = part->Release(k1);
    out.partitions.insert(out.partitions.end(),
                          std::make_move_iterator(ps.partitions.begin()),
                          std::make_move_iterator(ps.partitions.end()));
  }
  return out;
}

}  // namespace kanon
