#ifndef KANON_SHARD_STITCHED_SNAPSHOT_H_
#define KANON_SHARD_STITCHED_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "service/snapshot.h"

namespace kanon {

/// Metadata of one stitched multi-shard release point. Per-shard epochs are
/// recorded verbatim (0 = that shard has not published yet) so the
/// staleness of every slice of a stitched release is observable: shard i's
/// records are exactly as fresh as its own epoch, no fresher.
struct StitchedInfo {
  uint64_t records = 0;  // sum over covered (published) shards
  size_t base_k = 0;
  size_t num_shards = 0;
  /// Sum of the per-shard epochs: monotone under any interleaving of
  /// per-shard publications, and equal to the single shard's epoch when
  /// num_shards == 1 (the unsharded-compatibility case).
  uint64_t epoch = 0;
  std::vector<uint64_t> shard_epochs;   // size num_shards, 0 = unpublished
  std::vector<uint64_t> shard_records;  // size num_shards

  /// LSM ingest tier, summed over covered shards: of `records`, how many
  /// are served from memtable overlay groups (k-bound like tree leaves),
  /// and how many acknowledged residents each snapshot withheld because
  /// fewer than base_k sat in that shard's memtable (released after its
  /// next flush). See SnapshotInfo.
  uint64_t memtable_records = 0;
  uint64_t memtable_pending = 0;
};

/// An immutable multi-shard release point: one epoch snapshot per shard
/// (entries are null until that shard first publishes), stitched into a
/// single consistent view. Releases concatenate per-shard partition lists
/// in shard order — groups never cross a shard boundary, so every group of
/// a stitched k1-release comes from exactly one shard's k1-release and the
/// per-shard k-bound guarantee (Lemma 1 within each shard's snapshot)
/// carries over to the stitched whole unchanged. Like Snapshot, the object
/// is immutable after construction: any number of threads may Release from
/// it with no synchronization.
class StitchedSnapshot {
 public:
  StitchedSnapshot(std::vector<std::shared_ptr<const Snapshot>> parts,
                   Domain domain, StitchedInfo info)
      : parts_(std::move(parts)),
        domain_(std::move(domain)),
        info_(std::move(info)) {}

  StitchedSnapshot(const StitchedSnapshot&) = delete;
  StitchedSnapshot& operator=(const StitchedSnapshot&) = delete;

  const StitchedInfo& info() const { return info_; }
  const Domain& domain() const { return domain_; }
  /// Per-shard snapshots, indexed by shard; null until that shard has
  /// published (fewer than base_k records routed to it so far).
  const std::vector<std::shared_ptr<const Snapshot>>& parts() const {
    return parts_;
  }

  /// The k1-granular anonymization of every covered shard's records:
  /// shard 0's k1-release partitions, then shard 1's, ... With one shard
  /// this is byte-for-byte the shard's own Snapshot::Release — the
  /// differential anchor the shard tests pin down.
  PartitionSet Release(size_t k1) const;

  /// The element-wise sum of the covered shards' exact DP cell vectors
  /// (see Snapshot::dp_cells), with the shared grid height in *height.
  /// Because the DP grid is data-independent, the sum depends only on the
  /// union multiset of the shards' records — not on how the router spread
  /// them — which is what makes a DP release built from it byte-identical
  /// at any shard count. FailedPrecondition when no covered shard carries
  /// DP cells (publisher ran with dp_height 0); Internal on a height
  /// mismatch between shards (a misconfigured fleet).
  StatusOr<DpCells> SummedDpCells(size_t* height) const;

 private:
  std::vector<std::shared_ptr<const Snapshot>> parts_;
  Domain domain_;
  StitchedInfo info_;
};

}  // namespace kanon

#endif  // KANON_SHARD_STITCHED_SNAPSHOT_H_
