#ifndef KANON_SHARD_SHARD_ROUTER_H_
#define KANON_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace kanon {

/// How records are assigned to shards.
enum class ShardBy {
  /// Hash of the full quasi-identifier point (FNV-1a over the canonical
  /// bit patterns). Spreads any workload uniformly; a record's shard is a
  /// pure function of its values, so replaying the same stream after a
  /// crash routes every record to the same shard again.
  kHash,
  /// Equi-width range partitioning of the first quasi-identifier over the
  /// service domain. Keeps spatially close records together, so per-shard
  /// releases generalize less at the cost of skew sensitivity.
  kRange,
};

/// "hash" / "range".
const char* ShardByName(ShardBy shard_by);
/// Inverse of ShardByName. InvalidArgument on anything else.
StatusOr<ShardBy> ShardByFromName(const std::string& name);

struct ShardingOptions {
  /// Number of independent single-writer shards. 1 degenerates to the
  /// unsharded service (and is the default everywhere).
  size_t num_shards = 1;
  ShardBy shard_by = ShardBy::kHash;
};

/// Deterministically maps records to shards. Stateless after construction
/// and safe to call from any number of threads concurrently — the HTTP
/// worker pool routes every /ingest line through one shared router.
class ShardRouter {
 public:
  /// `domain` anchors the kRange policy (first attribute's [lo, hi)); it
  /// is copied, so the router does not dangle on a caller's temporary.
  ShardRouter(ShardingOptions options, const Domain& domain);

  size_t num_shards() const { return options_.num_shards; }
  ShardBy shard_by() const { return options_.shard_by; }

  /// The shard `point` belongs to, in [0, num_shards()). Range routing
  /// clamps points outside the domain into the first/last shard.
  size_t ShardOf(std::span<const double> point) const;

 private:
  const ShardingOptions options_;
  const double range_lo_;
  const double range_width_;  // domain extent of attribute 0 (>= 0)
};

}  // namespace kanon

#endif  // KANON_SHARD_SHARD_ROUTER_H_
