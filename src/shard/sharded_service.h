#ifndef KANON_SHARD_SHARDED_SERVICE_H_
#define KANON_SHARD_SHARDED_SERVICE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/anonymization_service.h"
#include "shard/shard_router.h"
#include "shard/stitched_snapshot.h"

namespace kanon {

/// Configuration of the sharded serving layer: one ServiceOptions applied
/// to every shard, plus the partitioning itself. Queue capacity, batch
/// size and snapshot cadence are per shard (N shards absorb N x the burst).
/// When durability is configured, `service.durability.wal_dir` is the root
/// directory; shard i owns the `shard-<i>/` subdirectory with its own WAL
/// segments, checkpoints and MANIFEST.
struct ShardedServiceOptions {
  ServiceOptions service;
  ShardingOptions sharding;
};

/// Aggregate + per-shard counters. `total` sums every additive counter and
/// carries the aggregated health (degraded if any shard is degraded);
/// non-additive fields (batch-size histogram) are left empty on the total
/// and available per shard.
struct ShardedServiceStats {
  ServiceStats total;
  std::vector<ServiceStats> shards;
};

/// N independent AnonymizationServices behind one deterministic router —
/// the ROADMAP's "sharded multi-domain service". Each shard is the full
/// existing service: its own single-writer ingest thread, bounded queue,
/// WAL segment directory, checkpoint cadence and health state machine, so
/// ingest throughput scales with cores instead of the single-writer
/// ceiling (the SKALD construction: chunk the keyspace, k-anonymize each
/// chunk independently).
///
///   Ingest(p) --ShardRouter--> shard_i.Ingest(p)   (i = hash/range of p)
///   CurrentStitched()  <- one epoch snapshot per shard, concatenated
///
/// The k-bound guarantee survives stitching because released groups never
/// cross shards: every group of a stitched k1-release is a group of some
/// shard's own k1-release, and each shard's snapshot satisfies Lemma 1 on
/// its own records. Record ids (and WAL LSNs) are shard-local.
///
/// Durability: the shard layout (count, policy, dimensionality) is pinned
/// in a `SHARDS` file under the WAL root at first creation; reopening with
/// a mismatched --shards / --shard-by / dim is rejected rather than
/// silently splitting a shard's WAL stream across different trees.
class ShardedAnonymizationService {
 public:
  /// Creates every shard (running recovery per shard when durability is
  /// on). Any shard failure — including a shard-layout mismatch — fails
  /// the whole service as a Status.
  static StatusOr<std::unique_ptr<ShardedAnonymizationService>> Create(
      size_t dim, Domain domain, ShardedServiceOptions options = {});

  /// Stops all shards (see Stop) if still running.
  ~ShardedAnonymizationService();

  ShardedAnonymizationService(const ShardedAnonymizationService&) = delete;
  ShardedAnonymizationService& operator=(const ShardedAnonymizationService&) =
      delete;

  size_t dim() const { return dim_; }
  size_t num_shards() const { return shards_.size(); }
  const ShardedServiceOptions& options() const { return options_; }
  const ShardRouter& router() const { return router_; }
  const Domain& domain() const { return domain_; }

  /// Routes one record to its shard's queue. Same contract as the
  /// unsharded Ingest: blocks or returns ResourceExhausted under that
  /// shard's backpressure, Unavailable while that shard is degraded,
  /// FailedPrecondition after Stop.
  Status Ingest(std::span<const double> point, int32_t sensitive = 0);

  /// Aggregated health: degraded if ANY shard is degraded (the fleet has
  /// lost write availability for part of the keyspace), stopped only when
  /// every shard stopped, serving otherwise. Reads work in every state.
  ServiceHealth health() const;

  /// First degraded shard's reason, prefixed "shard <i>: " ("" if none).
  std::string degraded_reason() const;

  /// The current stitched view: every shard's latest epoch snapshot,
  /// concatenated. Null until at least one shard has published. Constant
  /// time per shard (one shared_ptr copy each); the returned object stays
  /// valid as long as the caller holds it, across Stop and republication.
  std::shared_ptr<const StitchedSnapshot> CurrentStitched() const;

  /// Asks every shard to drain + publish, then returns the stitched view.
  std::shared_ptr<const StitchedSnapshot> PublishNow();

  /// Stitched k1-release of the current view. FailedPrecondition while no
  /// shard has published yet.
  StatusOr<PartitionSet> GetRelease(size_t k1) const;

  /// Graceful shutdown: every shard drains and publishes concurrently (one
  /// joiner thread per shard), preserving the zero-lost-acknowledged-
  /// records guarantee shard by shard. Idempotent.
  void Stop();

  /// Total records applied across all shards.
  uint64_t inserted() const;

  AnonymizationService* shard(size_t i) { return shards_[i].get(); }
  const AnonymizationService* shard(size_t i) const {
    return shards_[i].get();
  }

  /// Startup recovery of shard i (all-zero when durability is off).
  const RecoveryResult& shard_recovery(size_t i) const {
    return shards_[i]->recovery();
  }

  ShardedServiceStats Stats() const;

 private:
  ShardedAnonymizationService(size_t dim, Domain domain,
                              ShardedServiceOptions options);

  const size_t dim_;
  const ShardedServiceOptions options_;
  const Domain domain_;
  const ShardRouter router_;
  std::vector<std::unique_ptr<AnonymizationService>> shards_;
};

/// `wal-root/shard-<i>` — the durability directory shard i owns.
std::string ShardWalDir(const std::string& root, size_t shard);

/// Validates (or, on first creation, records) the shard layout pinned
/// under `root`: shard count, routing policy and dimensionality must match
/// what the directory was created with. A root holding a pre-sharding
/// unsharded layout (a bare MANIFEST) is rejected with guidance. Exposed
/// for tests; Create calls it when durability is enabled.
Status CheckOrWriteShardLayout(const std::string& root, size_t num_shards,
                               ShardBy shard_by, size_t dim, Env* env);

}  // namespace kanon

#endif  // KANON_SHARD_SHARDED_SERVICE_H_
