#include "shard/sharded_service.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/thread.h"

namespace kanon {

namespace {

constexpr char kLayoutFile[] = "SHARDS";
constexpr char kLayoutMagic[] = "kanon-shard-layout v1";

}  // namespace

std::string ShardWalDir(const std::string& root, size_t shard) {
  return root + "/shard-" + std::to_string(shard);
}

Status CheckOrWriteShardLayout(const std::string& root, size_t num_shards,
                               ShardBy shard_by, size_t dim, Env* env) {
  const std::string path = root + "/" + kLayoutFile;
  std::string existing;
  const Status read = ReadFileToString(env, path, &existing);
  if (read.ok()) {
    std::istringstream in(existing);
    std::string magic;
    std::getline(in, magic);
    if (magic != kLayoutMagic) {
      return Status::Corruption("unrecognized shard layout file " + path +
                                " (first line: '" + magic + "')");
    }
    size_t file_shards = 0, file_dim = 0;
    std::string file_policy;
    std::string key;
    while (in >> key) {
      if (key == "shards") {
        in >> file_shards;
      } else if (key == "shard_by") {
        in >> file_policy;
      } else if (key == "dim") {
        in >> file_dim;
      } else {
        std::string ignored;
        in >> ignored;  // forward compatibility: skip unknown keys
      }
    }
    if (file_shards != num_shards) {
      return Status::InvalidArgument(
          root + " was created with --shards=" + std::to_string(file_shards) +
          "; reopening with --shards=" + std::to_string(num_shards) +
          " would split each shard's WAL stream across different trees. "
          "Restart with the recorded shard count.");
    }
    if (file_policy != ShardByName(shard_by)) {
      return Status::InvalidArgument(
          root + " was created with --shard-by=" + file_policy +
          "; reopening with --shard-by=" + ShardByName(shard_by) +
          " would route recovered records to different shards.");
    }
    if (file_dim != dim) {
      return Status::InvalidArgument(
          root + " was created for dim=" + std::to_string(file_dim) +
          ", not dim=" + std::to_string(dim));
    }
    return Status::OK();
  }
  if (read.code() != StatusCode::kNotFound) return read;
  // No layout file. A bare MANIFEST at the root is a pre-sharding
  // unsharded layout — refuse rather than ignore the existing data.
  if (env->FileExists(root + "/MANIFEST")) {
    return Status::InvalidArgument(
        root + " holds an unsharded (pre-sharding) durability layout; "
        "recover it with a pre-sharding build or move it aside before "
        "serving sharded from this directory");
  }
  std::string contents = std::string(kLayoutMagic) + "\n" +
                         "shards " + std::to_string(num_shards) + "\n" +
                         "shard_by " + ShardByName(shard_by) + "\n" +
                         "dim " + std::to_string(dim) + "\n";
  KANON_ASSIGN_OR_RETURN(auto file,
                         env->NewWritableFile(path, /*truncate=*/true));
  KANON_RETURN_IF_ERROR(file->Append(contents.data(), contents.size()));
  KANON_RETURN_IF_ERROR(file->Sync());
  KANON_RETURN_IF_ERROR(file->Close());
  return env->SyncDir(root);
}

ShardedAnonymizationService::ShardedAnonymizationService(
    size_t dim, Domain domain, ShardedServiceOptions options)
    : dim_(dim),
      options_(options),
      domain_(std::move(domain)),
      router_(options.sharding, domain_) {
  KANON_CHECK(options_.sharding.num_shards >= 1);
}

StatusOr<std::unique_ptr<ShardedAnonymizationService>>
ShardedAnonymizationService::Create(size_t dim, Domain domain,
                                    ShardedServiceOptions options) {
  if (options.sharding.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<ShardedAnonymizationService> service(
      new ShardedAnonymizationService(dim, std::move(domain), options));
  const DurabilityOptions& d = options.service.durability;
  if (d.enabled()) {
    Env* env = d.env != nullptr ? d.env : Env::Default();
    KANON_RETURN_IF_ERROR(env->CreateDirs(d.wal_dir));
    KANON_RETURN_IF_ERROR(CheckOrWriteShardLayout(
        d.wal_dir, options.sharding.num_shards, options.sharding.shard_by,
        dim, env));
  }
  service->shards_.reserve(options.sharding.num_shards);
  for (size_t i = 0; i < options.sharding.num_shards; ++i) {
    ServiceOptions shard_options = options.service;
    if (d.enabled()) {
      shard_options.durability.wal_dir = ShardWalDir(d.wal_dir, i);
    }
    auto shard = AnonymizationService::Create(dim, service->domain_,
                                              shard_options);
    if (!shard.ok()) {
      return Status(shard.status().code(),
                    "shard " + std::to_string(i) + ": " +
                        shard.status().message());
    }
    service->shards_.push_back(std::move(shard).value());
  }
  return service;
}

ShardedAnonymizationService::~ShardedAnonymizationService() { Stop(); }

Status ShardedAnonymizationService::Ingest(std::span<const double> point,
                                           int32_t sensitive) {
  KANON_CHECK(point.size() == dim_);
  return shards_[router_.ShardOf(point)]->Ingest(point, sensitive);
}

ServiceHealth ShardedAnonymizationService::health() const {
  size_t stopped = 0;
  for (const auto& shard : shards_) {
    switch (shard->health()) {
      case ServiceHealth::kDegraded:
        return ServiceHealth::kDegraded;
      case ServiceHealth::kStopped:
        ++stopped;
        break;
      case ServiceHealth::kServing:
        break;
    }
  }
  return stopped == shards_.size() ? ServiceHealth::kStopped
                                   : ServiceHealth::kServing;
}

std::string ShardedAnonymizationService::degraded_reason() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string reason = shards_[i]->degraded_reason();
    if (!reason.empty()) {
      return "shard " + std::to_string(i) + ": " + reason;
    }
  }
  return "";
}

std::shared_ptr<const StitchedSnapshot>
ShardedAnonymizationService::CurrentStitched() const {
  std::vector<std::shared_ptr<const Snapshot>> parts;
  parts.reserve(shards_.size());
  StitchedInfo info;
  info.num_shards = shards_.size();
  info.base_k = options_.service.anonymizer.base_k;
  info.shard_epochs.resize(shards_.size(), 0);
  info.shard_records.resize(shards_.size(), 0);
  bool any = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_ptr<const Snapshot> part = shards_[i]->CurrentSnapshot();
    if (part != nullptr) {
      any = true;
      const SnapshotInfo& si = part->info();
      info.shard_epochs[i] = si.epoch;
      info.shard_records[i] = si.records;
      info.records += si.records;
      info.epoch += si.epoch;
      info.memtable_records += si.memtable_records;
      info.memtable_pending += si.memtable_pending;
    }
    parts.push_back(std::move(part));
  }
  if (!any) return nullptr;
  return std::make_shared<const StitchedSnapshot>(std::move(parts), domain_,
                                                  std::move(info));
}

std::shared_ptr<const StitchedSnapshot>
ShardedAnonymizationService::PublishNow() {
  for (const auto& shard : shards_) shard->PublishNow();
  return CurrentStitched();
}

StatusOr<PartitionSet> ShardedAnonymizationService::GetRelease(
    size_t k1) const {
  const std::shared_ptr<const StitchedSnapshot> stitched = CurrentStitched();
  if (stitched == nullptr) {
    return Status::FailedPrecondition("no shard has published yet");
  }
  return stitched->Release(k1);
}

void ShardedAnonymizationService::Stop() {
  // Concurrent drain: each shard's Stop drains its queue, flushes its WAL
  // and publishes its final snapshot; doing them in parallel keeps total
  // drain latency at max(shard) instead of sum(shard). Stop is idempotent
  // per shard, so concurrent callers of this Stop are safe too.
  std::vector<JoinableThread> joiners;
  joiners.reserve(shards_.size());
  for (const auto& shard : shards_) {
    joiners.emplace_back([s = shard.get()] { s->Stop(); });
  }
  // ~JoinableThread joins.
}

uint64_t ShardedAnonymizationService::inserted() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->inserted();
  return total;
}

ShardedServiceStats ShardedAnonymizationService::Stats() const {
  ShardedServiceStats stats;
  stats.shards.reserve(shards_.size());
  ServiceStats& total = stats.total;
  double max_age = 0.0;
  for (const auto& shard : shards_) {
    ServiceStats s = shard->Stats();
    total.enqueued += s.enqueued;
    total.rejected += s.rejected;
    total.inserted += s.inserted;
    total.batches += s.batches;
    total.snapshots += s.snapshots;
    total.queue_depth += s.queue_depth;
    total.last_snapshot_build_ms =
        std::max(total.last_snapshot_build_ms, s.last_snapshot_build_ms);
    max_age = std::max(max_age, s.snapshot_age_s);
    total.durable = total.durable || s.durable;
    total.recovered += s.recovered;
    total.wal_appended += s.wal_appended;
    total.wal_bytes += s.wal_bytes;
    total.wal_syncs += s.wal_syncs;
    total.wal_synced_lsn += s.wal_synced_lsn;
    total.checkpoints += s.checkpoints;
    total.last_checkpoint_lsn += s.last_checkpoint_lsn;
    total.wal_retries += s.wal_retries;
    total.wal_recoveries += s.wal_recoveries;
    total.unavailable += s.unavailable;
    total.dropped += s.dropped;
    total.wal_poisoned = total.wal_poisoned || s.wal_poisoned;
    total.queue_wait_ms += s.queue_wait_ms;
    total.apply_ms += s.apply_ms;
    total.memtable_enabled = total.memtable_enabled || s.memtable_enabled;
    total.memtable_records += s.memtable_records;
    total.memtable_bytes += s.memtable_bytes;
    total.merges += s.merges;
    total.delta_merges += s.delta_merges;
    total.merge_escalations += s.merge_escalations;
    total.last_merge_ms = std::max(total.last_merge_ms, s.last_merge_ms);
    total.merge_ms_total += s.merge_ms_total;
    total.merge_samples += s.merge_samples;
    total.snapshot_build_ms_total += s.snapshot_build_ms_total;
    total.fragments_reused += s.fragments_reused;
    total.fragments_built += s.fragments_built;
    stats.shards.push_back(std::move(s));
  }
  // Staleness of the stitched view is its stalest covered slice.
  total.snapshot_age_s = max_age;
  total.health = health();
  total.degraded_reason = degraded_reason();
  return stats;
}

}  // namespace kanon
