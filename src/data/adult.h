#ifndef KANON_DATA_ADULT_H_
#define KANON_DATA_ADULT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace kanon {

/// The UCI Adult (census income) data set — the standard public benchmark in
/// the k-anonymization literature. We use the usual eight-attribute
/// quasi-identifier configuration with every categorical numerically recoded
/// (matching the paper's treatment of categoricals):
///
///   age, workclass(8), education_num, marital_status(7), occupation(14),
///   race(5), sex(2), hours_per_week
///
/// The sensitive code is the occupation (a common choice), and workclass /
/// marital_status / race carry small generalization hierarchies so the
/// compaction procedure's LCA path is exercised on real-shaped data.
class Adult {
 public:
  static Schema MakeSchema();

  /// Loads the original `adult.data` file (raw UCI format, 15 comma-separated
  /// columns, '?' for missing). Rows with missing QI values are dropped.
  static StatusOr<Dataset> Load(const std::string& path);

  /// Distribution-matched synthetic fallback used when the real file is not
  /// on disk: attribute marginals follow the published Adult statistics
  /// (age 17–90 with mode ~36, 2:1 male/female, hours peaked at 40, ...).
  /// Tests and examples therefore never require network access.
  static Dataset Synthesize(size_t n, uint64_t seed = 13);

  /// Load(path) if the file exists, else Synthesize(fallback_n).
  static Dataset LoadOrSynthesize(const std::string& path, size_t fallback_n,
                                  uint64_t seed = 13);
};

}  // namespace kanon

#endif  // KANON_DATA_ADULT_H_
