#ifndef KANON_DATA_DATASET_H_
#define KANON_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "data/schema.h"

namespace kanon {

/// Identifies a record by its position in the dataset.
using RecordId = uint64_t;

/// Per-attribute [lo, hi] bounds of a dataset — the full quasi-identifier
/// domain, used to normalize the certainty penalty and query workloads.
struct Domain {
  std::vector<double> lo;
  std::vector<double> hi;

  size_t dim() const { return lo.size(); }
  double Extent(size_t attr) const { return hi[attr] - lo[attr]; }
};

/// An in-memory table of records. Quasi-identifier values are stored as a
/// flat row-major double array (the paper numerically recodes every
/// attribute, including categoricals); each record also carries one int32
/// sensitive-attribute code used by l-diversity-style constraints.
///
/// Datasets are append-only: anonymization never mutates the input.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t dim() const { return schema_.dim(); }
  size_t num_records() const { return sensitive_.size(); }
  bool empty() const { return sensitive_.empty(); }

  void Reserve(size_t n) {
    values_.reserve(n * dim());
    sensitive_.reserve(n);
  }

  /// Appends one record; `values` must have exactly dim() entries.
  /// Returns the new record's id.
  RecordId Append(std::span<const double> values, int32_t sensitive = 0) {
    KANON_DCHECK(values.size() == dim());
    values_.insert(values_.end(), values.begin(), values.end());
    sensitive_.push_back(sensitive);
    return num_records() - 1;
  }

  RecordId Append(std::initializer_list<double> values,
                  int32_t sensitive = 0) {
    return Append(std::span<const double>(values.begin(), values.size()),
                  sensitive);
  }

  /// The QI vector of record `rid`.
  std::span<const double> row(RecordId rid) const {
    KANON_DCHECK(rid < num_records());
    return {values_.data() + rid * dim(), dim()};
  }

  double value(RecordId rid, size_t attr) const {
    KANON_DCHECK(rid < num_records() && attr < dim());
    return values_[rid * dim() + attr];
  }

  int32_t sensitive(RecordId rid) const {
    KANON_DCHECK(rid < num_records());
    return sensitive_[rid];
  }

  /// Min/max of every attribute over all records. Dataset must be non-empty.
  Domain ComputeDomain() const;

  /// Copies records [begin, end) into a new dataset with the same schema.
  Dataset Slice(RecordId begin, RecordId end) const;

 private:
  Schema schema_;
  std::vector<double> values_;     // row-major, num_records * dim
  std::vector<int32_t> sensitive_;
};

}  // namespace kanon

#endif  // KANON_DATA_DATASET_H_
