#ifndef KANON_DATA_AGRAWAL_GENERATOR_H_
#define KANON_DATA_AGRAWAL_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace kanon {

/// Synthetic data generator after Agrawal, Ghosh, Imielinski & Swami,
/// "Database Mining: A Performance Perspective" (TKDE 1993) — the generator
/// the paper used for its 100M-record scalability experiments. Nine
/// attributes with the original value ranges and dependencies:
///
///   salary      uniform 20,000 .. 150,000
///   commission  0 if salary >= 75,000, else uniform 10,000 .. 75,000
///   age         uniform 20 .. 80
///   elevel      (education) uniform integer 0 .. 4
///   car         (make) uniform integer 1 .. 20
///   zipcode     uniform integer 0 .. 8 (nine zip codes)
///   hvalue      (house value) zipcode-dependent: uniform 0.5..1.5 ×
///               100,000 × (zipcode + 1) — houses in "richer" zips are worth
///               more, giving the correlated structure the original had
///   hyears      (years house owned) uniform integer 1 .. 30
///   loan        uniform 0 .. 500,000
///
/// The sensitive code is the original generator's "Group A/B" label under
/// classification function 1 (age-based), so l-diversity constraints have
/// something meaningful to diversify.
class AgrawalGenerator {
 public:
  explicit AgrawalGenerator(uint64_t seed = 42) : seed_(seed) {}

  /// The fixed nine-attribute schema described above.
  static Schema MakeSchema();

  /// Generates `n` records.
  Dataset Generate(size_t n) const;

  /// Appends `n` more records (deterministic continuation of the stream that
  /// produced `dataset` when the same generator instance is reused).
  void AppendTo(Dataset* dataset, size_t n, uint64_t stream_offset) const;

 private:
  uint64_t seed_;
};

}  // namespace kanon

#endif  // KANON_DATA_AGRAWAL_GENERATOR_H_
