#include "data/schema.h"

namespace kanon {

Schema::Schema(std::vector<AttributeSpec> attributes,
               std::string sensitive_name)
    : attributes_(std::move(attributes)),
      sensitive_name_(std::move(sensitive_name)) {}

Schema Schema::Numeric(size_t n) {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    attrs.push_back({"a" + std::to_string(i), AttributeType::kNumeric, {}});
  }
  return Schema(std::move(attrs));
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

}  // namespace kanon
