#ifndef KANON_DATA_CSV_H_
#define KANON_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace kanon {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool skip_header = false;
  /// Rows containing this token in any field are dropped (the Adult data set
  /// marks missing values with "?").
  std::string missing_token = "?";
};

/// Parses one CSV line into trimmed fields.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

/// Reads a purely numeric CSV whose columns match `schema` (QI columns first,
/// then optionally one extra column holding the sensitive code). Rows with
/// missing values or a wrong column count are skipped.
StatusOr<Dataset> ReadNumericCsv(const std::string& path, const Schema& schema,
                                 const CsvOptions& options = {});

/// Writes the dataset's QI values plus the sensitive code as CSV.
Status WriteCsv(const Dataset& dataset, const std::string& path);

}  // namespace kanon

#endif  // KANON_DATA_CSV_H_
