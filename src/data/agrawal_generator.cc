#include "data/agrawal_generator.h"

#include <array>

#include "common/random.h"

namespace kanon {

Schema AgrawalGenerator::MakeSchema() {
  // Categorical attributes are numerically recoded with no hierarchy (the
  // paper's treatment): they generalize to code ranges like numerics.
  std::vector<AttributeSpec> attrs = {
      {"salary", AttributeType::kNumeric, {}},
      {"commission", AttributeType::kNumeric, {}},
      {"age", AttributeType::kNumeric, {}},
      {"elevel", AttributeType::kCategorical, {}},
      {"car", AttributeType::kCategorical, {}},
      {"zipcode", AttributeType::kCategorical, {}},
      {"hvalue", AttributeType::kNumeric, {}},
      {"hyears", AttributeType::kNumeric, {}},
      {"loan", AttributeType::kNumeric, {}},
  };
  return Schema(std::move(attrs), "group");
}

namespace {

void GenerateRecords(Dataset* out, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::array<double, 9> v{};
  for (size_t i = 0; i < n; ++i) {
    const double salary = rng.UniformDouble(20000.0, 150000.0);
    const double commission =
        salary >= 75000.0 ? 0.0 : rng.UniformDouble(10000.0, 75000.0);
    const double age = rng.UniformDouble(20.0, 80.0);
    const double elevel = static_cast<double>(rng.Uniform(5));
    const double car = static_cast<double>(1 + rng.Uniform(20));
    const double zipcode = static_cast<double>(rng.Uniform(9));
    const double hvalue =
        rng.UniformDouble(0.5, 1.5) * 100000.0 * (zipcode + 1.0);
    const double hyears = static_cast<double>(1 + rng.Uniform(30));
    const double loan = rng.UniformDouble(0.0, 500000.0);
    v = {salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan};
    // Classification function 1 of the original generator: group A if
    // age < 40 or age >= 60, else group B.
    const int32_t group = (age < 40.0 || age >= 60.0) ? 0 : 1;
    out->Append(std::span<const double>(v.data(), v.size()), group);
  }
}

}  // namespace

Dataset AgrawalGenerator::Generate(size_t n) const {
  Dataset out(MakeSchema());
  out.Reserve(n);
  GenerateRecords(&out, n, seed_);
  return out;
}

void AgrawalGenerator::AppendTo(Dataset* dataset, size_t n,
                                uint64_t stream_offset) const {
  GenerateRecords(dataset, n, seed_ + 0x9e3779b9ULL * (stream_offset + 1));
}

}  // namespace kanon
