#include "data/schema_spec.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace kanon {

namespace {

struct HierarchyBuild {
  std::unique_ptr<Hierarchy> hierarchy;
  std::map<std::string, int> node_ids;  // label -> node id (root = "*")
};

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;  // comment until end of line
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

StatusOr<Schema> ParseSchemaSpec(const std::string& text) {
  std::vector<AttributeSpec> attributes;
  std::map<std::string, size_t> attribute_index;
  std::map<std::string, HierarchyBuild> hierarchies;
  std::string sensitive_name = "sensitive";

  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string where = "schema spec line " + std::to_string(line_no);
    const std::string& keyword = tokens[0];

    if (keyword == "attribute") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(where +
                                       ": expected 'attribute NAME TYPE'");
      }
      AttributeSpec spec;
      spec.name = tokens[1];
      if (tokens[2] == "numeric") {
        spec.type = AttributeType::kNumeric;
      } else if (tokens[2] == "categorical") {
        spec.type = AttributeType::kCategorical;
      } else {
        return Status::InvalidArgument(where + ": unknown type '" +
                                       tokens[2] + "'");
      }
      if (attribute_index.count(spec.name)) {
        return Status::InvalidArgument(where + ": duplicate attribute '" +
                                       spec.name + "'");
      }
      attribute_index[spec.name] = attributes.size();
      attributes.push_back(std::move(spec));
    } else if (keyword == "sensitive") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument(where + ": expected 'sensitive NAME'");
      }
      sensitive_name = tokens[1];
    } else if (keyword == "hierarchy") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(
            where + ": expected 'hierarchy ATTRIBUTE NUM_LEAVES'");
      }
      const auto it = attribute_index.find(tokens[1]);
      if (it == attribute_index.end()) {
        return Status::InvalidArgument(where + ": unknown attribute '" +
                                       tokens[1] + "'");
      }
      if (attributes[it->second].type != AttributeType::kCategorical) {
        return Status::InvalidArgument(
            where + ": hierarchies require a categorical attribute");
      }
      const long leaves = std::strtol(tokens[2].c_str(), nullptr, 10);
      if (leaves < 1) {
        return Status::InvalidArgument(where + ": bad leaf count");
      }
      HierarchyBuild build;
      build.hierarchy =
          std::make_unique<Hierarchy>("*", static_cast<int>(leaves));
      build.node_ids["*"] = 0;
      hierarchies[tokens[1]] = std::move(build);
    } else if (keyword == "node") {
      if (tokens.size() != 5 && tokens.size() != 6) {
        return Status::InvalidArgument(
            where + ": expected 'node ATTRIBUTE LABEL LO HI [PARENT]'");
      }
      const auto it = hierarchies.find(tokens[1]);
      if (it == hierarchies.end()) {
        return Status::InvalidArgument(
            where + ": no hierarchy declared for '" + tokens[1] + "'");
      }
      HierarchyBuild& build = it->second;
      const std::string& parent_label =
          tokens.size() == 6 ? tokens[5] : std::string("*");
      const auto parent_it = build.node_ids.find(parent_label);
      if (parent_it == build.node_ids.end()) {
        return Status::InvalidArgument(where + ": unknown parent '" +
                                       parent_label + "'");
      }
      const int lo = static_cast<int>(
          std::strtol(tokens[3].c_str(), nullptr, 10));
      const int hi = static_cast<int>(
          std::strtol(tokens[4].c_str(), nullptr, 10));
      auto id = build.hierarchy->AddChild(parent_it->second, tokens[2], lo,
                                          hi);
      if (!id.ok()) {
        return Status::InvalidArgument(where + ": " + id.status().message());
      }
      build.node_ids[tokens[2]] = *id;
    } else {
      return Status::InvalidArgument(where + ": unknown keyword '" +
                                     keyword + "'");
    }
  }

  if (attributes.empty()) {
    return Status::InvalidArgument("schema spec declares no attributes");
  }
  for (auto& [name, build] : hierarchies) {
    // Hierarchies may be partial (only top groups declared); only fully
    // tiled levels are validated here.
    (void)name;
    attributes[attribute_index[name]].hierarchy = std::move(build.hierarchy);
  }
  return Schema(std::move(attributes), std::move(sensitive_name));
}

StatusOr<Schema> LoadSchemaSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseSchemaSpec(buffer.str());
}

}  // namespace kanon
