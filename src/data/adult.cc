#include "data/adult.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <map>

#include "common/random.h"
#include "data/csv.h"

namespace kanon {

namespace {

// Categorical vocabularies of the raw UCI file, in recoding order.
const std::array<const char*, 8> kWorkclass = {
    "Private",      "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov",    "State-gov",        "Without-pay",  "Never-worked"};
const std::array<const char*, 7> kMarital = {
    "Married-civ-spouse", "Divorced",      "Never-married",
    "Separated",          "Widowed",       "Married-spouse-absent",
    "Married-AF-spouse"};
const std::array<const char*, 14> kOccupation = {
    "Tech-support",      "Craft-repair",   "Other-service",
    "Sales",             "Exec-managerial","Prof-specialty",
    "Handlers-cleaners", "Machine-op-inspct", "Adm-clerical",
    "Farming-fishing",   "Transport-moving",  "Priv-house-serv",
    "Protective-serv",   "Armed-Forces"};
const std::array<const char*, 5> kRace = {
    "White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"};
const std::array<const char*, 2> kSex = {"Male", "Female"};

template <size_t N>
int CodeOf(const std::array<const char*, N>& vocab, const std::string& v) {
  for (size_t i = 0; i < N; ++i) {
    if (v == vocab[i]) return static_cast<int>(i);
  }
  return -1;
}

std::shared_ptr<const Hierarchy> WorkclassHierarchy() {
  // Private | self-employed | government | unemployed
  auto h = std::make_shared<Hierarchy>("*", 8);
  (void)h->AddChild(0, "private", 0, 0);
  (void)h->AddChild(0, "self-employed", 1, 2);
  (void)h->AddChild(0, "government", 3, 5);
  (void)h->AddChild(0, "not-working", 6, 7);
  return h;
}

std::shared_ptr<const Hierarchy> MaritalHierarchy() {
  // spouse-present(0) | once-married(1-4) | AF(5-6) — codes grouped so the
  // leaf ordering keeps similar statuses adjacent.
  auto h = std::make_shared<Hierarchy>("*", 7);
  (void)h->AddChild(0, "married", 0, 0);
  (void)h->AddChild(0, "was-married", 1, 4);
  (void)h->AddChild(0, "other-married", 5, 6);
  return h;
}

std::shared_ptr<const Hierarchy> RaceHierarchy() {
  auto h = std::make_shared<Hierarchy>("*", 5);
  (void)h->AddChild(0, "white", 0, 0);
  (void)h->AddChild(0, "non-white", 1, 4);
  return h;
}

}  // namespace

Schema Adult::MakeSchema() {
  std::vector<AttributeSpec> attrs = {
      {"age", AttributeType::kNumeric, {}},
      {"workclass", AttributeType::kCategorical, WorkclassHierarchy()},
      {"education_num", AttributeType::kNumeric, {}},
      {"marital_status", AttributeType::kCategorical, MaritalHierarchy()},
      // Occupation and sex carry no generalization grouping — a flat
      // hierarchy would make any mixed group pay the full-domain penalty
      // and let compaction widen ranges to the root, so they stay ordered
      // categoricals that generalize to code ranges.
      {"occupation", AttributeType::kCategorical, {}},
      {"race", AttributeType::kCategorical, RaceHierarchy()},
      {"sex", AttributeType::kCategorical, {}},
      {"hours_per_week", AttributeType::kNumeric, {}},
  };
  return Schema(std::move(attrs), "occupation");
}

StatusOr<Dataset> Adult::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Dataset out(MakeSchema());
  std::string line;
  // Raw UCI columns: age, workclass, fnlwgt, education, education-num,
  // marital-status, occupation, relationship, race, sex, capital-gain,
  // capital-loss, hours-per-week, native-country, income.
  while (std::getline(in, line)) {
    const auto f = SplitCsvLine(line, ',');
    if (f.size() < 15) continue;
    const int workclass = CodeOf(kWorkclass, f[1]);
    const int marital = CodeOf(kMarital, f[5]);
    const int occupation = CodeOf(kOccupation, f[6]);
    const int race = CodeOf(kRace, f[8]);
    const int sex = CodeOf(kSex, f[9]);
    if (workclass < 0 || marital < 0 || occupation < 0 || race < 0 ||
        sex < 0) {
      continue;  // missing or unknown categorical
    }
    char* end = nullptr;
    const double age = std::strtod(f[0].c_str(), &end);
    if (end == f[0].c_str()) continue;
    const double edu = std::strtod(f[4].c_str(), nullptr);
    const double hours = std::strtod(f[12].c_str(), nullptr);
    const std::array<double, 8> v = {
        age,
        static_cast<double>(workclass),
        edu,
        static_cast<double>(marital),
        static_cast<double>(occupation),
        static_cast<double>(race),
        static_cast<double>(sex),
        hours};
    out.Append(std::span<const double>(v.data(), v.size()), occupation);
  }
  if (out.empty()) return Status::Corruption("no parsable rows in " + path);
  return out;
}

Dataset Adult::Synthesize(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset out(MakeSchema());
  out.Reserve(n);
  std::array<double, 8> v{};
  for (size_t i = 0; i < n; ++i) {
    // Age: right-skewed, mode mid-30s, clamped to the published 17..90.
    double age = 17.0 + std::abs(19.0 * rng.NextGaussian()) +
                 rng.UniformDouble(0.0, 8.0);
    age = std::clamp(std::floor(age), 17.0, 90.0);
    // Workclass: ~70% Private, tail over the rest.
    const double workclass =
        rng.Bernoulli(0.70) ? 0.0 : static_cast<double>(1 + rng.Zipf(7, 0.8));
    // Education-num: 1..16, peaked at HS-grad (9) and some-college (10).
    double edu = 9.0 + 2.4 * rng.NextGaussian();
    edu = std::clamp(std::floor(edu), 1.0, 16.0);
    const double marital = static_cast<double>(rng.Zipf(7, 0.7));
    const double occupation = static_cast<double>(rng.Zipf(14, 0.3));
    // Race: ~85% White.
    const double race =
        rng.Bernoulli(0.85) ? 0.0 : static_cast<double>(1 + rng.Zipf(4, 0.5));
    const double sex = rng.Bernoulli(0.67) ? 0.0 : 1.0;  // 2:1 male
    // Hours: spike at 40 plus spread 1..99.
    double hours = rng.Bernoulli(0.45)
                       ? 40.0
                       : std::clamp(40.0 + 13.0 * rng.NextGaussian(), 1.0,
                                    99.0);
    hours = std::floor(hours);
    v = {age, workclass, edu, marital, occupation, race, sex, hours};
    out.Append(std::span<const double>(v.data(), v.size()),
               static_cast<int32_t>(occupation));
  }
  return out;
}

Dataset Adult::LoadOrSynthesize(const std::string& path, size_t fallback_n,
                                uint64_t seed) {
  auto loaded = Load(path);
  if (loaded.ok()) return std::move(loaded).value();
  return Synthesize(fallback_n, seed);
}

}  // namespace kanon
