#ifndef KANON_DATA_LANDSEND_GENERATOR_H_
#define KANON_DATA_LANDSEND_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace kanon {

/// Stand-in for the proprietary Lands' End customer data set the paper used
/// (4,591,581 records, eight attributes: zipcode, order date, gender, style,
/// price, quantity, cost, shipment; every categorical numerically recoded).
///
/// The real data is unavailable, so this generator reproduces the schema and
/// the statistical structure the paper's experiments exercise:
///   * zipcode   — mixture of Gaussians around population centers (spatial
///                 clustering, which R-tree splits exploit),
///   * order date— day index over ten years with seasonal peaks,
///   * gender    — binary, skewed toward one class,
///   * style     — Zipf-distributed catalog of 600 styles,
///   * price     — lognormal-ish positive skew,
///   * quantity  — small geometric-like counts,
///   * cost      — correlated with price (cost ≈ 40–70% of price),
///   * shipment  — Zipf over five methods.
/// The sensitive code is a coarse product-category derived from style.
class LandsEndGenerator {
 public:
  explicit LandsEndGenerator(uint64_t seed = 7) : seed_(seed) {}

  static Schema MakeSchema();

  Dataset Generate(size_t n) const;

  /// Deterministically appends a further batch (used by the incremental
  /// anonymization experiments, Fig 7b / Fig 11).
  void AppendTo(Dataset* dataset, size_t n, uint64_t stream_offset) const;

 private:
  uint64_t seed_;
};

}  // namespace kanon

#endif  // KANON_DATA_LANDSEND_GENERATOR_H_
