#include "data/hierarchy.h"

#include <algorithm>

#include "common/check.h"

namespace kanon {

Hierarchy::Hierarchy(std::string root_label, int num_leaves) {
  KANON_CHECK(num_leaves > 0);
  Node root;
  root.label = std::move(root_label);
  root.lo = 0;
  root.hi = num_leaves - 1;
  nodes_.push_back(std::move(root));
}

Hierarchy Hierarchy::Flat(int num_leaves) {
  return Hierarchy("*", num_leaves);
}

Hierarchy Hierarchy::FromLeafLabels(std::string root_label,
                                    std::vector<std::string> labels) {
  KANON_CHECK(!labels.empty());
  Hierarchy h(std::move(root_label), static_cast<int>(labels.size()));
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    const auto id = h.AddChild(0, std::move(labels[i]), i, i);
    KANON_CHECK(id.ok());
  }
  return h;
}

StatusOr<int> Hierarchy::AddChild(int parent, std::string label, int lo,
                                  int hi) {
  if (parent < 0 || parent >= num_nodes()) {
    return Status::InvalidArgument("hierarchy parent id out of range");
  }
  const Node& p = nodes_[parent];
  if (lo > hi || lo < p.lo || hi > p.hi) {
    return Status::InvalidArgument(
        "child range must be non-empty and within the parent range");
  }
  if (!p.children.empty()) {
    const Node& prev = nodes_[p.children.back()];
    if (lo != prev.hi + 1) {
      return Status::InvalidArgument(
          "children must be added left-to-right with contiguous ranges");
    }
  } else if (lo != p.lo) {
    return Status::InvalidArgument(
        "first child must start at the parent's lower bound");
  }
  Node n;
  n.label = std::move(label);
  n.lo = lo;
  n.hi = hi;
  n.parent = parent;
  const int id = num_nodes();
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

Status Hierarchy::Validate() const {
  for (int i = 0; i < num_nodes(); ++i) {
    const Node& n = nodes_[i];
    if (n.children.empty()) continue;
    if (nodes_[n.children.front()].lo != n.lo ||
        nodes_[n.children.back()].hi != n.hi) {
      return Status::Corruption("children of node " + std::to_string(i) +
                                " do not tile its range");
    }
    for (size_t c = 1; c < n.children.size(); ++c) {
      if (nodes_[n.children[c]].lo != nodes_[n.children[c - 1]].hi + 1) {
        return Status::Corruption("gap between children of node " +
                                  std::to_string(i));
      }
    }
  }
  return Status::OK();
}

int Hierarchy::Lca(int lo_code, int hi_code) const {
  lo_code = std::clamp(lo_code, nodes_[0].lo, nodes_[0].hi);
  hi_code = std::clamp(hi_code, nodes_[0].lo, nodes_[0].hi);
  if (lo_code > hi_code) std::swap(lo_code, hi_code);
  int cur = 0;
  for (;;) {
    const Node& n = nodes_[cur];
    int descend = -1;
    for (int child : n.children) {
      const Node& c = nodes_[child];
      if (c.lo <= lo_code && hi_code <= c.hi) {
        descend = child;
        break;
      }
    }
    if (descend < 0) return cur;
    cur = descend;
  }
}

int Hierarchy::LcaLeafCount(int lo_code, int hi_code) const {
  const Node& n = nodes_[Lca(lo_code, hi_code)];
  return n.hi - n.lo + 1;
}

const std::string& Hierarchy::LcaLabel(int lo_code, int hi_code) const {
  return nodes_[Lca(lo_code, hi_code)].label;
}

}  // namespace kanon
