#include "data/csv.h"

#include <cstdlib>
#include <fstream>

namespace kanon {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == delimiter) {
      fields.push_back(Trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(Trim(cur));
  return fields;
}

StatusOr<Dataset> ReadNumericCsv(const std::string& path, const Schema& schema,
                                 const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Dataset out(schema);
  std::string line;
  bool first = true;
  std::vector<double> values(schema.dim());
  while (std::getline(in, line)) {
    if (first && options.skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (Trim(line).empty()) continue;
    const auto fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() != schema.dim() && fields.size() != schema.dim() + 1) {
      continue;  // malformed row
    }
    bool bad = false;
    for (size_t i = 0; i < schema.dim(); ++i) {
      if (fields[i] == options.missing_token) {
        bad = true;
        break;
      }
      char* end = nullptr;
      values[i] = std::strtod(fields[i].c_str(), &end);
      if (end == fields[i].c_str()) {
        bad = true;
        break;
      }
    }
    if (bad) continue;
    int32_t sensitive = 0;
    if (fields.size() == schema.dim() + 1 &&
        fields.back() != options.missing_token) {
      sensitive = static_cast<int32_t>(std::strtol(fields.back().c_str(),
                                                   nullptr, 10));
    }
    out.Append(values, sensitive);
  }
  return out;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (size_t a = 0; a < dataset.dim(); ++a) {
    out << dataset.schema().attribute(a).name << ",";
  }
  out << dataset.schema().sensitive_name() << "\n";
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    const auto row = dataset.row(r);
    for (double v : row) out << v << ",";
    out << dataset.sensitive(r) << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace kanon
