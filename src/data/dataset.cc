#include "data/dataset.h"

#include <algorithm>

namespace kanon {

Domain Dataset::ComputeDomain() const {
  KANON_CHECK(!empty());
  Domain d;
  d.lo.assign(dim(), 0.0);
  d.hi.assign(dim(), 0.0);
  for (size_t a = 0; a < dim(); ++a) {
    d.lo[a] = d.hi[a] = value(0, a);
  }
  for (RecordId r = 1; r < num_records(); ++r) {
    const auto row_span = row(r);
    for (size_t a = 0; a < dim(); ++a) {
      d.lo[a] = std::min(d.lo[a], row_span[a]);
      d.hi[a] = std::max(d.hi[a], row_span[a]);
    }
  }
  return d;
}

Dataset Dataset::Slice(RecordId begin, RecordId end) const {
  KANON_CHECK(begin <= end && end <= num_records());
  Dataset out(schema_);
  out.Reserve(end - begin);
  for (RecordId r = begin; r < end; ++r) {
    out.Append(row(r), sensitive(r));
  }
  return out;
}

}  // namespace kanon
