#ifndef KANON_DATA_HIERARCHY_H_
#define KANON_DATA_HIERARCHY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kanon {

/// A generalization hierarchy over a categorical attribute whose values have
/// been numerically recoded to the contiguous leaf codes 0..num_leaves-1 (the
/// paper "eliminated hierarchical constraints by imposing an intuitive
/// ordering on the values for each categorical attribute"; the hierarchy is
/// retained so the compaction procedure can pick lowest common ancestors and
/// the certainty metric can count leaves).
///
/// Every node covers a contiguous code range [lo, hi]; a node's children
/// partition its range. The tree is built top-down with AddChild.
class Hierarchy {
 public:
  struct Node {
    std::string label;
    int lo = 0;               // first leaf code covered (inclusive)
    int hi = 0;               // last leaf code covered (inclusive)
    int parent = -1;          // -1 for the root
    std::vector<int> children;
  };

  /// Creates a hierarchy whose root covers codes [0, num_leaves-1].
  Hierarchy(std::string root_label, int num_leaves);

  /// A two-level hierarchy: the root directly covers every leaf. This is the
  /// degenerate hierarchy used when only an ordering (no grouping) exists.
  static Hierarchy Flat(int num_leaves);

  /// A two-level hierarchy with one labeled leaf node per code, so single
  /// values render as their label ("M"/"F") and any mixture as the root
  /// ("*") — the rendering style of the paper's Figure 1(b).
  static Hierarchy FromLeafLabels(std::string root_label,
                                  std::vector<std::string> labels);

  /// Adds an internal or leaf node labeled `label` covering [lo, hi] under
  /// `parent` (a node id previously returned by this function; 0 is the
  /// root). Children of a node must be added left to right and must tile the
  /// parent's range when the hierarchy is later validated. Returns the new
  /// node id.
  StatusOr<int> AddChild(int parent, std::string label, int lo, int hi);

  /// Verifies that every node's children exactly tile the node's range.
  Status Validate() const;

  int num_leaves() const { return nodes_[0].hi - nodes_[0].lo + 1; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const { return nodes_[id]; }

  /// Returns the id of the lowest (deepest) node whose range covers
  /// [lo_code, hi_code]. The root always qualifies, so this never fails for
  /// in-range arguments; out-of-range arguments are clamped.
  int Lca(int lo_code, int hi_code) const;

  /// Number of leaf codes covered by the LCA of [lo_code, hi_code]. This is
  /// the |t.A_i| term of the certainty penalty for categorical attributes.
  int LcaLeafCount(int lo_code, int hi_code) const;

  /// Label of the LCA node (for rendering anonymized output).
  const std::string& LcaLabel(int lo_code, int hi_code) const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace kanon

#endif  // KANON_DATA_HIERARCHY_H_
