#include "data/landsend_generator.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/random.h"

namespace kanon {

Schema LandsEndGenerator::MakeSchema() {
  // Matching the paper's treatment of this data set: "hierarchical
  // constraints were eliminated by imposing an intuitive ordering on the
  // values for each categorical attribute" — categoricals carry no
  // hierarchy and generalize to code ranges like numerics do.
  std::vector<AttributeSpec> attrs = {
      {"zipcode", AttributeType::kNumeric, {}},
      {"order_date", AttributeType::kNumeric, {}},
      {"gender", AttributeType::kCategorical, {}},
      {"style", AttributeType::kCategorical, {}},
      {"price", AttributeType::kNumeric, {}},
      {"quantity", AttributeType::kNumeric, {}},
      {"cost", AttributeType::kNumeric, {}},
      {"shipment", AttributeType::kCategorical, {}},
  };
  return Schema(std::move(attrs), "category");
}

namespace {

// Metro-area zip "centers" spanning the US zip range, with weights roughly
// proportional to population.
struct ZipCluster {
  double center;
  double sigma;
  double weight;
};
constexpr std::array<ZipCluster, 8> kZipClusters = {{
    {10001, 900, 0.22},   // NYC
    {60601, 1200, 0.15},  // Chicago
    {90001, 1500, 0.18},  // LA
    {77001, 1100, 0.10},  // Houston
    {30301, 1000, 0.09},  // Atlanta
    {98101, 800, 0.08},   // Seattle
    {2101, 700, 0.08},    // Boston
    {53701, 600, 0.10},   // Madison
}};

void GenerateRecords(Dataset* out, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::array<double, 8> v{};
  for (size_t i = 0; i < n; ++i) {
    // zipcode: pick a cluster by weight, then a Gaussian around its center.
    double pick = rng.NextDouble();
    double zip = 53706;
    for (const auto& c : kZipClusters) {
      if (pick < c.weight) {
        zip = c.center + c.sigma * rng.NextGaussian();
        break;
      }
      pick -= c.weight;
    }
    zip = std::clamp(zip, 501.0, 99950.0);
    zip = std::floor(zip);

    // order date: day index in [0, 3652) with an annual sinusoidal peak
    // (holiday season) implemented via rejection.
    double day;
    for (;;) {
      day = rng.UniformDouble(0.0, 3652.0);
      const double season = 0.5 + 0.5 * std::cos(2.0 * M_PI *
                                                 (day - 3287.0) / 365.25);
      if (rng.NextDouble() < 0.35 + 0.65 * season) break;
    }
    day = std::floor(day);

    const double gender = rng.Bernoulli(0.65) ? 0.0 : 1.0;
    const double style = static_cast<double>(rng.Zipf(600, 0.9));

    // price: lognormal-ish in roughly [5, 500].
    double price = std::exp(3.3 + 0.75 * rng.NextGaussian());
    price = std::clamp(price, 5.0, 500.0);
    price = std::floor(price * 100.0) / 100.0;

    // quantity: geometric-like small count in [1, 10].
    double quantity = 1.0;
    while (quantity < 10.0 && rng.Bernoulli(0.35)) quantity += 1.0;

    const double cost =
        std::floor(price * rng.UniformDouble(0.4, 0.7) * 100.0) / 100.0;
    const double shipment = static_cast<double>(rng.Zipf(5, 1.1));

    v = {zip, day, gender, style, price, quantity, cost, shipment};
    const auto category = static_cast<int32_t>(style) / 30;  // 20 categories
    out->Append(std::span<const double>(v.data(), v.size()), category);
  }
}

}  // namespace

Dataset LandsEndGenerator::Generate(size_t n) const {
  Dataset out(MakeSchema());
  out.Reserve(n);
  GenerateRecords(&out, n, seed_);
  return out;
}

void LandsEndGenerator::AppendTo(Dataset* dataset, size_t n,
                                 uint64_t stream_offset) const {
  GenerateRecords(dataset, n, seed_ + 0x51ed2701ULL * (stream_offset + 1));
}

}  // namespace kanon
