#ifndef KANON_DATA_SCHEMA_H_
#define KANON_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/hierarchy.h"

namespace kanon {

/// How an attribute's values behave: numeric attributes generalize to real
/// intervals; categorical attributes are numerically recoded (see Hierarchy)
/// and generalize either to code intervals or to hierarchy nodes.
enum class AttributeType {
  kNumeric,
  kCategorical,
};

/// Description of one quasi-identifier attribute.
struct AttributeSpec {
  std::string name;
  AttributeType type = AttributeType::kNumeric;
  /// Present for categorical attributes that carry a generalization
  /// hierarchy; may be null for purely ordered categoricals.
  std::shared_ptr<const Hierarchy> hierarchy;
};

/// The quasi-identifier schema of a table: the ordered list of QI attributes
/// plus the (optional) name of the single sensitive attribute. Every record
/// stores one double per QI attribute and one int32 sensitive code.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attributes,
                  std::string sensitive_name = "sensitive");

  /// Convenience: n unnamed numeric attributes (common in benchmarks).
  static Schema Numeric(size_t n);

  size_t dim() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }
  const std::string& sensitive_name() const { return sensitive_name_; }

  /// Index of the attribute named `name`, or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;

 private:
  std::vector<AttributeSpec> attributes_;
  std::string sensitive_name_ = "sensitive";
};

}  // namespace kanon

#endif  // KANON_DATA_SCHEMA_H_
