#ifndef KANON_DATA_SCHEMA_SPEC_H_
#define KANON_DATA_SCHEMA_SPEC_H_

#include <string>

#include "common/status.h"
#include "data/schema.h"

namespace kanon {

/// Parses a textual schema description (used by the CLI's --schema flag so
/// published tables carry real attribute names and hierarchies).
///
/// Line-based format; '#' starts a comment:
///
///   attribute <name> numeric
///   attribute <name> categorical
///   sensitive <name>
///   hierarchy <attribute> <num_leaves>
///   node <attribute> <label> <lo> <hi> [<parent_label>]
///
/// `hierarchy` declares a generalization hierarchy for a categorical
/// attribute (root labeled "*", covering codes 0..num_leaves-1); `node`
/// adds a labeled node covering the code range [lo, hi] under the named
/// parent (the root when omitted). Nodes must be declared top-down and
/// left-to-right, mirroring Hierarchy::AddChild.
///
/// Example:
///
///   attribute age numeric
///   attribute workclass categorical
///   hierarchy workclass 8
///   node workclass private 0 0
///   node workclass self-employed 1 2
///   node workclass government 3 5
///   node workclass federal 3 3 government
///   node workclass local-state 4 5 government
///   node workclass not-working 6 7
///   sensitive occupation
StatusOr<Schema> ParseSchemaSpec(const std::string& text);

/// Reads and parses a schema spec file.
StatusOr<Schema> LoadSchemaSpec(const std::string& path);

}  // namespace kanon

#endif  // KANON_DATA_SCHEMA_SPEC_H_
