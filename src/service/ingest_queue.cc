#include "service/ingest_queue.h"

#include <algorithm>

#include "common/check.h"

namespace kanon {

IngestQueue::IngestQueue(size_t dim, size_t capacity, BackpressureMode mode)
    : dim_(dim),
      capacity_(capacity),
      mode_(mode),
      points_(capacity * dim),
      sensitives_(capacity) {
  KANON_CHECK(dim >= 1 && capacity >= 1);
}

size_t IngestQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t IngestQueue::total_enqueued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_enqueued_;
}

uint64_t IngestQueue::total_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rejected_;
}

Status IngestQueue::Enqueue(std::span<const double> point,
                            int32_t sensitive) {
  KANON_DCHECK(point.size() == dim_);
  std::unique_lock<std::mutex> lock(mu_);
  if (mode_ == BackpressureMode::kBlock) {
    while (!closed_ && count_ == capacity_) {
      ++push_waiters_;
      not_full_.wait(lock);
      --push_waiters_;
    }
  }
  if (closed_) return Status::FailedPrecondition("ingest queue closed");
  if (count_ == capacity_) {
    ++total_rejected_;
    return Status::ResourceExhausted("ingest queue full");
  }
  const size_t slot = (head_ + count_) % capacity_;
  std::copy(point.begin(), point.end(), points_.begin() + slot * dim_);
  sensitives_[slot] = sensitive;
  ++count_;
  ++total_enqueued_;
  const bool wake_consumer = pop_waiters_ > 0;
  lock.unlock();
  if (wake_consumer) not_empty_.notify_one();
  return Status::OK();
}

size_t IngestQueue::DrainBatch(IngestBatch* out, size_t max_batch,
                               const std::function<bool()>& wake) {
  out->dim = dim_;
  std::unique_lock<std::mutex> lock(mu_);
  while (!closed_ && count_ == 0 && !(wake != nullptr && wake())) {
    ++pop_waiters_;
    not_empty_.wait(lock);
    --pop_waiters_;
  }
  const size_t n = std::min(max_batch, count_);
  // At most two contiguous runs (the ring may wrap once).
  for (size_t copied = 0; copied < n;) {
    const size_t start = (head_ + copied) % capacity_;
    const size_t run = std::min(n - copied, capacity_ - start);
    out->points.insert(out->points.end(), points_.begin() + start * dim_,
                       points_.begin() + (start + run) * dim_);
    out->sensitives.insert(out->sensitives.end(),
                           sensitives_.begin() + start,
                           sensitives_.begin() + start + run);
    copied += run;
  }
  head_ = (head_ + n) % capacity_;
  count_ -= n;
  const bool wake_producers = n > 0 && push_waiters_ > 0;
  lock.unlock();
  if (wake_producers) not_full_.notify_all();
  return n;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void IngestQueue::Notify() { not_empty_.notify_all(); }

}  // namespace kanon
