#include "service/snapshot.h"

#include <algorithm>

namespace kanon {

PartitionSet Snapshot::Release(size_t k1) const {
  return LeafScan(fragments_, std::max(k1, info_.base_k));
}

double AverageBoxNcp(const PartitionSet& ps, const Domain& domain) {
  size_t records = 0;
  double penalty = 0.0;
  for (const Partition& p : ps.partitions) {
    double ncp = 0.0;
    for (size_t a = 0; a < domain.dim(); ++a) {
      const double extent = domain.Extent(a);
      if (extent > 0.0) ncp += p.box.Extent(a) / extent;
    }
    penalty += ncp * static_cast<double>(p.size());
    records += p.size();
  }
  if (records == 0 || domain.dim() == 0) return 0.0;
  return penalty / (static_cast<double>(records) *
                    static_cast<double>(domain.dim()));
}

}  // namespace kanon
