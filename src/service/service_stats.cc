#include "service/service_stats.h"

#include <sstream>

namespace kanon {

const char* ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kServing:
      return "serving";
    case ServiceHealth::kDegraded:
      return "degraded";
    case ServiceHealth::kStopped:
      return "stopped";
  }
  return "unknown";
}

std::string FormatServiceStats(const ServiceStats& stats) {
  std::ostringstream os;
  os << "ingest: enqueued=" << stats.enqueued
     << " rejected=" << stats.rejected << " inserted=" << stats.inserted
     << " queued=" << stats.queue_depth << "\n";
  os << "batches: count=" << stats.batches << " mean_size=";
  os.precision(1);
  os << std::fixed << stats.mean_batch();
  if (!stats.batch_sizes.mass.empty()) {
    os << " size_range=[" << stats.batch_sizes.lo << ", "
       << stats.batch_sizes.hi << "]";
  }
  os << "\n";
  os.precision(2);
  os << "ingest_thread: queue_wait_ms=" << stats.queue_wait_ms
     << " apply_ms=" << stats.apply_ms
     << " mean_queue_wait_ms=" << stats.mean_queue_wait_ms()
     << " mean_apply_ms=" << stats.mean_apply_ms() << "\n";
  if (stats.memtable_enabled) {
    os << "memtable: records=" << stats.memtable_records
       << " bytes=" << stats.memtable_bytes << " merges=" << stats.merges
       << " delta_merges=" << stats.delta_merges
       << " escalations=" << stats.merge_escalations
       << " last_merge_ms=" << stats.last_merge_ms
       << " merge_ms_total=" << stats.merge_ms_total << "\n";
  }
  os << "snapshots: published=" << stats.snapshots
     << " last_build_ms=" << stats.last_snapshot_build_ms
     << " build_ms_total=" << stats.snapshot_build_ms_total
     << " fragments_reused=" << stats.fragments_reused
     << " fragments_built=" << stats.fragments_built
     << " age_s=" << stats.snapshot_age_s;
  if (stats.durable) {
    os << "\ndurability: recovered=" << stats.recovered
       << " wal_appended=" << stats.wal_appended
       << " wal_bytes=" << stats.wal_bytes << " wal_syncs=" << stats.wal_syncs
       << " synced_lsn=" << stats.wal_synced_lsn
       << " checkpoints=" << stats.checkpoints
       << " last_checkpoint_lsn=" << stats.last_checkpoint_lsn;
  }
  os << "\nhealth: state=" << ServiceHealthName(stats.health)
     << " wal_retries=" << stats.wal_retries
     << " wal_recoveries=" << stats.wal_recoveries
     << " unavailable=" << stats.unavailable << " dropped=" << stats.dropped;
  if (stats.wal_poisoned) os << " wal_poisoned=1";
  if (!stats.degraded_reason.empty()) {
    os << "\ndegraded: " << stats.degraded_reason;
  }
  return os.str();
}

}  // namespace kanon
