#include "service/service_stats.h"

#include <sstream>

namespace kanon {

std::string FormatServiceStats(const ServiceStats& stats) {
  std::ostringstream os;
  os << "ingest: enqueued=" << stats.enqueued
     << " rejected=" << stats.rejected << " inserted=" << stats.inserted
     << " queued=" << stats.queue_depth << "\n";
  os << "batches: count=" << stats.batches << " mean_size=";
  os.precision(1);
  os << std::fixed << stats.mean_batch();
  if (!stats.batch_sizes.mass.empty()) {
    os << " size_range=[" << stats.batch_sizes.lo << ", "
       << stats.batch_sizes.hi << "]";
  }
  os << "\n";
  os.precision(2);
  os << "snapshots: published=" << stats.snapshots
     << " last_build_ms=" << stats.last_snapshot_build_ms
     << " age_s=" << stats.snapshot_age_s;
  if (stats.durable) {
    os << "\ndurability: recovered=" << stats.recovered
       << " wal_appended=" << stats.wal_appended
       << " wal_bytes=" << stats.wal_bytes << " wal_syncs=" << stats.wal_syncs
       << " synced_lsn=" << stats.wal_synced_lsn
       << " checkpoints=" << stats.checkpoints
       << " last_checkpoint_lsn=" << stats.last_checkpoint_lsn;
  }
  return os.str();
}

}  // namespace kanon
