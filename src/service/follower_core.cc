#include "service/follower_core.h"

#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "anon/leaf_scan.h"
#include "common/timer.h"
#include "dp/dp_hierarchy.h"
#include "index/tree_persistence.h"
#include "service/snapshot.h"

namespace kanon {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FollowerCore::FollowerCore(size_t dim, Domain domain,
                           FollowerCoreOptions options)
    : dim_(dim), domain_(std::move(domain)), options_(std::move(options)) {
  anonymizer_ = std::make_unique<IncrementalAnonymizer>(
      dim_, options_.anonymizer, &domain_);
}

void FollowerCore::ConfigureFromLeader(size_t base_k,
                                       size_t leaf_capacity_factor,
                                       size_t max_fanout, bool compact,
                                       size_t dp_height) {
  // The DP grid height only affects publication (cell binning), not the
  // tree: adopting it never requires a rebuild.
  options_.dp_height = dp_height;
  RTreeAnonymizerOptions& opts = options_.anonymizer;
  if (opts.base_k == base_k &&
      opts.leaf_capacity_factor == leaf_capacity_factor &&
      opts.max_fanout == max_fanout && opts.compact == compact) {
    return;
  }
  opts.base_k = base_k;
  opts.leaf_capacity_factor = leaf_capacity_factor;
  opts.max_fanout = max_fanout;
  opts.compact = compact;
  anonymizer_ = std::make_unique<IncrementalAnonymizer>(
      dim_, options_.anonymizer, &domain_);
  records_.store(0, std::memory_order_release);
  applied_lsn_.store(0, std::memory_order_release);
}

Status FollowerCore::AdoptCheckpoint(const CheckpointManifest& manifest,
                                     const std::string& local_path,
                                     Env* env) {
  if (anonymizer_->size() != 0) {
    return Status::FailedPrecondition(
        "checkpoint adoption requires a fresh core (ResetForBootstrap "
        "first)");
  }
  if (manifest.dim != dim_) {
    return Status::InvalidArgument(
        "leader checkpoint dimensionality mismatch");
  }
  const RTreeConfig& config = anonymizer_->tree().config();
  if (manifest.min_leaf != config.min_leaf ||
      manifest.max_leaf != config.max_leaf ||
      manifest.max_fanout != config.max_fanout) {
    return Status::InvalidArgument(
        "leader checkpoint tree configuration mismatch (is the follower "
        "running with the leader's k?)");
  }
  // LoadTreeFromFile verifies manifest.snapshot.crc32 over the page image
  // before any page is trusted — a truncated or corrupted download fails
  // here instead of becoming a silently wrong replica.
  KANON_ASSIGN_OR_RETURN(
      RPlusTree tree,
      LoadTreeFromFile(local_path, manifest.snapshot, dim_, config,
                       manifest.page_size, env));
  anonymizer_->AdoptTree(std::move(tree));
  records_.store(anonymizer_->size(), std::memory_order_release);
  applied_lsn_.store(manifest.checkpoint_lsn, std::memory_order_release);
  return Status::OK();
}

void FollowerCore::ResetForBootstrap() {
  anonymizer_ = std::make_unique<IncrementalAnonymizer>(
      dim_, options_.anonymizer, &domain_);
  records_.store(0, std::memory_order_release);
  applied_lsn_.store(0, std::memory_order_release);
  // current_ is deliberately kept: readers hold the last good release until
  // the re-bootstrap catches up and publishes a newer leader epoch.
}

Status FollowerCore::Apply(uint64_t lsn, std::span<const double> point,
                           int32_t sensitive) {
  const uint64_t applied = applied_lsn_.load(std::memory_order_relaxed);
  if (lsn != applied + 1) {
    return Status::Internal("replication gap: expected lsn " +
                            std::to_string(applied + 1) + ", got " +
                            std::to_string(lsn));
  }
  if (point.size() != dim_) {
    return Status::Corruption("replicated entry has wrong dimensionality");
  }
  // Same identity as leader recovery replay: record id == lsn - 1, so the
  // follower's rid space is bit-compatible with the leader's.
  anonymizer_->Insert(point, static_cast<RecordId>(lsn - 1), sensitive);
  records_.store(anonymizer_->size(), std::memory_order_release);
  applied_lsn_.store(lsn, std::memory_order_release);
  return Status::OK();
}

bool FollowerCore::PublishEpoch(uint64_t epoch) {
  const RPlusTree& tree = anonymizer_->tree();
  const size_t base_k = options_.anonymizer.base_k;
  if (tree.size() < base_k) return false;
  // Idempotence is on the (epoch, records) pair, not a monotonic epoch: a
  // restarted leader renumbers epochs from 1, and the follower must keep
  // matching its publication points rather than freeze on the old number.
  if (epoch == epoch_.load(std::memory_order_relaxed) &&
      tree.size() == published_records_.load(std::memory_order_relaxed)) {
    return false;
  }
  // Mirrors AnonymizationService::Publish() minus WAL and memtable: the
  // follower replays records in LSN order into an identically-configured
  // tree, so the leaf groups — and therefore every k1 release — come out
  // identical to the leader's at the same (epoch, records) point.
  Timer timer;
  std::vector<LeafGroup> leaves = ExtractLeafGroups(tree, &domain_);
  if (!options_.anonymizer.compact) {
    for (LeafGroup& group : leaves) {
      if (!group.region.empty()) group.mbr = group.region;
    }
  }
  SnapshotInfo info;
  info.records = tree.size();
  info.base_k = base_k;
  const PartitionSet base = LeafScan(leaves, info.base_k);
  info.num_partitions = base.num_partitions();
  info.min_partition = base.min_partition_size();
  info.max_partition = base.max_partition_size();
  info.avg_ncp = AverageBoxNcp(base, domain_);
  info.build_ms = timer.ElapsedMillis();
  info.created = std::chrono::steady_clock::now();
  info.epoch = epoch;
  // DP cell counts from the replayed tree: the leader computed the same
  // accumulation over the same record multiset, so a follower at the
  // leader's (epoch, records) point carries an identical vector — which is
  // what makes its /release/dp bodies byte-identical to the leader's.
  DpCells dp_cells;
  if (options_.dp_height > 0) {
    const DpGrid grid(domain_, options_.dp_height);
    auto cells = std::make_shared<std::vector<uint64_t>>();
    for (const Node* leaf : tree.OrderedLeaves()) {
      AccumulateCells(grid, leaf->points.data(), leaf->leaf_size(),
                      cells.get());
    }
    if (cells->empty()) cells->assign(grid.num_leaves(), 0);
    dp_cells = std::move(cells);
  }
  auto snapshot = std::make_shared<const Snapshot>(
      std::move(leaves), domain_, info, std::move(dp_cells),
      options_.dp_height);

  StitchedInfo stitched;
  stitched.records = info.records;
  stitched.base_k = base_k;
  stitched.num_shards = 1;
  stitched.epoch = epoch;
  stitched.shard_epochs = {epoch};
  stitched.shard_records = {info.records};
  auto current = std::make_shared<const StitchedSnapshot>(
      std::vector<std::shared_ptr<const Snapshot>>{std::move(snapshot)},
      domain_, stitched);
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(current);
  }
  epoch_.store(epoch, std::memory_order_release);
  published_records_.store(info.records, std::memory_order_release);
  return true;
}

void FollowerCore::MarkCaughtUp() {
  caught_up_ns_.store(NowNs(), std::memory_order_release);
}

double FollowerCore::staleness_ms() const {
  const int64_t at = caught_up_ns_.load(std::memory_order_acquire);
  if (at == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(NowNs() - at) / 1e6;
}

std::shared_ptr<const StitchedSnapshot> FollowerCore::CurrentStitched()
    const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

}  // namespace kanon
