#include "service/anonymization_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.h"

namespace kanon {

AnonymizationService::AnonymizationService(Deferred, size_t dim,
                                           Domain domain,
                                           ServiceOptions options)
    : dim_(dim),
      options_(options),
      domain_(std::move(domain)),
      queue_(dim, options_.queue_capacity, options_.backpressure),
      anonymizer_(dim, options_.anonymizer, &domain_) {
  KANON_CHECK(dim >= 1 && domain_.dim() == dim);
  KANON_CHECK(options_.max_batch >= 1);
}

AnonymizationService::AnonymizationService(size_t dim, Domain domain,
                                           ServiceOptions options)
    : AnonymizationService(Deferred{}, dim, std::move(domain), options) {
  const Status status = InitDurability();
  KANON_CHECK_MSG(status.ok(), "durability init failed: " << status);
  StartIngest();
}

StatusOr<std::unique_ptr<AnonymizationService>> AnonymizationService::Create(
    size_t dim, Domain domain, ServiceOptions options) {
  std::unique_ptr<AnonymizationService> service(
      new AnonymizationService(Deferred{}, dim, std::move(domain), options));
  KANON_RETURN_IF_ERROR(service->InitDurability());
  service->StartIngest();
  return service;
}

Status AnonymizationService::InitDurability() {
  const DurabilityOptions& d = options_.durability;
  if (!d.enabled()) return Status::OK();
  Env* env = d.env != nullptr ? d.env : Env::Default();
  KANON_RETURN_IF_ERROR(env->CreateDirs(d.wal_dir));
  RecoveryOptions recovery_options;
  recovery_options.dir = d.wal_dir;
  recovery_options.env = env;
  KANON_ASSIGN_OR_RETURN(recovery_,
                         RecoverInto(recovery_options, &anonymizer_));
  next_rid_ = recovery_.next_lsn - 1;
  WalOptions wal_options;
  wal_options.fsync_every = d.fsync_every;
  wal_options.segment_bytes = d.segment_bytes;
  KANON_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(d.wal_dir, dim_, recovery_.next_lsn,
                            wal_options, env));
  checkpointer_ = std::make_unique<Checkpointer>(
      d.wal_dir, Checkpointer::kCheckpointPageSize, env);
  // Recovered records are pre-thread state: publishing here is safe (no
  // ingest thread exists yet) and lets readers see the restored release
  // immediately after a restart.
  if (recovery_.recovered > 0) Publish();
  return Status::OK();
}

void AnonymizationService::StartIngest() {
  ingest_thread_ = JoinableThread([this] { IngestLoop(); });
}

AnonymizationService::~AnonymizationService() { Stop(); }

Status AnonymizationService::Ingest(std::span<const double> point,
                                    int32_t sensitive) {
  KANON_CHECK(point.size() == dim_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is stopped");
  }
  if (health_.load(std::memory_order_acquire) == ServiceHealth::kDegraded) {
    // Read-only: the last snapshot keeps serving, new records are refused
    // (an accepted record the WAL cannot log would silently lose
    // durability). Records that slipped into the queue before the
    // transition are drained and counted as dropped by the ingest thread.
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("service is degraded to read-only: " +
                               degraded_reason());
  }
  return queue_.Enqueue(point, sensitive);
}

StatusOr<PartitionSet> AnonymizationService::GetRelease(size_t k1) const {
  const std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no snapshot published yet");
  }
  return snapshot->Release(k1);
}

std::shared_ptr<const Snapshot> AnonymizationService::PublishNow() {
  if (ingest_done_.load(std::memory_order_acquire)) return CurrentSnapshot();
  const uint64_t ticket =
      publish_requested_.fetch_add(1, std::memory_order_acq_rel) + 1;
  queue_.Notify();
  std::unique_lock<std::mutex> lock(publish_mu_);
  publish_cv_.wait(lock, [&] {
    return publish_serviced_.load(std::memory_order_acquire) >= ticket ||
           ingest_done_.load(std::memory_order_acquire);
  });
  lock.unlock();
  return CurrentSnapshot();
}

void AnonymizationService::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    queue_.Close();
    ingest_thread_.Join();
    // A degraded service stays degraded — the final report must show it.
    ServiceHealth expected = ServiceHealth::kServing;
    health_.compare_exchange_strong(expected, ServiceHealth::kStopped,
                                    std::memory_order_acq_rel);
  });
}

ServiceStats AnonymizationService::Stats() const {
  ServiceStats stats;
  stats.enqueued = queue_.total_enqueued();
  stats.rejected = queue_.total_rejected();
  stats.inserted = inserted_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.pending();
  stats.last_snapshot_build_ms =
      last_build_ms_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    stats.batch_sizes = SampleHistogram(batch_samples_, 16);
  }
  if (const auto snapshot = CurrentSnapshot()) {
    stats.snapshot_age_s = snapshot->info().AgeSeconds();
  }
  if (wal_ != nullptr) {
    stats.durable = true;
    stats.recovered = recovery_.recovered;
    const WalStats wal = wal_->stats();
    stats.wal_appended = wal.appended;
    stats.wal_bytes = wal.bytes;
    stats.wal_syncs = wal.syncs;
    stats.wal_synced_lsn = wal.synced_lsn;
    stats.wal_recoveries = wal.recoveries;
    stats.wal_poisoned = wal_->poisoned();
    stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    stats.last_checkpoint_lsn =
        last_checkpoint_lsn_.load(std::memory_order_relaxed);
  }
  stats.health = health_.load(std::memory_order_acquire);
  stats.wal_retries = wal_retries_.load(std::memory_order_relaxed);
  stats.unavailable = unavailable_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.degraded_reason = degraded_reason();
  return stats;
}

void AnonymizationService::IngestLoop() {
  // One reusable batch: after warm-up the drain/apply cycle allocates
  // nothing (Clear keeps the vectors' capacity).
  IngestBatch batch;
  batch.points.reserve(options_.max_batch * dim_);
  batch.sensitives.reserve(options_.max_batch);
  for (;;) {
    batch.Clear();
    const size_t n = queue_.DrainBatch(&batch, options_.max_batch,
                                       [this] { return PublishPending(); });
    if (n > 0) ApplyBatch(batch);
    if (PublishPending()) {
      // Drain whatever producers managed to enqueue before the request so
      // the published snapshot is current, then service every waiter that
      // had a ticket when the build started.
      if (queue_.pending() > 0) continue;
      const uint64_t req =
          publish_requested_.load(std::memory_order_acquire);
      Publish();
      {
        std::lock_guard<std::mutex> lock(publish_mu_);
        publish_serviced_.store(req, std::memory_order_release);
      }
      publish_cv_.notify_all();
    } else if (options_.snapshot_every > 0 &&
               since_snapshot_ >= options_.snapshot_every) {
      Publish();
    }
    MaybeCheckpoint(/*force=*/false);
    if (n == 0 && queue_.closed() && queue_.pending() == 0) break;
  }
  // Final snapshot: cover every record that was ever ingested.
  if (since_snapshot_ > 0 ||
      snapshots_.load(std::memory_order_relaxed) == 0) {
    Publish();
  }
  // Graceful stop makes everything durable: every record fsynced, and a
  // final checkpoint so the next start replays an empty WAL tail. A
  // failure here degrades rather than aborts — the records are already
  // served; only the durability promise for the un-synced suffix is lost,
  // and the final report says so.
  if (wal_ != nullptr &&
      health_.load(std::memory_order_acquire) == ServiceHealth::kServing) {
    const Status status = wal_->Sync();
    if (!status.ok()) {
      EnterDegraded("final wal sync failed: " + status.ToString());
    } else {
      MaybeCheckpoint(/*force=*/true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    ingest_done_.store(true, std::memory_order_release);
  }
  publish_cv_.notify_all();
}

void AnonymizationService::ApplyBatch(const IngestBatch& batch) {
  if (health_.load(std::memory_order_acquire) == ServiceHealth::kDegraded) {
    // Producers may have raced records into the queue before Ingest began
    // refusing them; drain-and-discard so blocked producers are released,
    // but never apply — degraded means the index no longer advances.
    dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
    return;
  }
  size_t logged = batch.size();
  if (wal_ != nullptr) {
    // Log before apply: a record is never in the tree without being in the
    // WAL, so a crash at any point loses only un-fsynced suffix records —
    // never reorders or duplicates. Append failures are retried (the WAL
    // rebuilds its segment between attempts); a persistent failure
    // degrades the service instead of aborting it. Only the logged prefix
    // of the batch is applied — continuing would put records in the tree
    // that exist nowhere durable.
    for (size_t i = 0; i < batch.size(); ++i) {
      const Status status =
          AppendWithRetry(next_rid_ + i + 1, batch.point(i),
                          batch.sensitives[i]);
      if (!status.ok()) {
        EnterDegraded("wal append failed: " + status.ToString());
        dropped_.fetch_add(batch.size() - i, std::memory_order_relaxed);
        logged = i;
        break;
      }
    }
  }
  for (size_t i = 0; i < logged; ++i) {
    anonymizer_.Insert(batch.point(i), next_rid_++, batch.sensitives[i]);
  }
  if (logged == 0) return;
  inserted_.fetch_add(logged, std::memory_order_release);
  batches_.fetch_add(1, std::memory_order_relaxed);
  since_snapshot_ += logged;
  since_checkpoint_ += logged;
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (batch_samples_.size() < kMaxBatchSamples) {
    batch_samples_.push_back(static_cast<double>(logged));
  }
}

Status AnonymizationService::AppendWithRetry(uint64_t lsn,
                                             std::span<const double> point,
                                             int32_t sensitive) {
  const DurabilityOptions& d = options_.durability;
  Status status = wal_->Append(lsn, point, sensitive);
  uint64_t backoff_ms = d.retry_backoff_ms;
  for (size_t attempt = 0;
       !status.ok() && attempt < d.wal_retry_limit && !wal_->poisoned();
       ++attempt) {
    wal_retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, d.retry_backoff_max_ms);
    }
    status = wal_->Append(lsn, point, sensitive);
  }
  return status;
}

void AnonymizationService::EnterDegraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    if (degraded_reason_.empty()) degraded_reason_ = reason;
  }
  ServiceHealth expected = ServiceHealth::kServing;
  health_.compare_exchange_strong(expected, ServiceHealth::kDegraded,
                                  std::memory_order_acq_rel);
}

void AnonymizationService::MaybeCheckpoint(bool force) {
  if (checkpointer_ == nullptr) return;
  if (health_.load(std::memory_order_acquire) != ServiceHealth::kServing) {
    return;
  }
  const uint64_t cadence = options_.durability.checkpoint_every;
  if (force ? since_checkpoint_ == 0
            : (cadence == 0 || since_checkpoint_ < cadence)) {
    return;
  }
  // Everything at or below the checkpoint LSN must survive a crash even if
  // its WAL segment is truncated right after, so sync first. A sync
  // failure poisons the WAL: nothing past synced_lsn can be proven
  // durable, so checkpointing at next_rid_ would overstate the truth.
  Status status = wal_->Sync();
  if (!status.ok()) {
    EnterDegraded("wal sync before checkpoint failed: " + status.ToString());
    return;
  }
  const DurabilityOptions& d = options_.durability;
  status = checkpointer_->Checkpoint(anonymizer_.tree(), next_rid_);
  uint64_t backoff_ms = d.retry_backoff_ms;
  for (size_t attempt = 0; !status.ok() && attempt < d.wal_retry_limit;
       ++attempt) {
    wal_retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, d.retry_backoff_max_ms);
    }
    status = checkpointer_->Checkpoint(anonymizer_.tree(), next_rid_);
  }
  if (!status.ok()) {
    // Checkpoint failure alone does not lose any record (the WAL still has
    // them all), but it means the WAL can never be truncated again —
    // unbounded growth — and the next recovery pays a full replay. Degrade
    // so the operator sees it; the previous checkpoint stays authoritative.
    EnterDegraded("checkpoint failed: " + status.ToString());
    return;
  }
  since_checkpoint_ = 0;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_lsn_.store(next_rid_, std::memory_order_relaxed);
}

bool AnonymizationService::Publish() {
  const RPlusTree& tree = anonymizer_.tree();
  if (tree.size() < options_.anonymizer.base_k) return false;
  Timer timer;
  std::vector<LeafGroup> leaves = ExtractLeafGroups(tree, &domain_);
  if (!options_.anonymizer.compact) {
    // Publish index regions instead of tight MBRs (the uncompacted view).
    for (LeafGroup& group : leaves) {
      if (!group.region.empty()) group.mbr = group.region;
    }
  }
  SnapshotInfo info;
  info.records = tree.size();
  info.base_k = options_.anonymizer.base_k;
  const PartitionSet base = LeafScan(leaves, info.base_k);
  info.num_partitions = base.num_partitions();
  info.min_partition = base.min_partition_size();
  info.max_partition = base.max_partition_size();
  info.avg_ncp = AverageBoxNcp(base, domain_);
  info.build_ms = timer.ElapsedMillis();
  info.created = std::chrono::steady_clock::now();
  info.epoch = snapshots_.fetch_add(1, std::memory_order_relaxed) + 1;
  last_build_ms_.store(info.build_ms, std::memory_order_relaxed);
  auto snapshot =
      std::make_shared<const Snapshot>(std::move(leaves), domain_, info);
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(snapshot);
  }
  since_snapshot_ = 0;
  return true;
}

}  // namespace kanon
