#include "service/anonymization_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timer.h"
#include "dp/dp_hierarchy.h"

namespace kanon {

AnonymizationService::AnonymizationService(Deferred, size_t dim,
                                           Domain domain,
                                           ServiceOptions options)
    : dim_(dim),
      options_(options),
      domain_(std::move(domain)),
      queue_(dim, options_.queue_capacity, options_.backpressure),
      anonymizer_(dim, options_.anonymizer, &domain_) {
  KANON_CHECK(dim >= 1 && domain_.dim() == dim);
  KANON_CHECK(options_.max_batch >= 1);
  if (options_.lsm.enabled()) {
    memtable_ = std::make_unique<Memtable>(dim);
    MergeOptions merge;
    merge.memtable_bytes = options_.lsm.memtable_bytes;
    merge.merge_every = options_.lsm.merge_every;
    merge.threads = options_.anonymizer.threads;
    merge.curve = options_.anonymizer.curve;
    merge.grid_bits = options_.anonymizer.grid_bits;
    merge.memory_budget_bytes = options_.anonymizer.memory_budget_bytes;
    merge.page_size = options_.anonymizer.page_size;
    merge.sort_run_records = options_.anonymizer.sort_run_records;
    merge.mode = options_.lsm.merge_mode;
    merger_ = std::make_unique<MergeScheduler>(dim, merge);
  }
}

AnonymizationService::AnonymizationService(size_t dim, Domain domain,
                                           ServiceOptions options)
    : AnonymizationService(Deferred{}, dim, std::move(domain), options) {
  const Status status = InitDurability();
  KANON_CHECK_MSG(status.ok(), "durability init failed: " << status);
  StartIngest();
}

StatusOr<std::unique_ptr<AnonymizationService>> AnonymizationService::Create(
    size_t dim, Domain domain, ServiceOptions options) {
  std::unique_ptr<AnonymizationService> service(
      new AnonymizationService(Deferred{}, dim, std::move(domain), options));
  KANON_RETURN_IF_ERROR(service->InitDurability());
  service->StartIngest();
  return service;
}

Status AnonymizationService::InitDurability() {
  const DurabilityOptions& d = options_.durability;
  if (!d.enabled()) return Status::OK();
  Env* env = d.env != nullptr ? d.env : Env::Default();
  KANON_RETURN_IF_ERROR(env->CreateDirs(d.wal_dir));
  RecoveryOptions recovery_options;
  recovery_options.dir = d.wal_dir;
  recovery_options.env = env;
  if (memtable_ != nullptr) {
    // The checkpoint tree is authoritative (checkpoints force a flush);
    // the WAL tail replays into the memtable, exactly where un-flushed
    // acknowledged records live in steady state.
    KANON_ASSIGN_OR_RETURN(
        recovery_,
        RecoverInto(recovery_options, &anonymizer_,
                    [this](uint64_t lsn, std::span<const double> point,
                           int32_t sensitive) {
                      memtable_->Append(point, lsn - 1, sensitive);
                    }));
    since_merge_ = memtable_->size();
    memtable_records_.store(memtable_->size(), std::memory_order_relaxed);
    memtable_bytes_.store(memtable_->bytes(), std::memory_order_relaxed);
  } else {
    KANON_ASSIGN_OR_RETURN(recovery_,
                           RecoverInto(recovery_options, &anonymizer_));
  }
  next_rid_ = recovery_.next_lsn - 1;
  WalOptions wal_options;
  wal_options.fsync_every = d.fsync_every;
  wal_options.segment_bytes = d.segment_bytes;
  KANON_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(d.wal_dir, dim_, recovery_.next_lsn,
                            wal_options, env));
  checkpointer_ = std::make_unique<Checkpointer>(
      d.wal_dir, Checkpointer::kCheckpointPageSize, env);
  // Recovered records are pre-thread state: publishing here is safe (no
  // ingest thread exists yet) and lets readers see the restored release
  // immediately after a restart.
  if (recovery_.recovered > 0) Publish();
  return Status::OK();
}

void AnonymizationService::StartIngest() {
  ingest_thread_ = JoinableThread([this] { IngestLoop(); });
}

AnonymizationService::~AnonymizationService() { Stop(); }

Status AnonymizationService::Ingest(std::span<const double> point,
                                    int32_t sensitive) {
  KANON_CHECK(point.size() == dim_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is stopped");
  }
  if (health_.load(std::memory_order_acquire) == ServiceHealth::kDegraded) {
    // Read-only: the last snapshot keeps serving, new records are refused
    // (an accepted record the WAL cannot log would silently lose
    // durability). Records that slipped into the queue before the
    // transition are drained and counted as dropped by the ingest thread.
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("service is degraded to read-only: " +
                               degraded_reason());
  }
  return queue_.Enqueue(point, sensitive);
}

StatusOr<PartitionSet> AnonymizationService::GetRelease(size_t k1) const {
  const std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no snapshot published yet");
  }
  return snapshot->Release(k1);
}

std::shared_ptr<const Snapshot> AnonymizationService::PublishNow() {
  if (ingest_done_.load(std::memory_order_acquire)) return CurrentSnapshot();
  const uint64_t ticket =
      publish_requested_.fetch_add(1, std::memory_order_acq_rel) + 1;
  queue_.Notify();
  std::unique_lock<std::mutex> lock(publish_mu_);
  publish_cv_.wait(lock, [&] {
    return publish_serviced_.load(std::memory_order_acquire) >= ticket ||
           ingest_done_.load(std::memory_order_acquire);
  });
  lock.unlock();
  return CurrentSnapshot();
}

void AnonymizationService::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    queue_.Close();
    ingest_thread_.Join();
    // A degraded service stays degraded — the final report must show it.
    ServiceHealth expected = ServiceHealth::kServing;
    health_.compare_exchange_strong(expected, ServiceHealth::kStopped,
                                    std::memory_order_acq_rel);
  });
}

ServiceStats AnonymizationService::Stats() const {
  ServiceStats stats;
  stats.enqueued = queue_.total_enqueued();
  stats.rejected = queue_.total_rejected();
  stats.inserted = inserted_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.pending();
  stats.last_snapshot_build_ms =
      last_build_ms_.load(std::memory_order_relaxed);
  stats.snapshot_build_ms_total =
      build_ms_total_.load(std::memory_order_relaxed);
  stats.fragments_reused = fragments_reused_.load(std::memory_order_relaxed);
  stats.fragments_built = fragments_built_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    stats.batch_sizes = SampleHistogram(batch_samples_, 16);
    stats.merge_duration_ms = SampleHistogram(merge_samples_, 16);
    stats.merge_samples = merge_samples_.size();
  }
  stats.queue_wait_ms = queue_wait_ms_.load(std::memory_order_relaxed);
  stats.apply_ms = apply_ms_.load(std::memory_order_relaxed);
  stats.memtable_enabled = memtable_ != nullptr;
  stats.memtable_records = memtable_records_.load(std::memory_order_relaxed);
  stats.memtable_bytes = memtable_bytes_.load(std::memory_order_relaxed);
  stats.merges = merges_.load(std::memory_order_relaxed);
  stats.delta_merges = delta_merges_.load(std::memory_order_relaxed);
  stats.merge_escalations =
      merge_escalations_.load(std::memory_order_relaxed);
  stats.last_merge_ms = last_merge_ms_.load(std::memory_order_relaxed);
  stats.merge_ms_total = merge_ms_total_.load(std::memory_order_relaxed);
  if (const auto snapshot = CurrentSnapshot()) {
    stats.snapshot_age_s = snapshot->info().AgeSeconds();
  }
  if (wal_ != nullptr) {
    stats.durable = true;
    stats.recovered = recovery_.recovered;
    const WalStats wal = wal_->stats();
    stats.wal_appended = wal.appended;
    stats.wal_bytes = wal.bytes;
    stats.wal_syncs = wal.syncs;
    stats.wal_synced_lsn = wal.synced_lsn;
    stats.wal_recoveries = wal.recoveries;
    stats.wal_poisoned = wal_->poisoned();
    stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    stats.last_checkpoint_lsn =
        last_checkpoint_lsn_.load(std::memory_order_relaxed);
  }
  stats.health = health_.load(std::memory_order_acquire);
  stats.wal_retries = wal_retries_.load(std::memory_order_relaxed);
  stats.unavailable = unavailable_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.degraded_reason = degraded_reason();
  return stats;
}

void AnonymizationService::IngestLoop() {
  // One reusable batch: after warm-up the drain/apply cycle allocates
  // nothing (Clear keeps the vectors' capacity).
  IngestBatch batch;
  batch.points.reserve(options_.max_batch * dim_);
  batch.sensitives.reserve(options_.max_batch);
  for (;;) {
    batch.Clear();
    Timer wait_timer;
    const size_t n = queue_.DrainBatch(&batch, options_.max_batch,
                                       [this] { return PublishPending(); });
    // Single writer: load+add+store is race-free on these atomics.
    queue_wait_ms_.store(queue_wait_ms_.load(std::memory_order_relaxed) +
                             wait_timer.ElapsedMillis(),
                         std::memory_order_relaxed);
    if (n > 0) {
      Timer apply_timer;
      ApplyBatch(batch);
      apply_ms_.store(apply_ms_.load(std::memory_order_relaxed) +
                          apply_timer.ElapsedMillis(),
                      std::memory_order_relaxed);
    }
    MaybeMerge(/*force=*/false);
    if (PublishPending()) {
      // Drain whatever producers managed to enqueue before the request so
      // the published snapshot is current, then service every waiter that
      // had a ticket when the build started.
      if (queue_.pending() > 0) continue;
      const uint64_t req =
          publish_requested_.load(std::memory_order_acquire);
      Publish();
      {
        std::lock_guard<std::mutex> lock(publish_mu_);
        publish_serviced_.store(req, std::memory_order_release);
      }
      publish_cv_.notify_all();
    } else if (options_.snapshot_every > 0 &&
               since_snapshot_ >= options_.snapshot_every) {
      Publish();
    }
    MaybeCheckpoint(/*force=*/false);
    if (n == 0 && queue_.closed() && queue_.pending() == 0) break;
  }
  // Flush the memtable so the final snapshot is a flush boundary: every
  // acknowledged record sits in the tree, none is left pending below the
  // k bound, and the release is the deterministic bulk-load view of the
  // full stream. (Runs even when degraded — merging is pure memory work
  // and the resident records are already WAL-acknowledged.)
  MaybeMerge(/*force=*/true);
  // Final snapshot: cover every record that was ever ingested (and, after
  // a final flush, from tree leaves alone — no overlay groups).
  // merged_since_publish_ catches flushes the current snapshot does not
  // reflect, including ones from earlier iterations with no records after.
  if (merged_since_publish_ || since_snapshot_ > 0 ||
      snapshots_.load(std::memory_order_relaxed) == 0) {
    Publish();
  }
  // Graceful stop makes everything durable: every record fsynced, and a
  // final checkpoint so the next start replays an empty WAL tail. A
  // failure here degrades rather than aborts — the records are already
  // served; only the durability promise for the un-synced suffix is lost,
  // and the final report says so.
  if (wal_ != nullptr &&
      health_.load(std::memory_order_acquire) == ServiceHealth::kServing) {
    const Status status = wal_->Sync();
    if (!status.ok()) {
      EnterDegraded("final wal sync failed: " + status.ToString());
    } else {
      MaybeCheckpoint(/*force=*/true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    ingest_done_.store(true, std::memory_order_release);
  }
  publish_cv_.notify_all();
}

void AnonymizationService::ApplyBatch(const IngestBatch& batch) {
  if (health_.load(std::memory_order_acquire) == ServiceHealth::kDegraded) {
    // Producers may have raced records into the queue before Ingest began
    // refusing them; drain-and-discard so blocked producers are released,
    // but never apply — degraded means the index no longer advances.
    dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
    return;
  }
  size_t logged = batch.size();
  if (wal_ != nullptr) {
    // Log before apply: a record is never in the tree without being in the
    // WAL, so a crash at any point loses only un-fsynced suffix records —
    // never reorders or duplicates. Append failures are retried (the WAL
    // rebuilds its segment between attempts); a persistent failure
    // degrades the service instead of aborting it. Only the logged prefix
    // of the batch is applied — continuing would put records in the tree
    // that exist nowhere durable.
    for (size_t i = 0; i < batch.size(); ++i) {
      const Status status =
          AppendWithRetry(next_rid_ + i + 1, batch.point(i),
                          batch.sensitives[i]);
      if (!status.ok()) {
        EnterDegraded("wal append failed: " + status.ToString());
        dropped_.fetch_add(batch.size() - i, std::memory_order_relaxed);
        logged = i;
        break;
      }
    }
  }
  for (size_t i = 0; i < logged; ++i) {
    if (memtable_ != nullptr) {
      // LSM path: absorb into the run — O(dim) copies, no tree
      // maintenance. The record reaches the index at the next merge.
      memtable_->Append(batch.point(i), next_rid_++, batch.sensitives[i]);
    } else {
      anonymizer_.Insert(batch.point(i), next_rid_++, batch.sensitives[i]);
    }
  }
  if (logged == 0) return;
  if (memtable_ != nullptr) {
    since_merge_ += logged;
    memtable_records_.store(memtable_->size(), std::memory_order_relaxed);
    memtable_bytes_.store(memtable_->bytes(), std::memory_order_relaxed);
  }
  inserted_.fetch_add(logged, std::memory_order_release);
  batches_.fetch_add(1, std::memory_order_relaxed);
  since_snapshot_ += logged;
  since_checkpoint_ += logged;
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (batch_samples_.size() < kMaxBatchSamples) {
    batch_samples_.push_back(static_cast<double>(logged));
  }
}

Status AnonymizationService::AppendWithRetry(uint64_t lsn,
                                             std::span<const double> point,
                                             int32_t sensitive) {
  const DurabilityOptions& d = options_.durability;
  Status status = wal_->Append(lsn, point, sensitive);
  uint64_t backoff_ms = d.retry_backoff_ms;
  for (size_t attempt = 0;
       !status.ok() && attempt < d.wal_retry_limit && !wal_->poisoned();
       ++attempt) {
    wal_retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, d.retry_backoff_max_ms);
    }
    status = wal_->Append(lsn, point, sensitive);
  }
  return status;
}

void AnonymizationService::EnterDegraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    if (degraded_reason_.empty()) degraded_reason_ = reason;
  }
  ServiceHealth expected = ServiceHealth::kServing;
  health_.compare_exchange_strong(expected, ServiceHealth::kDegraded,
                                  std::memory_order_acq_rel);
}

bool AnonymizationService::MaybeMerge(bool force) {
  if (memtable_ == nullptr || memtable_->empty()) return true;
  if (!force && !merger_->ShouldMerge(*memtable_, since_merge_)) return true;
  Timer timer;
  StatusOr<MergeStats> merged =
      merger_->MergeInto(anonymizer_.mutable_tree(), *memtable_, domain_);
  if (!merged.ok()) {
    EnterDegraded("memtable merge failed: " + merged.status().ToString());
    return false;
  }
  // Keep the fragment cache truthful about the post-merge tree: a delta
  // merge retired exactly the leaves it spliced out, a full rebuild
  // replaced every node. Evicting before any new leaves are cached also
  // makes freed-pointer key collisions (allocator address reuse) harmless.
  if (merged->mode == MergeMode::kDelta) {
    for (const Node* leaf : merged->retired_leaves) {
      fragment_cache_.erase(leaf);
    }
    delta_merges_.fetch_add(1, std::memory_order_relaxed);
    merge_escalations_.fetch_add(merged->escalations,
                                 std::memory_order_relaxed);
  } else {
    fragment_cache_.clear();
  }
  memtable_->Clear();
  since_merge_ = 0;
  merged_since_publish_ = true;
  const double ms = timer.ElapsedMillis();
  memtable_records_.store(0, std::memory_order_relaxed);
  memtable_bytes_.store(0, std::memory_order_relaxed);
  merges_.fetch_add(1, std::memory_order_relaxed);
  last_merge_ms_.store(ms, std::memory_order_relaxed);
  merge_ms_total_.store(merge_ms_total_.load(std::memory_order_relaxed) + ms,
                        std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(samples_mu_);
  if (merge_samples_.size() < kMaxBatchSamples) merge_samples_.push_back(ms);
  return true;
}

void AnonymizationService::MaybeCheckpoint(bool force) {
  if (checkpointer_ == nullptr) return;
  if (health_.load(std::memory_order_acquire) != ServiceHealth::kServing) {
    return;
  }
  const uint64_t cadence = options_.durability.checkpoint_every;
  if (force ? since_checkpoint_ == 0
            : (cadence == 0 || since_checkpoint_ < cadence)) {
    return;
  }
  // Flush first: the checkpoint claims everything at or below next_rid_,
  // so memtable residents must be in the tree before it is written —
  // otherwise a crash after the WAL truncation behind this checkpoint
  // would lose them. This keeps the manifest authoritative and recovery's
  // tail-into-memtable replay exact.
  if (!MaybeMerge(/*force=*/true)) return;
  // Everything at or below the checkpoint LSN must survive a crash even if
  // its WAL segment is truncated right after, so sync first. A sync
  // failure poisons the WAL: nothing past synced_lsn can be proven
  // durable, so checkpointing at next_rid_ would overstate the truth.
  Status status = wal_->Sync();
  if (!status.ok()) {
    EnterDegraded("wal sync before checkpoint failed: " + status.ToString());
    return;
  }
  const DurabilityOptions& d = options_.durability;
  status = checkpointer_->Checkpoint(anonymizer_.tree(), next_rid_);
  uint64_t backoff_ms = d.retry_backoff_ms;
  for (size_t attempt = 0; !status.ok() && attempt < d.wal_retry_limit;
       ++attempt) {
    wal_retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, d.retry_backoff_max_ms);
    }
    status = checkpointer_->Checkpoint(anonymizer_.tree(), next_rid_);
  }
  if (!status.ok()) {
    // Checkpoint failure alone does not lose any record (the WAL still has
    // them all), but it means the WAL can never be truncated again —
    // unbounded growth — and the next recovery pays a full replay. Degrade
    // so the operator sees it; the previous checkpoint stays authoritative.
    EnterDegraded("checkpoint failed: " + status.ToString());
    return;
  }
  since_checkpoint_ = 0;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_lsn_.store(next_rid_, std::memory_order_relaxed);
}

bool AnonymizationService::Publish() {
  const RPlusTree& tree = anonymizer_.tree();
  const size_t base_k = options_.anonymizer.base_k;
  const size_t resident = memtable_ != nullptr ? memtable_->size() : 0;
  // Fewer than k records held in total cannot be k-anonymized at all.
  if (tree.size() + resident < base_k) return false;
  // Publish implies durable: a release should never cover records a crash
  // could still un-assign (the WAL would hand their LSNs to different
  // records on restart). This also pins the replication contract — a
  // follower chasing a published epoch never needs WAL entries past the
  // leader's durable horizon. On sync failure the WAL poisons itself and
  // the next append degrades the service through the usual path; the
  // snapshot is still published (the records are in the tree and serving
  // reads is exactly what a degraded service keeps doing).
  if (wal_ != nullptr && !wal_->poisoned()) (void)wal_->Sync();
  Timer timer;
  // Assemble the snapshot as shared per-leaf fragments. In LSM mode the
  // tree changes only through merges, and every merge evicts exactly the
  // leaves it replaced from fragment_cache_, so a surviving entry is still
  // byte-accurate — publication cost tracks the merge churn, not the tree
  // size. Without the memtable the tree mutates record-at-a-time between
  // publications (leaf contents change in place), so nothing is cacheable
  // and every fragment is built fresh.
  const bool cache_fragments = memtable_ != nullptr;
  std::vector<LeafFragment> fragments;
  for (const Node* leaf : tree.OrderedLeaves()) {
    if (leaf->leaf_size() == 0) continue;  // post-deletion empty leaf
    if (cache_fragments) {
      const auto it = fragment_cache_.find(leaf);
      if (it != fragment_cache_.end()) {
        fragments.push_back(it->second);
        fragments_reused_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    auto group = std::make_shared<LeafGroup>();
    group->rids = leaf->rids;
    group->mbr = leaf->mbr;
    group->region = ClipRegionToDomain(leaf->region, domain_);
    if (!options_.anonymizer.compact && !group->region.empty()) {
      // Publish index regions instead of tight MBRs (the uncompacted view).
      group->mbr = group->region;
    }
    if (cache_fragments) fragment_cache_.emplace(leaf, group);
    fragments_built_.fetch_add(1, std::memory_order_relaxed);
    fragments.push_back(std::move(group));
  }
  // Between flushes the memtable contributes curve-sorted overlay groups
  // so releases cover tree + memtable consistently. Each group holds
  // >= base_k records; a residue below base_k is withheld (never released
  // under the k bound) and surfaces as memtable_pending. Overlay groups
  // change with every absorbed record, so they are never cached.
  size_t overlay_records = 0;
  size_t pending = 0;
  if (resident > 0) {
    const size_t target = std::max(
        base_k * options_.anonymizer.leaf_capacity_factor, 2 * base_k);
    std::vector<LeafGroup> overlay = memtable_->OverlayGroups(
        domain_, options_.anonymizer.curve, options_.anonymizer.grid_bits,
        base_k, target, &pending);
    for (LeafGroup& group : overlay) {
      overlay_records += group.rids.size();
      fragments.push_back(
          std::make_shared<const LeafGroup>(std::move(group)));
    }
  }
  // The releasable records (tree + overlay, excluding the withheld
  // residue) must themselves clear the k bound — e.g. a tiny tree from an
  // early forced flush plus a sub-k memtable cannot publish yet.
  if (tree.size() + overlay_records < base_k) return false;
  SnapshotInfo info;
  info.records = tree.size() + overlay_records;
  info.memtable_records = overlay_records;
  info.memtable_pending = pending;
  info.base_k = base_k;
  const PartitionSet base = LeafScan(fragments, info.base_k);
  info.num_partitions = base.num_partitions();
  info.min_partition = base.min_partition_size();
  info.max_partition = base.max_partition_size();
  info.avg_ncp = AverageBoxNcp(base, domain_);
  info.build_ms = timer.ElapsedMillis();
  info.created = std::chrono::steady_clock::now();
  info.epoch = snapshots_.fetch_add(1, std::memory_order_relaxed) + 1;
  last_build_ms_.store(info.build_ms, std::memory_order_relaxed);
  build_ms_total_.store(
      build_ms_total_.load(std::memory_order_relaxed) + info.build_ms,
      std::memory_order_relaxed);
  // Exact DP grid cell counts over every resident — tree records plus all
  // memtable residents, *including* the sub-k residue withheld from the
  // k-anonymous view above (DP protects them with noise, not suppression;
  // leaving them out would bias every noisy count near their cells). The
  // counts are a pure multiset accumulation, so per-shard vectors sum and
  // a follower replaying the same records reproduces them exactly.
  DpCells dp_cells;
  if (options_.dp_height > 0) {
    const DpGrid grid(domain_, options_.dp_height);
    auto cells = std::make_shared<std::vector<uint64_t>>();
    for (const Node* leaf : tree.OrderedLeaves()) {
      AccumulateCells(grid, leaf->points.data(), leaf->leaf_size(),
                      cells.get());
    }
    if (memtable_ != nullptr && memtable_->size() > 0) {
      AccumulateCells(grid, memtable_->point(0).data(), memtable_->size(),
                      cells.get());
    }
    if (cells->empty()) cells->assign(grid.num_leaves(), 0);
    dp_cells = std::move(cells);
  }
  auto snapshot = std::make_shared<const Snapshot>(
      std::move(fragments), domain_, info, std::move(dp_cells),
      options_.dp_height);
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(snapshot);
  }
  since_snapshot_ = 0;
  merged_since_publish_ = false;
  return true;
}

}  // namespace kanon
