#ifndef KANON_SERVICE_FOLLOWER_CORE_H_
#define KANON_SERVICE_FOLLOWER_CORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "anon/rtree_anonymizer.h"
#include "common/status.h"
#include "data/dataset.h"
#include "durability/checkpoint.h"
#include "shard/stitched_snapshot.h"

namespace kanon {

struct FollowerCoreOptions {
  RTreeAnonymizerOptions anonymizer;
  /// A follower whose last caught-up confirmation is older than this is
  /// stale: its releases may lag the leader arbitrarily. The serving layer
  /// degrades /healthz (and optionally rejects reads) off fresh().
  uint64_t max_staleness_ms = 5000;
  /// DP grid height (see ServiceOptions::dp_height). Overwritten from the
  /// leader's manifest by ConfigureFromLeader — follower and leader must
  /// bin records into the same cells or their DP releases would diverge.
  size_t dp_height = 10;
};

/// The network-free half of a read replica: an IncrementalAnonymizer fed by
/// replication (checkpoint adoption + in-order WAL application) instead of
/// by an ingest queue, publishing epoch snapshots at the *leader's* epoch
/// numbers so a caught-up follower's /release body is byte-identical to the
/// leader's at the same epoch.
///
/// Threading contract (mirrors AnonymizationService): exactly one apply
/// thread calls AdoptCheckpoint / ResetForBootstrap / Apply / PublishEpoch /
/// MarkCaughtUp; any number of serving threads call CurrentStitched(),
/// applied_lsn(), epoch(), staleness_ms() and fresh() concurrently with it.
class FollowerCore {
 public:
  FollowerCore(size_t dim, Domain domain, FollowerCoreOptions options);

  FollowerCore(const FollowerCore&) = delete;
  FollowerCore& operator=(const FollowerCore&) = delete;

  /// Reconfigures the anonymizer from the leader's manifest — base_k and
  /// tree shape must match the leader's or releases would diverge, so the
  /// follower takes them from the wire instead of trusting local flags.
  /// Apply-thread only, and only while the core is empty (bootstrap).
  /// No-op when the configuration already matches.
  void ConfigureFromLeader(size_t base_k, size_t leaf_capacity_factor,
                           size_t max_fanout, bool compact,
                           size_t dp_height);

  /// Adopts a leader checkpoint already downloaded to `local_path` (and
  /// CRC-verified by LoadTreeFromFile against manifest.snapshot.crc32).
  /// Requires a fresh core (ResetForBootstrap first when re-bootstrapping).
  /// On success applied_lsn() == manifest.checkpoint_lsn.
  Status AdoptCheckpoint(const CheckpointManifest& manifest,
                         const std::string& local_path, Env* env = nullptr);

  /// Discards the index and replay position for a re-bootstrap (the leader
  /// GC'd the WAL range we were tailing). The last published snapshot stays
  /// up: readers keep getting the old-but-consistent release while the new
  /// bootstrap runs; only the staleness clock gives the lag away.
  void ResetForBootstrap();

  /// Applies one WAL entry. `lsn` must be exactly applied_lsn() + 1 — the
  /// replication client re-requests from applied_lsn()+1 after any
  /// transport fault, so a gap here means a protocol bug, not a flaky
  /// network. Record id is lsn - 1, same as leader recovery replay.
  Status Apply(uint64_t lsn, std::span<const double> point,
               int32_t sensitive);

  /// Publishes the current index as the leader's epoch `epoch` (forced, not
  /// locally counted: epochs name leader publication points). Returns false
  /// when the index holds fewer than base_k records (nothing publishable)
  /// or when (epoch, records) matches what is already published. Epochs are
  /// NOT required to advance: a restarted leader renumbers from 1 (its
  /// epoch counter is in-memory), so the publication point is the
  /// (epoch, records) pair, not the epoch alone.
  bool PublishEpoch(uint64_t epoch);

  /// Counts one completed bootstrap (checkpoint-based or WAL-only).
  void NoteBootstrap() { bootstraps_.fetch_add(1, std::memory_order_relaxed); }

  /// Resets the staleness clock: the caller just confirmed with the leader
  /// that applied_lsn/epoch are current (an up-to-date poll counts even if
  /// it carried zero entries).
  void MarkCaughtUp();

  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// Last published (leader) epoch; 0 = nothing published yet. May move
  /// backward across a leader restart (see PublishEpoch).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t records() const { return records_.load(std::memory_order_acquire); }
  /// Record count of the last published snapshot (0 = nothing published).
  uint64_t published_records() const {
    return published_records_.load(std::memory_order_acquire);
  }
  uint64_t bootstraps() const {
    return bootstraps_.load(std::memory_order_relaxed);
  }

  /// Milliseconds since the last MarkCaughtUp; effectively infinite before
  /// the first one (a follower is stale until proven fresh).
  double staleness_ms() const;
  bool fresh() const {
    return staleness_ms() <= static_cast<double>(options_.max_staleness_ms);
  }
  uint64_t max_staleness_ms() const { return options_.max_staleness_ms; }

  /// The follower's current release point as a 1-shard stitched snapshot —
  /// the exact shape RenderRelease consumes, so leader and follower share
  /// one serializer. Null until the first PublishEpoch.
  std::shared_ptr<const StitchedSnapshot> CurrentStitched() const;

  size_t dim() const { return dim_; }
  const RTreeAnonymizerOptions& anonymizer_options() const {
    return options_.anonymizer;
  }

 private:
  const size_t dim_;
  const Domain domain_;
  FollowerCoreOptions options_;  // anonymizer part mutable pre-bootstrap

  std::unique_ptr<IncrementalAnonymizer> anonymizer_;  // apply thread only
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> records_{0};  // == anonymizer_->size(), readable anywhere
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> published_records_{0};
  std::atomic<uint64_t> bootstraps_{0};
  /// steady_clock nanos of the last MarkCaughtUp; 0 = never.
  std::atomic<int64_t> caught_up_ns_{0};

  mutable std::mutex current_mu_;
  std::shared_ptr<const StitchedSnapshot> current_;
};

}  // namespace kanon

#endif  // KANON_SERVICE_FOLLOWER_CORE_H_
