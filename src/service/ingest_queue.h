#ifndef KANON_SERVICE_INGEST_QUEUE_H_
#define KANON_SERVICE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"

namespace kanon {

/// A batch of drained records in structure-of-arrays layout: record i is
/// points[i*dim .. (i+1)*dim) paired with sensitives[i]. Record ids are
/// assigned later, by the single writer, when the records are appended to
/// the service's live index — producers never coordinate on ids. Reusing
/// one IngestBatch across DrainBatch calls keeps the steady-state ingest
/// path allocation-free.
struct IngestBatch {
  size_t dim = 0;
  std::vector<double> points;
  std::vector<int32_t> sensitives;

  size_t size() const { return sensitives.size(); }
  std::span<const double> point(size_t i) const {
    return {points.data() + i * dim, dim};
  }
  void Clear() {
    points.clear();
    sensitives.clear();
  }
};

/// What a producer experiences when the ingest queue is at capacity.
enum class BackpressureMode {
  kBlock,   // Enqueue blocks until space frees up
  kReject,  // Enqueue returns kResourceExhausted immediately
};

/// The write side of the anonymization service: a bounded MPSC queue of
/// pending records. Any number of producer threads call Enqueue; exactly one
/// ingest thread calls DrainBatch. Bounding the queue is what turns a burst
/// into backpressure instead of unbounded memory growth (the GutterTree
/// lesson: absorb writes in a buffer sized to the system, not to the burst).
///
/// Records live in a preallocated flat ring (capacity * dim doubles), so a
/// record costs one memcpy in and one memcpy out — no per-record heap
/// traffic, which on the enqueue-bound path is what batching cannot
/// amortize away. Condvar notifies are elided unless a waiter is present.
class IngestQueue {
 public:
  IngestQueue(size_t dim, size_t capacity, BackpressureMode mode);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }
  BackpressureMode mode() const { return mode_; }
  size_t pending() const;
  bool closed() const;

  /// Totals since construction, maintained under the queue lock (no extra
  /// per-record synchronization on the producer path).
  uint64_t total_enqueued() const;
  uint64_t total_rejected() const;

  /// Submits one record (point.size() must equal dim()). kBlock mode waits
  /// for space; kReject mode returns ResourceExhausted when full. Both
  /// return FailedPrecondition after Close() (the service is stopping; the
  /// record was not accepted).
  Status Enqueue(std::span<const double> point, int32_t sensitive);

  /// Moves up to `max_batch` records into `*out` (appended in FIFO order),
  /// blocking until at least one record arrives, the queue closes, or
  /// `wake` (evaluated under the queue lock) returns true. Returns the
  /// number of records appended; 0 means drained-and-closed or `wake`
  /// fired on an empty queue. Single-consumer.
  size_t DrainBatch(IngestBatch* out, size_t max_batch,
                    const std::function<bool()>& wake = nullptr);

  /// Stops accepting records; already-queued records remain drainable.
  void Close();

  /// Wakes a blocked DrainBatch so the consumer re-checks `wake`.
  void Notify();

 private:
  const size_t dim_;
  const size_t capacity_;
  const BackpressureMode mode_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<double> points_;      // capacity_ * dim_, ring of points
  std::vector<int32_t> sensitives_; // capacity_, ring of sensitive codes
  size_t head_ = 0;                 // oldest queued record
  size_t count_ = 0;
  size_t push_waiters_ = 0;
  size_t pop_waiters_ = 0;
  uint64_t total_enqueued_ = 0;
  uint64_t total_rejected_ = 0;     // kReject refusals (queue full)
  bool closed_ = false;
};

}  // namespace kanon

#endif  // KANON_SERVICE_INGEST_QUEUE_H_
