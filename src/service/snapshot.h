#ifndef KANON_SERVICE_SNAPSHOT_H_
#define KANON_SERVICE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "anon/leaf_scan.h"
#include "anon/partition.h"
#include "data/dataset.h"
#include "index/bulk_load.h"

namespace kanon {

/// Metadata of one published snapshot, including the quality summary of its
/// base-granularity release.
struct SnapshotInfo {
  uint64_t epoch = 0;       // monotonically increasing publication counter
  uint64_t records = 0;     // live records covered (releasable) by this snapshot
  size_t base_k = 0;        // minimum granularity any release can request
  double build_ms = 0.0;    // leaf extraction + base release + summary time
  std::chrono::steady_clock::time_point created{};

  // LSM ingest tier (zero when the memtable is off or empty). Of `records`,
  // `memtable_records` live in curve-sorted memtable overlay groups rather
  // than tree leaves — still k-bound, Lemma 1 applies to them identically.
  // `memtable_pending` counts residents withheld from this snapshot
  // entirely: fewer than base_k were in the memtable, and releasing a
  // group below the k bound is never allowed. They are acknowledged and
  // durable, and the next flush covers them.
  uint64_t memtable_records = 0;
  uint64_t memtable_pending = 0;

  // Quality of the base_k release (the finest publishable view).
  size_t num_partitions = 0;
  size_t min_partition = 0;
  size_t max_partition = 0;
  double avg_ncp = 0.0;  // mean per-record, per-attribute extent ratio

  double AgeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         created)
        .count();
  }
};

/// An immutable, shareable release point of the anonymization service: the
/// ordered leaf groups of the index at publication time (MBRs already
/// compacted) plus the data domain. Because partitions released from a
/// snapshot are unions of whole leaves, Lemma 1 makes every granularity
/// k1 >= base_k — and any number of them — jointly k-anonymous, so a
/// snapshot can serve arbitrarily many Release calls from arbitrarily many
/// threads with no synchronization at all.
/// One immutable per-leaf release fragment, shareable between snapshots.
/// Consecutive snapshots of a delta-merged tree differ only in the leaves
/// the merges spliced, so the service reuses every other fragment verbatim
/// and publication cost tracks the churn, not the dataset size.
using LeafFragment = std::shared_ptr<const LeafGroup>;

/// Exact per-cell resident counts over the canonical DP bisection grid
/// (dp/dp_hierarchy.h): entry i counts the records in leaf cell i of the
/// DpGrid of the snapshot's domain at the publisher's dp_height. These are
/// raw exact counts and are NEVER served; the serving layer feeds them
/// through the geometric mechanism (dp/dp_release.h) and only the noisy
/// hierarchy leaves the process.
using DpCells = std::shared_ptr<const std::vector<uint64_t>>;

class Snapshot {
 public:
  /// Shared-fragment constructor — the service's publication path. The
  /// snapshot holds refcounts; fragments also alive in the service's
  /// cache (or in older snapshots) are never copied.
  Snapshot(std::vector<LeafFragment> fragments, Domain domain,
           SnapshotInfo info, DpCells dp_cells = nullptr,
           size_t dp_height = 0)
      : fragments_(std::move(fragments)),
        domain_(std::move(domain)),
        info_(info),
        dp_cells_(std::move(dp_cells)),
        dp_height_(dp_height) {}

  /// Owning constructor: wraps each group in its own fragment (followers
  /// and tests that build leaf groups directly).
  Snapshot(std::vector<LeafGroup> leaves, Domain domain, SnapshotInfo info,
           DpCells dp_cells = nullptr, size_t dp_height = 0)
      : domain_(std::move(domain)),
        info_(info),
        dp_cells_(std::move(dp_cells)),
        dp_height_(dp_height) {
    fragments_.reserve(leaves.size());
    for (LeafGroup& g : leaves) {
      fragments_.push_back(std::make_shared<const LeafGroup>(std::move(g)));
    }
  }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  const SnapshotInfo& info() const { return info_; }
  const Domain& domain() const { return domain_; }
  const std::vector<LeafFragment>& fragments() const { return fragments_; }

  /// Exact DP grid cell counts of every resident this snapshot's publisher
  /// held — including sub-k memtable residue withheld from the k-anonymous
  /// view (the DP mechanism protects individuals with noise, not
  /// suppression, so withholding them would bias the noisy counts). Null
  /// when the publisher ran with DP accounting off (dp_height 0).
  const DpCells& dp_cells() const { return dp_cells_; }
  size_t dp_height() const { return dp_height_; }

  /// Emits the k1-granular anonymization of this snapshot's records via the
  /// leaf-scan algorithm. k1 below base_k is clamped up to base_k (the index
  /// cannot publish finer than its leaves). Const, allocation-local,
  /// lock-free: safe from any thread while the service keeps ingesting.
  PartitionSet Release(size_t k1) const;

 private:
  std::vector<LeafFragment> fragments_;
  Domain domain_;
  SnapshotInfo info_;
  DpCells dp_cells_;
  size_t dp_height_ = 0;
};

/// Mean per-record, per-attribute extent ratio of a partition set against
/// `domain` — the numeric-attribute NCP, computable without the backing
/// dataset (which the serving layer never exposes to readers).
double AverageBoxNcp(const PartitionSet& ps, const Domain& domain);

}  // namespace kanon

#endif  // KANON_SERVICE_SNAPSHOT_H_
