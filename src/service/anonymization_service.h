#ifndef KANON_SERVICE_ANONYMIZATION_SERVICE_H_
#define KANON_SERVICE_ANONYMIZATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "anon/rtree_anonymizer.h"
#include "common/status.h"
#include "common/thread.h"
#include "durability/checkpoint.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "lsm/memtable.h"
#include "lsm/merge.h"
#include "service/ingest_queue.h"
#include "service/service_stats.h"
#include "service/snapshot.h"

namespace kanon {

/// Durability knobs of the serving layer. Durability is off by default
/// (wal_dir empty): the seed service was purely in-memory and stays that
/// way unless a WAL directory is configured.
struct DurabilityOptions {
  /// Directory for WAL segments, checkpoint files and the MANIFEST
  /// (created if missing). Empty disables durability entirely.
  std::string wal_dir;
  /// Group-commit cadence (see WalOptions::fsync_every).
  size_t fsync_every = 256;
  /// Checkpoint the tree every this many inserts (0 = only at Stop).
  uint64_t checkpoint_every = 100000;
  /// WAL segment rotation size.
  size_t segment_bytes = 16u << 20;
  /// Filesystem the durability artifacts live on. nullptr = Env::Default();
  /// a FaultInjectionEnv here exercises every failure path below. Must
  /// outlive the service.
  Env* env = nullptr;
  /// How many times a failed WAL append or checkpoint is retried (the WAL
  /// runs segment recovery between attempts) before the service degrades
  /// to read-only. Transient faults — a blip of ENOSPC, an interrupted
  /// write — heal here; persistent ones degrade in bounded time.
  size_t wal_retry_limit = 4;
  /// First retry backoff; doubles per attempt up to the max. 0 retries
  /// immediately (unit tests).
  uint64_t retry_backoff_ms = 1;
  uint64_t retry_backoff_max_ms = 64;

  bool enabled() const { return !wal_dir.empty(); }
};

/// The write-absorbing LSM ingest tier (off by default — zero triggers
/// keep the seed record-at-a-time path). When enabled, the single-writer
/// thread appends acknowledged records to an in-memory Memtable (after
/// WAL-logging them as always) instead of inserting into the tree one at
/// a time, and a MergeScheduler periodically folds the run back into the
/// R⁺-tree with the parallel sorted bulk loader. Checkpoints and Stop()
/// force a flush, so the checkpoint manifest stays authoritative and the
/// final snapshot is always a flush boundary.
struct LsmOptions {
  /// Flush the memtable into the tree once it holds about this many bytes
  /// (0 = no byte trigger).
  size_t memtable_bytes = 0;
  /// Flush every this many absorbed records (0 = no record trigger).
  uint64_t merge_every = 0;
  /// How a flush reaches the tree: kFull rebuilds the whole tree per flush
  /// (the reference backend); kDelta routes the run onto the live tree and
  /// locally rebuilds only the touched sub-ranges (see MergeMode). Delta
  /// merges also make publication incremental: per-leaf release fragments
  /// untouched by merges are reused across snapshots.
  MergeMode merge_mode = MergeMode::kFull;

  bool enabled() const { return memtable_bytes > 0 || merge_every > 0; }
};

/// Tuning knobs of the serving layer.
struct ServiceOptions {
  /// Index configuration (base_k, split heuristics, constraints...). The
  /// bulk-loading backend selector is ignored — live inserts go through
  /// the record-at-a-time path, or through the memtable when the LSM tier
  /// is on, in which case the kSortedBulkLoad knobs (threads, curve,
  /// grid_bits, memory budget, sort_run_records) configure the merges.
  RTreeAnonymizerOptions anonymizer;

  /// Capacity of the ingest queue, in records. This is the burst the
  /// service absorbs before backpressure engages.
  size_t queue_capacity = 4096;

  /// Maximum records applied to the index per critical section. Larger
  /// batches amortize the single-writer section over more records.
  size_t max_batch = 256;

  /// What producers experience when the queue is full.
  BackpressureMode backpressure = BackpressureMode::kBlock;

  /// Publish a fresh snapshot every this many inserts (0 = only on demand
  /// and at Stop). Publication is skipped while fewer than base_k records
  /// are indexed — fewer than k records cannot be k-anonymized.
  uint64_t snapshot_every = 10000;

  /// Write-ahead logging, checkpointing and crash recovery (off unless a
  /// WAL directory is set — see DurabilityOptions).
  DurabilityOptions durability;

  /// Write-absorbing memtable + batch merge (off unless a trigger is set —
  /// see LsmOptions). The merge reuses the anonymizer's kSortedBulkLoad
  /// knobs (threads, curve, grid_bits, memory budget).
  LsmOptions lsm;

  /// Height of the canonical DP bisection grid (dp/dp_hierarchy.h) whose
  /// exact per-cell counts every published snapshot carries, enabling the
  /// serving layer's /release/dp endpoints. The grid is data-independent,
  /// so per-shard cell vectors sum and a follower reproduces the leader's
  /// exactly — the root of the cross-deployment byte-identity of DP
  /// releases. 0 disables DP cell accounting entirely.
  size_t dp_height = 10;
};

/// A concurrent incremental anonymization service (the serving layer of the
/// ROADMAP's "heavy traffic" north star) built on the paper's central
/// property: the R⁺-tree index *is* the anonymization, and maintaining it
/// under record-at-a-time inserts is cheap.
///
/// Architecture — single writer, readers decoupled from ingest:
///
///   producers --Ingest()--> [bounded MPSC queue] --batch--> ingest thread
///                                                              |
///                                      owns RPlusTree, applies batches,
///                                      republishes an immutable Snapshot
///                                                              v
///   readers  --GetRelease(k1)-- <--shared_ptr swap-- [current snapshot]
///
/// The live tree is touched by exactly one thread, so the index needs no
/// locks and keeps its single-threaded insert speed. With the LSM tier on
/// (ServiceOptions::lsm), the same thread absorbs batches into a Memtable
/// instead and periodically merges the run into the tree in bulk — same
/// single-writer architecture, an order of magnitude less per-record work.
/// Readers never see the
/// live tree: they copy the current Snapshot pointer (a constant-time
/// critical section — snapshots are built entirely off-lock) and run the
/// leaf scan over its frozen leaf groups, so GetRelease neither blocks
/// ingest nor is blocked by it, at any requested granularity k1 >= base_k
/// (Lemma 1 keeps any set of such releases jointly safe).
class AnonymizationService {
 public:
  /// `domain` is the quasi-identifier domain the stream is drawn from
  /// (from schema metadata in practice). It normalizes split decisions and
  /// anchors the uncompacted regions and NCP summaries of every snapshot.
  /// When durability is configured, recovery runs inside the constructor
  /// (before the ingest thread starts) and any durability failure aborts —
  /// use Create to handle such failures as a Status instead.
  AnonymizationService(size_t dim, Domain domain, ServiceOptions options = {});

  /// Like the constructor, but surfaces recovery / WAL-open failures (a
  /// corrupt manifest, an unwritable directory, a checkpoint from a
  /// differently-configured service...) as a Status.
  static StatusOr<std::unique_ptr<AnonymizationService>> Create(
      size_t dim, Domain domain, ServiceOptions options = {});

  /// Stops the service (drains + final publish) if still running.
  ~AnonymizationService();

  AnonymizationService(const AnonymizationService&) = delete;
  AnonymizationService& operator=(const AnonymizationService&) = delete;

  size_t dim() const { return dim_; }
  const ServiceOptions& options() const { return options_; }

  /// Submits one record from any thread. Blocks or returns
  /// ResourceExhausted under backpressure (per options().backpressure);
  /// returns FailedPrecondition after Stop() and Unavailable while the
  /// service is degraded to read-only (see ServiceHealth).
  Status Ingest(std::span<const double> point, int32_t sensitive = 0);

  /// Current health. Reads (CurrentSnapshot / GetRelease) work in every
  /// state; Ingest only while kServing.
  ServiceHealth health() const {
    return health_.load(std::memory_order_acquire);
  }

  /// The first fatal durability error, or "" while serving.
  std::string degraded_reason() const {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    return degraded_reason_;
  }

  /// The most recent published snapshot (nullptr before the first
  /// publication). Constant time — the lock guards only a pointer copy,
  /// never tree or snapshot work — and the snapshot stays valid as long
  /// as the caller holds the pointer, even across Stop().
  std::shared_ptr<const Snapshot> CurrentSnapshot() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Releases the k1-anonymization of the current snapshot's records.
  /// FailedPrecondition when nothing has been published yet.
  StatusOr<PartitionSet> GetRelease(size_t k1) const;

  /// Asks the ingest thread to drain currently queued records and publish,
  /// then blocks until that publication (or shutdown) happens. Returns the
  /// snapshot current after the request was serviced.
  std::shared_ptr<const Snapshot> PublishNow();

  /// Graceful shutdown: rejects new records, drains the queue, publishes a
  /// final snapshot covering every ingested record, and joins the ingest
  /// thread. Idempotent.
  void Stop();

  /// Total records ingested into the index so far (monotonic).
  uint64_t inserted() const {
    return inserted_.load(std::memory_order_relaxed);
  }

  /// What startup recovery reconstructed (all-zero when durability is off
  /// or the directory was fresh).
  const RecoveryResult& recovery() const { return recovery_; }

  ServiceStats Stats() const;

 private:
  struct Deferred {};  // tag: construct members without starting the thread

  AnonymizationService(Deferred, size_t dim, Domain domain,
                       ServiceOptions options);

  /// Recovers from the WAL directory and opens the WAL writer. Must run
  /// before StartIngest — the tree is single-writer, and recovery is the
  /// constructor's turn at it.
  Status InitDurability();
  void StartIngest();

  void IngestLoop();
  void ApplyBatch(const IngestBatch& batch);
  /// Appends to the WAL with bounded exponential-backoff retries (the WAL
  /// recovers its segment between attempts). Gives up immediately once the
  /// WAL is poisoned — no retry can make an unprovable fsync provable.
  Status AppendWithRetry(uint64_t lsn, std::span<const double> point,
                         int32_t sensitive);
  /// Flips kServing -> kDegraded (read-only) recording the first reason.
  /// Idempotent; later calls keep the original reason.
  void EnterDegraded(const std::string& reason);
  /// Checkpoints when since_checkpoint_ crosses the configured cadence
  /// (forcing a memtable flush first, so the checkpoint covers every
  /// acknowledged record and the manifest stays authoritative).
  void MaybeCheckpoint(bool force);
  /// Merges the memtable into the tree when a flush trigger fires (always
  /// on force). Returns false only when the merge itself failed — the
  /// service is degraded then. No-op when the LSM tier is off.
  bool MaybeMerge(bool force);
  /// Publishes iff at least base_k records are held (tree + memtable).
  /// Returns true when a snapshot was actually published.
  bool Publish();
  bool PublishPending() const {
    return publish_requested_.load(std::memory_order_acquire) >
           publish_serviced_.load(std::memory_order_acquire);
  }

  const size_t dim_;
  const ServiceOptions options_;
  const Domain domain_;

  IngestQueue queue_;
  IncrementalAnonymizer anonymizer_;  // ingest thread only
  uint64_t next_rid_ = 0;             // ingest thread only
  uint64_t since_snapshot_ = 0;       // ingest thread only

  // LSM ingest tier (null when options_.lsm is disabled). Ingest thread
  // only, like the tree the memtable feeds; readers see its records via
  // snapshot overlay groups and the stats mirrors below.
  std::unique_ptr<Memtable> memtable_;
  std::unique_ptr<MergeScheduler> merger_;
  uint64_t since_merge_ = 0;  // records absorbed since the last flush
  // A merge adopted a rebuilt tree that no published snapshot reflects
  // yet. Guarantees the final snapshot is a flush boundary even when the
  // flush happened earlier (e.g. recovery replayed a WAL tail that the
  // first scheduled merge absorbed with no records following it).
  bool merged_since_publish_ = false;
  std::atomic<uint64_t> memtable_records_{0};
  std::atomic<uint64_t> memtable_bytes_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> delta_merges_{0};
  std::atomic<uint64_t> merge_escalations_{0};
  std::atomic<double> last_merge_ms_{0.0};
  std::atomic<double> merge_ms_total_{0.0};

  // Per-leaf release-fragment cache (ingest thread only), keyed by leaf
  // node identity. Valid because in LSM mode the tree mutates only through
  // merges, which report exactly which leaves they retired: a delta merge
  // evicts its retired leaves, a full rebuild clears the cache. Entries
  // are shared with published snapshots, so eviction never invalidates a
  // reader's release — it only stops future reuse.
  std::unordered_map<const Node*, LeafFragment> fragment_cache_;
  std::atomic<uint64_t> fragments_reused_{0};
  std::atomic<uint64_t> fragments_built_{0};

  // Durability (null / unused when options_.durability is disabled). The
  // WAL writer and checkpointer are driven exclusively by the ingest
  // thread, preserving the single-writer architecture: a record is
  // appended to the WAL before it is applied to the tree, and checkpoints
  // run between batches, when the tree is quiescent.
  std::unique_ptr<WalWriter> wal_;              // ingest thread only
  std::unique_ptr<Checkpointer> checkpointer_;  // ingest thread only
  uint64_t since_checkpoint_ = 0;               // ingest thread only
  RecoveryResult recovery_;  // written in ctor, read-only afterwards
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> last_checkpoint_lsn_{0};

  // Degradation state (see ServiceHealth). health_ only moves forward;
  // the reason string is written once, under degraded_mu_.
  std::atomic<ServiceHealth> health_{ServiceHealth::kServing};
  mutable std::mutex degraded_mu_;
  std::string degraded_reason_;
  std::atomic<uint64_t> wal_retries_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> dropped_{0};

  // The published snapshot. A plain mutex rather than
  // std::atomic<std::shared_ptr>: snapshots are built entirely outside
  // the lock, so the critical section is one shared_ptr copy — and
  // libstdc++'s atomic shared_ptr spinlock is opaque to TSan, which this
  // code is required to run clean under.
  mutable std::mutex current_mu_;
  std::shared_ptr<const Snapshot> current_;

  // Counters (see ServiceStats for meanings; enqueued/rejected live in
  // the queue, under its lock).
  std::atomic<uint64_t> inserted_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<double> last_build_ms_{0.0};
  std::atomic<double> build_ms_total_{0.0};

  // Batch-size / merge-duration samples for the histograms, capped so a
  // long-running service cannot grow them unboundedly (counters keep exact
  // totals regardless).
  static constexpr size_t kMaxBatchSamples = 1 << 16;
  mutable std::mutex samples_mu_;
  std::vector<double> batch_samples_;
  std::vector<double> merge_samples_;

  // Ingest-thread time split (written by the ingest thread only; the
  // load+store is not a race because there is exactly one writer).
  std::atomic<double> queue_wait_ms_{0.0};
  std::atomic<double> apply_ms_{0.0};

  // On-demand publication handshake (see PublishNow / IngestLoop).
  std::atomic<uint64_t> publish_requested_{0};
  std::atomic<uint64_t> publish_serviced_{0};
  std::atomic<bool> ingest_done_{false};
  std::mutex publish_mu_;
  std::condition_variable publish_cv_;

  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;
  JoinableThread ingest_thread_;  // last member: joins before the rest dies
};

}  // namespace kanon

#endif  // KANON_SERVICE_ANONYMIZATION_SERVICE_H_
