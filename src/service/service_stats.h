#ifndef KANON_SERVICE_SERVICE_STATS_H_
#define KANON_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "metrics/histogram.h"

namespace kanon {

/// A point-in-time view of the service's counters, assembled by
/// AnonymizationService::Stats(). All counts are cumulative since start.
struct ServiceStats {
  uint64_t enqueued = 0;   // records accepted into the queue
  uint64_t rejected = 0;   // records refused by kReject backpressure
  uint64_t inserted = 0;   // records applied to the index
  uint64_t batches = 0;    // tree critical sections taken
  uint64_t snapshots = 0;  // snapshot publications (== current epoch)
  size_t queue_depth = 0;  // records waiting right now

  /// Distribution of drained batch sizes — how well batching amortizes the
  /// tree critical section (mean batch size = inserted / batches).
  Histogram batch_sizes;

  double last_snapshot_build_ms = 0.0;
  double snapshot_age_s = 0.0;  // 0 before the first publication

  double mean_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(inserted) / static_cast<double>(batches);
  }
};

/// One-paragraph rendering for CLI / bench output.
std::string FormatServiceStats(const ServiceStats& stats);

}  // namespace kanon

#endif  // KANON_SERVICE_SERVICE_STATS_H_
