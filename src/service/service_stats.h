#ifndef KANON_SERVICE_SERVICE_STATS_H_
#define KANON_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "metrics/histogram.h"

namespace kanon {

/// Health state machine of the serving layer. Transitions only move right:
///
///   kServing ──(persistent WAL/checkpoint failure)──> kDegraded
///   kServing ──(Stop)──> kStopped
///
/// Degraded means read-only: ingest is rejected with Unavailable, but the
/// last published snapshot keeps serving releases — losing durability must
/// not take query availability down with it. A degraded service stays
/// degraded through Stop() so the final report shows what happened; only a
/// restart (which re-runs recovery) returns to kServing.
enum class ServiceHealth { kServing, kDegraded, kStopped };

/// Lower-case human name ("serving", "degraded", "stopped").
const char* ServiceHealthName(ServiceHealth health);

/// A point-in-time view of the service's counters, assembled by
/// AnonymizationService::Stats(). All counts are cumulative since start.
struct ServiceStats {
  uint64_t enqueued = 0;   // records accepted into the queue
  uint64_t rejected = 0;   // records refused by kReject backpressure
  uint64_t inserted = 0;   // records applied to the index
  uint64_t batches = 0;    // tree critical sections taken
  uint64_t snapshots = 0;  // snapshot publications (== current epoch)
  size_t queue_depth = 0;  // records waiting right now

  /// Distribution of drained batch sizes — how well batching amortizes the
  /// tree critical section (mean batch size = inserted / batches).
  Histogram batch_sizes;

  double last_snapshot_build_ms = 0.0;
  double snapshot_build_ms_total = 0.0;  // total time building snapshots
  double snapshot_age_s = 0.0;  // 0 before the first publication

  // Per-leaf release-fragment reuse across snapshot publications (nonzero
  // only in LSM mode, where merges report exactly which leaves changed).
  uint64_t fragments_reused = 0;  // fragments carried over unchanged
  uint64_t fragments_built = 0;   // fragments (re)built

  // Ingest-thread time attribution: of the thread's life, how much was
  // spent waiting to drain the queue vs applying batches (WAL append +
  // memtable/tree work). The per-batch apply cost is what the memtable
  // absorbs — mean_apply_ms() is the attributable number.
  double queue_wait_ms = 0.0;
  double apply_ms = 0.0;

  // Write-absorbing LSM ingest tier (see ServiceOptions::lsm; all zero
  // when the memtable is off).
  bool memtable_enabled = false;
  uint64_t memtable_records = 0;  // resident (un-merged) records right now
  uint64_t memtable_bytes = 0;    // approximate resident footprint
  uint64_t merges = 0;            // memtable flushes merged into the tree
  uint64_t delta_merges = 0;      // of `merges`, in-place delta merges
  uint64_t merge_escalations = 0; // delta rebuild sites escalated upward
  double last_merge_ms = 0.0;
  double merge_ms_total = 0.0;    // total time in merges
  /// Distribution of merge durations (over up to the last 64Ki merges;
  /// `merges` keeps the exact total regardless).
  Histogram merge_duration_ms;
  uint64_t merge_samples = 0;  // samples backing merge_duration_ms

  // Durability counters (all zero when the service runs without a WAL).
  bool durable = false;          // a WAL directory is configured
  uint64_t recovered = 0;        // records restored at startup
  uint64_t wal_appended = 0;     // records logged
  uint64_t wal_bytes = 0;        // WAL bytes written (framing + payload)
  uint64_t wal_syncs = 0;        // fsyncs issued by group commit
  uint64_t wal_synced_lsn = 0;   // crash-durable LSN horizon
  uint64_t checkpoints = 0;      // checkpoints taken
  uint64_t last_checkpoint_lsn = 0;

  // Failure handling (see ServiceHealth).
  ServiceHealth health = ServiceHealth::kServing;
  uint64_t wal_retries = 0;      // transient append failures retried
  uint64_t wal_recoveries = 0;   // WAL segment recoveries (torn-write cleanup)
  uint64_t unavailable = 0;      // ingests rejected while degraded
  uint64_t dropped = 0;          // accepted records discarded by degradation
  bool wal_poisoned = false;     // an fsync failed; WAL permanently down
  std::string degraded_reason;   // first fatal error ("" while serving)

  double mean_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(inserted) / static_cast<double>(batches);
  }
  double mean_queue_wait_ms() const {
    return batches == 0 ? 0.0 : queue_wait_ms / static_cast<double>(batches);
  }
  double mean_apply_ms() const {
    return batches == 0 ? 0.0 : apply_ms / static_cast<double>(batches);
  }
};

/// One-paragraph rendering for CLI / bench output.
std::string FormatServiceStats(const ServiceStats& stats);

}  // namespace kanon

#endif  // KANON_SERVICE_SERVICE_STATS_H_
