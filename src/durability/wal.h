#ifndef KANON_DURABILITY_WAL_H_
#define KANON_DURABILITY_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace kanon {

/// Tuning knobs of the write-ahead log.
struct WalOptions {
  /// Group-commit cadence: fsync once per this many appended records. 1
  /// makes every record synchronously durable before Append returns; 0
  /// never fsyncs explicitly (the OS page cache decides — cheapest,
  /// weakest). Amortizing the fsync over a group is what keeps a durable
  /// ingest path within a small factor of the WAL-off throughput.
  size_t fsync_every = 256;
  /// Rotate to a fresh segment once the current file exceeds this size.
  size_t segment_bytes = 16u << 20;
};

/// Monotone counters of a WalWriter, readable from any thread.
struct WalStats {
  uint64_t appended = 0;    // records appended
  uint64_t bytes = 0;       // framing + payload bytes written
  uint64_t syncs = 0;       // fsyncs issued
  uint64_t segments = 0;    // segment files created by this writer
  uint64_t synced_lsn = 0;  // highest LSN known crash-durable (0 = none)
  uint64_t recoveries = 0;  // write-failure segment recoveries performed
};

/// Append-only segmented record log. Each segment file `wal-<lsn>.log`
/// (named by the first LSN it may contain) starts with a checksummed fixed
/// header and holds length-prefixed, CRC32-checksummed entries:
///
///   [u32 payload length][u32 crc32(payload)]
///   payload = u64 lsn | i32 sensitive | dim × f64 point
///
/// LSNs are assigned by the single ingest writer, start at 1 and are dense:
/// record id == lsn - 1, which is what makes replay idempotent (an entry at
/// or below the checkpoint LSN is already inside the checkpointed tree and
/// is skipped, never double-inserted).
///
/// Failure handling (all I/O goes through the Env, so every path below is
/// exercised deterministically by FaultInjectionEnv):
///
///  * A failed *write* is recoverable: the entry (and anything a torn
///    write smeared after the durable prefix) never advanced the log's
///    logical state. The next Append/Sync quarantines the damage — the
///    segment is truncated back to its last fsynced boundary, a fresh
///    segment is opened, and the entries appended-but-not-yet-synced are
///    re-appended from an in-memory copy and fsynced. Callers just retry.
///  * A failed *fsync* poisons the writer permanently: the kernel may have
///    dropped the dirty pages, so the durable prefix of the segment is
///    unknowable and a later fsync that "succeeds" proves nothing
///    (fsync-gate semantics). Every subsequent Append/Sync fails fast;
///    stats().synced_lsn remains the last horizon that was proven durable.
class WalWriter {
 public:
  /// Opens a fresh segment in `dir` (created if missing) whose first record
  /// will carry `next_lsn`. Existing segments are never appended to — a
  /// torn tail in an old segment stays quarantined behind recovery's
  /// truncation — so Open after ReplayWal is always safe. `env` = nullptr
  /// uses Env::Default().
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                   size_t dim,
                                                   uint64_t next_lsn,
                                                   WalOptions options = {},
                                                   Env* env = nullptr);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record under group commit; every options.fsync_every
  /// appends the segment is fsynced and stats().synced_lsn advances. After
  /// a write failure the same record may be retried (the writer first runs
  /// segment recovery, see above); after a sync failure the writer is
  /// poisoned and every call fails.
  Status Append(uint64_t lsn, std::span<const double> point,
                int32_t sensitive);

  /// Flushes and fsyncs the current segment, advancing synced_lsn to the
  /// last appended LSN.
  Status Sync();

  /// True once an fsync has failed: the un-synced suffix can no longer be
  /// proven durable and no retry can help (see class comment).
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  const WalOptions& options() const { return options_; }
  WalStats stats() const;

 private:
  WalWriter(std::string dir, size_t dim, WalOptions options, Env* env)
      : dir_(std::move(dir)), dim_(dim), options_(options), env_(env) {}

  Status OpenSegment(uint64_t first_lsn);
  /// Quarantines a write failure: truncate the current segment to its
  /// durable prefix, rotate, re-append the un-synced entries, fsync.
  Status RecoverSegment();
  Status SyncInternal();

  const std::string dir_;
  const size_t dim_;
  const WalOptions options_;
  Env* const env_;

  std::unique_ptr<WritableFile> file_;
  std::string segment_path_;
  size_t segment_bytes_written_ = 0;  // logically appended, incl. header
  size_t synced_segment_bytes_ = 0;   // durable prefix of current segment
  size_t unsynced_ = 0;               // records since last fsync
  uint64_t last_lsn_ = 0;
  std::vector<char> entry_buf_;
  /// Encoded entries appended since the last successful fsync — the replay
  /// source for RecoverSegment. Bounded by the fsync cadence (or, with
  /// fsync_every = 0, by segment rotation, which syncs).
  std::vector<char> unsynced_entries_;
  bool needs_recovery_ = false;

  std::atomic<bool> poisoned_{false};
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> segments_{0};
  std::atomic<uint64_t> synced_lsn_{0};
  std::atomic<uint64_t> recoveries_{0};
};

/// Outcome of a ReplayWal pass.
struct WalReplayResult {
  uint64_t replayed = 0;   // entries delivered to `apply`
  uint64_t skipped = 0;    // intact entries below `from_lsn` (idempotence)
  uint64_t max_lsn = 0;    // highest LSN seen (0 = empty log)
  uint64_t segments = 0;   // segment files visited
  bool truncated_tail = false;    // a torn final entry was cut off
  uint64_t truncated_bytes = 0;   // bytes removed by that truncation
};

/// Replays every intact entry with lsn >= from_lsn in log order. A torn or
/// corrupt suffix of the *final* segment — the signature of a crash
/// mid-append — is physically truncated back to the last intact entry, so
/// the next replay (and the next writer) sees a clean log. Corruption in
/// any earlier segment is a hard error: those bytes were complete before a
/// later segment was opened, so damage there is bit rot, not a torn write.
Status ReplayWal(
    const std::string& dir, size_t dim, uint64_t from_lsn,
    const std::function<void(uint64_t lsn, std::span<const double> point,
                             int32_t sensitive)>& apply,
    WalReplayResult* result, Env* env = nullptr);

/// A contiguous run of raw CRC-framed WAL entries read back from the
/// segment files, in wire format — the unit a replication leader ships to a
/// tailing follower. `frames` is a concatenation of intact
/// `[u32 len][u32 crc][payload]` entries exactly as they sit on disk.
struct WalRangeResult {
  std::string frames;       // wire-format entries, possibly empty
  uint64_t first_lsn = 0;   // first LSN included (0 = none)
  uint64_t last_lsn = 0;    // last LSN included (0 = none)
  uint64_t oldest_lsn = 0;  // first LSN any on-disk segment may hold (0 =
                            // the log has no segments at all)
};

/// Reads intact entries with from_lsn <= lsn <= max_lsn in log order,
/// stopping once `frames` holds at least `max_bytes` (the range always
/// includes at least one entry when one is available, so a single oversized
/// cap still makes progress). Strictly read-only — unlike ReplayWal it
/// never truncates anything.
///
/// Callers serving replication must pass max_lsn <= the writer's
/// synced_lsn: entries past the durable horizon could vanish in a crash
/// and have their LSNs reassigned to different records, which a follower
/// that already applied the old bytes could never detect.
///
/// Typed failures:
///  * NotFound — `from_lsn` predates the oldest surviving segment (a
///    checkpoint truncated that range away). The caller needs a fresh
///    checkpoint, not a retry.
///  * Corruption — damage in a sealed (non-newest) segment: bit rot, a
///    serving-side disk problem. A torn or damaged tail of the *newest*
///    segment is not an error; the scan just ends before it (those bytes
///    are an in-flight append, not yet durable).
StatusOr<WalRangeResult> ReadWalRange(const std::string& dir, size_t dim,
                                      uint64_t from_lsn, uint64_t max_lsn,
                                      size_t max_bytes, Env* env = nullptr);

/// Decodes a WalRangeResult::frames byte string (the follower half of
/// ReadWalRange). Any defect — short frame, size or checksum mismatch —
/// returns Corruption without delivering the defective entry or anything
/// after it; a tailing client must drop the connection and re-request from
/// its last applied LSN rather than resynchronize mid-stream.
Status DecodeWalFrames(
    std::string_view frames, size_t dim,
    const std::function<void(uint64_t lsn, std::span<const double> point,
                             int32_t sensitive)>& apply);

/// Deletes segments made obsolete by a checkpoint at `checkpoint_lsn`: a
/// segment is removable when the next segment starts at or below
/// checkpoint_lsn + 1 (every entry it holds is inside the checkpoint). The
/// newest segment is always kept. Returns the number of files removed.
StatusOr<size_t> TruncateWalBefore(const std::string& dir,
                                   uint64_t checkpoint_lsn,
                                   Env* env = nullptr);

/// fsyncs a directory so renames/creations/unlinks inside it survive a
/// crash. Shared by the WAL (segment creation) and the checkpoint manifest
/// protocol.
Status SyncDirectory(const std::string& dir, Env* env = nullptr);

}  // namespace kanon

#endif  // KANON_DURABILITY_WAL_H_
