#ifndef KANON_DURABILITY_RECOVERY_H_
#define KANON_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "anon/rtree_anonymizer.h"
#include "common/env.h"
#include "common/status.h"
#include "storage/pager.h"

namespace kanon {

struct RecoveryOptions {
  /// Durability directory holding MANIFEST, checkpoint files and WAL
  /// segments. A missing or empty directory recovers to a fresh state.
  std::string dir;
  size_t page_size = kDefaultPageSize;
  /// Filesystem to recover from; nullptr uses Env::Default().
  Env* env = nullptr;
};

/// What a recovery pass reconstructed.
struct RecoveryResult {
  uint64_t recovered = 0;           // live records after recovery
  uint64_t checkpoint_records = 0;  // of which came from the checkpoint
  uint64_t checkpoint_lsn = 0;      // 0 = no checkpoint loaded
  uint64_t replayed = 0;            // WAL entries re-inserted
  uint64_t skipped = 0;             // WAL entries already in the checkpoint
  uint64_t next_lsn = 1;            // first LSN the resumed writer assigns
  bool loaded_checkpoint = false;
  bool truncated_torn_tail = false; // a crash mid-append was cleaned up
};

/// Rebuilds `anonymizer`'s tree from the durability directory: load the
/// manifest's checkpoint (validating dimensionality and structural config
/// against the anonymizer), then replay the WAL tail through the normal
/// insert path. Replay is idempotent via LSNs — entries at or below the
/// checkpoint LSN are skipped — so a crash between a checkpoint and the WAL
/// truncation behind it costs nothing. A torn final WAL entry (crash
/// mid-append) is truncated away, not fatal.
///
/// The anonymizer must be freshly constructed (empty). On success the
/// caller resumes ingest with rid == next_lsn - 1 for the next record.
StatusOr<RecoveryResult> RecoverInto(const RecoveryOptions& options,
                                     IncrementalAnonymizer* anonymizer);

/// Receives one replayed WAL-tail record. LSNs arrive strictly increasing;
/// the record's id is lsn - 1.
using WalTailSink =
    std::function<void(uint64_t lsn, std::span<const double> point,
                       int32_t sensitive)>;

/// Like RecoverInto above, but routes replayed WAL-tail records into
/// `tail_sink` instead of inserting them into the tree — the LSM ingest
/// tier's entry point: the checkpointed tree is adopted as usual (it
/// covers everything at or below the checkpoint LSN, because checkpoints
/// force a memtable flush) while the un-checkpointed tail lands back in
/// the memtable, exactly where un-flushed acknowledged records live in
/// steady state. LSN idempotence is unchanged.
StatusOr<RecoveryResult> RecoverInto(const RecoveryOptions& options,
                                     IncrementalAnonymizer* anonymizer,
                                     const WalTailSink& tail_sink);

}  // namespace kanon

#endif  // KANON_DURABILITY_RECOVERY_H_
