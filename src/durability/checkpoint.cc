#include "durability/checkpoint.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/crc32.h"
#include "durability/wal.h"

namespace kanon {

namespace {

constexpr uint32_t kManifestMagic = 0x6b4d4e46u;  // "FNMk" little-endian
constexpr uint32_t kManifestVersion = 1;

/// Serialized manifest layout (all little-endian, trailing CRC32 over every
/// preceding byte):
///   u32 magic | u32 version | u32 dim | u32 min_leaf | u32 max_leaf |
///   u32 max_fanout | u32 page_size | u64 checkpoint_lsn |
///   u64 first_page | u64 byte_size | u64 record_count | u32 tree_crc |
///   u32 file_name_length | file_name bytes | u32 crc
std::vector<char> EncodeManifest(const CheckpointManifest& m) {
  std::vector<char> buf;
  auto put = [&](const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf.insert(buf.end(), c, c + n);
  };
  auto put32 = [&](uint32_t x) { put(&x, sizeof(x)); };
  auto put64 = [&](uint64_t x) { put(&x, sizeof(x)); };
  put32(kManifestMagic);
  put32(kManifestVersion);
  put32(m.dim);
  put32(m.min_leaf);
  put32(m.max_leaf);
  put32(m.max_fanout);
  put32(m.page_size);
  put64(m.checkpoint_lsn);
  put64(static_cast<uint64_t>(m.snapshot.first_page));
  put64(m.snapshot.byte_size);
  put64(m.snapshot.record_count);
  put32(m.snapshot.crc32);
  put32(static_cast<uint32_t>(m.file.size()));
  put(m.file.data(), m.file.size());
  put32(Crc32(buf.data(), buf.size()));
  return buf;
}

StatusOr<CheckpointManifest> DecodeManifest(const std::vector<char>& buf) {
  const Status corrupt = Status::Corruption("manifest failed validation");
  size_t off = 0;
  auto get = [&](void* p, size_t n) -> bool {
    if (off + n > buf.size()) return false;
    std::memcpy(p, buf.data() + off, n);
    off += n;
    return true;
  };
  if (buf.size() < 2 * sizeof(uint32_t)) return corrupt;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (Crc32(buf.data(), buf.size() - sizeof(stored_crc)) != stored_crc) {
    return corrupt;
  }
  uint32_t magic = 0, version = 0;
  CheckpointManifest m;
  uint64_t first_page = 0, byte_size = 0, record_count = 0;
  uint32_t name_length = 0;
  if (!get(&magic, 4) || !get(&version, 4) || !get(&m.dim, 4) ||
      !get(&m.min_leaf, 4) || !get(&m.max_leaf, 4) || !get(&m.max_fanout, 4) ||
      !get(&m.page_size, 4) || !get(&m.checkpoint_lsn, 8) ||
      !get(&first_page, 8) || !get(&byte_size, 8) || !get(&record_count, 8) ||
      !get(&m.snapshot.crc32, 4) || !get(&name_length, 4)) {
    return corrupt;
  }
  if (magic != kManifestMagic || version != kManifestVersion) return corrupt;
  if (off + name_length + sizeof(uint32_t) != buf.size()) return corrupt;
  m.file.assign(buf.data() + off, name_length);
  m.snapshot.first_page = static_cast<PageId>(first_page);
  m.snapshot.byte_size = static_cast<size_t>(byte_size);
  m.snapshot.record_count = static_cast<size_t>(record_count);
  return m;
}

std::string ManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "MANIFEST").string();
}

}  // namespace

Status StoreManifest(const std::string& dir,
                     const CheckpointManifest& manifest) {
  const std::vector<char> buf = EncodeManifest(manifest);
  const std::string tmp_path =
      (std::filesystem::path(dir) / "MANIFEST.tmp").string();
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp_path);
  const bool written = std::fwrite(buf.data(), 1, buf.size(), file) ==
                           buf.size() &&
                       std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  std::fclose(file);
  if (!written) return Status::IoError("manifest write failed");
  std::error_code ec;
  std::filesystem::rename(tmp_path, ManifestPath(dir), ec);
  if (ec) return Status::IoError("manifest rename failed: " + ec.message());
  return SyncDirectory(dir);
}

StatusOr<CheckpointManifest> LoadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("no manifest in " + dir);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<char> buf(static_cast<size_t>(size));
  const bool read_ok =
      std::fread(buf.data(), 1, buf.size(), file) == buf.size();
  std::fclose(file);
  if (!read_ok) return Status::IoError("cannot read " + path);
  return DecodeManifest(buf);
}

Status Checkpointer::Checkpoint(const RPlusTree& tree,
                                uint64_t checkpoint_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "checkpoint-%020" PRIu64 ".db",
                checkpoint_lsn);
  const std::string path = (std::filesystem::path(dir_) / name).string();
  KANON_ASSIGN_OR_RETURN(const TreeSnapshot snapshot,
                         SaveTreeToFile(tree, path, page_size_));

  CheckpointManifest manifest;
  manifest.dim = static_cast<uint32_t>(tree.dim());
  manifest.min_leaf = static_cast<uint32_t>(tree.config().min_leaf);
  manifest.max_leaf = static_cast<uint32_t>(tree.config().max_leaf);
  manifest.max_fanout = static_cast<uint32_t>(tree.config().max_fanout);
  manifest.page_size = static_cast<uint32_t>(page_size_);
  manifest.checkpoint_lsn = checkpoint_lsn;
  manifest.snapshot = snapshot;
  manifest.file = name;
  KANON_RETURN_IF_ERROR(StoreManifest(dir_, manifest));

  // The manifest is now the durable truth; everything below is cleanup of
  // state the checkpoint superseded.
  KANON_ASSIGN_OR_RETURN(const size_t removed,
                         TruncateWalBefore(dir_, checkpoint_lsn));
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string other = entry.path().filename().string();
    if (other.rfind("checkpoint-", 0) == 0 && other != name) {
      std::filesystem::remove(entry.path(), ec);
    }
  }

  ++stats_.checkpoints;
  stats_.last_checkpoint_lsn = checkpoint_lsn;
  stats_.bytes_written += snapshot.byte_size;
  stats_.wal_segments_removed += removed;
  return Status::OK();
}

}  // namespace kanon
