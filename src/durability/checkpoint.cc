#include "durability/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "durability/wal.h"

namespace kanon {

namespace {

constexpr uint32_t kManifestMagic = 0x6b4d4e46u;  // "FNMk" little-endian
constexpr uint32_t kManifestVersion = 1;

/// Serialized manifest layout (all little-endian, trailing CRC32 over every
/// preceding byte):
///   u32 magic | u32 version | u32 dim | u32 min_leaf | u32 max_leaf |
///   u32 max_fanout | u32 page_size | u64 checkpoint_lsn |
///   u64 first_page | u64 byte_size | u64 record_count | u32 tree_crc |
///   u32 file_name_length | file_name bytes | u32 crc
std::vector<char> EncodeManifest(const CheckpointManifest& m) {
  std::vector<char> buf;
  auto put = [&](const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf.insert(buf.end(), c, c + n);
  };
  auto put32 = [&](uint32_t x) { put(&x, sizeof(x)); };
  auto put64 = [&](uint64_t x) { put(&x, sizeof(x)); };
  put32(kManifestMagic);
  put32(kManifestVersion);
  put32(m.dim);
  put32(m.min_leaf);
  put32(m.max_leaf);
  put32(m.max_fanout);
  put32(m.page_size);
  put64(m.checkpoint_lsn);
  put64(static_cast<uint64_t>(m.snapshot.first_page));
  put64(m.snapshot.byte_size);
  put64(m.snapshot.record_count);
  put32(m.snapshot.crc32);
  put32(static_cast<uint32_t>(m.file.size()));
  put(m.file.data(), m.file.size());
  put32(Crc32(buf.data(), buf.size()));
  return buf;
}

StatusOr<CheckpointManifest> DecodeManifest(const std::vector<char>& buf) {
  const Status corrupt = Status::Corruption("manifest failed validation");
  size_t off = 0;
  auto get = [&](void* p, size_t n) -> bool {
    if (off + n > buf.size()) return false;
    std::memcpy(p, buf.data() + off, n);
    off += n;
    return true;
  };
  if (buf.size() < 2 * sizeof(uint32_t)) return corrupt;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (Crc32(buf.data(), buf.size() - sizeof(stored_crc)) != stored_crc) {
    return corrupt;
  }
  uint32_t magic = 0, version = 0;
  CheckpointManifest m;
  uint64_t first_page = 0, byte_size = 0, record_count = 0;
  uint32_t name_length = 0;
  if (!get(&magic, 4) || !get(&version, 4) || !get(&m.dim, 4) ||
      !get(&m.min_leaf, 4) || !get(&m.max_leaf, 4) || !get(&m.max_fanout, 4) ||
      !get(&m.page_size, 4) || !get(&m.checkpoint_lsn, 8) ||
      !get(&first_page, 8) || !get(&byte_size, 8) || !get(&record_count, 8) ||
      !get(&m.snapshot.crc32, 4) || !get(&name_length, 4)) {
    return corrupt;
  }
  if (magic != kManifestMagic || version != kManifestVersion) return corrupt;
  if (off + name_length + sizeof(uint32_t) != buf.size()) return corrupt;
  m.file.assign(buf.data() + off, name_length);
  m.snapshot.first_page = static_cast<PageId>(first_page);
  m.snapshot.byte_size = static_cast<size_t>(byte_size);
  m.snapshot.record_count = static_cast<size_t>(record_count);
  return m;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string ManifestPath(const std::string& dir) {
  return JoinPath(dir, "MANIFEST");
}

}  // namespace

Status StoreManifest(const std::string& dir,
                     const CheckpointManifest& manifest, Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::vector<char> buf = EncodeManifest(manifest);
  const std::string tmp_path = JoinPath(dir, "MANIFEST.tmp");
  {
    KANON_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           env->NewWritableFile(tmp_path));
    // The new manifest must be fully durable *before* the rename makes it
    // the authoritative one; a failure at any point here leaves MANIFEST
    // untouched (the stale .tmp is overwritten by the next attempt).
    KANON_RETURN_IF_ERROR(file->Append(buf.data(), buf.size()));
    KANON_RETURN_IF_ERROR(file->Sync());
    KANON_RETURN_IF_ERROR(file->Close());
  }
  KANON_RETURN_IF_ERROR(env->RenameFile(tmp_path, ManifestPath(dir)));
  return env->SyncDir(dir);
}

StatusOr<CheckpointManifest> LoadManifest(const std::string& dir, Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::string path = ManifestPath(dir);
  if (!env->FileExists(path)) {
    return Status::NotFound("no manifest in " + dir);
  }
  std::string contents;
  KANON_RETURN_IF_ERROR(ReadFileToString(env, path, &contents));
  return DecodeManifest(std::vector<char>(contents.begin(), contents.end()));
}

Status Checkpointer::Checkpoint(const RPlusTree& tree,
                                uint64_t checkpoint_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "checkpoint-%020" PRIu64 ".db",
                checkpoint_lsn);
  const std::string path = JoinPath(dir_, name);
  const StatusOr<TreeSnapshot> saved =
      SaveTreeToFile(tree, path, page_size_, env_);
  if (!saved.ok()) {
    // The half-written tree file was never referenced by any manifest;
    // remove it best-effort so a retry (or the next recovery) never trips
    // over it. The previous checkpoint remains fully authoritative.
    (void)env_->RemoveFile(path);
    return saved.status();
  }
  const TreeSnapshot snapshot = *saved;

  CheckpointManifest manifest;
  manifest.dim = static_cast<uint32_t>(tree.dim());
  manifest.min_leaf = static_cast<uint32_t>(tree.config().min_leaf);
  manifest.max_leaf = static_cast<uint32_t>(tree.config().max_leaf);
  manifest.max_fanout = static_cast<uint32_t>(tree.config().max_fanout);
  manifest.page_size = static_cast<uint32_t>(page_size_);
  manifest.checkpoint_lsn = checkpoint_lsn;
  manifest.snapshot = snapshot;
  manifest.file = name;
  // On failure the tree file is deliberately left in place: StoreManifest
  // may fail *after* its rename (directory fsync), in which case MANIFEST
  // already references the new file. If the rename never happened the file
  // is an orphan and the next successful checkpoint garbage-collects it.
  KANON_RETURN_IF_ERROR(StoreManifest(dir_, manifest, env_));

  // The manifest is now the durable truth; everything below is cleanup of
  // state the checkpoint superseded.
  KANON_ASSIGN_OR_RETURN(const size_t removed,
                         TruncateWalBefore(dir_, checkpoint_lsn, env_));
  if (const StatusOr<std::vector<std::string>> names = env_->ListDir(dir_);
      names.ok()) {
    for (const std::string& other : *names) {
      if (other.rfind("checkpoint-", 0) == 0 && other != name) {
        (void)env_->RemoveFile(JoinPath(dir_, other));
      }
    }
  }

  ++stats_.checkpoints;
  stats_.last_checkpoint_lsn = checkpoint_lsn;
  stats_.bytes_written += snapshot.byte_size;
  stats_.wal_segments_removed += removed;
  return Status::OK();
}

}  // namespace kanon
