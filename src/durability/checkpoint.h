#ifndef KANON_DURABILITY_CHECKPOINT_H_
#define KANON_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "index/rplus_tree.h"
#include "index/tree_persistence.h"
#include "storage/pager.h"

namespace kanon {

/// Metadata of the durable checkpoint a recovery starts from. Persisted as
/// the `MANIFEST` file via an atomic write-new-then-rename protocol: the
/// manifest is written to `MANIFEST.tmp`, fsynced, renamed over `MANIFEST`,
/// and the directory fsynced — so a crash at any point leaves either the
/// old manifest or the new one, never a torn mix.
struct CheckpointManifest {
  /// Structural parameters the checkpointed tree was built with; recovery
  /// refuses to adopt a checkpoint into a differently-configured service.
  uint32_t dim = 0;
  uint32_t min_leaf = 0;
  uint32_t max_leaf = 0;
  uint32_t max_fanout = 0;
  uint32_t page_size = 0;
  /// Every record with lsn <= checkpoint_lsn is inside the tree file;
  /// replay resumes at checkpoint_lsn + 1.
  uint64_t checkpoint_lsn = 0;
  /// SaveTreeToFile snapshot of the tree file named by `file`.
  TreeSnapshot snapshot;
  /// Checkpoint file name, relative to the durability directory.
  std::string file;
};

/// Counters of a Checkpointer.
struct CheckpointerStats {
  uint64_t checkpoints = 0;
  uint64_t last_checkpoint_lsn = 0;
  uint64_t bytes_written = 0;        // tree bytes across all checkpoints
  uint64_t wal_segments_removed = 0; // segments truncated behind checkpoints
};

/// Periodically persists the live tree into `<dir>/checkpoint-<lsn>.db`,
/// publishes it through the manifest, then truncates WAL segments the
/// checkpoint made obsolete and removes superseded checkpoint files. Runs
/// on the single ingest thread (the tree has one writer), so a checkpoint
/// sees a quiescent tree.
///
/// Crash-safety of the sequence (save tree → publish manifest → truncate
/// WAL → remove old checkpoints):
///  * crash before the rename: old manifest still in place, orphan
///    checkpoint file is garbage-collected by the next checkpoint;
///  * crash after the rename but before WAL truncation: replay skips
///    entries at or below checkpoint_lsn, so nothing is applied twice.
class Checkpointer {
 public:
  /// Checkpoint files default to large pages: the file is written once,
  /// sequentially, so big pages mean few syscalls (the manifest records
  /// the size, so recovery reads whatever was written).
  static constexpr size_t kCheckpointPageSize = 1u << 16;

  /// `env` = nullptr uses Env::Default().
  explicit Checkpointer(std::string dir,
                        size_t page_size = kCheckpointPageSize,
                        Env* env = nullptr)
      : dir_(std::move(dir)),
        page_size_(page_size),
        env_(env != nullptr ? env : Env::Default()) {}

  /// Persists `tree`, which must contain exactly the records with LSNs in
  /// [1, checkpoint_lsn]. On failure the previous checkpoint (if any)
  /// remains fully authoritative: the manifest is only replaced by the
  /// atomic rename after the new tree file is durable, and a partially
  /// written tree file is removed best-effort.
  Status Checkpoint(const RPlusTree& tree, uint64_t checkpoint_lsn);

  const CheckpointerStats& stats() const { return stats_; }

 private:
  const std::string dir_;
  const size_t page_size_;
  Env* const env_;
  CheckpointerStats stats_;
};

/// Reads and validates `<dir>/MANIFEST`. NotFound when no manifest exists
/// (fresh directory); Corruption when one exists but fails its checksum.
StatusOr<CheckpointManifest> LoadManifest(const std::string& dir,
                                          Env* env = nullptr);

/// Writes `manifest` atomically as `<dir>/MANIFEST` (tmp + fsync + rename +
/// directory fsync). Exposed for tests; Checkpointer calls it internally.
Status StoreManifest(const std::string& dir,
                     const CheckpointManifest& manifest, Env* env = nullptr);

}  // namespace kanon

#endif  // KANON_DURABILITY_CHECKPOINT_H_
