#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>

#include "common/check.h"
#include "common/crc32.h"

namespace kanon {

namespace {

constexpr uint32_t kWalMagic = 0x6b57414cu;  // "LAWk" little-endian
constexpr uint32_t kWalVersion = 1;

// magic u32 | version u32 | dim u32 | reserved u32 | first_lsn u64 | crc u32
constexpr size_t kSegmentHeaderSize = 4 * sizeof(uint32_t) + sizeof(uint64_t) +
                                      sizeof(uint32_t);

size_t PayloadSize(size_t dim) {
  return sizeof(uint64_t) + sizeof(int32_t) + dim * sizeof(double);
}

size_t EntrySize(size_t dim) { return 2 * sizeof(uint32_t) + PayloadSize(dim); }

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_lsn);
  return buf;
}

/// Parses `wal-<20 digits>.log`; returns false for any other file name.
bool ParseSegmentName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0) {
    return false;
  }
  uint64_t lsn = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    lsn = lsn * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_lsn = lsn;
  return true;
}

struct SegmentFile {
  std::string path;
  uint64_t first_lsn = 0;
};

/// Segment files in `dir`, ordered by first LSN.
std::vector<SegmentFile> ListSegments(const std::string& dir) {
  std::vector<SegmentFile> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t first_lsn = 0;
    if (ParseSegmentName(entry.path().filename().string(), &first_lsn)) {
      segments.push_back({entry.path().string(), first_lsn});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

void EncodeHeader(char* buf, size_t dim, uint64_t first_lsn) {
  uint32_t v;
  size_t off = 0;
  auto put32 = [&](uint32_t x) {
    std::memcpy(buf + off, &x, sizeof(x));
    off += sizeof(x);
  };
  put32(kWalMagic);
  put32(kWalVersion);
  put32(static_cast<uint32_t>(dim));
  put32(0);  // reserved
  std::memcpy(buf + off, &first_lsn, sizeof(first_lsn));
  off += sizeof(first_lsn);
  v = Crc32(buf, off);
  std::memcpy(buf + off, &v, sizeof(v));
}

/// Returns InvalidArgument on a header that is well-formed but for a
/// different stream shape, Corruption on a damaged one.
Status DecodeHeader(const char* buf, size_t dim, uint64_t* first_lsn) {
  uint32_t magic, version, stored_dim, reserved, crc;
  size_t off = 0;
  auto get32 = [&](uint32_t* x) {
    std::memcpy(x, buf + off, sizeof(*x));
    off += sizeof(*x);
  };
  get32(&magic);
  get32(&version);
  get32(&stored_dim);
  get32(&reserved);
  std::memcpy(first_lsn, buf + off, sizeof(*first_lsn));
  off += sizeof(*first_lsn);
  get32(&crc);
  if (Crc32(buf, off - sizeof(crc)) != crc) {
    return Status::Corruption("wal segment header failed checksum");
  }
  if (magic != kWalMagic || version != kWalVersion) {
    return Status::Corruption("not a wal segment");
  }
  if (stored_dim != dim) {
    return Status::InvalidArgument("wal segment dimensionality mismatch");
  }
  return Status::OK();
}

}  // namespace

Status SyncDirectory(const std::string& dir) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError("cannot open directory " + dir);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return Status::IoError("fsync failed for directory " + dir);
  return Status::OK();
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                     size_t dim,
                                                     uint64_t next_lsn,
                                                     WalOptions options) {
  KANON_CHECK(next_lsn >= 1);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create wal directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(dir, dim, options));
  writer->entry_buf_.resize(EntrySize(dim));
  writer->last_lsn_ = next_lsn - 1;
  writer->synced_lsn_.store(next_lsn - 1, std::memory_order_relaxed);
  KANON_RETURN_IF_ERROR(writer->OpenSegment(next_lsn));
  return writer;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    // Best-effort flush; durable shutdown goes through Sync() explicitly.
    std::fclose(file_);
  }
}

Status WalWriter::OpenSegment(uint64_t first_lsn) {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) return Status::IoError("wal segment close");
    file_ = nullptr;
  }
  const std::string path =
      (std::filesystem::path(dir_) / SegmentName(first_lsn)).string();
  // Truncate: any prior file of this name held only bytes that recovery
  // already discarded (otherwise next_lsn would be higher).
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Status::IoError("cannot create " + path);
  // A generous stdio buffer keeps a group-commit window's appends in user
  // space: the kernel sees one write per flush instead of one per record.
  std::setvbuf(file_, nullptr, _IOFBF, 1u << 18);
  char header[kSegmentHeaderSize];
  EncodeHeader(header, dim_, first_lsn);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Status::IoError("wal header write failed");
  }
  // Make the segment's existence itself durable before logging into it.
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IoError("wal header fsync failed");
  }
  KANON_RETURN_IF_ERROR(SyncDirectory(dir_));
  segment_bytes_written_ = sizeof(header);
  segments_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(sizeof(header), std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Append(uint64_t lsn, std::span<const double> point,
                         int32_t sensitive) {
  KANON_CHECK(point.size() == dim_);
  KANON_CHECK_MSG(lsn == last_lsn_ + 1, "wal LSNs must be dense");
  if (segment_bytes_written_ >= options_.segment_bytes) {
    // Rotation seals the old segment: sync it so ReplayWal may treat any
    // damage there as bit rot rather than a torn tail.
    KANON_RETURN_IF_ERROR(Sync());
    KANON_RETURN_IF_ERROR(OpenSegment(lsn));
  }
  const uint32_t payload_size = static_cast<uint32_t>(PayloadSize(dim_));
  char* buf = entry_buf_.data();
  char* payload = buf + 2 * sizeof(uint32_t);
  std::memcpy(payload, &lsn, sizeof(lsn));
  std::memcpy(payload + sizeof(lsn), &sensitive, sizeof(sensitive));
  std::memcpy(payload + sizeof(lsn) + sizeof(sensitive), point.data(),
              dim_ * sizeof(double));
  const uint32_t crc = Crc32(payload, payload_size);
  std::memcpy(buf, &payload_size, sizeof(payload_size));
  std::memcpy(buf + sizeof(payload_size), &crc, sizeof(crc));
  if (std::fwrite(buf, 1, entry_buf_.size(), file_) != entry_buf_.size()) {
    return Status::IoError("wal append failed (disk full?)");
  }
  segment_bytes_written_ += entry_buf_.size();
  last_lsn_ = lsn;
  appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(entry_buf_.size(), std::memory_order_relaxed);
  if (options_.fsync_every > 0 && ++unsynced_ >= options_.fsync_every) {
    KANON_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  // fdatasync: the data (and the file size it implies) is what must be
  // durable; other metadata (mtime) is not load-bearing — a short or torn
  // tail after a crash is exactly what replay's truncation handles.
  if (std::fflush(file_) != 0 || fdatasync(fileno(file_)) != 0) {
    return Status::IoError("wal fsync failed");
  }
  unsynced_ = 0;
  syncs_.fetch_add(1, std::memory_order_relaxed);
  synced_lsn_.store(last_lsn_, std::memory_order_release);
  return Status::OK();
}

WalStats WalWriter::stats() const {
  WalStats stats;
  stats.appended = appended_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.syncs = syncs_.load(std::memory_order_relaxed);
  stats.segments = segments_.load(std::memory_order_relaxed);
  stats.synced_lsn = synced_lsn_.load(std::memory_order_acquire);
  return stats;
}

namespace {

/// Replays one segment. `offset_of_tear` is set (and the file truncated)
/// only when `may_tear` — i.e. this is the newest segment.
Status ReplaySegment(const SegmentFile& segment, size_t dim,
                     uint64_t from_lsn, bool may_tear,
                     const std::function<void(uint64_t, std::span<const double>,
                                              int32_t)>& apply,
                     WalReplayResult* result) {
  std::FILE* file = std::fopen(segment.path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + segment.path);
  }
  // RAII close.
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  auto tear = [&](long valid_bytes) -> Status {
    if (!may_tear) {
      return Status::Corruption("corrupt entry in sealed wal segment " +
                                segment.path);
    }
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    result->truncated_tail = true;
    result->truncated_bytes += static_cast<uint64_t>(size - valid_bytes);
    if (truncate(segment.path.c_str(), valid_bytes) != 0) {
      return Status::IoError("cannot truncate torn tail of " + segment.path);
    }
    return Status::OK();
  };

  char header[kSegmentHeaderSize];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
    // Not even a whole header: a crash between segment creation and the
    // header fsync. Nothing in the file is meaningful.
    return tear(0);
  }
  uint64_t first_lsn = 0;
  {
    const Status s = DecodeHeader(header, dim, &first_lsn);
    if (s.code() == StatusCode::kCorruption) return tear(0);
    KANON_RETURN_IF_ERROR(s);
  }

  const size_t payload_size = PayloadSize(dim);
  std::vector<char> payload(payload_size);
  std::vector<double> point(dim);
  long valid_end = static_cast<long>(sizeof(header));
  for (;;) {
    uint32_t stored_size = 0, stored_crc = 0;
    char frame[2 * sizeof(uint32_t)];
    const size_t got = std::fread(frame, 1, sizeof(frame), file);
    if (got == 0) break;  // clean end of segment
    if (got != sizeof(frame)) return tear(valid_end);
    std::memcpy(&stored_size, frame, sizeof(stored_size));
    std::memcpy(&stored_crc, frame + sizeof(stored_size),
                sizeof(stored_crc));
    if (stored_size != payload_size) return tear(valid_end);
    if (std::fread(payload.data(), 1, payload_size, file) != payload_size) {
      return tear(valid_end);
    }
    if (Crc32(payload.data(), payload_size) != stored_crc) {
      return tear(valid_end);
    }
    uint64_t lsn = 0;
    int32_t sensitive = 0;
    std::memcpy(&lsn, payload.data(), sizeof(lsn));
    std::memcpy(&sensitive, payload.data() + sizeof(lsn), sizeof(sensitive));
    std::memcpy(point.data(), payload.data() + sizeof(lsn) + sizeof(sensitive),
                dim * sizeof(double));
    if (lsn <= result->max_lsn || lsn < segment.first_lsn) {
      return Status::Corruption("non-monotonic LSN in " + segment.path);
    }
    result->max_lsn = lsn;
    valid_end += static_cast<long>(sizeof(frame) + payload_size);
    if (lsn < from_lsn) {
      ++result->skipped;
    } else {
      apply(lsn, point, sensitive);
      ++result->replayed;
    }
  }
  return Status::OK();
}

}  // namespace

Status ReplayWal(
    const std::string& dir, size_t dim, uint64_t from_lsn,
    const std::function<void(uint64_t lsn, std::span<const double> point,
                             int32_t sensitive)>& apply,
    WalReplayResult* result) {
  *result = WalReplayResult();
  if (!std::filesystem::exists(dir)) return Status::OK();
  const std::vector<SegmentFile> segments = ListSegments(dir);
  result->segments = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool newest = i + 1 == segments.size();
    KANON_RETURN_IF_ERROR(
        ReplaySegment(segments[i], dim, from_lsn, newest, apply, result));
  }
  return Status::OK();
}

StatusOr<size_t> TruncateWalBefore(const std::string& dir,
                                   uint64_t checkpoint_lsn) {
  const std::vector<SegmentFile> segments = ListSegments(dir);
  size_t removed = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn > checkpoint_lsn + 1) break;
    std::error_code ec;
    std::filesystem::remove(segments[i].path, ec);
    if (ec) {
      return Status::IoError("cannot remove " + segments[i].path + ": " +
                             ec.message());
    }
    ++removed;
  }
  if (removed > 0) KANON_RETURN_IF_ERROR(SyncDirectory(dir));
  return removed;
}

}  // namespace kanon
