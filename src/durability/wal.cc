#include "durability/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace kanon {

namespace {

constexpr uint32_t kWalMagic = 0x6b57414cu;  // "LAWk" little-endian
constexpr uint32_t kWalVersion = 1;

// magic u32 | version u32 | dim u32 | reserved u32 | first_lsn u64 | crc u32
constexpr size_t kSegmentHeaderSize = 4 * sizeof(uint32_t) + sizeof(uint64_t) +
                                      sizeof(uint32_t);

size_t PayloadSize(size_t dim) {
  return sizeof(uint64_t) + sizeof(int32_t) + dim * sizeof(double);
}

size_t EntrySize(size_t dim) { return 2 * sizeof(uint32_t) + PayloadSize(dim); }

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", first_lsn);
  return buf;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// Parses `wal-<20 digits>.log`; returns false for any other file name.
bool ParseSegmentName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0) {
    return false;
  }
  uint64_t lsn = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    lsn = lsn * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_lsn = lsn;
  return true;
}

struct SegmentFile {
  std::string path;
  uint64_t first_lsn = 0;
};

/// Segment files in `dir`, ordered by first LSN.
StatusOr<std::vector<SegmentFile>> ListSegments(const std::string& dir,
                                                Env* env) {
  KANON_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                         env->ListDir(dir));
  std::vector<SegmentFile> segments;
  for (const std::string& name : names) {
    uint64_t first_lsn = 0;
    if (ParseSegmentName(name, &first_lsn)) {
      segments.push_back({JoinPath(dir, name), first_lsn});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

void EncodeHeader(char* buf, size_t dim, uint64_t first_lsn) {
  uint32_t v;
  size_t off = 0;
  auto put32 = [&](uint32_t x) {
    std::memcpy(buf + off, &x, sizeof(x));
    off += sizeof(x);
  };
  put32(kWalMagic);
  put32(kWalVersion);
  put32(static_cast<uint32_t>(dim));
  put32(0);  // reserved
  std::memcpy(buf + off, &first_lsn, sizeof(first_lsn));
  off += sizeof(first_lsn);
  v = Crc32(buf, off);
  std::memcpy(buf + off, &v, sizeof(v));
}

/// Returns InvalidArgument on a header that is well-formed but for a
/// different stream shape, Corruption on a damaged one.
Status DecodeHeader(const char* buf, size_t dim, uint64_t* first_lsn) {
  uint32_t magic, version, stored_dim, reserved, crc;
  size_t off = 0;
  auto get32 = [&](uint32_t* x) {
    std::memcpy(x, buf + off, sizeof(*x));
    off += sizeof(*x);
  };
  get32(&magic);
  get32(&version);
  get32(&stored_dim);
  get32(&reserved);
  std::memcpy(first_lsn, buf + off, sizeof(*first_lsn));
  off += sizeof(*first_lsn);
  get32(&crc);
  if (Crc32(buf, off - sizeof(crc)) != crc) {
    return Status::Corruption("wal segment header failed checksum");
  }
  if (magic != kWalMagic || version != kWalVersion) {
    return Status::Corruption("not a wal segment");
  }
  if (stored_dim != dim) {
    return Status::InvalidArgument("wal segment dimensionality mismatch");
  }
  return Status::OK();
}

}  // namespace

Status SyncDirectory(const std::string& dir, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->SyncDir(dir);
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                     size_t dim,
                                                     uint64_t next_lsn,
                                                     WalOptions options,
                                                     Env* env) {
  KANON_CHECK(next_lsn >= 1);
  if (env == nullptr) env = Env::Default();
  KANON_RETURN_IF_ERROR(env->CreateDirs(dir));
  std::unique_ptr<WalWriter> writer(new WalWriter(dir, dim, options, env));
  writer->entry_buf_.resize(EntrySize(dim));
  writer->last_lsn_ = next_lsn - 1;
  writer->synced_lsn_.store(next_lsn - 1, std::memory_order_relaxed);
  KANON_RETURN_IF_ERROR(writer->OpenSegment(next_lsn));
  return writer;
}

WalWriter::~WalWriter() {
  // Best-effort flush on the WritableFile's destructor; durable shutdown
  // goes through Sync() explicitly.
}

Status WalWriter::OpenSegment(uint64_t first_lsn) {
  if (file_ != nullptr) {
    const Status close = file_->Close();
    file_.reset();
    if (!close.ok()) return close;
  }
  const std::string path = JoinPath(dir_, SegmentName(first_lsn));
  // Truncate: any prior file of this name held only bytes that recovery
  // already discarded (otherwise next_lsn would be higher).
  KANON_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path));
  segment_path_ = path;
  char header[kSegmentHeaderSize];
  EncodeHeader(header, dim_, first_lsn);
  KANON_RETURN_IF_ERROR(file_->Append(header, sizeof(header)));
  // Make the segment's existence itself durable before logging into it. A
  // sync failure here poisons the writer like any other: the new segment's
  // durable state is unknown.
  {
    const Status sync = file_->Sync();
    if (!sync.ok()) {
      poisoned_.store(true, std::memory_order_release);
      return sync;
    }
  }
  KANON_RETURN_IF_ERROR(env_->SyncDir(dir_));
  segment_bytes_written_ = sizeof(header);
  synced_segment_bytes_ = sizeof(header);
  segments_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(sizeof(header), std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::RecoverSegment() {
  // A write failed somewhere past the durable prefix: the file may hold a
  // torn entry, and the user-space buffer may hold bytes that never reached
  // it. Quarantine rather than patch: cut the segment back to its last
  // fsynced boundary (always an entry boundary), rotate, and re-log the
  // appended-but-unsynced entries from their in-memory copy. This keeps the
  // sealed-segment invariant — replay may treat damage in any non-final
  // segment as hard corruption — and keeps LSNs dense.
  if (file_ != nullptr) {
    (void)file_->Close();  // dropping buffered bytes is the point
    file_.reset();
  }
  KANON_RETURN_IF_ERROR(
      env_->TruncateFile(segment_path_, synced_segment_bytes_));
  const uint64_t synced = synced_lsn_.load(std::memory_order_relaxed);
  KANON_RETURN_IF_ERROR(OpenSegment(synced + 1));
  if (!unsynced_entries_.empty()) {
    KANON_RETURN_IF_ERROR(
        file_->Append(unsynced_entries_.data(), unsynced_entries_.size()));
    segment_bytes_written_ += unsynced_entries_.size();
    bytes_.fetch_add(unsynced_entries_.size(), std::memory_order_relaxed);
  }
  // Prove the re-logged entries durable immediately so the writer resumes
  // from a fully known state (and so a second fault during the rewrite
  // surfaces now, not at an arbitrary later sync).
  KANON_RETURN_IF_ERROR(SyncInternal());
  needs_recovery_ = false;
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WalWriter::Append(uint64_t lsn, std::span<const double> point,
                         int32_t sensitive) {
  if (poisoned()) {
    return Status::IoError("wal poisoned by failed fsync (segment " +
                           segment_path_ + ")");
  }
  KANON_CHECK(point.size() == dim_);
  if (needs_recovery_) KANON_RETURN_IF_ERROR(RecoverSegment());
  KANON_CHECK_MSG(lsn == last_lsn_ + 1, "wal LSNs must be dense");
  if (segment_bytes_written_ >= options_.segment_bytes) {
    // Rotation seals the old segment: sync it so ReplayWal may treat any
    // damage there as bit rot rather than a torn tail.
    KANON_RETURN_IF_ERROR(SyncInternal());
    const Status open = OpenSegment(lsn);
    if (!open.ok()) {
      // The new segment is in an unknown partial state (possibly a torn
      // header, possibly no file at all); a retry must rebuild it.
      needs_recovery_ = true;
      return open;
    }
  }
  const uint32_t payload_size = static_cast<uint32_t>(PayloadSize(dim_));
  char* buf = entry_buf_.data();
  char* payload = buf + 2 * sizeof(uint32_t);
  std::memcpy(payload, &lsn, sizeof(lsn));
  std::memcpy(payload + sizeof(lsn), &sensitive, sizeof(sensitive));
  std::memcpy(payload + sizeof(lsn) + sizeof(sensitive), point.data(),
              dim_ * sizeof(double));
  const uint32_t crc = Crc32(payload, payload_size);
  std::memcpy(buf, &payload_size, sizeof(payload_size));
  std::memcpy(buf + sizeof(payload_size), &crc, sizeof(crc));
  {
    const Status append = file_->Append(buf, entry_buf_.size());
    if (!append.ok()) {
      // The entry did not advance the log's logical state (last_lsn_ is
      // untouched); the caller may retry this same LSN after recovery.
      needs_recovery_ = true;
      return append;
    }
  }
  segment_bytes_written_ += entry_buf_.size();
  last_lsn_ = lsn;
  unsynced_entries_.insert(unsynced_entries_.end(), entry_buf_.begin(),
                           entry_buf_.end());
  appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(entry_buf_.size(), std::memory_order_relaxed);
  if (options_.fsync_every > 0 && ++unsynced_ >= options_.fsync_every) {
    KANON_RETURN_IF_ERROR(SyncInternal());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (poisoned()) {
    return Status::IoError("wal poisoned by failed fsync (segment " +
                           segment_path_ + ")");
  }
  // RecoverSegment ends with its own sync, so recovery alone completes this
  // call's contract.
  if (needs_recovery_) return RecoverSegment();
  return SyncInternal();
}

Status WalWriter::SyncInternal() {
  const Status sync = file_->Sync();
  if (!sync.ok()) {
    // fsync-gate: the kernel may have dropped the dirty pages on failure,
    // so retrying fsync on this fd can report success without the data
    // ever reaching disk. The writer is done; only entries at or below the
    // current synced_lsn are proven durable.
    poisoned_.store(true, std::memory_order_release);
    return sync;
  }
  synced_segment_bytes_ = segment_bytes_written_;
  unsynced_entries_.clear();
  unsynced_ = 0;
  syncs_.fetch_add(1, std::memory_order_relaxed);
  synced_lsn_.store(last_lsn_, std::memory_order_release);
  return Status::OK();
}

WalStats WalWriter::stats() const {
  WalStats stats;
  stats.appended = appended_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.syncs = syncs_.load(std::memory_order_relaxed);
  stats.segments = segments_.load(std::memory_order_relaxed);
  stats.synced_lsn = synced_lsn_.load(std::memory_order_acquire);
  stats.recoveries = recoveries_.load(std::memory_order_relaxed);
  return stats;
}

namespace {

/// Replays one segment. The file is truncated back to the last intact entry
/// only when `may_tear` — i.e. this is the newest segment.
Status ReplaySegment(const SegmentFile& segment, size_t dim,
                     uint64_t from_lsn, bool may_tear,
                     const std::function<void(uint64_t, std::span<const double>,
                                              int32_t)>& apply,
                     WalReplayResult* result, Env* env) {
  KANON_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                         env->NewRandomAccessFile(segment.path));

  auto tear = [&](uint64_t valid_bytes) -> Status {
    if (!may_tear) {
      return Status::Corruption("corrupt entry in sealed wal segment " +
                                segment.path);
    }
    KANON_ASSIGN_OR_RETURN(const uint64_t size, env->FileSize(segment.path));
    result->truncated_tail = true;
    result->truncated_bytes += size - valid_bytes;
    return env->TruncateFile(segment.path, valid_bytes);
  };

  uint64_t offset = 0;
  char header[kSegmentHeaderSize];
  {
    size_t got = 0;
    KANON_RETURN_IF_ERROR(file->ReadAt(0, header, sizeof(header), &got));
    if (got != sizeof(header)) {
      // Not even a whole header: a crash between segment creation and the
      // header fsync. Nothing in the file is meaningful.
      return tear(0);
    }
    offset = sizeof(header);
  }
  uint64_t first_lsn = 0;
  {
    const Status s = DecodeHeader(header, dim, &first_lsn);
    if (s.code() == StatusCode::kCorruption) return tear(0);
    KANON_RETURN_IF_ERROR(s);
  }

  const size_t payload_size = PayloadSize(dim);
  std::vector<char> payload(payload_size);
  std::vector<double> point(dim);
  uint64_t valid_end = offset;
  for (;;) {
    uint32_t stored_size = 0, stored_crc = 0;
    char frame[2 * sizeof(uint32_t)];
    size_t got = 0;
    KANON_RETURN_IF_ERROR(file->ReadAt(offset, frame, sizeof(frame), &got));
    if (got == 0) break;  // clean end of segment
    if (got != sizeof(frame)) return tear(valid_end);
    offset += got;
    std::memcpy(&stored_size, frame, sizeof(stored_size));
    std::memcpy(&stored_crc, frame + sizeof(stored_size),
                sizeof(stored_crc));
    if (stored_size != payload_size) return tear(valid_end);
    KANON_RETURN_IF_ERROR(
        file->ReadAt(offset, payload.data(), payload_size, &got));
    if (got != payload_size) return tear(valid_end);
    offset += got;
    if (Crc32(payload.data(), payload_size) != stored_crc) {
      return tear(valid_end);
    }
    uint64_t lsn = 0;
    int32_t sensitive = 0;
    std::memcpy(&lsn, payload.data(), sizeof(lsn));
    std::memcpy(&sensitive, payload.data() + sizeof(lsn), sizeof(sensitive));
    std::memcpy(point.data(), payload.data() + sizeof(lsn) + sizeof(sensitive),
                dim * sizeof(double));
    if (lsn <= result->max_lsn || lsn < segment.first_lsn) {
      return Status::Corruption("non-monotonic LSN in " + segment.path);
    }
    result->max_lsn = lsn;
    valid_end = offset;
    if (lsn < from_lsn) {
      ++result->skipped;
    } else {
      apply(lsn, point, sensitive);
      ++result->replayed;
    }
  }
  return Status::OK();
}

}  // namespace

Status ReplayWal(
    const std::string& dir, size_t dim, uint64_t from_lsn,
    const std::function<void(uint64_t lsn, std::span<const double> point,
                             int32_t sensitive)>& apply,
    WalReplayResult* result, Env* env) {
  if (env == nullptr) env = Env::Default();
  *result = WalReplayResult();
  if (!env->FileExists(dir)) return Status::OK();
  KANON_ASSIGN_OR_RETURN(const std::vector<SegmentFile> segments,
                         ListSegments(dir, env));
  result->segments = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool newest = i + 1 == segments.size();
    KANON_RETURN_IF_ERROR(
        ReplaySegment(segments[i], dim, from_lsn, newest, apply, result, env));
  }
  return Status::OK();
}

StatusOr<WalRangeResult> ReadWalRange(const std::string& dir, size_t dim,
                                      uint64_t from_lsn, uint64_t max_lsn,
                                      size_t max_bytes, Env* env) {
  if (env == nullptr) env = Env::Default();
  KANON_CHECK(from_lsn >= 1);
  WalRangeResult result;
  if (!env->FileExists(dir)) return result;
  KANON_ASSIGN_OR_RETURN(const std::vector<SegmentFile> segments,
                         ListSegments(dir, env));
  if (segments.empty()) return result;
  result.oldest_lsn = segments[0].first_lsn;
  if (from_lsn < result.oldest_lsn) {
    return Status::NotFound(
        "wal entries before lsn " + std::to_string(result.oldest_lsn) +
        " were truncated by a checkpoint; bootstrap from a newer checkpoint");
  }

  const size_t payload_size = PayloadSize(dim);
  std::vector<char> entry(EntrySize(dim));
  char* const frame = entry.data();
  char* const payload = entry.data() + 2 * sizeof(uint32_t);
  uint64_t prev_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    // Entirely below the requested range: every entry here has an LSN below
    // the next segment's first.
    if (i + 1 < segments.size() && segments[i + 1].first_lsn <= from_lsn) {
      continue;
    }
    const bool newest = i + 1 == segments.size();
    // The newest segment is being actively appended to; any anomaly there
    // is an in-flight tail, which ends the scan without error. The caller's
    // max_lsn (<= synced_lsn) keeps everything actually shipped on the
    // fully-fsynced prefix.
    auto seal_error = [&](const char* what) -> StatusOr<WalRangeResult> {
      return Status::Corruption(std::string(what) +
                                " in sealed wal segment " + segments[i].path);
    };
    KANON_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           env->NewRandomAccessFile(segments[i].path));
    char header[kSegmentHeaderSize];
    size_t got = 0;
    KANON_RETURN_IF_ERROR(file->ReadAt(0, header, sizeof(header), &got));
    if (got != sizeof(header)) {
      if (newest) break;
      return seal_error("short header");
    }
    uint64_t first_lsn = 0;
    {
      const Status s = DecodeHeader(header, dim, &first_lsn);
      if (s.code() == StatusCode::kCorruption) {
        if (newest) break;
        return seal_error("corrupt header");
      }
      KANON_RETURN_IF_ERROR(s);
    }
    uint64_t offset = sizeof(header);
    for (;;) {
      KANON_RETURN_IF_ERROR(
          file->ReadAt(offset, frame, 2 * sizeof(uint32_t), &got));
      if (got == 0) break;  // clean end of segment
      if (got != 2 * sizeof(uint32_t)) {
        if (newest) break;
        return seal_error("torn frame");
      }
      uint32_t stored_size = 0, stored_crc = 0;
      std::memcpy(&stored_size, frame, sizeof(stored_size));
      std::memcpy(&stored_crc, frame + sizeof(stored_size),
                  sizeof(stored_crc));
      if (stored_size != payload_size) {
        if (newest) break;
        return seal_error("frame size mismatch");
      }
      KANON_RETURN_IF_ERROR(file->ReadAt(offset + 2 * sizeof(uint32_t),
                                         payload, payload_size, &got));
      if (got != payload_size) {
        if (newest) break;
        return seal_error("torn payload");
      }
      if (Crc32(payload, payload_size) != stored_crc) {
        if (newest) break;
        return seal_error("payload checksum mismatch");
      }
      uint64_t lsn = 0;
      std::memcpy(&lsn, payload, sizeof(lsn));
      if (lsn <= prev_lsn || lsn < first_lsn) {
        if (newest) break;
        return seal_error("non-monotonic LSN");
      }
      prev_lsn = lsn;
      offset += entry.size();
      if (lsn > max_lsn) return result;
      if (lsn >= from_lsn) {
        if (result.first_lsn == 0) result.first_lsn = lsn;
        result.last_lsn = lsn;
        result.frames.append(entry.data(), entry.size());
        if (result.frames.size() >= max_bytes) return result;
      }
    }
  }
  return result;
}

Status DecodeWalFrames(
    std::string_view frames, size_t dim,
    const std::function<void(uint64_t lsn, std::span<const double> point,
                             int32_t sensitive)>& apply) {
  const size_t payload_size = PayloadSize(dim);
  std::vector<double> point(dim);
  size_t off = 0;
  while (off < frames.size()) {
    if (frames.size() - off < 2 * sizeof(uint32_t)) {
      return Status::Corruption("short wal frame header");
    }
    uint32_t stored_size = 0, stored_crc = 0;
    std::memcpy(&stored_size, frames.data() + off, sizeof(stored_size));
    std::memcpy(&stored_crc, frames.data() + off + sizeof(stored_size),
                sizeof(stored_crc));
    off += 2 * sizeof(uint32_t);
    if (stored_size != payload_size) {
      return Status::Corruption("wal frame size mismatch");
    }
    if (frames.size() - off < payload_size) {
      return Status::Corruption("short wal frame payload");
    }
    const char* payload = frames.data() + off;
    if (Crc32(payload, payload_size) != stored_crc) {
      return Status::Corruption("wal frame failed checksum");
    }
    uint64_t lsn = 0;
    int32_t sensitive = 0;
    std::memcpy(&lsn, payload, sizeof(lsn));
    std::memcpy(&sensitive, payload + sizeof(lsn), sizeof(sensitive));
    std::memcpy(point.data(), payload + sizeof(lsn) + sizeof(sensitive),
                dim * sizeof(double));
    off += payload_size;
    apply(lsn, point, sensitive);
  }
  return Status::OK();
}

StatusOr<size_t> TruncateWalBefore(const std::string& dir,
                                   uint64_t checkpoint_lsn, Env* env) {
  if (env == nullptr) env = Env::Default();
  KANON_ASSIGN_OR_RETURN(const std::vector<SegmentFile> segments,
                         ListSegments(dir, env));
  size_t removed = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn > checkpoint_lsn + 1) break;
    KANON_RETURN_IF_ERROR(env->RemoveFile(segments[i].path));
    ++removed;
  }
  if (removed > 0) KANON_RETURN_IF_ERROR(env->SyncDir(dir));
  return removed;
}

}  // namespace kanon
