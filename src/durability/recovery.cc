#include "durability/recovery.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "index/tree_persistence.h"

namespace kanon {

StatusOr<RecoveryResult> RecoverInto(const RecoveryOptions& options,
                                     IncrementalAnonymizer* anonymizer) {
  return RecoverInto(options, anonymizer, WalTailSink());
}

StatusOr<RecoveryResult> RecoverInto(const RecoveryOptions& options,
                                     IncrementalAnonymizer* anonymizer,
                                     const WalTailSink& tail_sink) {
  KANON_CHECK_MSG(anonymizer->size() == 0,
                  "recovery requires a fresh anonymizer");
  Env* env = options.env != nullptr ? options.env : Env::Default();
  RecoveryResult result;
  if (!env->FileExists(options.dir)) return result;

  const size_t dim = anonymizer->tree().dim();
  const RTreeConfig& config = anonymizer->tree().config();

  auto manifest_or = LoadManifest(options.dir, env);
  if (manifest_or.ok()) {
    const CheckpointManifest& m = *manifest_or;
    if (m.dim != dim) {
      return Status::InvalidArgument("checkpoint dimensionality mismatch");
    }
    if (m.min_leaf != config.min_leaf || m.max_leaf != config.max_leaf ||
        m.max_fanout != config.max_fanout) {
      return Status::InvalidArgument(
          "checkpoint tree configuration mismatch (was the service "
          "restarted with different k?)");
    }
    const std::string path = options.dir + "/" + m.file;
    KANON_ASSIGN_OR_RETURN(
        RPlusTree tree,
        LoadTreeFromFile(path, m.snapshot, dim, config, m.page_size, env));
    result.checkpoint_records = tree.size();
    result.checkpoint_lsn = m.checkpoint_lsn;
    result.loaded_checkpoint = true;
    anonymizer->AdoptTree(std::move(tree));
  } else if (manifest_or.status().code() != StatusCode::kNotFound) {
    return manifest_or.status();
  }

  WalReplayResult replay;
  KANON_RETURN_IF_ERROR(ReplayWal(
      options.dir, dim, result.checkpoint_lsn + 1,
      [&](uint64_t lsn, std::span<const double> point, int32_t sensitive) {
        if (tail_sink) {
          tail_sink(lsn, point, sensitive);
        } else {
          anonymizer->Insert(point, lsn - 1, sensitive);
        }
      },
      &replay, env));
  result.replayed = replay.replayed;
  result.skipped = replay.skipped;
  result.truncated_torn_tail = replay.truncated_tail;
  result.next_lsn = std::max(result.checkpoint_lsn, replay.max_lsn) + 1;
  // With a sink the tree holds only the checkpoint; the tail records live
  // in the sink's destination, but they are recovered all the same.
  result.recovered = tail_sink ? result.checkpoint_records + result.replayed
                               : anonymizer->size();
  return result;
}

}  // namespace kanon
