#include "storage/buffer_pool.h"

#include <cstring>

#include "common/check.h"

namespace kanon {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  KANON_DCHECK(valid());
  pool_->MarkDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_frames)
    : pager_(pager) {
  KANON_CHECK(capacity_frames >= 1);
  frames_.resize(capacity_frames);
  free_frames_.reserve(capacity_frames);
  // Frame memory is allocated lazily in GrabFrame: a pool sized for a large
  // memory budget must not pay allocation and page-fault cost for frames a
  // small workload never touches.
  for (size_t i = 0; i < capacity_frames; ++i) {
    free_frames_.push_back(capacity_frames - 1 - i);
  }
}

BufferPool::~BufferPool() { (void)FlushAll(); }

StatusOr<PageHandle> BufferPool::Fetch(PageId id, bool initialize) {
  KANON_CHECK(id != kInvalidPageId);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return PageHandle(this, id, it->second, f.data.get());
  }
  ++stats_.misses;
  KANON_ASSIGN_OR_RETURN(size_t frame_index, GrabFrame());
  Frame& f = frames_[frame_index];
  if (initialize) {
    std::memset(f.data.get(), 0, pager_->page_size());
  } else {
    KANON_RETURN_IF_ERROR(pager_->Read(id, f.data.get()));
  }
  f.page = id;
  f.pins = 1;
  f.dirty = initialize;  // a fresh page must reach disk eventually
  f.in_lru = false;
  page_to_frame_[id] = frame_index;
  return PageHandle(this, id, frame_index, f.data.get());
}

StatusOr<PageHandle> BufferPool::New() {
  const PageId id = pager_->Allocate();
  return Fetch(id, /*initialize=*/true);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page != kInvalidPageId && f.dirty) {
      KANON_RETURN_IF_ERROR(pager_->Write(f.page, f.data.get()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

void BufferPool::Discard(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    KANON_CHECK_MSG(f.pins == 0, "discarding a pinned page");
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.page = kInvalidPageId;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_to_frame_.erase(it);
  }
  pager_->Free(id);
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  KANON_DCHECK(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_front(frame_index);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame_index) {
  frames_[frame_index].dirty = true;
}

StatusOr<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[idx].data == nullptr) {
      frames_[idx].data = std::make_unique<char[]>(pager_->page_size());
    }
    return idx;
  }
  if (lru_.empty()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  // Evict the least recently used unpinned frame.
  const size_t victim = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[victim];
  f.in_lru = false;
  if (f.dirty) {
    KANON_RETURN_IF_ERROR(pager_->Write(f.page, f.data.get()));
    f.dirty = false;
  }
  page_to_frame_.erase(f.page);
  f.page = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

}  // namespace kanon
