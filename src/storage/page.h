#ifndef KANON_STORAGE_PAGE_H_
#define KANON_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "common/check.h"

namespace kanon {

/// Identifies a page within a Pager. Pages are allocated densely from 0.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// Default page size. 8 KiB matches common database defaults; the I/O
/// experiments size the buffer pool in pages of this size.
inline constexpr size_t kDefaultPageSize = 8192;

/// Fixed-width record serialization for data pages: each slot holds
/// (record id, sensitive code, dim quasi-identifier doubles). All pages that
/// store records — leaf pages and buffer-tree node buffers — use this codec.
class RecordCodec {
 public:
  explicit RecordCodec(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t record_size() const {
    return sizeof(uint64_t) + sizeof(int32_t) + dim_ * sizeof(double);
  }

  void Encode(char* dst, uint64_t rid, int32_t sensitive,
              std::span<const double> values) const {
    KANON_DCHECK(values.size() == dim_);
    std::memcpy(dst, &rid, sizeof(rid));
    std::memcpy(dst + sizeof(rid), &sensitive, sizeof(sensitive));
    std::memcpy(dst + sizeof(rid) + sizeof(sensitive), values.data(),
                dim_ * sizeof(double));
  }

  void Decode(const char* src, uint64_t* rid, int32_t* sensitive,
              double* values) const {
    std::memcpy(rid, src, sizeof(*rid));
    std::memcpy(sensitive, src + sizeof(*rid), sizeof(*sensitive));
    std::memcpy(values, src + sizeof(*rid) + sizeof(*sensitive),
                dim_ * sizeof(double));
  }

 private:
  size_t dim_;
};

/// View over a raw page buffer laid out as a slotted record page:
///   header { uint32 record_count; PageId next; }  then fixed-width slots.
/// `next` chains pages into unbounded record runs (buffer-tree node buffers).
class RecordPageView {
 public:
  RecordPageView(char* data, size_t page_size, const RecordCodec* codec)
      : data_(data), page_size_(page_size), codec_(codec) {}

  static constexpr size_t kHeaderSize = sizeof(uint32_t) + sizeof(PageId);

  size_t capacity() const {
    return (page_size_ - kHeaderSize) / codec_->record_size();
  }

  uint32_t count() const {
    uint32_t c;
    std::memcpy(&c, data_, sizeof(c));
    return c;
  }

  PageId next() const {
    PageId n;
    std::memcpy(&n, data_ + sizeof(uint32_t), sizeof(n));
    return n;
  }

  void set_next(PageId next) {
    std::memcpy(data_ + sizeof(uint32_t), &next, sizeof(next));
  }

  /// Resets the page to an empty record page with no successor.
  void Init() {
    uint32_t zero = 0;
    std::memcpy(data_, &zero, sizeof(zero));
    set_next(kInvalidPageId);
  }

  bool full() const { return count() >= capacity(); }

  /// Appends one record; the caller must ensure !full().
  void Append(uint64_t rid, int32_t sensitive,
              std::span<const double> values) {
    const uint32_t c = count();
    KANON_DCHECK(c < capacity());
    codec_->Encode(slot(c), rid, sensitive, values);
    const uint32_t nc = c + 1;
    std::memcpy(data_, &nc, sizeof(nc));
  }

  void Read(size_t i, uint64_t* rid, int32_t* sensitive,
            double* values) const {
    KANON_DCHECK(i < count());
    codec_->Decode(slot(i), rid, sensitive, values);
  }

 private:
  char* slot(size_t i) const {
    return data_ + kHeaderSize + i * codec_->record_size();
  }

  char* data_;
  size_t page_size_;
  const RecordCodec* codec_;
};

}  // namespace kanon

#endif  // KANON_STORAGE_PAGE_H_
