#ifndef KANON_STORAGE_PAGER_H_
#define KANON_STORAGE_PAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "storage/page.h"

namespace kanon {

/// Counts of explicit page I/O operations issued to the backing store —
/// exactly what the paper's Figure 8(b) reports ("the total number of
/// explicit I/O system calls made during the anonymization process").
struct PagerStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  uint64_t total() const { return reads + writes; }
};

/// Page-granular backing store. Three implementations: a real temp-file
/// pager, a named-file pager (durable artifacts), and an in-memory pager
/// (identical accounting, used by unit tests and by benches that want
/// repeatable timings without disk noise).
///
/// Every page is CRC32-checksummed on Write and verified on Read, so bit
/// rot in the backing store surfaces as a Corruption Status instead of
/// silently returning garbage records. Pages that were never written (or
/// were freed, making their contents undefined) are not verified.
///
/// Allocate/Free/Read/Write are thread-safe (one internal mutex), so
/// several BufferPools — each still single-threaded — can share one
/// backing store from concurrent tasks (the parallel external merge
/// does exactly this). stats()/ResetStats() and set_verify_checksums()
/// are for quiesced use: call them only when no other thread is inside
/// the pager.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats(); }

  /// Allocates a fresh page (contents undefined until first write). Reuses
  /// freed pages when available.
  PageId Allocate();

  /// Returns a page to the free list.
  void Free(PageId id);

  /// Number of pages ever allocated (high-water mark).
  size_t num_pages() const { return num_pages_; }

  Status Read(PageId id, char* buf);
  Status Write(PageId id, const char* buf);

  /// Disables read-side checksum verification (checksums are still
  /// recorded). Only the fault-injection harness, which feeds deliberately
  /// inconsistent pages, should need this.
  void set_verify_checksums(bool verify) { verify_checksums_ = verify; }
  bool verify_checksums() const { return verify_checksums_; }

 protected:
  explicit Pager(size_t page_size) : page_size_(page_size) {}

  virtual Status DoRead(PageId id, char* buf) = 0;
  virtual Status DoWrite(PageId id, const char* buf) = 0;

  size_t page_size_;
  PagerStats stats_;
  size_t num_pages_ = 0;
  std::vector<PageId> free_list_;

 private:
  std::mutex mu_;  // guards all mutable pager state across threads
  bool verify_checksums_ = true;
  std::vector<uint32_t> checksums_;   // indexed by PageId
  std::vector<uint8_t> checksummed_;  // 1 iff checksums_[id] is meaningful
};

/// Pager over an anonymous temporary file (unlinked on open, so it vanishes
/// with the process). All I/O goes through the Env so fault-injection
/// harnesses can interpose on it.
class FilePager : public Pager {
 public:
  /// Creates a pager over a temp file in `dir` ("" = system default).
  /// `env` = nullptr uses Env::Default().
  static StatusOr<std::unique_ptr<FilePager>> Create(
      size_t page_size = kDefaultPageSize, const std::string& dir = "",
      Env* env = nullptr);

 private:
  FilePager(size_t page_size, std::unique_ptr<RandomRWFile> file)
      : Pager(page_size), file_(std::move(file)) {}

  Status DoRead(PageId id, char* buf) override;
  Status DoWrite(PageId id, const char* buf) override;

  std::unique_ptr<RandomRWFile> file_;
};

/// Pager over a named file that outlives the process — the backing store of
/// durable artifacts (tree checkpoints, see src/durability/). Unlike
/// FilePager the file stays visible on disk and the caller controls its
/// lifetime; Sync() makes the contents crash-durable. I/O is unbuffered
/// positional pread/pwrite, so a Sync() never races a stale user buffer.
class NamedFilePager : public Pager {
 public:
  /// Opens `path`, creating the file when missing. With `truncate` any
  /// existing contents are discarded (fresh checkpoint); without it the
  /// existing pages are addressable (recovery reads them back). `env` =
  /// nullptr uses Env::Default().
  static StatusOr<std::unique_ptr<NamedFilePager>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize,
      bool truncate = false, Env* env = nullptr);

  const std::string& path() const { return path_; }

  /// fsyncs the backing file; the Status is the durability evidence.
  Status Sync();

 private:
  NamedFilePager(size_t page_size, std::unique_ptr<RandomRWFile> file,
                 std::string path)
      : Pager(page_size), file_(std::move(file)), path_(std::move(path)) {}

  Status DoRead(PageId id, char* buf) override;
  Status DoWrite(PageId id, const char* buf) override;

  std::unique_ptr<RandomRWFile> file_;
  std::string path_;
};

/// Pager over heap memory with identical I/O accounting.
class MemPager : public Pager {
 public:
  explicit MemPager(size_t page_size = kDefaultPageSize)
      : Pager(page_size) {}

 private:
  Status DoRead(PageId id, char* buf) override;
  Status DoWrite(PageId id, const char* buf) override;

  std::vector<std::unique_ptr<char[]>> pages_;
};

}  // namespace kanon

#endif  // KANON_STORAGE_PAGER_H_
