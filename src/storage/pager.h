#ifndef KANON_STORAGE_PAGER_H_
#define KANON_STORAGE_PAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace kanon {

/// Counts of explicit page I/O operations issued to the backing store —
/// exactly what the paper's Figure 8(b) reports ("the total number of
/// explicit I/O system calls made during the anonymization process").
struct PagerStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  uint64_t total() const { return reads + writes; }
};

/// Page-granular backing store. Two implementations: a real temp-file pager
/// and an in-memory pager (identical accounting, used by unit tests and by
/// benches that want repeatable timings without disk noise).
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats(); }

  /// Allocates a fresh page (contents undefined until first write). Reuses
  /// freed pages when available.
  PageId Allocate();

  /// Returns a page to the free list.
  void Free(PageId id);

  /// Number of pages ever allocated (high-water mark).
  size_t num_pages() const { return num_pages_; }

  Status Read(PageId id, char* buf);
  Status Write(PageId id, const char* buf);

 protected:
  explicit Pager(size_t page_size) : page_size_(page_size) {}

  virtual Status DoRead(PageId id, char* buf) = 0;
  virtual Status DoWrite(PageId id, const char* buf) = 0;

  size_t page_size_;
  PagerStats stats_;
  size_t num_pages_ = 0;
  std::vector<PageId> free_list_;
};

/// Pager over an anonymous temporary file (unlinked on open, so it vanishes
/// with the process).
class FilePager : public Pager {
 public:
  ~FilePager() override;

  /// Creates a pager over a temp file in `dir` ("" = system default).
  static StatusOr<std::unique_ptr<FilePager>> Create(
      size_t page_size = kDefaultPageSize, const std::string& dir = "");

 private:
  FilePager(size_t page_size, std::FILE* file)
      : Pager(page_size), file_(file) {}

  Status DoRead(PageId id, char* buf) override;
  Status DoWrite(PageId id, const char* buf) override;

  std::FILE* file_;
};

/// Pager over heap memory with identical I/O accounting.
class MemPager : public Pager {
 public:
  explicit MemPager(size_t page_size = kDefaultPageSize)
      : Pager(page_size) {}

 private:
  Status DoRead(PageId id, char* buf) override;
  Status DoWrite(PageId id, const char* buf) override;

  std::vector<std::unique_ptr<char[]>> pages_;
};

}  // namespace kanon

#endif  // KANON_STORAGE_PAGER_H_
