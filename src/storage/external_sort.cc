#include "storage/external_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace kanon {

namespace {

/// The sort key travels in values[0] of a (dim+1)-wide record, as the
/// bit-pattern of the uint64 key. memcpy round-trips exactly; the value is
/// never used as a number.
double KeyToDouble(uint64_t key) {
  double d;
  std::memcpy(&d, &key, sizeof(d));
  return d;
}

uint64_t DoubleToKey(double d) {
  uint64_t key;
  std::memcpy(&key, &d, sizeof(key));
  return key;
}

}  // namespace

ExternalSorter::ExternalSorter(size_t dim, size_t run_records,
                               BufferPool* pool)
    : dim_(dim),
      run_records_(std::max<size_t>(2, run_records)),
      pool_(pool),
      codec_(dim + 1),
      staging_(dim + 1) {
  staging_.Reserve(run_records_);
}

Status ExternalSorter::Add(uint64_t key, uint64_t rid, int32_t sensitive,
                           std::span<const double> values) {
  KANON_CHECK_MSG(!finished_, "Add after Finish");
  KANON_DCHECK(values.size() == dim_);
  staging_.rids.push_back(rid);
  staging_.sensitive.push_back(sensitive);
  staging_.values.push_back(KeyToDouble(key));
  staging_.values.insert(staging_.values.end(), values.begin(),
                         values.end());
  ++record_count_;
  if (staging_.size() >= run_records_) {
    KANON_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  if (staging_.empty()) return Status::OK();
  // Sort the staging batch by key (indirect, then emit in order).
  std::vector<uint32_t> order(staging_.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t width = dim_ + 1;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return DoubleToKey(staging_.values[a * width]) <
           DoubleToKey(staging_.values[b * width]);
  });
  auto run = std::make_unique<PageChain>(pool_, &codec_);
  RecordBatch sorted(width);
  sorted.Reserve(staging_.size());
  for (uint32_t i : order) {
    sorted.Append(staging_.rids[i], staging_.sensitive[i], staging_.row(i));
  }
  KANON_RETURN_IF_ERROR(run->AppendBatch(sorted));
  runs_.push_back(std::move(run));
  staging_.Clear();
  return Status::OK();
}

Status ExternalSorter::Finish(
    const std::function<void(uint64_t, uint64_t, int32_t,
                             std::span<const double>)>& emit) {
  KANON_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;
  KANON_RETURN_IF_ERROR(SpillRun());

  // The merge fan-in is limited by the pool (one pinned page per cursor,
  // plus headroom for the output run). Merge in passes until one pass can
  // cover all remaining runs.
  const size_t max_fanin = std::max<size_t>(2, pool_->capacity() - 4);
  while (runs_.size() > max_fanin) {
    std::vector<std::unique_ptr<PageChain>> next;
    for (size_t begin = 0; begin < runs_.size(); begin += max_fanin) {
      const size_t end = std::min(begin + max_fanin, runs_.size());
      auto merged = std::make_unique<PageChain>(pool_, &codec_);
      RecordBatch chunk(dim_ + 1);
      KANON_RETURN_IF_ERROR(MergeRuns(
          begin, end,
          [&](uint64_t key, uint64_t rid, int32_t sens,
              std::span<const double> values) {
            chunk.rids.push_back(rid);
            chunk.sensitive.push_back(sens);
            chunk.values.push_back(KeyToDouble(key));
            chunk.values.insert(chunk.values.end(), values.begin(),
                                values.end());
          },
          &chunk, merged.get()));
      next.push_back(std::move(merged));
    }
    runs_ = std::move(next);
  }
  return MergeRuns(
      0, runs_.size(),
      [&](uint64_t key, uint64_t rid, int32_t sens,
          std::span<const double> values) { emit(key, rid, sens, values); },
      nullptr, nullptr);
}

Status ExternalSorter::MergeRuns(
    size_t begin, size_t end,
    const std::function<void(uint64_t, uint64_t, int32_t,
                             std::span<const double>)>& emit,
    RecordBatch* chunk, PageChain* sink) {
  struct HeapEntry {
    uint64_t key;
    size_t run;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key;  // min-heap
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  std::vector<std::unique_ptr<PageChainCursor>> cursors;
  cursors.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) {
    cursors.push_back(std::make_unique<PageChainCursor>(runs_[r].get()));
    if (cursors.back()->valid()) {
      heap.push({DoubleToKey(cursors.back()->values()[0]),
                 cursors.size() - 1});
    }
  }
  constexpr size_t kSinkChunkRecords = 4096;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    PageChainCursor& cursor = *cursors[top.run];
    const auto full = cursor.values();
    emit(top.key, cursor.rid(), cursor.sensitive(),
         full.subspan(1));  // strip the key slot for the caller
    KANON_RETURN_IF_ERROR(cursor.Next());
    if (cursor.valid()) {
      heap.push({DoubleToKey(cursor.values()[0]), top.run});
    }
    if (sink != nullptr && chunk->size() >= kSinkChunkRecords) {
      KANON_RETURN_IF_ERROR(sink->AppendBatch(*chunk));
      chunk->Clear();
    }
  }
  if (sink != nullptr && !chunk->empty()) {
    KANON_RETURN_IF_ERROR(sink->AppendBatch(*chunk));
    chunk->Clear();
  }
  // Release the merged inputs.
  for (size_t r = begin; r < end; ++r) {
    runs_[r]->Clear();
  }
  return Status::OK();
}

}  // namespace kanon
