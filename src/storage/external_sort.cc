#include "storage/external_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace kanon {

namespace {

/// The sort key travels in values[0] of a (dim+1)-wide record, as the
/// bit-pattern of the uint64 key. memcpy round-trips exactly; the value is
/// never used as a number.
double KeyToDouble(uint64_t key) {
  double d;
  std::memcpy(&d, &key, sizeof(d));
  return d;
}

uint64_t DoubleToKey(double d) {
  uint64_t key;
  std::memcpy(&key, &d, sizeof(key));
  return key;
}

/// Records staged into an intermediate-merge sink between AppendBatch
/// flushes.
constexpr size_t kSinkChunkRecords = 4096;

/// Sorts `batch` by (key, rid) — the one total order every stage of the
/// pipeline uses. The rid tie-break is what makes the merged stream
/// intrinsic to the records: no run boundary, merge-pass structure or
/// partition boundary can reorder equal keys, so serial and parallel
/// sorts emit bit-identical sequences.
RecordBatch SortByKeyRid(const RecordBatch& batch) {
  const size_t width = batch.dim;
  std::vector<uint32_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint64_t ka = DoubleToKey(batch.values[a * width]);
    const uint64_t kb = DoubleToKey(batch.values[b * width]);
    if (ka != kb) return ka < kb;
    return batch.rids[a] < batch.rids[b];
  });
  RecordBatch sorted(width);
  sorted.Reserve(batch.size());
  for (uint32_t i : order) {
    sorted.Append(batch.rids[i], batch.sensitive[i], batch.row(i));
  }
  return sorted;
}

}  // namespace

ExternalSorter::ExternalSorter(size_t dim, size_t run_records,
                               BufferPool* pool, ThreadPool* workers)
    : dim_(dim),
      run_records_(std::max<size_t>(2, run_records)),
      pool_(pool),
      workers_(workers != nullptr && workers->capacity() > 0 ? workers
                                                             : nullptr),
      codec_(dim + 1),
      staging_(dim + 1) {
  staging_.Reserve(run_records_);
}

size_t ExternalSorter::PageRecords() const {
  return (pool_->page_size() - RecordPageView::kHeaderSize) /
         codec_.record_size();
}

Status ExternalSorter::Add(uint64_t key, uint64_t rid, int32_t sensitive,
                           std::span<const double> values) {
  KANON_CHECK_MSG(!finished_, "Add after Finish");
  KANON_DCHECK(values.size() == dim_);
  staging_.rids.push_back(rid);
  staging_.sensitive.push_back(sensitive);
  staging_.values.push_back(KeyToDouble(key));
  staging_.values.insert(staging_.values.end(), values.begin(),
                         values.end());
  ++record_count_;
  if (staging_.size() >= run_records_) {
    if (workers_ != nullptr) {
      // Stage the full batch; a later FlushPending sorts one batch per
      // thread concurrently. Run boundaries (every run_records_ records
      // in arrival order) are exactly the serial sorter's.
      pending_.push_back(std::move(staging_));
      staging_ = RecordBatch(dim_ + 1);
      staging_.Reserve(run_records_);
      if (pending_.size() > workers_->capacity()) {
        KANON_RETURN_IF_ERROR(FlushPending());
      }
    } else {
      KANON_RETURN_IF_ERROR(SpillRun());
    }
  }
  return Status::OK();
}

Status ExternalSorter::SpillSorted(const RecordBatch& sorted,
                                   BufferPool* pool) {
  if (sorted.empty()) return Status::OK();
  auto run = std::make_unique<PageChain>(pool, &codec_);
  KANON_RETURN_IF_ERROR(run->AppendBatch(sorted));
  // Record the first key of every page: runs fill pages densely, so page
  // p starts at record p * PageRecords().
  std::vector<uint64_t> first_keys;
  const size_t width = dim_ + 1;
  for (size_t i = 0; i < sorted.size(); i += PageRecords()) {
    first_keys.push_back(DoubleToKey(sorted.values[i * width]));
  }
  runs_.push_back(std::move(run));
  run_first_keys_.push_back(std::move(first_keys));
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  if (staging_.empty()) return Status::OK();
  KANON_RETURN_IF_ERROR(SpillSorted(SortByKeyRid(staging_), pool_));
  staging_.Clear();
  return Status::OK();
}

Status ExternalSorter::FlushPending() {
  if (pending_.empty()) return Status::OK();
  // CPU-parallel sort, then serial spill through the caller's pool in
  // staging order (BufferPool is single-threaded; the sorts dominate).
  std::vector<RecordBatch> sorted(pending_.size());
  workers_->ParallelFor(pending_.size(), [&](size_t i) {
    sorted[i] = SortByKeyRid(pending_[i]);
  });
  for (const RecordBatch& batch : sorted) {
    KANON_RETURN_IF_ERROR(SpillSorted(batch, pool_));
  }
  pending_.clear();
  return Status::OK();
}

Status ExternalSorter::Finish(
    const std::function<void(uint64_t, uint64_t, int32_t,
                             std::span<const double>)>& emit) {
  KANON_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;
  KANON_RETURN_IF_ERROR(FlushPending());
  KANON_RETURN_IF_ERROR(SpillRun());

  // The merge fan-in is limited by the pool (one pinned page per cursor,
  // plus headroom for the output run). Merge in passes until one pass can
  // cover all remaining runs. The fan-in is derived from the caller's
  // pool alone so the pass structure is independent of the thread count.
  const size_t max_fanin = std::max<size_t>(2, pool_->capacity() - 4);
  while (runs_.size() > max_fanin) {
    KANON_RETURN_IF_ERROR(MergePass(max_fanin));
  }
  if (workers_ != nullptr && runs_.size() > 1) {
    return ParallelFinalMerge(emit);
  }
  return MergeRuns(0, runs_.size(), /*pool=*/nullptr, emit, nullptr, nullptr,
                   nullptr);
}

Status ExternalSorter::MergePass(size_t fanin) {
  const size_t num_groups = (runs_.size() + fanin - 1) / fanin;
  if (workers_ == nullptr || num_groups < 2) {
    // Serial pass: one group at a time through the caller's pool,
    // releasing each group's inputs as soon as it is merged.
    std::vector<std::unique_ptr<PageChain>> next;
    std::vector<std::vector<uint64_t>> next_first_keys;
    for (size_t begin = 0; begin < runs_.size(); begin += fanin) {
      const size_t end = std::min(begin + fanin, runs_.size());
      auto merged = std::make_unique<PageChain>(pool_, &codec_);
      RecordBatch chunk(dim_ + 1);
      std::vector<uint64_t> first_keys;
      KANON_RETURN_IF_ERROR(MergeRuns(begin, end, /*pool=*/nullptr,
                                      /*emit=*/nullptr, &chunk, merged.get(),
                                      &first_keys));
      for (size_t r = begin; r < end; ++r) runs_[r]->Clear();
      next.push_back(std::move(merged));
      next_first_keys.push_back(std::move(first_keys));
    }
    runs_ = std::move(next);
    run_first_keys_ = std::move(next_first_keys);
    return Status::OK();
  }

  // Parallel pass: one task per group, each through a private BufferPool
  // over the shared pager. Flush the caller's pool first so every input
  // page image is visible to the task pools.
  KANON_RETURN_IF_ERROR(pool_->FlushAll());
  struct GroupResult {
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<PageChain> chain;
    std::vector<uint64_t> first_keys;
    Status status;
  };
  std::vector<GroupResult> results(num_groups);
  workers_->ParallelFor(num_groups, [&](size_t g) {
    GroupResult& result = results[g];
    const size_t begin = g * fanin;
    const size_t end = std::min(begin + fanin, runs_.size());
    result.pool =
        std::make_unique<BufferPool>(pool_->pager(), (end - begin) + 4);
    result.chain = std::make_unique<PageChain>(result.pool.get(), &codec_);
    RecordBatch chunk(dim_ + 1);
    result.status = MergeRuns(begin, end, result.pool.get(), /*emit=*/nullptr,
                              &chunk, result.chain.get(), &result.first_keys);
    // Flush at handoff: the next pass (or final merge) reads this chain
    // through other pools.
    if (result.status.ok()) result.status = result.pool->FlushAll();
  });

  std::vector<std::unique_ptr<PageChain>> next;
  std::vector<std::vector<uint64_t>> next_first_keys;
  Status failed = Status::OK();
  for (GroupResult& result : results) {
    if (failed.ok() && !result.status.ok()) failed = result.status;
    next.push_back(std::move(result.chain));
    next_first_keys.push_back(std::move(result.first_keys));
    // The merged chains live on the task pools; keep those pools alive
    // until the chains are destroyed (merge_pools_ precedes runs_ in
    // declaration order, so destruction is safe even on error paths).
    merge_pools_.push_back(std::move(result.pool));
  }
  KANON_RETURN_IF_ERROR(failed);
  for (auto& run : runs_) run->Clear();
  runs_ = std::move(next);
  run_first_keys_ = std::move(next_first_keys);
  return Status::OK();
}

Status ExternalSorter::MergeRuns(size_t begin, size_t end, BufferPool* pool,
                                 const EmitFn& emit, RecordBatch* chunk,
                                 PageChain* sink,
                                 std::vector<uint64_t>* sink_first_keys) {
  struct HeapEntry {
    uint64_t key;
    uint64_t rid;
    size_t run;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.key != b.key) return a.key > b.key;  // min-heap on (key, rid)
    return a.rid > b.rid;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  std::vector<std::unique_ptr<PageChainCursor>> cursors;
  cursors.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) {
    // Without an override pool, read through the chain's own pool — the
    // one pool guaranteed to hold its current page images. An override
    // (private task pool) requires the writer pool to have been flushed.
    cursors.push_back(
        pool == nullptr
            ? std::make_unique<PageChainCursor>(runs_[r].get())
            : std::make_unique<PageChainCursor>(runs_[r].get(), pool,
                                                /*start_page=*/0));
    PageChainCursor& cursor = *cursors.back();
    // A cursor that failed to position (unreadable first page) is
    // indistinguishable from an exhausted run by valid() alone — the
    // retained status is what keeps the merge honest.
    if (!cursor.status().ok()) return cursor.status();
    if (cursor.valid()) {
      heap.push({DoubleToKey(cursor.values()[0]), cursor.rid(),
                 cursors.size() - 1});
    }
  }
  const size_t page_records = PageRecords();
  size_t sunk = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    PageChainCursor& cursor = *cursors[top.run];
    const auto full = cursor.values();
    if (sink != nullptr) {
      if (sink_first_keys != nullptr && sunk % page_records == 0) {
        sink_first_keys->push_back(top.key);
      }
      ++sunk;
      chunk->rids.push_back(cursor.rid());
      chunk->sensitive.push_back(cursor.sensitive());
      chunk->values.insert(chunk->values.end(), full.begin(), full.end());
    } else {
      emit(top.key, cursor.rid(), cursor.sensitive(),
           full.subspan(1));  // strip the key slot for the caller
    }
    KANON_RETURN_IF_ERROR(cursor.Next());
    if (cursor.valid()) {
      heap.push({DoubleToKey(cursor.values()[0]), cursor.rid(), top.run});
    }
    if (sink != nullptr && chunk->size() >= kSinkChunkRecords) {
      KANON_RETURN_IF_ERROR(sink->AppendBatch(*chunk));
      chunk->Clear();
    }
  }
  if (sink != nullptr && !chunk->empty()) {
    KANON_RETURN_IF_ERROR(sink->AppendBatch(*chunk));
    chunk->Clear();
  }
  return Status::OK();
}

Status ExternalSorter::ParallelFinalMerge(const EmitFn& emit) {
  KANON_RETURN_IF_ERROR(pool_->FlushAll());

  // Splitters are quantiles of the page-first-key sample recorded at
  // spill time: they land partition boundaries close to equal page
  // counts without re-reading any run. Boundaries are pure key values,
  // so records with equal keys always share a partition and the
  // concatenated partitions form the global (key, rid) order.
  std::vector<uint64_t> samples;
  for (const auto& first_keys : run_first_keys_) {
    samples.insert(samples.end(), first_keys.begin(), first_keys.end());
  }
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) {
    return MergeRuns(0, runs_.size(), /*pool=*/nullptr, emit, nullptr,
                     nullptr, nullptr);
  }
  const size_t target_parts = workers_->capacity() + 1;
  std::vector<uint64_t> splitters;
  for (size_t p = 1; p < target_parts; ++p) {
    const uint64_t s = samples[p * samples.size() / target_parts];
    if ((splitters.empty() || s > splitters.back()) && s > samples.front()) {
      splitters.push_back(s);
    }
  }
  // Partition p covers keys [lo_p, hi_p): lo_0 = 0, hi_last = +inf.
  const size_t num_parts = splitters.size() + 1;

  struct PartResult {
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<PageChain> chain;
    Status status;
  };
  std::vector<PartResult> parts(num_parts);
  workers_->ParallelFor(num_parts, [&](size_t p) {
    PartResult& part = parts[p];
    const uint64_t lo = p == 0 ? 0 : splitters[p - 1];
    const bool bounded = p + 1 < num_parts;
    const uint64_t hi = bounded ? splitters[p] : 0;
    part.pool =
        std::make_unique<BufferPool>(pool_->pager(), runs_.size() + 4);
    part.chain = std::make_unique<PageChain>(part.pool.get(), &codec_);

    struct HeapEntry {
      uint64_t key;
      uint64_t rid;
      size_t run;
    };
    const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.rid > b.rid;
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)>
        heap(cmp);
    std::vector<std::unique_ptr<PageChainCursor>> cursors;
    cursors.reserve(runs_.size());
    for (size_t r = 0; r < runs_.size(); ++r) {
      const auto& first_keys = run_first_keys_[r];
      if (first_keys.empty()) continue;
      // Seek: keys >= lo can start no earlier than one page before the
      // first page whose first key reaches lo.
      size_t start_page = 0;
      if (lo > 0) {
        const auto it =
            std::lower_bound(first_keys.begin(), first_keys.end(), lo);
        start_page = it - first_keys.begin();
        if (start_page > 0) --start_page;
      }
      auto cursor = std::make_unique<PageChainCursor>(
          runs_[r].get(), part.pool.get(), start_page);
      while (cursor->valid() && DoubleToKey(cursor->values()[0]) < lo) {
        part.status = cursor->Next();
        if (!part.status.ok()) return;
      }
      if (!cursor->status().ok()) {
        part.status = cursor->status();
        return;
      }
      if (cursor->valid()) {
        const uint64_t key = DoubleToKey(cursor->values()[0]);
        if (!bounded || key < hi) {
          heap.push({key, cursor->rid(), cursors.size()});
          cursors.push_back(std::move(cursor));
        }
      }
    }
    RecordBatch chunk(dim_ + 1);
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      PageChainCursor& cursor = *cursors[top.run];
      const auto full = cursor.values();
      chunk.rids.push_back(cursor.rid());
      chunk.sensitive.push_back(cursor.sensitive());
      chunk.values.insert(chunk.values.end(), full.begin(), full.end());
      part.status = cursor.Next();
      if (!part.status.ok()) return;
      if (cursor.valid()) {
        const uint64_t key = DoubleToKey(cursor.values()[0]);
        if (!bounded || key < hi) heap.push({key, cursor.rid(), top.run});
      }
      if (chunk.size() >= kSinkChunkRecords) {
        part.status = part.chain->AppendBatch(chunk);
        if (!part.status.ok()) return;
        chunk.Clear();
      }
    }
    if (!chunk.empty()) {
      part.status = part.chain->AppendBatch(chunk);
      if (!part.status.ok()) return;
    }
  });

  Status failed = Status::OK();
  for (PartResult& part : parts) {
    if (failed.ok() && !part.status.ok()) failed = part.status;
  }
  if (!failed.ok()) {
    for (PartResult& part : parts) {
      part.chain.reset();  // discards partition pages via its own pool
      merge_pools_.push_back(std::move(part.pool));
    }
    return failed;
  }

  // Concatenate the partitions in splitter order: each is read back
  // through its own (single-threaded again) pool.
  for (PartResult& part : parts) {
    PageChainCursor cursor(part.chain.get());
    if (!cursor.status().ok()) return cursor.status();
    while (cursor.valid()) {
      const auto full = cursor.values();
      emit(DoubleToKey(full[0]), cursor.rid(), cursor.sensitive(),
           full.subspan(1));
      KANON_RETURN_IF_ERROR(cursor.Next());
    }
    part.chain.reset();
    merge_pools_.push_back(std::move(part.pool));
  }
  for (auto& run : runs_) run->Clear();
  return Status::OK();
}

}  // namespace kanon
