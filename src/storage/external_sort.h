#ifndef KANON_STORAGE_EXTERNAL_SORT_H_
#define KANON_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/spill_file.h"

namespace kanon {

/// Bounded-memory external merge sort over records, used by the
/// space-filling-curve bulk loaders when the data exceeds memory (the
/// classical alternative to the buffer tree; both achieve
/// O(N/B log_{M/B} N/B) I/Os and this substrate makes the comparison
/// measurable through the same pager counters).
///
/// The caller streams records in with Add(); each record carries a 64-bit
/// sort key (e.g. a truncated Hilbert key). When the in-memory staging
/// batch reaches `run_records`, it is sorted and spilled as a run (a
/// PageChain). Finish() merges the runs and emits records in key order.
///
/// With a ThreadPool the pipeline parallelizes: run generation sorts
/// several staged batches concurrently, intermediate merge passes run
/// one group per task, and the final merge is partitioned by key range
/// so every partition merges concurrently and the caller concatenates
/// them in splitter order. The output is **deterministic and identical
/// to the serial sorter at any thread count**, because the emit order
/// is intrinsic to the records: ties on the sort key always break on
/// record id, so neither run boundaries, pass structure, nor partition
/// boundaries can influence the sequence. This assumes rids are unique
/// within one sort — every caller in the tree feeds dense dataset
/// RecordIds, which are.
///
/// Concurrency discipline: BufferPool stays single-threaded, so each
/// concurrent task works through a private BufferPool over the shared
/// (internally locked) Pager; pools are flushed at task handoff points
/// so no task ever reads a page image another pool still holds dirty.
class ExternalSorter {
 public:
  /// `run_records` is the memory budget expressed in records (the M of the
  /// I/O model). `workers` = nullptr (or an empty pool) sorts serially;
  /// the merge fan-in and run boundaries do not depend on it.
  ExternalSorter(size_t dim, size_t run_records, BufferPool* pool,
                 ThreadPool* workers = nullptr);

  /// An interrupted sort (destroyed before Finish) releases its spilled
  /// runs back to the pager — see ~PageChain.
  ~ExternalSorter() = default;

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  size_t record_count() const { return record_count_; }
  /// Runs spilled so far. With workers, staged batches awaiting their
  /// parallel sort are not yet counted here.
  size_t run_count() const { return runs_.size(); }

  /// Adds one record with its sort key. Keys sort as uint64; ties break
  /// on `rid`, which must be unique within one sort.
  Status Add(uint64_t key, uint64_t rid, int32_t sensitive,
             std::span<const double> values);

  /// Sorts and merges; calls `emit` once per record, in non-decreasing
  /// (key, rid) order. The sorter is consumed (runs are released). A
  /// failed spill-page read surfaces here as the cursor's Status (e.g.
  /// kCorruption from a checksum mismatch) instead of aborting.
  Status Finish(
      const std::function<void(uint64_t key, uint64_t rid, int32_t sensitive,
                               std::span<const double> values)>& emit);

 private:
  using EmitFn = std::function<void(uint64_t key, uint64_t rid,
                                    int32_t sensitive,
                                    std::span<const double> values)>;

  /// Sorts `batch` by (key, rid) and appends it as a new run (with its
  /// per-page first keys) through `pool`.
  Status SpillSorted(const RecordBatch& batch, BufferPool* pool);
  Status SpillRun();
  /// Sorts every batch staged in pending_ on the workers, then spills
  /// them in staging order (run boundaries identical to serial).
  Status FlushPending();

  /// Merges runs [begin, end) through `pool`, emitting records in
  /// (key, rid) order; when `sink` is set the stream is staged into
  /// `chunk` and flushed into `sink` periodically, recording sink page
  /// first keys into `sink_first_keys` (intermediate passes).
  Status MergeRuns(size_t begin, size_t end, BufferPool* pool,
                   const EmitFn& emit, RecordBatch* chunk, PageChain* sink,
                   std::vector<uint64_t>* sink_first_keys);

  /// One intermediate pass: merges groups of `fanin` runs (concurrently
  /// when workers are available) and replaces runs_ with the merged
  /// generation.
  Status MergePass(size_t fanin);

  /// Key-range-partitioned final merge across all runs on the workers.
  Status ParallelFinalMerge(const EmitFn& emit);

  /// Records per page of a run chain (fixed: runs fill pages densely).
  size_t PageRecords() const;

  size_t dim_;
  size_t run_records_;
  BufferPool* pool_;
  ThreadPool* workers_;
  RecordCodec codec_;  // dim_ + 1 doubles: the key rides in slot 0
  // Private per-task pools from parallel merges. Declared before runs_:
  // members destroy in reverse order, so chains sunk through these pools
  // die (and Discard their pages) while the pools still exist.
  std::vector<std::unique_ptr<BufferPool>> merge_pools_;
  std::vector<std::unique_ptr<PageChain>> runs_;
  // First key of every page of each run, recorded at spill time; the
  // parallel final merge derives its key-range splitters and cursor seek
  // positions from these instead of scanning the runs.
  std::vector<std::vector<uint64_t>> run_first_keys_;
  // In-memory staging batch; the key is stored as values[0] so a run page
  // is self-contained.
  RecordBatch staging_;
  // Full staged batches awaiting the parallel run sort (workers only).
  std::vector<RecordBatch> pending_;
  size_t record_count_ = 0;
  bool finished_ = false;
};

}  // namespace kanon

#endif  // KANON_STORAGE_EXTERNAL_SORT_H_
