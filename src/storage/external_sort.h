#ifndef KANON_STORAGE_EXTERNAL_SORT_H_
#define KANON_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/spill_file.h"

namespace kanon {

/// Bounded-memory external merge sort over records, used by the
/// space-filling-curve bulk loaders when the data exceeds memory (the
/// classical alternative to the buffer tree; both achieve
/// O(N/B log_{M/B} N/B) I/Os and this substrate makes the comparison
/// measurable through the same pager counters).
///
/// The caller streams records in with Add(); each record carries a 64-bit
/// sort key (e.g. a truncated Hilbert key). When the in-memory staging
/// batch reaches `run_records`, it is sorted and spilled as a run (a
/// PageChain). Finish() merges the runs (k-way, all runs at once — one pin
/// per run) and emits records in key order.
class ExternalSorter {
 public:
  /// `run_records` is the memory budget expressed in records (the M of the
  /// I/O model).
  ExternalSorter(size_t dim, size_t run_records, BufferPool* pool);

  /// An interrupted sort (destroyed before Finish) releases its spilled
  /// runs back to the pager — see ~PageChain.
  ~ExternalSorter() = default;

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  size_t record_count() const { return record_count_; }
  size_t run_count() const { return runs_.size(); }

  /// Adds one record with its sort key.
  Status Add(uint64_t key, uint64_t rid, int32_t sensitive,
             std::span<const double> values);

  /// Sorts and merges; calls `emit` once per record, in non-decreasing key
  /// order. The sorter is consumed (runs are released).
  Status Finish(
      const std::function<void(uint64_t key, uint64_t rid, int32_t sensitive,
                               std::span<const double> values)>& emit);

 private:
  Status SpillRun();
  /// Merges runs [begin, end) emitting records in key order; when `sink` is
  /// set, the caller's emit stages into `chunk` and this function flushes
  /// it into `sink` periodically (intermediate multi-pass merging).
  Status MergeRuns(
      size_t begin, size_t end,
      const std::function<void(uint64_t key, uint64_t rid, int32_t sensitive,
                               std::span<const double> values)>& emit,
      RecordBatch* chunk, PageChain* sink);

  size_t dim_;
  size_t run_records_;
  BufferPool* pool_;
  RecordCodec codec_;  // dim_ + 1 doubles: the key rides in slot 0
  std::vector<std::unique_ptr<PageChain>> runs_;
  // In-memory staging batch; the key is stored as values[0] so a run page
  // is self-contained.
  RecordBatch staging_;
  size_t record_count_ = 0;
  bool finished_ = false;
};

}  // namespace kanon

#endif  // KANON_STORAGE_EXTERNAL_SORT_H_
