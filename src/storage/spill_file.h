#ifndef KANON_STORAGE_SPILL_FILE_H_
#define KANON_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace kanon {

/// One buffered record as it travels through paged storage.
struct SpilledRecord {
  uint64_t rid = 0;
  int32_t sensitive = 0;
  std::vector<double> values;
};

/// A flat, allocation-friendly batch of records (structure-of-arrays).
/// The buffer tree moves records between levels in these batches; the flat
/// `values` array is directly consumable by ChoosePointSplit.
struct RecordBatch {
  size_t dim = 0;
  std::vector<uint64_t> rids;
  std::vector<int32_t> sensitive;
  std::vector<double> values;  // row-major, rids.size() * dim

  explicit RecordBatch(size_t d = 0) : dim(d) {}

  size_t size() const { return rids.size(); }
  bool empty() const { return rids.empty(); }

  std::span<const double> row(size_t i) const {
    return {values.data() + i * dim, dim};
  }

  void Append(uint64_t rid, int32_t sens, std::span<const double> vals) {
    rids.push_back(rid);
    sensitive.push_back(sens);
    values.insert(values.end(), vals.begin(), vals.end());
  }

  void Reserve(size_t n) {
    rids.reserve(n);
    sensitive.reserve(n);
    values.reserve(n * dim);
  }

  void Clear() {
    rids.clear();
    sensitive.clear();
    values.clear();
  }
};

/// An unbounded append-only run of records stored as a chain of record pages
/// in a BufferPool. This is the "external buffer" attached to buffer-tree
/// internal nodes, and doubles as a paged dataset spill for
/// larger-than-memory loads.
///
/// Only the tail page is pinned during appends; a full scan touches every
/// page in the chain exactly once (streaming, one pin at a time).
class PageChain {
 public:
  PageChain(BufferPool* pool, const RecordCodec* codec)
      : pool_(pool), codec_(codec) {}

  /// Releases every page on destruction: an abandoned chain (say, an
  /// external sort interrupted before Finish) returns its spill pages to
  /// the pager instead of leaking them for the life of the backing file.
  ~PageChain() { Clear(); }

  PageChain(PageChain&& other) noexcept
      : pool_(other.pool_),
        codec_(other.codec_),
        pages_(std::move(other.pages_)),
        record_count_(other.record_count_) {
    other.pages_.clear();
    other.record_count_ = 0;
  }
  PageChain& operator=(PageChain&& other) noexcept {
    if (this != &other) {
      Clear();
      pool_ = other.pool_;
      codec_ = other.codec_;
      pages_ = std::move(other.pages_);
      record_count_ = other.record_count_;
      other.pages_.clear();
      other.record_count_ = 0;
    }
    return *this;
  }
  PageChain(const PageChain&) = delete;
  PageChain& operator=(const PageChain&) = delete;

  size_t record_count() const { return record_count_; }
  size_t page_count() const { return pages_.size(); }
  bool empty() const { return record_count_ == 0; }

  /// Appends one record, growing the chain by a page when the tail fills.
  Status Append(uint64_t rid, int32_t sensitive,
                std::span<const double> values);

  /// Appends a whole batch, pinning each tail page once instead of once per
  /// record — the bulk-load fast path.
  Status AppendBatch(const RecordBatch& batch);

  /// Invokes `fn` for every record in append order.
  Status Scan(const std::function<void(uint64_t rid, int32_t sensitive,
                                       std::span<const double> values)>& fn)
      const;

  /// Moves every record into `out` and clears this chain, releasing pages.
  Status Drain(std::vector<SpilledRecord>* out);

  /// Flat-batch drain (no per-record allocation); `out` must have the
  /// codec's dimensionality and is appended to.
  Status DrainTo(RecordBatch* out);

  /// Releases every page back to the pager.
  void Clear();

 private:
  friend class PageChainCursor;

  BufferPool* pool_;
  const RecordCodec* codec_;
  std::vector<PageId> pages_;
  size_t record_count_ = 0;
};

/// Streaming cursor over a PageChain, pinning one page at a time. Used by
/// the external-sort merge, which advances one cursor per run.
///
/// Errors do not vanish: a failed page read (I/O error, checksum
/// mismatch) makes the cursor invalid AND is retained in status(), so a
/// merge loop that only tests valid() can still distinguish "run
/// exhausted" from "run unreadable" after the fact. The constructor's
/// initial positioning participates — before this, a cursor whose very
/// first page was corrupt looked exactly like an empty run.
class PageChainCursor {
 public:
  explicit PageChainCursor(const PageChain* chain);

  /// Cursor that pins pages through `pool` instead of the chain's own
  /// BufferPool, starting at page `start_page` of the chain. This is how
  /// the parallel merge gives each concurrent task a private (BufferPool
  /// is single-threaded) view of a shared run: the pools share the
  /// thread-safe Pager underneath. The chain's pages must be flushed to
  /// the pager (BufferPool::FlushAll) before the first Fetch through a
  /// foreign pool, or it would read stale page images.
  PageChainCursor(const PageChain* chain, BufferPool* pool,
                  size_t start_page);

  bool valid() const { return valid_; }
  /// OK while the cursor has only ever seen readable pages; the first
  /// page-read failure is sticky.
  const Status& status() const { return status_; }
  uint64_t rid() const { return rid_; }
  int32_t sensitive() const { return sensitive_; }
  std::span<const double> values() const {
    return {values_.data(), values_.size()};
  }

  /// Advances past the current record. The constructor positions the
  /// cursor on the first record, so iterate with
  /// `for (; cursor.valid(); cursor.Next())`.
  Status Next();

 private:
  Status LoadCurrent();

  const PageChain* chain_;
  BufferPool* pool_;  // the chain's own pool unless overridden
  size_t page_index_ = 0;
  uint32_t slot_ = 0;
  PageHandle handle_;
  bool valid_ = false;
  Status status_;
  uint64_t rid_ = 0;
  int32_t sensitive_ = 0;
  std::vector<double> values_;
};

}  // namespace kanon

#endif  // KANON_STORAGE_SPILL_FILE_H_
