#include "storage/page.h"

// Page views are header-only; this file anchors the storage target.
namespace kanon {}
