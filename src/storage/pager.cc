#include "storage/pager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace kanon {

PageId Pager::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  KANON_CHECK(num_pages_ < kInvalidPageId);
  return static_cast<PageId>(num_pages_++);
}

void Pager::Free(PageId id) {
  KANON_DCHECK(id < num_pages_);
  // Contents are undefined after a Free; a future reader of the recycled
  // page must not be compared against the stale checksum.
  if (id < checksummed_.size()) checksummed_[id] = 0;
  free_list_.push_back(id);
}

Status Pager::Read(PageId id, char* buf) {
  ++stats_.reads;
  KANON_RETURN_IF_ERROR(DoRead(id, buf));
  if (verify_checksums_ && id < checksummed_.size() && checksummed_[id] &&
      Crc32(buf, page_size_) != checksums_[id]) {
    return Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
  }
  return Status::OK();
}

Status Pager::Write(PageId id, const char* buf) {
  ++stats_.writes;
  if (id >= checksummed_.size()) {
    checksummed_.resize(id + 1, 0);
    checksums_.resize(id + 1, 0);
  }
  checksums_[id] = Crc32(buf, page_size_);
  checksummed_[id] = 1;
  return DoWrite(id, buf);
}

FilePager::~FilePager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<FilePager>> FilePager::Create(
    size_t page_size, const std::string& dir) {
  std::string templ =
      (dir.empty() ? std::string("/tmp") : dir) + "/kanon_pager_XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const int fd = mkstemp(buf.data());
  if (fd < 0) return Status::IoError("mkstemp failed for " + templ);
  // Unlink immediately: the file lives only as long as the descriptor.
  std::remove(buf.data());
  std::FILE* file = fdopen(fd, "w+b");
  if (file == nullptr) return Status::IoError("fdopen failed");
  return std::unique_ptr<FilePager>(new FilePager(page_size, file));
}

Status FilePager::DoRead(PageId id, char* buf) {
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("fseek failed");
  }
  const size_t n = std::fread(buf, 1, page_size_, file_);
  if (n != page_size_) {
    // Reading a page that was allocated but never written: return zeros.
    std::memset(buf + n, 0, page_size_ - n);
  }
  return Status::OK();
}

Status FilePager::DoWrite(PageId id, const char* buf) {
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("fseek failed");
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IoError("fwrite failed");
  }
  return Status::OK();
}

NamedFilePager::~NamedFilePager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<NamedFilePager>> NamedFilePager::Open(
    const std::string& path, size_t page_size, bool truncate) {
  std::FILE* file = nullptr;
  if (truncate) {
    file = std::fopen(path.c_str(), "w+b");
  } else {
    file = std::fopen(path.c_str(), "r+b");
    if (file == nullptr) file = std::fopen(path.c_str(), "w+b");
  }
  if (file == nullptr) return Status::IoError("cannot open " + path);
  // Unbuffered: a page write is one syscall, and Sync() flushes exactly
  // what has been written (no stale stdio buffer to race against).
  std::setvbuf(file, nullptr, _IONBF, 0);
  std::unique_ptr<NamedFilePager> pager(
      new NamedFilePager(page_size, file, path));
  if (!truncate) {
    struct stat st;
    if (fstat(fileno(file), &st) != 0) {
      return Status::IoError("fstat failed for " + path);
    }
    pager->num_pages_ =
        (static_cast<size_t>(st.st_size) + page_size - 1) / page_size;
  }
  return pager;
}

Status NamedFilePager::Sync() {
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IoError("fsync failed for " + path_);
  }
  return Status::OK();
}

Status NamedFilePager::DoRead(PageId id, char* buf) {
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("fseek failed");
  }
  const size_t n = std::fread(buf, 1, page_size_, file_);
  if (n != page_size_) {
    // Reading a page that was allocated but never written: return zeros.
    std::memset(buf + n, 0, page_size_ - n);
  }
  return Status::OK();
}

Status NamedFilePager::DoWrite(PageId id, const char* buf) {
  if (std::fseek(file_, static_cast<long>(id) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("fseek failed");
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IoError("fwrite failed");
  }
  return Status::OK();
}

Status MemPager::DoRead(PageId id, char* buf) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    std::memset(buf, 0, page_size_);
    return Status::OK();
  }
  std::memcpy(buf, pages_[id].get(), page_size_);
  return Status::OK();
}

Status MemPager::DoWrite(PageId id, const char* buf) {
  if (id >= pages_.size()) pages_.resize(id + 1);
  if (pages_[id] == nullptr) pages_[id] = std::make_unique<char[]>(page_size_);
  std::memcpy(pages_[id].get(), buf, page_size_);
  return Status::OK();
}

}  // namespace kanon
