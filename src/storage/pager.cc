#include "storage/pager.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace kanon {

PageId Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  KANON_CHECK(num_pages_ < kInvalidPageId);
  return static_cast<PageId>(num_pages_++);
}

void Pager::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  KANON_DCHECK(id < num_pages_);
  // Contents are undefined after a Free; a future reader of the recycled
  // page must not be compared against the stale checksum.
  if (id < checksummed_.size()) checksummed_[id] = 0;
  free_list_.push_back(id);
}

Status Pager::Read(PageId id, char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.reads;
  KANON_RETURN_IF_ERROR(DoRead(id, buf));
  if (verify_checksums_ && id < checksummed_.size() && checksummed_[id] &&
      Crc32(buf, page_size_) != checksums_[id]) {
    return Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
  }
  return Status::OK();
}

Status Pager::Write(PageId id, const char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.writes;
  if (id >= checksummed_.size()) {
    checksummed_.resize(id + 1, 0);
    checksums_.resize(id + 1, 0);
  }
  checksums_[id] = Crc32(buf, page_size_);
  checksummed_[id] = 1;
  return DoWrite(id, buf);
}

StatusOr<std::unique_ptr<FilePager>> FilePager::Create(size_t page_size,
                                                       const std::string& dir,
                                                       Env* env) {
  if (env == nullptr) env = Env::Default();
  KANON_ASSIGN_OR_RETURN(auto file, env->NewTempRWFile(dir));
  return std::unique_ptr<FilePager>(new FilePager(page_size, std::move(file)));
}

Status FilePager::DoRead(PageId id, char* buf) {
  size_t n = 0;
  KANON_RETURN_IF_ERROR(file_->ReadAt(
      static_cast<uint64_t>(id) * page_size_, buf, page_size_, &n));
  // Reading a page that was allocated but never written: return zeros.
  if (n != page_size_) std::memset(buf + n, 0, page_size_ - n);
  return Status::OK();
}

Status FilePager::DoWrite(PageId id, const char* buf) {
  return file_->WriteAt(static_cast<uint64_t>(id) * page_size_, buf,
                        page_size_);
}

StatusOr<std::unique_ptr<NamedFilePager>> NamedFilePager::Open(
    const std::string& path, size_t page_size, bool truncate, Env* env) {
  if (env == nullptr) env = Env::Default();
  KANON_ASSIGN_OR_RETURN(auto file, env->NewRandomRWFile(path, truncate));
  std::unique_ptr<NamedFilePager> pager(
      new NamedFilePager(page_size, std::move(file), path));
  if (!truncate) {
    KANON_ASSIGN_OR_RETURN(const uint64_t size, env->FileSize(path));
    pager->num_pages_ =
        (static_cast<size_t>(size) + page_size - 1) / page_size;
  }
  return pager;
}

Status NamedFilePager::Sync() { return file_->Sync(); }

Status NamedFilePager::DoRead(PageId id, char* buf) {
  size_t n = 0;
  KANON_RETURN_IF_ERROR(file_->ReadAt(
      static_cast<uint64_t>(id) * page_size_, buf, page_size_, &n));
  // Reading a page that was allocated but never written: return zeros.
  if (n != page_size_) std::memset(buf + n, 0, page_size_ - n);
  return Status::OK();
}

Status NamedFilePager::DoWrite(PageId id, const char* buf) {
  return file_->WriteAt(static_cast<uint64_t>(id) * page_size_, buf,
                        page_size_);
}

Status MemPager::DoRead(PageId id, char* buf) {
  if (id >= pages_.size() || pages_[id] == nullptr) {
    std::memset(buf, 0, page_size_);
    return Status::OK();
  }
  std::memcpy(buf, pages_[id].get(), page_size_);
  return Status::OK();
}

Status MemPager::DoWrite(PageId id, const char* buf) {
  if (id >= pages_.size()) pages_.resize(id + 1);
  if (pages_[id] == nullptr) pages_[id] = std::make_unique<char[]>(page_size_);
  std::memcpy(pages_[id].get(), buf, page_size_);
  return Status::OK();
}

}  // namespace kanon
