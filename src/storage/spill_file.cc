#include "storage/spill_file.h"

#include <utility>

namespace kanon {

Status PageChain::Append(uint64_t rid, int32_t sensitive,
                         std::span<const double> values) {
  if (pages_.empty()) {
    KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    RecordPageView view(h.data(), pool_->page_size(), codec_);
    view.Init();
    h.MarkDirty();
    pages_.push_back(h.id());
  }
  {
    KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pages_.back()));
    RecordPageView view(h.data(), pool_->page_size(), codec_);
    if (!view.full()) {
      view.Append(rid, sensitive, values);
      h.MarkDirty();
      ++record_count_;
      return Status::OK();
    }
  }
  // Tail is full: link a fresh page.
  KANON_ASSIGN_OR_RETURN(PageHandle fresh, pool_->New());
  RecordPageView fresh_view(fresh.data(), pool_->page_size(), codec_);
  fresh_view.Init();
  fresh_view.Append(rid, sensitive, values);
  fresh.MarkDirty();
  {
    KANON_ASSIGN_OR_RETURN(PageHandle tail, pool_->Fetch(pages_.back()));
    RecordPageView tail_view(tail.data(), pool_->page_size(), codec_);
    tail_view.set_next(fresh.id());
    tail.MarkDirty();
  }
  pages_.push_back(fresh.id());
  ++record_count_;
  return Status::OK();
}

Status PageChain::AppendBatch(const RecordBatch& batch) {
  KANON_DCHECK(batch.dim == codec_->dim());
  size_t i = 0;
  const size_t n = batch.size();
  while (i < n) {
    if (pages_.empty()) {
      KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
      RecordPageView view(h.data(), pool_->page_size(), codec_);
      view.Init();
      h.MarkDirty();
      pages_.push_back(h.id());
    }
    bool tail_full = false;
    {
      KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pages_.back()));
      RecordPageView view(h.data(), pool_->page_size(), codec_);
      while (i < n && !view.full()) {
        view.Append(batch.rids[i], batch.sensitive[i], batch.row(i));
        ++i;
        ++record_count_;
      }
      h.MarkDirty();
      tail_full = view.full();
    }
    if (i < n && tail_full) {
      KANON_ASSIGN_OR_RETURN(PageHandle fresh, pool_->New());
      RecordPageView fresh_view(fresh.data(), pool_->page_size(), codec_);
      fresh_view.Init();
      fresh.MarkDirty();
      {
        KANON_ASSIGN_OR_RETURN(PageHandle tail, pool_->Fetch(pages_.back()));
        RecordPageView tail_view(tail.data(), pool_->page_size(), codec_);
        tail_view.set_next(fresh.id());
        tail.MarkDirty();
      }
      pages_.push_back(fresh.id());
    }
  }
  return Status::OK();
}

Status PageChain::Scan(
    const std::function<void(uint64_t, int32_t, std::span<const double>)>& fn)
    const {
  std::vector<double> values(codec_->dim());
  for (PageId pid : pages_) {
    KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pid));
    RecordPageView view(h.data(), pool_->page_size(), codec_);
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t rid;
      int32_t sensitive;
      view.Read(i, &rid, &sensitive, values.data());
      fn(rid, sensitive, std::span<const double>(values.data(), values.size()));
    }
  }
  return Status::OK();
}

Status PageChain::Drain(std::vector<SpilledRecord>* out) {
  out->reserve(out->size() + record_count_);
  KANON_RETURN_IF_ERROR(
      Scan([out](uint64_t rid, int32_t sensitive,
                 std::span<const double> values) {
        SpilledRecord r;
        r.rid = rid;
        r.sensitive = sensitive;
        r.values.assign(values.begin(), values.end());
        out->push_back(std::move(r));
      }));
  Clear();
  return Status::OK();
}

Status PageChain::DrainTo(RecordBatch* out) {
  KANON_DCHECK(out->dim == codec_->dim());
  out->Reserve(out->size() + record_count_);
  std::vector<double> row(codec_->dim());
  for (PageId pid : pages_) {
    KANON_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(pid));
    RecordPageView view(h.data(), pool_->page_size(), codec_);
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t rid;
      int32_t sensitive;
      view.Read(i, &rid, &sensitive, row.data());
      out->Append(rid, sensitive,
                  std::span<const double>(row.data(), row.size()));
    }
  }
  Clear();
  return Status::OK();
}

void PageChain::Clear() {
  for (PageId pid : pages_) pool_->Discard(pid);
  pages_.clear();
  record_count_ = 0;
}

PageChainCursor::PageChainCursor(const PageChain* chain)
    : chain_(chain), pool_(chain->pool_), values_(chain->codec_->dim()) {
  // Position on the first record (if any). A load failure leaves the
  // cursor invalid with the error retained in status().
  status_ = LoadCurrent();
}

PageChainCursor::PageChainCursor(const PageChain* chain, BufferPool* pool,
                                 size_t start_page)
    : chain_(chain),
      pool_(pool),
      page_index_(start_page),
      values_(chain->codec_->dim()) {
  status_ = LoadCurrent();
}

Status PageChainCursor::LoadCurrent() {
  valid_ = false;
  while (page_index_ < chain_->pages_.size()) {
    if (!handle_.valid()) {
      auto fetched = pool_->Fetch(chain_->pages_[page_index_]);
      if (!fetched.ok()) {
        status_ = fetched.status();
        return fetched.status();
      }
      handle_ = std::move(*fetched);
    }
    RecordPageView view(handle_.data(), pool_->page_size(), chain_->codec_);
    if (slot_ < view.count()) {
      view.Read(slot_, &rid_, &sensitive_, values_.data());
      valid_ = true;
      return Status::OK();
    }
    handle_.Release();
    ++page_index_;
    slot_ = 0;
  }
  return Status::OK();
}

Status PageChainCursor::Next() {
  KANON_DCHECK(valid_);
  ++slot_;
  return LoadCurrent();
}

}  // namespace kanon
