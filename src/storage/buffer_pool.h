#ifndef KANON_STORAGE_BUFFER_POOL_H_
#define KANON_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace kanon {

class BufferPool;

/// Counters exposed by the buffer pool. `pager` I/O counts live on the
/// underlying Pager; these add cache behaviour.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  /// Fraction of fetches served from memory, in [0, 1] (0 when the pool
  /// was never touched). The cache-behaviour companion to the explicit
  /// I/O counts of Fig 8(b).
  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// RAII pin on a buffered page. While a handle is alive the frame cannot be
/// evicted. Mutating the contents requires MarkDirty() so the pool writes
/// the page back before reuse.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() const { return data_; }

  void MarkDirty();

  /// Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, size_t frame, char* data)
      : pool_(pool), id_(id), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  size_t frame_ = 0;
  char* data_ = nullptr;
};

/// A fixed-capacity LRU buffer pool over a Pager. This is the memory budget
/// of the anonymization process: the paper's Figure 8(b) varies exactly this
/// capacity and reports the resulting explicit I/O count.
class BufferPool {
 public:
  /// `capacity_frames` pages of pager->page_size() bytes are held in memory.
  BufferPool(Pager* pager, size_t capacity_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return frames_.size(); }
  size_t page_size() const { return pager_->page_size(); }
  const BufferPoolStats& stats() const { return stats_; }
  Pager* pager() const { return pager_; }

  /// Pins page `id`, reading it from the pager on a miss. With
  /// `initialize` = true the page is assumed fresh: no read I/O is issued
  /// and the frame is zeroed (used right after Pager::Allocate()).
  StatusOr<PageHandle> Fetch(PageId id, bool initialize = false);

  /// Allocates a new page on the pager and pins it zero-filled.
  StatusOr<PageHandle> New();

  /// Writes back every dirty frame.
  Status FlushAll();

  /// Drops `id` from the pool (no write-back) and frees it on the pager.
  void Discard(PageId id);

 private:
  friend class PageHandle;

  struct Frame {
    PageId page = kInvalidPageId;
    std::unique_ptr<char[]> data;
    int pins = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid only when unpinned
    bool in_lru = false;
  };

  void Unpin(size_t frame_index);
  void MarkDirty(size_t frame_index);
  StatusOr<size_t> GrabFrame();  // evicts an unpinned LRU victim if needed

  Pager* pager_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<PageId, size_t> page_to_frame_;
  BufferPoolStats stats_;
};

}  // namespace kanon

#endif  // KANON_STORAGE_BUFFER_POOL_H_
