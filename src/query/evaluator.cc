#include "query/evaluator.h"

#include <algorithm>
#include <cmath>

namespace kanon {

size_t CountOriginal(const Dataset& dataset, const RangeQuery& query) {
  size_t count = 0;
  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    if (query.MatchesPoint(dataset.row(r))) ++count;
  }
  return count;
}

double CountAnonymized(const PartitionSet& ps, const RangeQuery& query,
                       EstimationMode mode) {
  double count = 0.0;
  for (const Partition& p : ps.partitions) {
    if (!query.MatchesBox(p.box)) continue;
    switch (mode) {
      case EstimationMode::kAllMatching:
        count += static_cast<double>(p.size());
        break;
      case EstimationMode::kUniform:
        count += static_cast<double>(p.size()) *
                 p.box.IntersectionFraction(query.box);
        break;
    }
  }
  return count;
}

QueryOutcome EvaluateQuery(const Dataset& dataset, const PartitionSet& ps,
                           const RangeQuery& query, EstimationMode mode) {
  QueryOutcome out;
  out.original = CountOriginal(dataset, query);
  out.anonymized = CountAnonymized(ps, query, mode);
  if (out.original > 0) {
    out.error = (out.anonymized - static_cast<double>(out.original)) /
                static_cast<double>(out.original);
    out.valid = true;
  } else {
    out.error = std::nan("");
  }
  return out;
}

WorkloadStats EvaluateWorkload(const Dataset& dataset, const PartitionSet& ps,
                               std::span<const RangeQuery> queries,
                               EstimationMode mode) {
  WorkloadStats stats;
  double sum = 0.0;
  for (const RangeQuery& q : queries) {
    const QueryOutcome outcome = EvaluateQuery(dataset, ps, q, mode);
    if (!outcome.valid) {
      ++stats.skipped_empty;
      continue;
    }
    sum += std::abs(outcome.error);
    ++stats.evaluated;
  }
  stats.average_error =
      stats.evaluated > 0 ? sum / static_cast<double>(stats.evaluated) : 0.0;
  return stats;
}

std::vector<SelectivityBin> EvaluateBySelectivity(
    const Dataset& dataset, const PartitionSet& ps,
    std::span<const RangeQuery> queries, size_t num_bins,
    EstimationMode mode) {
  // Logarithmic bins over selectivity: (0, 10^-(b-1)], ..., (0.1, 1].
  std::vector<SelectivityBin> bins(num_bins);
  for (size_t b = 0; b < num_bins; ++b) {
    bins[b].selectivity_hi =
        std::pow(10.0, -static_cast<double>(num_bins - 1 - b));
    bins[b].selectivity_lo =
        b == 0 ? 0.0
               : std::pow(10.0, -static_cast<double>(num_bins - b));
  }
  std::vector<double> sums(num_bins, 0.0);
  const double n = static_cast<double>(dataset.num_records());
  for (const RangeQuery& q : queries) {
    const QueryOutcome outcome = EvaluateQuery(dataset, ps, q, mode);
    if (!outcome.valid) continue;
    const double sel = static_cast<double>(outcome.original) / n;
    for (size_t b = 0; b < num_bins; ++b) {
      if (sel > bins[b].selectivity_lo && sel <= bins[b].selectivity_hi) {
        sums[b] += std::abs(outcome.error);
        ++bins[b].count;
        break;
      }
    }
  }
  for (size_t b = 0; b < num_bins; ++b) {
    if (bins[b].count > 0) {
      bins[b].average_error = sums[b] / static_cast<double>(bins[b].count);
    }
  }
  return bins;
}

}  // namespace kanon
