#ifndef KANON_QUERY_QUERY_H_
#define KANON_QUERY_QUERY_H_

#include <string>

#include "data/dataset.h"
#include "index/mbr.h"

namespace kanon {

/// A conjunctive range (COUNT) query: one closed interval per
/// quasi-identifier attribute — the paper's
///   SELECT COUNT(*) FROM T WHERE a1 <= A1 <= b1 AND ... (Section 5.4).
struct RangeQuery {
  Mbr box;

  size_t dim() const { return box.dim(); }

  /// Original-data semantics: the record's point lies inside the query box.
  bool MatchesPoint(std::span<const double> point) const {
    return box.ContainsPoint(point);
  }

  /// Anonymized-data semantics: a generalized record matches if its box has
  /// a non-null intersection with the query region on every attribute.
  bool MatchesBox(const Mbr& generalized) const {
    return box.Intersects(generalized);
  }

  std::string ToString() const { return box.ToString(); }
};

}  // namespace kanon

#endif  // KANON_QUERY_QUERY_H_
