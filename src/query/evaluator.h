#ifndef KANON_QUERY_EVALUATOR_H_
#define KANON_QUERY_EVALUATOR_H_

#include <span>
#include <vector>

#include "anon/partition.h"
#include "data/dataset.h"
#include "query/query.h"

namespace kanon {

/// How a COUNT over anonymized data is computed (Section 2.3 of the paper).
enum class EstimationMode {
  /// Every record of every intersecting partition counts (the paper's main
  /// experimental semantics: "a COUNT query on a partition returns the
  /// cardinality of that partition if the query region intersects it").
  kAllMatching,
  /// Uniform-distribution estimate: each intersecting partition contributes
  /// |P| times the fraction of its box covered by the query.
  kUniform,
};

/// Exact COUNT on the original data.
size_t CountOriginal(const Dataset& dataset, const RangeQuery& query);

/// COUNT on the anonymized data under the chosen semantics.
double CountAnonymized(const PartitionSet& ps, const RangeQuery& query,
                       EstimationMode mode = EstimationMode::kAllMatching);

/// Per-query evaluation record.
struct QueryOutcome {
  size_t original = 0;
  double anonymized = 0.0;
  /// Error(Q) = (count(anonymized) - count(original)) / count(original);
  /// NaN when the original count is zero (such queries are skipped in
  /// aggregates, as in the paper).
  double error = 0.0;
  bool valid = false;
};

QueryOutcome EvaluateQuery(const Dataset& dataset, const PartitionSet& ps,
                           const RangeQuery& query,
                           EstimationMode mode = EstimationMode::kAllMatching);

/// Aggregate over a workload: average normalized error over queries with a
/// non-zero original count.
struct WorkloadStats {
  double average_error = 0.0;
  size_t evaluated = 0;
  size_t skipped_empty = 0;
};

WorkloadStats EvaluateWorkload(const Dataset& dataset, const PartitionSet& ps,
                               std::span<const RangeQuery> queries,
                               EstimationMode mode =
                                   EstimationMode::kAllMatching);

/// Error broken down by result selectivity (Fig 12b/d): queries are bucketed
/// by original-count fraction of the table into `num_bins` logarithmic bins.
struct SelectivityBin {
  double selectivity_lo = 0.0;  // inclusive fraction bound
  double selectivity_hi = 0.0;
  double average_error = 0.0;
  size_t count = 0;
};

std::vector<SelectivityBin> EvaluateBySelectivity(
    const Dataset& dataset, const PartitionSet& ps,
    std::span<const RangeQuery> queries, size_t num_bins = 5,
    EstimationMode mode = EstimationMode::kAllMatching);

}  // namespace kanon

#endif  // KANON_QUERY_EVALUATOR_H_
