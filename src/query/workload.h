#ifndef KANON_QUERY_WORKLOAD_H_
#define KANON_QUERY_WORKLOAD_H_

#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "query/query.h"

namespace kanon {

/// The paper's random range workload (Section 5.4): for each query, two
/// records r1, r2 are drawn at random and every attribute's bounds are
/// [min(r1.Ai, r2.Ai), max(r1.Ai, r2.Ai)] — an all-attribute hyper-rectangle
/// anchored at real data.
std::vector<RangeQuery> MakeRecordPairWorkload(const Dataset& dataset,
                                               size_t count, Rng* rng);

/// The paper's single-attribute workload (used for the biased-splitting
/// experiment, Fig 12c/d): a random range on `attr` from two random records;
/// every other attribute spans the full domain.
std::vector<RangeQuery> MakeSingleAttributeWorkload(const Dataset& dataset,
                                                    size_t attr, size_t count,
                                                    Rng* rng);

}  // namespace kanon

#endif  // KANON_QUERY_WORKLOAD_H_
