#include "query/query.h"

// RangeQuery is header-only; this file anchors the query target.
namespace kanon {}
