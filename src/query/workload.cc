#include "query/workload.h"

#include <algorithm>

#include "common/check.h"

namespace kanon {

std::vector<RangeQuery> MakeRecordPairWorkload(const Dataset& dataset,
                                               size_t count, Rng* rng) {
  KANON_CHECK(!dataset.empty());
  const size_t dim = dataset.dim();
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const auto r1 = dataset.row(rng->Uniform(dataset.num_records()));
    const auto r2 = dataset.row(rng->Uniform(dataset.num_records()));
    std::vector<double> lo(dim), hi(dim);
    for (size_t a = 0; a < dim; ++a) {
      lo[a] = std::min(r1[a], r2[a]);
      hi[a] = std::max(r1[a], r2[a]);
    }
    queries.push_back({Mbr::FromBounds(std::move(lo), std::move(hi))});
  }
  return queries;
}

std::vector<RangeQuery> MakeSingleAttributeWorkload(const Dataset& dataset,
                                                    size_t attr, size_t count,
                                                    Rng* rng) {
  KANON_CHECK(!dataset.empty());
  KANON_CHECK(attr < dataset.dim());
  const Domain domain = dataset.ComputeDomain();
  std::vector<RangeQuery> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const double v1 =
        dataset.value(rng->Uniform(dataset.num_records()), attr);
    const double v2 =
        dataset.value(rng->Uniform(dataset.num_records()), attr);
    std::vector<double> lo = domain.lo;
    std::vector<double> hi = domain.hi;
    lo[attr] = std::min(v1, v2);
    hi[attr] = std::max(v1, v2);
    queries.push_back({Mbr::FromBounds(std::move(lo), std::move(hi))});
  }
  return queries;
}

}  // namespace kanon
