#include "cli_lib.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include <unistd.h>

#include "common/env.h"
#include "common/thread.h"
#include "kanon/kanon.h"
#include "net/anon_http.h"
#include "net/http_server.h"
#include "net/replication.h"

namespace kanon::cli {

namespace {

/// Set by the SIGTERM/SIGINT handler; RunServe polls it while the HTTP
/// server is up and starts the graceful drain when it flips.
std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void InstallDrainSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Builds the schema (from a spec file, an explicit column count, or the
/// input's first row) and reads the CSV. Shared by Run and RunServe.
StatusOr<Dataset> LoadInput(const std::string& input,
                            const std::string& schema_path, size_t columns,
                            bool skip_header, std::ostream& log) {
  Schema schema;
  if (!schema_path.empty()) {
    KANON_ASSIGN_OR_RETURN(schema, LoadSchemaSpec(schema_path));
    log << "schema: " << schema.dim() << " attributes\n";
  } else {
    if (columns == 0) {
      KANON_ASSIGN_OR_RETURN(columns, InferColumns(input));
      log << "inferred " << columns << " quasi-identifier columns\n";
    }
    schema = Schema::Numeric(columns);
  }
  CsvOptions csv;
  csv.skip_header = skip_header;
  return ReadNumericCsv(input, schema, csv);
}

}  // namespace

bool ParseArgs(int argc, const char* const* argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      options->input = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      options->output = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      options->k = std::strtoul(v, nullptr, 10);
    } else if (arg == "--columns") {
      const char* v = next();
      if (v == nullptr) return false;
      options->columns = std::strtoul(v, nullptr, 10);
    } else if (arg == "--skip-header") {
      options->skip_header = true;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->algorithm = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return false;
      options->schema_path = v;
    } else if (arg == "--ldiversity") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ldiversity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--entropy") {
      const char* v = next();
      if (v == nullptr) return false;
      options->entropy_l = std::strtod(v, nullptr);
    } else if (arg == "--recursive") {
      const char* v = next();
      if (v == nullptr) return false;
      const auto parts = SplitCsvLine(v, ',');
      if (parts.size() != 2) return false;
      options->recursive_c = std::strtod(parts[0].c_str(), nullptr);
      options->recursive_l = std::strtoul(parts[1].c_str(), nullptr, 10);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      options->alpha = std::strtod(v, nullptr);
    } else if (arg == "--uncompacted") {
      options->uncompacted = true;
    } else if (arg == "--bias") {
      const char* v = next();
      if (v == nullptr) return false;
      for (const std::string& field : SplitCsvLine(v, ',')) {
        options->bias.push_back(std::strtoul(field.c_str(), nullptr, 10));
      }
    } else if (arg == "--metrics") {
      options->metrics = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->threads = std::strtoul(v, nullptr, 10);
      if (options->threads == 0) return false;
    } else {
      return false;
    }
  }
  return !options->input.empty() && !options->output.empty() &&
         options->k >= 1;
}

StatusOr<size_t> InferColumns(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open input file " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("input file " + path +
                                   " is empty; nothing to anonymize");
  }
  const size_t fields = SplitCsvLine(line, ',').size();
  // Treat the final column as the sensitive attribute when there are at
  // least two columns.
  return fields >= 2 ? fields - 1 : fields;
}

int Run(const CliOptions& options, std::ostream& log) {
  auto dataset = LoadInput(options.input, options.schema_path,
                           options.columns, options.skip_header, log);
  if (!dataset.ok()) {
    log << dataset.status() << "\n";
    return 1;
  }
  log << "read " << dataset->num_records() << " records\n";
  if (dataset->empty()) return 1;

  std::unique_ptr<PartitionConstraint> constraint;
  if (options.ldiversity > 0) {
    constraint = std::make_unique<DistinctLDiversity>(options.k,
                                                      options.ldiversity);
  } else if (options.entropy_l > 0.0) {
    constraint =
        std::make_unique<EntropyLDiversity>(options.k, options.entropy_l);
  } else if (options.recursive_c > 0.0 && options.recursive_l > 0) {
    constraint = std::make_unique<RecursiveCLDiversity>(
        options.k, options.recursive_c, options.recursive_l);
  } else if (options.alpha > 0.0) {
    constraint = std::make_unique<AlphaKAnonymity>(options.alpha, options.k);
  }
  if (constraint != nullptr) {
    log << "constraint: " << constraint->Name() << "\n";
  }

  PartitionSet partitions;
  if (options.algorithm == "rtree") {
    RTreeAnonymizerOptions ro;
    ro.base_k = options.k;
    ro.constraint = constraint.get();
    ro.compact = !options.uncompacted;
    ro.split.biased_axes = options.bias;
    if (options.threads > 0) {
      ro.backend = RTreeAnonymizerOptions::Backend::kSortedBulkLoad;
      ro.threads = options.threads;
      log << "sorted bulk load on " << options.threads << " thread"
          << (options.threads == 1 ? "" : "s") << "\n";
    }
    auto ps = RTreeAnonymizer(ro).Anonymize(*dataset, options.k);
    if (!ps.ok()) {
      log << ps.status() << "\n";
      return 1;
    }
    partitions = *std::move(ps);
  } else if (options.algorithm == "mondrian") {
    MondrianConfig mc;
    mc.constraint = constraint.get();
    partitions = Mondrian(mc).Anonymize(*dataset, options.k);
    if (!options.uncompacted) CompactPartitions(*dataset, &partitions);
  } else if (options.algorithm == "grid") {
    GridAnonymizerOptions go;
    go.compact = !options.uncompacted;
    auto ps = GridAnonymizer(go).Anonymize(*dataset, options.k);
    if (!ps.ok()) {
      log << ps.status() << "\n";
      return 1;
    }
    partitions = *std::move(ps);
  } else {
    log << "unknown algorithm " << options.algorithm << "\n";
    return 1;
  }

  if (auto s = partitions.CheckCovers(*dataset); !s.ok()) {
    log << "internal error, refusing to publish: " << s << "\n";
    return 1;
  }
  if (auto s = partitions.CheckKAnonymous(
          std::min<size_t>(options.k, dataset->num_records()));
      !s.ok()) {
    log << "internal error, refusing to publish: " << s << "\n";
    return 1;
  }

  if (options.metrics) {
    log << FormatQuality(ComputeQuality(*dataset, partitions)) << "\n";
    const MarginalUtilityReport utility =
        ComputeMarginalUtility(*dataset, partitions);
    log << "marginal utility: meanTV=" << utility.mean_tv
        << " meanEMD=" << utility.mean_emd << "\n";
  }

  auto table = AnonymizedTable::FromPartitions(*dataset,
                                               std::move(partitions));
  if (!table.ok()) {
    log << table.status() << "\n";
    return 1;
  }
  if (auto s = table->WriteCsv(options.output, dataset->schema()); !s.ok()) {
    log << s << "\n";
    return 1;
  }
  log << "wrote " << table->num_records() << " generalized records ("
      << table->num_partitions() << " partitions) to " << options.output
      << "\n";
  return 0;
}

bool ParseListenAddress(const std::string& spec, std::string* host,
                        uint16_t* port) {
  if (spec.empty()) return false;
  std::string host_part = "127.0.0.1";
  std::string port_part = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (port_part.empty()) return false;
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value > 65535) return false;
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return true;
}

bool ParseServeArgs(int argc, const char* const* argv,
                    ServeOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      options->input = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return false;
      options->schema_path = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      options->k = std::strtoul(v, nullptr, 10);
    } else if (arg == "--columns") {
      const char* v = next();
      if (v == nullptr) return false;
      options->columns = std::strtoul(v, nullptr, 10);
    } else if (arg == "--skip-header") {
      options->skip_header = true;
    } else if (arg == "--producers") {
      const char* v = next();
      if (v == nullptr) return false;
      options->producers = std::strtoul(v, nullptr, 10);
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return false;
      options->rate = std::strtod(v, nullptr);
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr) return false;
      options->queue_capacity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_batch = std::strtoul(v, nullptr, 10);
    } else if (arg == "--snapshot-every") {
      const char* v = next();
      if (v == nullptr) return false;
      options->snapshot_every = std::strtoul(v, nullptr, 10);
    } else if (arg == "--reject") {
      options->reject = true;
    } else if (arg == "--wal-dir" || arg == "--wal_dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options->wal_dir = v;
    } else if (arg == "--fsync-every" || arg == "--fsync_every") {
      const char* v = next();
      if (v == nullptr) return false;
      options->fsync_every = std::strtoul(v, nullptr, 10);
    } else if (arg == "--checkpoint-every" || arg == "--checkpoint_every") {
      const char* v = next();
      if (v == nullptr) return false;
      options->checkpoint_every = std::strtoul(v, nullptr, 10);
    } else if (arg == "--recover-only" || arg == "--recover_only") {
      options->recover_only = true;
    } else if (arg == "--release") {
      const char* v = next();
      if (v == nullptr) return false;
      for (const std::string& field : SplitCsvLine(v, ',')) {
        options->releases.push_back(std::strtoul(field.c_str(), nullptr, 10));
      }
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return false;
      options->listen = v;
      std::string host;
      uint16_t port = 0;
      if (!ParseListenAddress(options->listen, &host, &port)) return false;
    } else if (arg == "--http-threads" || arg == "--http_threads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->http_threads = std::strtoul(v, nullptr, 10);
      if (options->http_threads == 0) return false;
    } else if (arg == "--max-body-bytes" || arg == "--max_body_bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_body_bytes = std::strtoul(v, nullptr, 10);
      if (options->max_body_bytes == 0) return false;
    } else if (arg == "--domain") {
      const char* v = next();
      if (v == nullptr) return false;
      for (const std::string& field : SplitCsvLine(v, ',')) {
        const size_t colon = field.find(':');
        if (colon == std::string::npos) return false;
        const double lo = std::strtod(field.substr(0, colon).c_str(), nullptr);
        const double hi = std::strtod(field.substr(colon + 1).c_str(), nullptr);
        if (!(lo <= hi)) return false;
        options->domain.emplace_back(lo, hi);
      }
      if (options->domain.empty()) return false;
    } else if (arg == "--serve-seconds" || arg == "--serve_seconds") {
      const char* v = next();
      if (v == nullptr) return false;
      options->serve_seconds = std::strtod(v, nullptr);
      if (options->serve_seconds < 0.0) return false;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      options->shards = std::strtoul(v, nullptr, 10);
      if (options->shards == 0) return false;
    } else if (arg == "--shard-by" || arg == "--shard_by") {
      const char* v = next();
      if (v == nullptr) return false;
      options->shard_by = v;
      if (!ShardByFromName(options->shard_by).ok()) return false;
    } else if (arg == "--memtable-bytes" || arg == "--memtable_bytes") {
      const char* v = next();
      if (v == nullptr) return false;
      options->memtable_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--merge-every" || arg == "--merge_every") {
      const char* v = next();
      if (v == nullptr) return false;
      options->merge_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--merge-mode" || arg == "--merge_mode") {
      const char* v = next();
      if (v == nullptr) return false;
      options->merge_mode = v;
      if (options->merge_mode != "full" && options->merge_mode != "delta") {
        return false;
      }
    } else if (arg == "--follow") {
      const char* v = next();
      if (v == nullptr) return false;
      options->follow = v;
    } else if (arg == "--max-staleness-ms" || arg == "--max_staleness_ms") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_staleness_ms = std::strtoull(v, nullptr, 10);
      if (options->max_staleness_ms == 0) return false;
    } else if (arg == "--stale-reads" || arg == "--stale_reads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->stale_reads = v;
      if (options->stale_reads != "serve" &&
          options->stale_reads != "reject") {
        return false;
      }
    } else if (arg == "--repl-poll-ms" || arg == "--repl_poll_ms") {
      const char* v = next();
      if (v == nullptr) return false;
      options->repl_poll_ms = std::strtoull(v, nullptr, 10);
      if (options->repl_poll_ms == 0) return false;
    } else if (arg == "--dp-height" || arg == "--dp_height") {
      const char* v = next();
      if (v == nullptr) return false;
      char* end = nullptr;
      options->dp_height = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || options->dp_height >= 40) return false;
    } else if (arg == "--dp-budget" || arg == "--dp_budget") {
      const char* v = next();
      if (v == nullptr) return false;
      char* end = nullptr;
      options->dp_budget = std::strtod(v, &end);
      if (end == v || *end != '\0') return false;
    } else if (arg == "--dp-lifetime-budget" ||
               arg == "--dp_lifetime_budget") {
      const char* v = next();
      if (v == nullptr) return false;
      char* end = nullptr;
      options->dp_lifetime_budget = std::strtod(v, &end);
      if (end == v || *end != '\0') return false;
    } else if (arg == "--dp-key" || arg == "--dp_key") {
      const char* v = next();
      if (v == nullptr) return false;
      options->dp_key = v;
    } else if (arg == "--dp-metrics-utility" ||
               arg == "--dp_metrics_utility") {
      options->dp_metrics_utility = true;
    } else {
      return false;
    }
  }
  // --merge-mode=delta is a memtable flush policy: without the LSM tier
  // there is no flush to pick a mode for.
  if (options->merge_mode == "delta" && options->memtable_bytes == 0 &&
      options->merge_every == 0) {
    return false;
  }
  if (!options->follow.empty()) {
    // A follower's records arrive only via replication: local ingest and
    // durability paths are contradictions, not defaults to ignore.
    return !options->listen.empty() && !options->domain.empty() &&
           options->input.empty() && options->wal_dir.empty() &&
           options->shards == 1 && options->memtable_bytes == 0 &&
           options->merge_every == 0 && !options->recover_only;
  }
  // A record source is required: --input, or HTTP ingest (--listen plus
  // --domain, which supplies the dimensionality --input would have), or a
  // recover-only replay with --domain.
  const bool source_ok =
      !options->input.empty() ||
      (!options->domain.empty() &&
       (!options->listen.empty() || options->recover_only));
  return source_ok && options->k >= 1 && options->producers >= 1 &&
         options->queue_capacity >= 1 && options->max_batch >= 1 &&
         (!options->recover_only || !options->wal_dir.empty());
}

namespace {

/// `kanon_cli serve --follow`: run as a read replica. Mirrors RunServe's
/// operational surface (the "listening on" line, signal-driven drain,
/// --serve-seconds, the "final snapshot:" report) so the same harnesses
/// drive leaders and followers.
int RunFollower(const ServeOptions& options, std::ostream& log) {
  std::string leader = options.follow;
  if (leader.rfind("http://", 0) == 0) leader = leader.substr(7);
  if (!leader.empty() && leader.back() == '/') leader.pop_back();
  net::FollowerOptions fopts;
  if (!ParseListenAddress(leader, &fopts.leader_host, &fopts.leader_port) ||
      fopts.leader_port == 0) {
    log << "invalid --follow address: " << options.follow << "\n";
    return 1;
  }
  Domain domain;
  for (const auto& [lo, hi] : options.domain) {
    domain.lo.push_back(lo);
    domain.hi.push_back(hi);
  }
  fopts.core.anonymizer.base_k = options.k;  // manifest overrides at bootstrap
  fopts.core.max_staleness_ms = options.max_staleness_ms;
  fopts.core.dp_height = options.dp_height;  // manifest overrides at bootstrap
  fopts.reject_stale_reads = options.stale_reads == "reject";
  fopts.poll_interval_ms = options.repl_poll_ms;
  fopts.dp_budget = options.dp_budget;
  fopts.dp_lifetime_budget = options.dp_lifetime_budget;
  fopts.dp_key = options.dp_key;
  fopts.dp_metrics_utility = options.dp_metrics_utility;
  fopts.scratch_dir =
      "/tmp/kanon-follower-" + std::to_string(::getpid());

  net::ReplicatedFollower follower(std::move(domain), fopts);
  net::FollowerFrontend frontend(&follower);

  net::HttpServerOptions http_options;
  uint16_t port = 0;
  if (!ParseListenAddress(options.listen, &http_options.host, &port)) {
    log << "invalid --listen address: " << options.listen << "\n";
    return 1;
  }
  http_options.port = port;
  http_options.num_threads = options.http_threads;
  http_options.parser.max_body_bytes = options.max_body_bytes;
  net::HttpServer server(http_options,
                         [&frontend](const net::HttpRequest& request) {
                           return frontend.Handle(request);
                         });
  if (auto s = server.Start(); !s.ok()) {
    log << s << "\n";
    return 1;
  }
  g_signal.store(0, std::memory_order_relaxed);
  InstallDrainSignalHandlers();
  log << "listening on " << server.host() << ":" << server.bound_port()
      << " (" << (server.using_epoll() ? "epoll" : "poll") << ", "
      << options.http_threads << " threads, follower)\n";
  log << "following http://" << fopts.leader_host << ":"
      << fopts.leader_port << " max_staleness_ms="
      << options.max_staleness_ms << " stale_reads="
      << options.stale_reads << "\n";
  follower.Start();

  Timer serving;
  while (g_signal.load(std::memory_order_relaxed) == 0) {
    if (options.serve_seconds > 0.0 &&
        serving.ElapsedSeconds() >= options.serve_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const int sig = g_signal.load(std::memory_order_relaxed);
  log << "draining ("
      << (sig != 0 ? (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                   : "--serve-seconds elapsed")
      << ")\n";
  server.Shutdown();
  follower.Stop();

  const FollowerCore* core = follower.core();
  log << "repl: state=" << net::ReplStateName(follower.state())
      << " applied_lsn=" << core->applied_lsn()
      << " epoch=" << core->epoch()
      << " reconnects=" << follower.reconnects()
      << " bootstraps=" << core->bootstraps()
      << " batches=" << follower.batches()
      << " bytes=" << follower.bytes_total() << "\n";
  const auto stitched = core->CurrentStitched();
  if (stitched == nullptr) {
    log << "no snapshot published: the leader published nothing the "
           "follower could replicate\n";
    return 0;
  }
  const StitchedInfo& info = stitched->info();
  const PartitionSet base_release = stitched->Release(info.base_k);
  log << "final snapshot: epoch=" << info.epoch
      << " records=" << info.records
      << " partitions=" << base_release.num_partitions()
      << " min_partition=" << base_release.min_partition_size()
      << " max_partition=" << base_release.max_partition_size()
      << " avgNCP=" << AverageBoxNcp(base_release, stitched->domain())
      << "\n";
  return 0;
}

}  // namespace

int RunServe(const ServeOptions& options, std::ostream& log) {
  if (!options.follow.empty()) return RunFollower(options, log);
  // Two record sources: a CSV replayed by producer threads (--input) and
  // records POSTed over HTTP (--listen). HTTP-only serving has no file to
  // infer the dimensionality and domain from, so --domain supplies both.
  std::optional<Dataset> dataset;
  size_t dim = 0;
  Domain domain;
  if (!options.input.empty()) {
    auto loaded = LoadInput(options.input, options.schema_path,
                            options.columns, options.skip_header, log);
    if (!loaded.ok()) {
      log << loaded.status() << "\n";
      return 1;
    }
    dataset = *std::move(loaded);
    log << "read " << dataset->num_records() << " records\n";
    if (dataset->empty()) return 1;
    dim = dataset->dim();
    domain = dataset->ComputeDomain();
  } else {
    dim = options.domain.size();
    for (const auto& [lo, hi] : options.domain) {
      domain.lo.push_back(lo);
      domain.hi.push_back(hi);
    }
  }
  const size_t n = dataset ? dataset->num_records() : 0;

  ServiceOptions service_options;
  service_options.anonymizer.base_k = options.k;
  service_options.queue_capacity = options.queue_capacity;
  service_options.max_batch = options.max_batch;
  service_options.backpressure = options.reject ? BackpressureMode::kReject
                                                : BackpressureMode::kBlock;
  service_options.snapshot_every = options.snapshot_every;
  service_options.durability.wal_dir = options.wal_dir;
  service_options.durability.fsync_every = options.fsync_every;
  service_options.durability.checkpoint_every = options.checkpoint_every;
  service_options.lsm.memtable_bytes = options.memtable_bytes;
  service_options.lsm.merge_every = options.merge_every;
  service_options.lsm.merge_mode =
      options.merge_mode == "delta" ? MergeMode::kDelta : MergeMode::kFull;
  service_options.dp_height = options.dp_height;
  if (service_options.lsm.enabled()) {
    log << "memtable: bytes=" << options.memtable_bytes
        << " merge_every=" << options.merge_every
        << " merge_mode=" << options.merge_mode << "\n";
  }

  // KANON_FAULT_SEED routes all durability I/O through a FaultInjectionEnv
  // — the operational fault drill. The same seed injects the same faults,
  // so a degraded run reported by CI reproduces locally from its seed.
  // KANON_FAULT_MEAN_OPS (default 2000) sets the fault rate and
  // KANON_FAULT_BREAK_AFTER (default 0 = never) makes the disk die
  // outright after that many operations.
  std::unique_ptr<FaultInjectionEnv> fault_env;
  const char* fault_seed = std::getenv("KANON_FAULT_SEED");
  if (fault_seed != nullptr && *fault_seed != '\0' &&
      !options.wal_dir.empty() && !options.recover_only) {
    FaultInjectionOptions fault_options;
    fault_options.seed = std::strtoull(fault_seed, nullptr, 10);
    fault_options.mean_ops_between_faults = 2000;
    if (const char* v = std::getenv("KANON_FAULT_MEAN_OPS")) {
      fault_options.mean_ops_between_faults =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    }
    if (const char* v = std::getenv("KANON_FAULT_BREAK_AFTER")) {
      fault_options.break_after_ops = std::strtoull(v, nullptr, 10);
    }
    fault_options.path_filter = options.wal_dir;
    fault_options.sync_faults = true;
    fault_env =
        std::make_unique<FaultInjectionEnv>(Env::Default(), fault_options);
    service_options.durability.env = fault_env.get();
    // Fast, bounded degradation under a dead disk: don't spend seconds
    // backing off when the schedule says every retry will fail too.
    service_options.durability.retry_backoff_ms = 1;
    service_options.durability.retry_backoff_max_ms = 8;
    log << "fault injection: seed=" << fault_options.seed
        << " mean_ops=" << fault_options.mean_ops_between_faults
        << " break_after=" << fault_options.break_after_ops << "\n";
  }
  ShardedServiceOptions sharded_options;
  sharded_options.service = service_options;
  sharded_options.sharding.num_shards = options.shards;
  if (auto by = ShardByFromName(options.shard_by); by.ok()) {
    sharded_options.sharding.shard_by = *by;
  } else {
    log << by.status() << "\n";
    return 1;
  }
  auto service_or =
      ShardedAnonymizationService::Create(dim, domain, sharded_options);
  if (!service_or.ok()) {
    log << service_or.status() << "\n";
    return 1;
  }
  ShardedAnonymizationService& service = **service_or;
  if (!options.wal_dir.empty()) {
    if (options.shards == 1) {
      // The single-shard line keeps the exact pre-sharding format — the
      // crash-recovery harness greps it.
      const RecoveryResult& r = service.shard_recovery(0);
      log << "recovery: recovered=" << r.recovered
          << " checkpoint_lsn=" << r.checkpoint_lsn
          << " replayed=" << r.replayed << " next_lsn=" << r.next_lsn
          << " torn_tail=" << (r.truncated_torn_tail ? 1 : 0) << "\n";
    } else {
      for (size_t i = 0; i < service.num_shards(); ++i) {
        const RecoveryResult& r = service.shard_recovery(i);
        log << "recovery shard=" << i << ": recovered=" << r.recovered
            << " checkpoint_lsn=" << r.checkpoint_lsn
            << " replayed=" << r.replayed << " next_lsn=" << r.next_lsn
            << " torn_tail=" << (r.truncated_torn_tail ? 1 : 0) << "\n";
      }
    }
  }

  // The HTTP front-end (when --listen is given) starts before the
  // producers so scripted clients can connect as soon as the "listening
  // on" line appears.
  std::unique_ptr<net::AnonHttpFrontend> frontend;
  std::unique_ptr<net::HttpServer> server;
  if (!options.listen.empty()) {
    net::HttpServerOptions http_options;
    uint16_t port = 0;
    if (!ParseListenAddress(options.listen, &http_options.host, &port)) {
      log << "invalid --listen address: " << options.listen << "\n";
      return 1;
    }
    http_options.port = port;
    http_options.num_threads = options.http_threads;
    http_options.parser.max_body_bytes = options.max_body_bytes;
    net::AnonHttpOptions frontend_options;
    frontend_options.dp_budget = options.dp_budget;
    frontend_options.dp_lifetime_budget = options.dp_lifetime_budget;
    frontend_options.dp_key = options.dp_key;
    frontend_options.dp_metrics_utility = options.dp_metrics_utility;
    frontend = std::make_unique<net::AnonHttpFrontend>(&service,
                                                       frontend_options);
    server = std::make_unique<net::HttpServer>(
        http_options, [f = frontend.get()](const net::HttpRequest& request) {
          return f->Handle(request);
        });
    frontend->SetServerStats([s = server.get()] { return s->stats(); });
    if (auto s = server->Start(); !s.ok()) {
      log << s << "\n";
      return 1;
    }
    frontend->SetBackendLabel(server->using_epoll() ? "epoll" : "poll");
    g_signal.store(0, std::memory_order_relaxed);
    InstallDrainSignalHandlers();
    log << "listening on " << server->host() << ":" << server->bound_port()
        << " (" << (server->using_epoll() ? "epoll" : "poll") << ", "
        << options.http_threads << " threads, " << options.shards
        << " shard" << (options.shards == 1 ? "" : "s") << ")\n";
  }

  // Each producer streams a stripe of the file at its share of the target
  // rate, which interleaves into an approximately file-ordered stream.
  const size_t producers = options.producers;
  const double per_producer_rate =
      options.rate > 0.0 ? options.rate / static_cast<double>(producers)
                         : 0.0;
  Timer timer;
  if (!options.recover_only && dataset) {
    std::vector<JoinableThread> threads;
    for (size_t t = 0; t < producers; ++t) {
      threads.emplace_back([&, t] {
        using Clock = std::chrono::steady_clock;
        const auto start = Clock::now();
        size_t sent = 0;
        for (RecordId r = t; r < n; r += producers) {
          if (per_producer_rate > 0.0) {
            std::this_thread::sleep_until(
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(sent) /
                                per_producer_rate)));
          }
          // In kReject mode drops are expected under burst; they are
          // counted by the service and reported below.
          (void)service.Ingest(dataset->row(r), dataset->sensitive(r));
          ++sent;
        }
      });
    }
  }  // joins the producers

  if (server != nullptr) {
    // Serve until SIGTERM/SIGINT (or --serve-seconds for scripted runs),
    // then drain: the server finishes in-flight requests — every 200 the
    // client saw is acknowledged — before the service flushes its WAL and
    // publishes the final snapshot. No acknowledged record is lost.
    Timer serving;
    while (g_signal.load(std::memory_order_relaxed) == 0) {
      if (options.serve_seconds > 0.0 &&
          serving.ElapsedSeconds() >= options.serve_seconds) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int sig = g_signal.load(std::memory_order_relaxed);
    log << "draining ("
        << (sig != 0 ? (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                     : "--serve-seconds elapsed")
        << ")\n";
    server->Shutdown();
  }
  service.Stop();
  const double elapsed_s = timer.ElapsedSeconds();

  const ShardedServiceStats sharded_stats = service.Stats();
  const ServiceStats& stats = sharded_stats.total;
  log << FormatServiceStats(stats) << "\n";
  if (options.shards > 1) {
    for (size_t i = 0; i < sharded_stats.shards.size(); ++i) {
      const ServiceStats& s = sharded_stats.shards[i];
      log << "shard " << i << ": inserted=" << s.inserted
          << " snapshots=" << s.snapshots << " rejected=" << s.rejected
          << " health=" << ServiceHealthName(s.health) << "\n";
    }
  }
  if (server != nullptr) {
    const net::HttpServerStats hs = server->stats();
    log << "http: accepted_conns=" << hs.connections_accepted
        << " refused=" << hs.connections_refused
        << " requests=" << hs.requests << " responses=" << hs.responses
        << " parse_errors=" << hs.parse_errors
        << " timeouts=" << hs.timeouts
        << " http_accepted_records=" << frontend->accepted() << "\n";
  }
  if (fault_env != nullptr) {
    log << "fault injection: ops=" << fault_env->ops()
        << " injected=" << fault_env->injected()
        << (fault_env->broken() ? " broken=1" : "") << "\n";
    if (const std::string trace = fault_env->TraceSummary(); !trace.empty()) {
      log << trace << "\n";
    }
  }
  if (stats.health == ServiceHealth::kDegraded) {
    // Degradation is graceful by definition: the snapshot below is still
    // served and a restart recovers everything durable, so this run is
    // reported (health line above) but not failed.
    log << "service degraded to read-only: " << stats.degraded_reason
        << "\n";
  }
  if (!options.recover_only && dataset) {
    log << "streamed " << n << " records with " << producers
        << " producers in " << elapsed_s << "s ("
        << static_cast<double>(stats.inserted) / elapsed_s << " rec/s)\n";
  }

  const auto stitched = service.CurrentStitched();
  if (stitched == nullptr) {
    log << "no snapshot published: fewer than k=" << options.k
        << " records were ingested\n";
    // A recover-only pass over a near-empty log is not a failure, and
    // neither is a fault run whose disk died before k records landed, nor
    // an HTTP serve window in which no client happened to send records.
    return options.recover_only || server != nullptr ||
                   stats.health == ServiceHealth::kDegraded
               ? 0
               : 1;
  }
  const StitchedInfo& info = stitched->info();
  const PartitionSet base_release = stitched->Release(info.base_k);
  log << "final snapshot: epoch=" << info.epoch
      << " records=" << info.records
      << " partitions=" << base_release.num_partitions()
      << " min_partition=" << base_release.min_partition_size()
      << " max_partition=" << base_release.max_partition_size()
      << " avgNCP=" << AverageBoxNcp(base_release, stitched->domain())
      << "\n";

  // A shard smaller than k1 caps what the stitched release can guarantee
  // for its slice, exactly like info.records caps the unsharded check.
  size_t min_covered_records = info.records;
  for (size_t i = 0; i < info.shard_records.size(); ++i) {
    if (info.shard_epochs[i] > 0) {
      min_covered_records = std::min(min_covered_records,
                                     info.shard_records[i]);
    }
  }

  for (const size_t k1 : options.releases) {
    auto release = service.GetRelease(k1);
    if (!release.ok()) {
      log << release.status() << "\n";
      return 1;
    }
    const size_t effective_k = std::min(std::max(k1, options.k),
                                        min_covered_records);
    if (auto s = release->CheckKAnonymous(effective_k); !s.ok()) {
      log << "internal error, refusing to publish k1=" << k1 << ": " << s
          << "\n";
      return 1;
    }
    log << "release k1=" << k1 << ": partitions="
        << release->num_partitions() << " min_partition="
        << release->min_partition_size() << " avgNCP="
        << AverageBoxNcp(*release, stitched->domain()) << "\n";
  }
  return 0;
}

}  // namespace kanon::cli
