#include "cli_lib.h"

#include <cstdlib>
#include <fstream>
#include <memory>

#include "kanon/kanon.h"

namespace kanon::cli {

bool ParseArgs(int argc, const char* const* argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      options->input = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      options->output = v;
    } else if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      options->k = std::strtoul(v, nullptr, 10);
    } else if (arg == "--columns") {
      const char* v = next();
      if (v == nullptr) return false;
      options->columns = std::strtoul(v, nullptr, 10);
    } else if (arg == "--skip-header") {
      options->skip_header = true;
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (v == nullptr) return false;
      options->algorithm = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return false;
      options->schema_path = v;
    } else if (arg == "--ldiversity") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ldiversity = std::strtoul(v, nullptr, 10);
    } else if (arg == "--entropy") {
      const char* v = next();
      if (v == nullptr) return false;
      options->entropy_l = std::strtod(v, nullptr);
    } else if (arg == "--recursive") {
      const char* v = next();
      if (v == nullptr) return false;
      const auto parts = SplitCsvLine(v, ',');
      if (parts.size() != 2) return false;
      options->recursive_c = std::strtod(parts[0].c_str(), nullptr);
      options->recursive_l = std::strtoul(parts[1].c_str(), nullptr, 10);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      options->alpha = std::strtod(v, nullptr);
    } else if (arg == "--uncompacted") {
      options->uncompacted = true;
    } else if (arg == "--bias") {
      const char* v = next();
      if (v == nullptr) return false;
      for (const std::string& field : SplitCsvLine(v, ',')) {
        options->bias.push_back(std::strtoul(field.c_str(), nullptr, 10));
      }
    } else if (arg == "--metrics") {
      options->metrics = true;
    } else {
      return false;
    }
  }
  return !options->input.empty() && !options->output.empty() &&
         options->k >= 1;
}

size_t InferColumns(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!std::getline(in, line)) return 0;
  const size_t fields = SplitCsvLine(line, ',').size();
  // Treat the final column as the sensitive attribute when there are at
  // least two columns.
  return fields >= 2 ? fields - 1 : fields;
}

int Run(const CliOptions& options, std::ostream& log) {
  Schema schema;
  if (!options.schema_path.empty()) {
    auto parsed = LoadSchemaSpec(options.schema_path);
    if (!parsed.ok()) {
      log << parsed.status() << "\n";
      return 1;
    }
    schema = *std::move(parsed);
    log << "schema: " << schema.dim() << " attributes\n";
  } else {
    size_t columns = options.columns;
    if (columns == 0) {
      columns = InferColumns(options.input);
      if (columns == 0) {
        log << "cannot infer column count from " << options.input << "\n";
        return 1;
      }
      log << "inferred " << columns << " quasi-identifier columns\n";
    }
    schema = Schema::Numeric(columns);
  }

  CsvOptions csv;
  csv.skip_header = options.skip_header;
  auto dataset = ReadNumericCsv(options.input, schema, csv);
  if (!dataset.ok()) {
    log << dataset.status() << "\n";
    return 1;
  }
  log << "read " << dataset->num_records() << " records\n";
  if (dataset->empty()) return 1;

  std::unique_ptr<PartitionConstraint> constraint;
  if (options.ldiversity > 0) {
    constraint = std::make_unique<DistinctLDiversity>(options.k,
                                                      options.ldiversity);
  } else if (options.entropy_l > 0.0) {
    constraint =
        std::make_unique<EntropyLDiversity>(options.k, options.entropy_l);
  } else if (options.recursive_c > 0.0 && options.recursive_l > 0) {
    constraint = std::make_unique<RecursiveCLDiversity>(
        options.k, options.recursive_c, options.recursive_l);
  } else if (options.alpha > 0.0) {
    constraint = std::make_unique<AlphaKAnonymity>(options.alpha, options.k);
  }
  if (constraint != nullptr) {
    log << "constraint: " << constraint->Name() << "\n";
  }

  PartitionSet partitions;
  if (options.algorithm == "rtree") {
    RTreeAnonymizerOptions ro;
    ro.base_k = options.k;
    ro.constraint = constraint.get();
    ro.compact = !options.uncompacted;
    ro.split.biased_axes = options.bias;
    auto ps = RTreeAnonymizer(ro).Anonymize(*dataset, options.k);
    if (!ps.ok()) {
      log << ps.status() << "\n";
      return 1;
    }
    partitions = *std::move(ps);
  } else if (options.algorithm == "mondrian") {
    MondrianConfig mc;
    mc.constraint = constraint.get();
    partitions = Mondrian(mc).Anonymize(*dataset, options.k);
    if (!options.uncompacted) CompactPartitions(*dataset, &partitions);
  } else if (options.algorithm == "grid") {
    GridAnonymizerOptions go;
    go.compact = !options.uncompacted;
    auto ps = GridAnonymizer(go).Anonymize(*dataset, options.k);
    if (!ps.ok()) {
      log << ps.status() << "\n";
      return 1;
    }
    partitions = *std::move(ps);
  } else {
    log << "unknown algorithm " << options.algorithm << "\n";
    return 1;
  }

  if (auto s = partitions.CheckCovers(*dataset); !s.ok()) {
    log << "internal error, refusing to publish: " << s << "\n";
    return 1;
  }
  if (auto s = partitions.CheckKAnonymous(
          std::min<size_t>(options.k, dataset->num_records()));
      !s.ok()) {
    log << "internal error, refusing to publish: " << s << "\n";
    return 1;
  }

  if (options.metrics) {
    log << FormatQuality(ComputeQuality(*dataset, partitions)) << "\n";
    const MarginalUtilityReport utility =
        ComputeMarginalUtility(*dataset, partitions);
    log << "marginal utility: meanTV=" << utility.mean_tv
        << " meanEMD=" << utility.mean_emd << "\n";
  }

  auto table = AnonymizedTable::FromPartitions(*dataset,
                                               std::move(partitions));
  if (!table.ok()) {
    log << table.status() << "\n";
    return 1;
  }
  if (auto s = table->WriteCsv(options.output, dataset->schema()); !s.ok()) {
    log << s << "\n";
    return 1;
  }
  log << "wrote " << table->num_records() << " generalized records ("
      << table->num_partitions() << " partitions) to " << options.output
      << "\n";
  return 0;
}

}  // namespace kanon::cli
