#ifndef KANON_TOOLS_CLI_LIB_H_
#define KANON_TOOLS_CLI_LIB_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kanon::cli {

/// Parsed command-line options of kanon_cli (see tools/kanon_cli.cc for
/// the flag reference). Split out of main() so the full pipeline is unit
/// testable.
struct CliOptions {
  std::string input;
  std::string output;
  std::string schema_path;
  size_t k = 10;
  size_t columns = 0;  // 0 = infer from the first row
  bool skip_header = false;
  std::string algorithm = "rtree";
  size_t ldiversity = 0;
  double entropy_l = 0.0;
  double recursive_c = 0.0;
  size_t recursive_l = 0;
  double alpha = 0.0;
  bool uncompacted = false;
  std::vector<size_t> bias;
  bool metrics = false;
  /// --threads N (rtree only): build the index with the parallel sorted
  /// bulk-load backend on N threads. 0 keeps the default buffer-tree
  /// backend; 1 runs the sorted backend serially. Any N produces the
  /// same partitions (the pipeline is deterministic).
  size_t threads = 0;
};

/// Parses argv into options. Returns false on malformed or missing
/// required flags (the caller prints usage).
bool ParseArgs(int argc, const char* const* argv, CliOptions* options);

/// Number of quasi-identifier columns implied by the file's first row
/// (fields minus one for the sensitive column when there are >= 2 fields).
/// Errors with IoError when the file cannot be opened and InvalidArgument
/// when it is empty — so a bad --input fails with a message naming the
/// file instead of a confusing downstream parse error.
StatusOr<size_t> InferColumns(const std::string& path);

/// Runs the anonymization pipeline; diagnostics go to `log`. Returns the
/// process exit code.
int Run(const CliOptions& options, std::ostream& log = std::cerr);

/// Options of the `kanon_cli serve` subcommand: stream a CSV through the
/// concurrent AnonymizationService and/or front it with the HTTP server
/// (src/net/), and report serving statistics. At least one record source
/// is required: --input, or --listen with --domain (records arrive over
/// HTTP).
struct ServeOptions {
  std::string input;
  std::string schema_path;
  size_t k = 10;
  size_t columns = 0;  // 0 = infer from the first row
  bool skip_header = false;
  size_t producers = 2;     // concurrent client threads
  double rate = 0.0;        // target records/sec across producers (0 = max)
  size_t queue_capacity = 4096;
  size_t max_batch = 256;
  uint64_t snapshot_every = 10000;
  bool reject = false;      // kReject backpressure instead of blocking
  std::vector<size_t> releases;  // extra k1 granularities to report

  // Durability (off unless --wal-dir is given). On restart with the same
  // --wal-dir, the service recovers the checkpoint + WAL tail before
  // ingesting.
  std::string wal_dir;
  size_t fsync_every = 256;
  uint64_t checkpoint_every = 100000;
  bool recover_only = false;  // recover + report, ingest nothing

  // HTTP front-end (off unless --listen is given). --listen HOST:PORT
  // (":PORT" and bare "PORT" default the host to 127.0.0.1; port 0 binds
  // an ephemeral port, printed as "listening on HOST:PORT"). The server
  // runs until SIGTERM/SIGINT, then drains: in-flight requests finish,
  // the WAL flushes and a final snapshot publishes before exit.
  std::string listen;
  size_t http_threads = 4;
  size_t max_body_bytes = 8u << 20;
  /// Quasi-identifier domain for HTTP-only serving (no --input to infer it
  /// from): "lo:hi,lo:hi,..." — its length is the record dimensionality.
  std::vector<std::pair<double, double>> domain;
  /// Stop serving after this many seconds even without a signal
  /// (0 = until signaled). Primarily for scripted smoke tests.
  double serve_seconds = 0.0;

  // Sharding (--shards N, --shard-by hash|range). Each shard is a full
  // service with its own ingest thread and wal-dir/shard-<i>/ durability
  // directory; releases stitch the per-shard snapshots. A durable
  // directory remembers its layout: reopening with a different --shards
  // or --shard-by is rejected.
  size_t shards = 1;
  std::string shard_by = "hash";

  // Read replica (--follow LEADER[:PORT], e.g. "127.0.0.1:8080" or
  // "http://127.0.0.1:8080"). The process becomes a follower: it
  // bootstraps from the leader's checkpoint, tails its WAL, and serves
  // /release, /healthz and /metrics from its own snapshots while
  // redirecting POST /ingest to the leader (421). Requires --listen and
  // --domain; mutually exclusive with --input, --wal-dir, --shards > 1
  // and the memtable flags (replication of an LSM leader is epoch-aligned
  // but not byte-identical, so the follower refuses local write paths).
  std::string follow;
  /// Staleness bound: when the follower has not confirmed being caught up
  /// with the leader for this long, /healthz degrades to 503 (and
  /// /release too with --stale-reads=reject).
  uint64_t max_staleness_ms = 5000;
  /// "serve" (default): stale reads are answered, flagged via the
  /// X-Kanon-Staleness-Ms header and a degraded /healthz. "reject":
  /// stale /release requests get 503.
  std::string stale_reads = "serve";
  /// Idle poll cadence against the leader's /repl/wal.
  uint64_t repl_poll_ms = 50;

  // Write-absorbing LSM ingest tier (--memtable-bytes / --merge-every;
  // off when both are 0). Acknowledged records accumulate in a per-shard
  // in-memory sorted run and are merged into the R⁺-tree in bulk when the
  // run reaches memtable_bytes, every merge_every records (if set), at
  // checkpoints, and on shutdown.
  size_t memtable_bytes = 0;
  uint64_t merge_every = 0;
  // How a flush reaches the tree (--merge-mode full|delta): "full"
  // rebuilds the whole tree per flush (the reference backend), "delta"
  // locally rebuilds only the sub-ranges the flushed run touches and
  // reuses unchanged per-leaf release fragments across snapshots.
  // Requires the memtable to be on.
  std::string merge_mode = "full";

  // Differentially private releases (--dp-height / --dp-budget /
  // --dp-lifetime-budget / --dp-key / --dp-metrics-utility). dp_height
  // sets the publication-time DP grid height (0 disables DP cell
  // accounting and the /release/dp endpoints answer 409); dp_budget is
  // the total epsilon spendable per release point over HTTP (<= 0 =
  // unlimited); dp_lifetime_budget caps the spend across all release
  // points (<= 0 = unlimited) — the guard against unbounded per-record
  // composition over many epochs; dp_key is the server-held secret the
  // noise key derives from (empty = random per-process key) — give every
  // server of one deployment the same secret to make DP releases
  // byte-identical across them; dp_metrics_utility opts in to the
  // truth-derived utility pair in /metrics (trusted scrape plane only).
  size_t dp_height = 10;
  double dp_budget = 4.0;
  double dp_lifetime_budget = 0.0;
  std::string dp_key;
  bool dp_metrics_utility = false;
};

/// Parses "HOST:PORT", ":PORT" or "PORT" (host defaults to 127.0.0.1).
bool ParseListenAddress(const std::string& spec, std::string* host,
                        uint16_t* port);

/// Parses the argv *after* the `serve` token. Returns false on malformed
/// or missing required flags.
bool ParseServeArgs(int argc, const char* const* argv, ServeOptions* options);

/// Streams the input through an AnonymizationService with the configured
/// producer count and target rate, then prints ServiceStats and the final
/// snapshot's releases. Returns the process exit code.
int RunServe(const ServeOptions& options, std::ostream& log = std::cerr);

}  // namespace kanon::cli

#endif  // KANON_TOOLS_CLI_LIB_H_
