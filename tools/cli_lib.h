#ifndef KANON_TOOLS_CLI_LIB_H_
#define KANON_TOOLS_CLI_LIB_H_

#include <iostream>
#include <string>
#include <vector>

namespace kanon::cli {

/// Parsed command-line options of kanon_cli (see tools/kanon_cli.cc for
/// the flag reference). Split out of main() so the full pipeline is unit
/// testable.
struct CliOptions {
  std::string input;
  std::string output;
  std::string schema_path;
  size_t k = 10;
  size_t columns = 0;  // 0 = infer from the first row
  bool skip_header = false;
  std::string algorithm = "rtree";
  size_t ldiversity = 0;
  double entropy_l = 0.0;
  double recursive_c = 0.0;
  size_t recursive_l = 0;
  double alpha = 0.0;
  bool uncompacted = false;
  std::vector<size_t> bias;
  bool metrics = false;
};

/// Parses argv into options. Returns false on malformed or missing
/// required flags (the caller prints usage).
bool ParseArgs(int argc, const char* const* argv, CliOptions* options);

/// Number of quasi-identifier columns implied by the file's first row
/// (fields minus one for the sensitive column when there are >= 2 fields);
/// 0 if the file is empty/unreadable.
size_t InferColumns(const std::string& path);

/// Runs the anonymization pipeline; diagnostics go to `log`. Returns the
/// process exit code.
int Run(const CliOptions& options, std::ostream& log = std::cerr);

}  // namespace kanon::cli

#endif  // KANON_TOOLS_CLI_LIB_H_
