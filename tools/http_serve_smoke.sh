#!/usr/bin/env bash
# Loopback HTTP serve smoke: start `kanon_cli serve --listen` on an
# ephemeral port, drive every endpoint with curl, SIGTERM the process and
# assert a clean graceful drain:
#
#   1. every endpoint answers with the documented shape (ingest ack,
#      release JSON, healthz, Prometheus /metrics),
#   2. the process exits 0 on SIGTERM after printing "draining", and
#   3. zero lost acknowledged records: the final snapshot holds at least
#      every record a client saw {"accepted":N} for (here: exactly, since
#      this script is the only writer).
#
# Usage: http_serve_smoke.sh <kanon_cli> [workdir]
# Env:   KANON_SHARDS=N   serve with N shards (default 1): ingest fans out
#                         across shard queues and the release below is the
#                         stitched per-shard snapshot
#        KANON_MEMTABLE=1 serve with the write-absorbing memtable on (small
#                         budget + short merge cadence): the same endpoint
#                         shapes and the zero-lost-acks drain invariant
#                         must hold when acked records sit memtable-resident
#                         at SIGTERM, and /metrics must export the
#                         kanon_memtable_*/kanon_merges_total series
#        KANON_DELTA=1    like KANON_MEMTABLE but flushes merge with
#                         --merge-mode delta (implies the memtable flags);
#                         /metrics must additionally export the
#                         kanon_delta_merges_total series with a non-zero
#                         value by drain time
#        KANON_DP=1       serve with a small --dp-budget and drive the DP
#                         read side: /release/dp must answer the same bytes
#                         twice (memoized release), /release/dp/query must
#                         answer a range count, over-budget draws must be
#                         429, malformed params 400, and /metrics must
#                         export the kanon_dp_* and
#                         kanon_release_avg_range_error series

set -u

CLI=${1:?usage: http_serve_smoke.sh <kanon_cli> [workdir]}
WORKDIR=${2:-$(mktemp -d /tmp/kanon_http_smoke_XXXXXX)}
K=5
ROWS=4000
BATCH=200
SHARDS=${KANON_SHARDS:-1}

SHARD_ARGS=""
if [ "$SHARDS" -gt 1 ]; then
  SHARD_ARGS="--shards $SHARDS"
fi
if [ -n "${KANON_DELTA:-}" ]; then
  # A short cadence so flushes outgrow the run*delta_full_fraction >= tree
  # full-rebuild heuristic within the 4000-row stream: the later flushes
  # must actually take the delta path for the metrics assertion below.
  SHARD_ARGS="$SHARD_ARGS --memtable-bytes 262144 --merge-every 400"
  SHARD_ARGS="$SHARD_ARGS --merge-mode delta"
elif [ -n "${KANON_MEMTABLE:-}" ]; then
  SHARD_ARGS="$SHARD_ARGS --memtable-bytes 262144 --merge-every 1500"
fi
if [ -n "${KANON_DP:-}" ]; then
  # A budget that fits one 0.9-epsilon draw but not a second distinct one:
  # the 0.2 draw below must be the typed 429. The fixed --dp-key secret
  # makes the DP bodies reproducible across runs (noise is a server-held
  # key derivation, never a client seed); --dp-metrics-utility opts the
  # truth-derived utility pair into /metrics (this scrape is trusted).
  SHARD_ARGS="$SHARD_ARGS --dp-budget 1.0 --dp-key smoke-secret"
  SHARD_ARGS="$SHARD_ARGS --dp-metrics-utility"
fi

mkdir -p "$WORKDIR"
LOG="$WORKDIR/serve.log"
WAL_DIR="$WORKDIR/wal"

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- Start the server (ephemeral port, WAL on, HTTP-only ingest) ---------
"$CLI" serve --listen 127.0.0.1:0 --domain "0:1000,0:1000" --k "$K" \
  --snapshot-every 500 --wal-dir "$WAL_DIR" $SHARD_ARGS > "$LOG" 2>&1 &
PID=$!
trap 'kill -9 $PID 2> /dev/null' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2> /dev/null || fail "server died at startup (see $LOG)"
  sleep 0.05
done
[ -n "$PORT" ] || fail "server never printed its port (see $LOG)"
BASE="http://127.0.0.1:$PORT"
echo "server up on $BASE"

# --- Ingest ROWS records in BATCH-row NDJSON posts -----------------------
ACKED=0
awk -v n="$ROWS" 'BEGIN {
  srand(7);
  for (i = 0; i < n; i++)
    printf "%.6f,%.6f,%d\n", rand() * 1000, rand() * 1000, int(rand() * 8);
}' > "$WORKDIR/rows.csv"
while IFS= read -r resp; do
  N=$(echo "$resp" | sed -n 's/.*"accepted":\([0-9]*\).*/\1/p')
  [ -n "$N" ] || fail "ingest answered without an accepted count: $resp"
  ACKED=$((ACKED + N))
done < <(split -l "$BATCH" \
  --filter="curl -sS -m 10 -H 'Expect:' --data-binary @- $BASE/ingest; echo" \
  "$WORKDIR/rows.csv")
[ "$ACKED" -eq "$ROWS" ] || fail "acked $ACKED of $ROWS ingested records"
echo "ingested $ACKED records over HTTP"

# --- Read side: release, multigranular query, healthz, metrics -----------
RELEASE=$(curl -sS -m 10 "$BASE/release?summary=1")
echo "$RELEASE" | grep -q '"records":' || fail "bad /release: $RELEASE"

QUERY=$(curl -sS -m 10 "$BASE/release/query?k1=$((K * 4))&summary=1")
echo "$QUERY" | grep -q "\"k1\":$((K * 4))" \
  || fail "bad /release/query: $QUERY"

HEALTH_CODE=$(curl -sS -m 10 -o "$WORKDIR/health.json" \
  -w '%{http_code}' "$BASE/healthz")
[ "$HEALTH_CODE" = 200 ] || fail "healthz answered $HEALTH_CODE"
grep -q '"health":"serving"' "$WORKDIR/health.json" \
  || fail "bad healthz body: $(cat "$WORKDIR/health.json")"

curl -sS -m 10 "$BASE/metrics" > "$WORKDIR/metrics.txt"
for metric in kanon_inserted_total kanon_wal_appended_total \
              kanon_http_requests_total kanon_http_request_latency_ms \
              kanon_build_info kanon_shards; do
  grep -q "$metric" "$WORKDIR/metrics.txt" \
    || fail "/metrics is missing $metric"
done
grep -q "kanon_inserted_total $ROWS" "$WORKDIR/metrics.txt" \
  || fail "/metrics inserted_total != $ROWS"
grep -q "^kanon_shards $SHARDS$" "$WORKDIR/metrics.txt" \
  || fail "/metrics kanon_shards != $SHARDS"
if [ "$SHARDS" -gt 1 ]; then
  for s in $(seq 0 $((SHARDS - 1))); do
    grep -q "kanon_shard_inserted_total{shard=\"$s\"}" \
      "$WORKDIR/metrics.txt" \
      || fail "/metrics is missing per-shard series for shard $s"
  done
fi
if [ -n "${KANON_MEMTABLE:-}" ] || [ -n "${KANON_DELTA:-}" ]; then
  for metric in kanon_memtable_enabled kanon_memtable_records \
                kanon_memtable_bytes kanon_merges_total \
                kanon_merge_duration_ms; do
    grep -q "$metric" "$WORKDIR/metrics.txt" \
      || fail "/metrics is missing $metric"
  done
  grep -q "^kanon_memtable_enabled 1$" "$WORKDIR/metrics.txt" \
    || fail "/metrics kanon_memtable_enabled != 1"
fi
if [ -n "${KANON_DELTA:-}" ]; then
  for metric in kanon_delta_merges_total kanon_merge_escalations_total \
                kanon_fragments_reused_total kanon_fragments_built_total; do
    grep -q "$metric" "$WORKDIR/metrics.txt" \
      || fail "/metrics is missing $metric"
  done
  # 4000 rows over a 400-record cadence: once the tree outgrows
  # 400 * delta_full_fraction records, every later flush must take the
  # delta path.
  DELTA_MERGES=$(sed -n 's/^kanon_delta_merges_total \([0-9]*\).*/\1/p' \
    "$WORKDIR/metrics.txt")
  [ -n "$DELTA_MERGES" ] && [ "$DELTA_MERGES" -ge 1 ] \
    || fail "/metrics kanon_delta_merges_total=$DELTA_MERGES, want >= 1"
fi
if [ -n "${KANON_DP:-}" ]; then
  # The DP release must be memoized: two GETs with the same epsilon return
  # byte-identical bodies and the epoch in a header, not the body. The
  # body must carry no noise-source material (no seed, no key).
  curl -sS -m 10 "$BASE/release/dp?epsilon=0.9" > "$WORKDIR/dp1.json"
  grep -q '"semantics":"dp"' "$WORKDIR/dp1.json" \
    || fail "bad /release/dp: $(cat "$WORKDIR/dp1.json")"
  grep -q '"cells":\[' "$WORKDIR/dp1.json" \
    || fail "/release/dp carries no cells: $(cat "$WORKDIR/dp1.json")"
  grep -q '"epoch"' "$WORKDIR/dp1.json" \
    && fail "/release/dp leaks the epoch into the DP body"
  grep -qE '"(seed|key)"' "$WORKDIR/dp1.json" \
    && fail "/release/dp leaks noise-source material into the DP body"
  curl -sS -m 10 "$BASE/release/dp?epsilon=0.9" > "$WORKDIR/dp2.json"
  cmp -s "$WORKDIR/dp1.json" "$WORKDIR/dp2.json" \
    || fail "two /release/dp GETs with one epsilon differ"

  DP_QUERY=$(curl -sS -m 10 \
    "$BASE/release/dp/query?lo=0,0&hi=500,1000&epsilon=0.9")
  echo "$DP_QUERY" | grep -q '"count":' \
    || fail "bad /release/dp/query: $DP_QUERY"

  # A second distinct draw would spend 0.9 + 0.2 > 1.0: typed 429.
  CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' \
    "$BASE/release/dp?epsilon=0.2")
  [ "$CODE" = 429 ] || fail "over-budget /release/dp answered $CODE, want 429"
  # Unknown and malformed params are 400s, never ignored — including the
  # retired client seed parameter (noise comes only from the server key).
  CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' \
    "$BASE/release/dp?eps=1")
  [ "$CODE" = 400 ] || fail "unknown DP param answered $CODE, want 400"
  CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' \
    "$BASE/release/dp?epsilon=0.9&seed=7")
  [ "$CODE" = 400 ] || fail "client seed param answered $CODE, want 400"
  CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' \
    "$BASE/release/dp/query?lo=0&hi=1,1&epsilon=0.9")
  [ "$CODE" = 400 ] || fail "short DP bounds answered $CODE, want 400"

  curl -sS -m 10 "$BASE/metrics" > "$WORKDIR/metrics.txt"
  for metric in kanon_dp_budget kanon_dp_budget_spent \
                kanon_dp_lifetime_budget kanon_dp_lifetime_spent \
                kanon_dp_releases_total kanon_dp_cache_hits_total \
                kanon_dp_rejected_total kanon_dp_evicted_total \
                kanon_dp_height kanon_release_avg_range_error; do
    grep -q "$metric" "$WORKDIR/metrics.txt" \
      || fail "/metrics is missing $metric"
  done
  grep -q '^kanon_dp_rejected_total 1$' "$WORKDIR/metrics.txt" \
    || fail "/metrics kanon_dp_rejected_total != 1 after the 429"
  echo "dp read side ok (release memoized, query, 429, 400s, metrics)"
fi
echo "read side ok (release, query, healthz, metrics)"

# --- Error mapping: malformed ingest is 400, unknown route 404 -----------
CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' \
  -H 'Expect:' --data-binary 'not-a-record' "$BASE/ingest")
[ "$CODE" = 400 ] || fail "malformed ingest answered $CODE, want 400"
CODE=$(curl -sS -m 10 -o /dev/null -w '%{http_code}' "$BASE/nope")
[ "$CODE" = 404 ] || fail "unknown route answered $CODE, want 404"

# --- Graceful drain on SIGTERM -------------------------------------------
kill -TERM "$PID"
DRAIN_OK=""
for _ in $(seq 1 100); do
  kill -0 "$PID" 2> /dev/null || { DRAIN_OK=1; break; }
  sleep 0.1
done
[ -n "$DRAIN_OK" ] || fail "server did not exit within 10s of SIGTERM"
wait "$PID"
RC=$?
trap - EXIT
[ "$RC" -eq 0 ] || fail "server exited $RC after SIGTERM (see $LOG)"
grep -q '^draining (SIGTERM)' "$LOG" || fail "no drain line in $LOG"

# Zero lost acknowledged records: the final snapshot covers every acked
# record (this script was the only writer, so exactly ROWS).
FINAL=$(grep '^final snapshot:' "$LOG") \
  || fail "no final snapshot line in $LOG"
RECORDS=$(echo "$FINAL" | sed -n 's/.*records=\([0-9]*\).*/\1/p')
[ "$RECORDS" -eq "$ROWS" ] \
  || fail "final snapshot has $RECORDS records, acked $ROWS"
HTTP_ACKED=$(sed -n 's/.*http_accepted_records=\([0-9]*\).*/\1/p' "$LOG")
[ "$HTTP_ACKED" -eq "$ROWS" ] \
  || fail "server counted $HTTP_ACKED accepted records, client acked $ROWS"

echo "PASS: serve smoke (ingest=$ACKED, drain clean, snapshot=$RECORDS)"
rm -rf "$WORKDIR"
