// kanon_cli — anonymize a numeric CSV from the command line.
//
//   kanon_cli --input data.csv --output anon.csv --k 10
//             [--schema spec.txt | --columns 8] [--skip-header]
//             [--algorithm rtree|mondrian|grid]
//             [--ldiversity L | --entropy L | --recursive C,L | --alpha A]
//             [--uncompacted] [--bias COL[,COL...]] [--metrics]
//             [--threads N]
//
// --threads N (rtree only) selects the parallel sorted bulk-load backend
// on N threads. The pipeline is deterministic: every thread count yields
// the same partitions.
//
// Serve mode streams the CSV through the concurrent incremental
// anonymization service (src/service/) and reports serving statistics:
//
//   kanon_cli serve --input data.csv --k 10
//             [--schema spec.txt | --columns 8] [--skip-header]
//             [--producers P] [--rate RECORDS_PER_SEC] [--queue N]
//             [--batch B] [--snapshot-every N] [--reject]
//             [--release K1[,K1...]]
//             [--wal-dir DIR] [--fsync-every N] [--checkpoint-every N]
//             [--recover-only]
//             [--listen HOST:PORT] [--http-threads N]
//             [--max-body-bytes N] [--domain LO:HI[,LO:HI...]]
//             [--serve-seconds S]
//
// With --wal-dir the service write-ahead-logs every ingested record and
// periodically checkpoints the index (src/durability/); restarting with
// the same directory recovers the checkpoint plus the WAL tail before
// ingesting. --recover-only performs the recovery, prints what it
// restored, and exits without streaming the input.
//
// With --listen the serve mode also fronts the service with the epoll
// HTTP/1.1 server (src/net/): POST /ingest, GET /release[/query],
// GET /healthz, GET /metrics. Port 0 binds an ephemeral port; the actual
// address is printed as "listening on HOST:PORT". Without --input the
// record dimensionality and domain come from --domain (one LO:HI range
// per quasi-identifier). The server runs until SIGTERM/SIGINT (or
// --serve-seconds), then drains gracefully: in-flight requests finish,
// the WAL flushes, and a final snapshot publishes before exit.
//
// With --follow LEADER:PORT the process is a read replica instead: it
// bootstraps from the leader's checkpoint (GET /repl/checkpoint/<lsn>),
// tails its WAL (GET /repl/wal), and serves /release, /healthz and
// /metrics from its own epoch snapshots — byte-identical to the leader's
// at the same epoch. POST /ingest answers 421 with a Location on the
// leader. --max-staleness-ms bounds how stale the replica may get before
// /healthz degrades; --stale-reads reject turns stale /release into 503.
// Requires --listen and --domain (which must match the leader's
// dimensionality); the anonymizer configuration is taken from the
// leader's manifest, not local flags.
//
// Every serving role also exposes differentially private releases:
// GET /release/dp?epsilon= serves noisy consistent hierarchical counts
// over a data-independent grid (--dp-height levels), and
// /release/dp/query answers range counts from them. The noise comes from
// a server-held secret key — never from a client-suppliable seed —
// derived from --dp-key (empty = random per process); give every server
// of one deployment the same secret and they serve byte-identical DP
// bodies over the same records. --dp-budget caps the epsilon spendable
// per release point (served 429 past it), --dp-lifetime-budget caps it
// across all release points, and --dp-metrics-utility opts the
// truth-derived utility pair into /metrics (trusted scrape planes only).
// --dp-height 0 disables DP cell accounting entirely (the endpoints then
// answer 409).
//
// The input's quasi-identifier fields are parsed as numbers (categoricals
// numerically recoded upstream); an optional final integer column is the
// sensitive attribute. With --schema (see data/schema_spec.h) attributes
// get names, types and generalization hierarchies, which compaction and
// the certainty metric then honor. The output CSV holds one "lo..hi" cell
// per quasi-identifier plus the sensitive code.
//
// The pipeline lives in tools/cli_lib.{h,cc} (unit tested); this file is
// the thin executable wrapper.

#include <iostream>

#include "cli_lib.h"

namespace {

void Usage() {
  std::cerr <<
      "usage: kanon_cli --input FILE --output FILE --k K\n"
      "                 [--schema SPEC | --columns N] [--skip-header]\n"
      "                 [--algorithm rtree|mondrian|grid]\n"
      "                 [--ldiversity L | --entropy L | --recursive C,L |\n"
      "                  --alpha A] [--uncompacted]\n"
      "                 [--bias COL[,COL...]] [--metrics] [--threads N]\n"
      "   or: kanon_cli serve --input FILE --k K\n"
      "                 [--schema SPEC | --columns N] [--skip-header]\n"
      "                 [--producers P] [--rate R] [--queue N] [--batch B]\n"
      "                 [--snapshot-every N] [--reject]\n"
      "                 [--release K1[,K1...]]\n"
      "                 [--wal-dir DIR] [--fsync-every N]\n"
      "                 [--checkpoint-every N] [--recover-only]\n"
      "                 [--listen HOST:PORT] [--http-threads N]\n"
      "                 [--max-body-bytes N]\n"
      "                 [--domain LO:HI[,LO:HI...]] [--serve-seconds S]\n"
      "                 [--shards N] [--shard-by hash|range]\n"
      "                 [--memtable-bytes N] [--merge-every N]\n"
      "                 [--merge-mode full|delta]\n"
      "                 [--follow LEADER:PORT] [--max-staleness-ms MS]\n"
      "                 [--stale-reads serve|reject] [--repl-poll-ms MS]\n"
      "                 [--dp-height H] [--dp-budget EPS]\n"
      "                 [--dp-lifetime-budget EPS] [--dp-key SECRET]\n"
      "                 [--dp-metrics-utility]\n"
      "(--input is optional when --listen and --domain are both given:\n"
      " records then arrive over HTTP; --follow makes the process a read\n"
      " replica of LEADER and requires --listen and --domain)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    kanon::cli::ServeOptions options;
    if (!kanon::cli::ParseServeArgs(argc - 1, argv + 1, &options)) {
      Usage();
      return 2;
    }
    return kanon::cli::RunServe(options);
  }
  kanon::cli::CliOptions options;
  if (!kanon::cli::ParseArgs(argc, argv, &options)) {
    Usage();
    return 2;
  }
  return kanon::cli::Run(options);
}
