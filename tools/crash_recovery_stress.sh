#!/usr/bin/env bash
# Crash-recovery stress test: SIGKILL the serving process at a random point
# mid-ingest, restart in --recover-only mode, and assert
#
#   1. record conservation: every recovered record is counted exactly once
#      (recovered == next_lsn - 1 — the LSN-dense invariant; duplicates or
#      losses within the durable horizon would break it), and
#   2. the recovered release is k-anonymous (min_partition >= k once at
#      least k records survived).
#
# With KANON_FAULT_SEED set, each serving run additionally executes a
# deterministic I/O fault schedule (seed + iteration): torn writes, ENOSPC
# and failed fsyncs land on the WAL *while* the process is also being
# SIGKILLed — the same invariants must hold over whatever suffix of the
# stream survived both. The recovery pass always runs fault-free (it models
# a healthy replacement disk).
#
# Usage: crash_recovery_stress.sh <kanon_cli> [iterations] [workdir]
# Env:   KANON_FAULT_SEED       base seed; enables fault injection
#        KANON_FAULT_MEAN_OPS   mean data-plane ops between faults
#        KANON_FAULT_BREAK_AFTER hard disk-death op index
#        KANON_HTTP=1           drive ingest over the HTTP front-end
#                               (curl POST /ingest against --listen) so the
#                               SIGKILL lands mid-HTTP-request; the
#                               durability invariants must hold identically
#        KANON_SHARDS=N         serve and recover with N shards: the kill
#                               lands across N independent WAL directories
#                               and the conservation invariant must hold
#                               per shard (recovered_i == next_lsn_i - 1)
#        KANON_MEMTABLE=1       serve and recover with the write-absorbing
#                               memtable on (small budget + short merge
#                               cadence), so the SIGKILL lands while acked
#                               records are memtable-resident — durable only
#                               in the WAL — and sometimes mid-merge; the
#                               same conservation and k-bound invariants
#                               must hold from the replayed tail
#        KANON_DELTA=1          like KANON_MEMTABLE, but flushes merge with
#                               --merge-mode delta: kills land mid-delta-
#                               merge and recovery replays onto delta-built
#                               trees — conservation and the k bound must
#                               be merge-strategy-independent (implies the
#                               memtable flags)
#        KANON_REPL=1           replication chaos mode: one leader + one
#                               --follow read replica; each iteration
#                               SIGKILLs the leader mid-tail and restarts it
#                               on the same port. The follower must
#                               reconnect without operator action and
#                               converge to a byte-identical /release.
#                               (Replaces the recover-only loop; fault-seed
#                               composition does not apply here.)

set -u

CLI=${1:?usage: crash_recovery_stress.sh <kanon_cli> [iterations] [workdir]}
ITERATIONS=${2:-8}
WORKDIR=${3:-$(mktemp -d /tmp/kanon_crash_stress_XXXXXX)}
K=10
ROWS=20000
FAULT_BASE_SEED=${KANON_FAULT_SEED:-}
SHARDS=${KANON_SHARDS:-1}

SHARD_ARGS=""
if [ "$SHARDS" -gt 1 ]; then
  SHARD_ARGS="--shards $SHARDS"
fi
# Memtable mode: 1 MiB budget / 3000-record cadence keeps several merges in
# flight over a 20k-row stream, so kills land both between and during
# flushes. The same flags go to the recovery pass — replayed tail records
# land in a fresh memtable there too. KANON_DELTA additionally routes every
# flush through the incremental delta merge (and implies the memtable).
if [ -n "${KANON_MEMTABLE:-}" ] || [ -n "${KANON_DELTA:-}" ]; then
  SHARD_ARGS="$SHARD_ARGS --memtable-bytes 1048576 --merge-every 3000"
fi
if [ -n "${KANON_DELTA:-}" ]; then
  SHARD_ARGS="$SHARD_ARGS --merge-mode delta"
fi

mkdir -p "$WORKDIR"
INPUT="$WORKDIR/stream.csv"
WAL_DIR="$WORKDIR/wal"

# ~20k rows of "x,y,sensitive".
awk -v n="$ROWS" 'BEGIN {
  srand(42);
  for (i = 0; i < n; i++)
    printf "%.6f,%.6f,%d\n", rand() * 1000, rand() * 1000, int(rand() * 8);
}' > "$INPUT"

fail() { echo "FAIL: $*" >&2; exit 1; }

# Waits for "listening on 127.0.0.1:PORT" in $1 while pid $2 stays alive;
# prints the port (empty on failure).
wait_port() {
  local log=$1 pid=$2 port=""
  for _ in $(seq 1 200); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [ -n "$port" ] && break
    kill -0 "$pid" 2> /dev/null || break
    sleep 0.05
  done
  echo "$port"
}

if [ -n "${KANON_REPL:-}" ]; then
  # Replication chaos: a leader and a follower stay up across the whole
  # run; every iteration kills the leader mid-tail (SIGKILL, no drain) and
  # restarts it on the same port from the same WAL directory. The follower
  # must ride every outage by itself: reconnect, re-fetch from its applied
  # LSN (or re-bootstrap if the range was checkpoint-truncated), chase the
  # restarted leader's renumbered epochs, and end byte-identical.
  ROWS_PER_ROUND=2000
  LEADER_LOG="$WORKDIR/leader_0.log"
  rm -rf "$WAL_DIR"

  "$CLI" serve --listen 127.0.0.1:0 --domain "0:1000,0:1000" --k "$K" \
    --wal-dir "$WAL_DIR" --fsync-every 64 --checkpoint-every 2000 \
    --snapshot-every 500 > "$LEADER_LOG" 2>&1 &
  LEADER_PID=$!
  LEADER_PORT=$(wait_port "$LEADER_LOG" "$LEADER_PID")
  [ -n "$LEADER_PORT" ] || fail "leader never printed its port"

  FOLLOWER_LOG="$WORKDIR/follower.log"
  "$CLI" serve --follow "127.0.0.1:$LEADER_PORT" \
    --listen 127.0.0.1:0 --domain "0:1000,0:1000" --k "$K" \
    --repl-poll-ms 10 --max-staleness-ms 30000 \
    > "$FOLLOWER_LOG" 2>&1 &
  FOLLOWER_PID=$!
  FOLLOWER_PORT=$(wait_port "$FOLLOWER_LOG" "$FOLLOWER_PID")
  [ -n "$FOLLOWER_PORT" ] || fail "follower never printed its port"

  for i in $(seq 1 "$ITERATIONS"); do
    # Pump this round's slice while the kill timer runs: the SIGKILL lands
    # mid-ingest and mid-tail.
    FIRST=$(( (i - 1) * ROWS_PER_ROUND + 1 ))
    LAST=$(( i * ROWS_PER_ROUND ))
    sed -n "${FIRST},${LAST}p" "$INPUT" \
      | split -l 200 --filter="curl -s -o /dev/null -m 5 -H 'Expect:' \
        --data-binary @- http://127.0.0.1:$LEADER_PORT/ingest || true" \
        - > /dev/null 2>&1 &
    PUMP=$!
    sleep "0.$(( (RANDOM % 7) + 2 ))"
    kill -9 "$LEADER_PID" 2> /dev/null
    wait "$LEADER_PID" 2> /dev/null
    wait "$PUMP" 2> /dev/null

    # Restart on the same port (retry while the old socket lingers). The
    # restarted leader recovers from the WAL and renumbers epochs from 1 —
    # the follower must converge regardless.
    LEADER_LOG="$WORKDIR/leader_$i.log"
    STARTED=""
    for _ in $(seq 1 40); do
      "$CLI" serve --listen "127.0.0.1:$LEADER_PORT" \
        --domain "0:1000,0:1000" --k "$K" \
        --wal-dir "$WAL_DIR" --fsync-every 64 --checkpoint-every 2000 \
        --snapshot-every 500 > "$LEADER_LOG" 2>&1 &
      LEADER_PID=$!
      PORT=$(wait_port "$LEADER_LOG" "$LEADER_PID")
      if [ "$PORT" = "$LEADER_PORT" ]; then STARTED=1; break; fi
      wait "$LEADER_PID" 2> /dev/null
      sleep 0.25
    done
    [ -n "$STARTED" ] \
      || fail "iteration $i: leader would not rebind port $LEADER_PORT"
    echo "iteration $i: leader killed and restarted on port $LEADER_PORT"
  done

  # Quiesce: a final slice lands entirely on the last incarnation, so the
  # leader publishes a fresh epoch for the follower to chase.
  FIRST=$(( ITERATIONS * ROWS_PER_ROUND + 1 ))
  LAST=$(( FIRST + ROWS_PER_ROUND - 1 ))
  sed -n "${FIRST},${LAST}p" "$INPUT" \
    | split -l 200 --filter="curl -s -o /dev/null -m 5 -H 'Expect:' \
      --data-binary @- http://127.0.0.1:$LEADER_PORT/ingest || true" \
      - > /dev/null 2>&1

  # Convergence: the follower's /release must become byte-identical to the
  # leader's (same epoch, same partitions, same bytes).
  CONVERGED=""
  for _ in $(seq 1 240); do
    L=$(curl -s -m 5 "http://127.0.0.1:$LEADER_PORT/release")
    F=$(curl -s -m 5 "http://127.0.0.1:$FOLLOWER_PORT/release")
    if [ -n "$L" ] && [ "$L" = "$F" ] \
       && echo "$L" | grep -q '"records"'; then
      CONVERGED=1
      break
    fi
    sleep 0.25
  done
  [ -n "$CONVERGED" ] || fail "follower never converged to the leader's \
release (leader: ${L:0:120}... follower: ${F:0:120}...)"

  RECONNECTS=$(curl -s -m 5 "http://127.0.0.1:$FOLLOWER_PORT/metrics" \
    | sed -n 's/^kanon_repl_reconnects_total \([0-9]*\).*/\1/p')
  [ -n "$RECONNECTS" ] && [ "$RECONNECTS" -ge 1 ] \
    || fail "follower reconnects=$RECONNECTS after $ITERATIONS leader kills"
  HEALTH=$(curl -s -m 5 -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$FOLLOWER_PORT/healthz")
  [ "$HEALTH" = "200" ] || fail "follower healthz=$HEALTH after convergence"

  kill "$LEADER_PID" "$FOLLOWER_PID" 2> /dev/null
  wait "$LEADER_PID" 2> /dev/null
  wait "$FOLLOWER_PID" 2> /dev/null
  echo "PASS: follower survived $ITERATIONS leader SIGKILLs" \
       "(reconnects=$RECONNECTS) and converged byte-identical"
  rm -rf "$WORKDIR"
  exit 0
fi

for i in $(seq 1 "$ITERATIONS"); do
  rm -rf "$WAL_DIR"
  LOG="$WORKDIR/serve_$i.log"

  # Each iteration gets its own derived seed so the schedule varies while
  # any single failure reproduces from the seed printed in its log.
  if [ -n "$FAULT_BASE_SEED" ]; then
    export KANON_FAULT_SEED=$((FAULT_BASE_SEED + i))
  fi

  # Rate-limit so the kill lands mid-ingest, then SIGKILL after a random
  # 0.1-0.7s — sometimes mid-WAL-append, sometimes mid-checkpoint.
  PUMP=""
  if [ -n "${KANON_HTTP:-}" ]; then
    # HTTP mode: records arrive over POST /ingest instead of --input, so
    # the kill also lands mid-request / mid-response on the socket path.
    "$CLI" serve --listen 127.0.0.1:0 --domain "0:1000,0:1000" --k "$K" \
      --wal-dir "$WAL_DIR" --fsync-every 64 --checkpoint-every 2000 \
      $SHARD_ARGS > "$LOG" 2>&1 &
    PID=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")
      [ -n "$PORT" ] && break
      kill -0 "$PID" 2> /dev/null || break
      sleep 0.05
    done
    [ -n "$PORT" ] || fail "iteration $i: server never printed its port"
    # Stream the file as 200-row NDJSON batches until the server dies.
    split -l 200 --filter="curl -s -o /dev/null -m 5 -H 'Expect:' \
      --data-binary @- http://127.0.0.1:$PORT/ingest || true" \
      "$INPUT" > /dev/null 2>&1 &
    PUMP=$!
  else
    "$CLI" serve --input "$INPUT" --k "$K" --rate 30000 \
      --wal-dir "$WAL_DIR" --fsync-every 64 --checkpoint-every 2000 \
      $SHARD_ARGS > "$LOG" 2>&1 &
    PID=$!
  fi
  sleep "0.$(( (RANDOM % 7) + 1 ))"
  kill -9 "$PID" 2> /dev/null
  wait "$PID" 2> /dev/null
  if [ -n "$PUMP" ]; then
    kill "$PUMP" 2> /dev/null
    wait "$PUMP" 2> /dev/null
  fi

  # Recovery models restarting on healthy hardware: no fault injection.
  RECOVERY_LOG="$WORKDIR/recover_$i.log"
  env -u KANON_FAULT_SEED "$CLI" serve --input "$INPUT" --k "$K" \
    --recover-only $SHARD_ARGS \
    --wal-dir "$WAL_DIR" --fsync-every 64 --checkpoint-every 2000 \
    > "$RECOVERY_LOG" 2>&1 \
    || fail "iteration $i: recovery exited non-zero (see $RECOVERY_LOG)"

  if [ "$SHARDS" -gt 1 ]; then
    # Per-shard conservation: every shard replays its own WAL directory
    # and must hold exactly one record per assigned LSN.
    RECOVERED=0
    MAX_SHARD_RECOVERED=0
    for s in $(seq 0 $((SHARDS - 1))); do
      LINE=$(grep "^recovery shard=$s:" "$RECOVERY_LOG") \
        || fail "iteration $i: no recovery line for shard $s in $RECOVERY_LOG"
      R=$(echo "$LINE" | sed -n 's/.*recovered=\([0-9]*\).*/\1/p')
      NL=$(echo "$LINE" | sed -n 's/.*next_lsn=\([0-9]*\).*/\1/p')
      [ "$R" -eq $((NL - 1)) ] \
        || fail "iteration $i shard $s: recovered=$R != next_lsn-1=$((NL - 1))"
      RECOVERED=$((RECOVERED + R))
      [ "$R" -gt "$MAX_SHARD_RECOVERED" ] && MAX_SHARD_RECOVERED=$R
    done
  else
    LINE=$(grep '^recovery:' "$RECOVERY_LOG") \
      || fail "iteration $i: no recovery line in $RECOVERY_LOG"
    RECOVERED=$(echo "$LINE" | sed -n 's/.*recovered=\([0-9]*\).*/\1/p')
    NEXT_LSN=$(echo "$LINE" | sed -n 's/.*next_lsn=\([0-9]*\).*/\1/p')

    # Exactly-once: the tree holds one record per assigned LSN, no more, no
    # fewer — double-replay or lost-acked-record both break this equality.
    [ "$RECOVERED" -eq $((NEXT_LSN - 1)) ] \
      || fail "iteration $i: recovered=$RECOVERED != next_lsn-1=$((NEXT_LSN - 1))"
    MAX_SHARD_RECOVERED=$RECOVERED
  fi

  # A shard publishes on recovery only once it holds >= k records, so the
  # stitched snapshot (and its k bound) is owed whenever any shard does.
  if [ "$MAX_SHARD_RECOVERED" -ge "$K" ]; then
    SNAP=$(grep '^final snapshot:' "$RECOVERY_LOG") \
      || fail "iteration $i: no final snapshot despite $RECOVERED records"
    MIN_PART=$(echo "$SNAP" | sed -n 's/.*min_partition=\([0-9]*\).*/\1/p')
    [ "$MIN_PART" -ge "$K" ] \
      || fail "iteration $i: min_partition=$MIN_PART < k=$K"
  fi
  SEED=$(sed -n 's/^fault injection: seed=\([0-9]*\).*/\1/p' "$LOG" \
         | head -n 1)
  echo "iteration $i: recovered=$RECOVERED" \
       "min_partition=${MIN_PART:-n/a} fault_seed=${SEED:-off}" \
       "shards=$SHARDS ok"
done

echo "PASS: $ITERATIONS crash/recover iterations survived (shards=$SHARDS)"
rm -rf "$WORKDIR"
