#include "net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "net/anon_http.h"
#include "net/http_client.h"
#include "net/http_status.h"
#include "service/anonymization_service.h"
#include "shard/sharded_service.h"

namespace kanon::net {
namespace {

Domain SquareDomain(double lo, double hi) {
  Domain d;
  d.lo = {lo, lo};
  d.hi = {hi, hi};
  return d;
}

ServiceOptions SmallServiceOptions(size_t k) {
  ServiceOptions options;
  options.anonymizer.base_k = k;
  options.queue_capacity = 256;
  options.max_batch = 16;
  options.snapshot_every = 0;  // publish on demand
  return options;
}

/// One NDJSON body of `n` grid points in [0,100)^2, ids offset so
/// successive bodies do not collide spatially.
std::string GridBody(size_t n, size_t offset = 0) {
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    const size_t v = offset + i;
    body += std::to_string(v % 97) + "," + std::to_string((v * 7) % 89) +
            "," + std::to_string(v % 5) + "\n";
  }
  return body;
}

struct ServerUnderTest {
  std::unique_ptr<ShardedAnonymizationService> service;
  std::unique_ptr<AnonHttpFrontend> frontend;
  std::unique_ptr<HttpServer> server;
};

ServerUnderTest StartServer(ServiceOptions service_options, bool use_epoll,
                            size_t num_threads = 2, size_t shards = 1,
                            AnonHttpOptions frontend_options = {}) {
  ServerUnderTest s;
  ShardedServiceOptions sharded_options;
  sharded_options.service = service_options;
  sharded_options.sharding.num_shards = shards;
  auto service_or = ShardedAnonymizationService::Create(
      2, SquareDomain(0, 100), sharded_options);
  EXPECT_TRUE(service_or.ok()) << service_or.status();
  s.service = std::move(*service_or);
  s.frontend =
      std::make_unique<AnonHttpFrontend>(s.service.get(), frontend_options);
  HttpServerOptions options;
  options.port = 0;  // ephemeral
  options.num_threads = num_threads;
  options.use_epoll = use_epoll;
  s.server = std::make_unique<HttpServer>(
      options, [f = s.frontend.get()](const HttpRequest& request) {
        return f->Handle(request);
      });
  s.frontend->SetServerStats([srv = s.server.get()] { return srv->stats(); });
  EXPECT_TRUE(s.server->Start().ok());
  return s;
}

HttpClient ConnectTo(const HttpServer& server) {
  HttpClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  return client;
}

/// Both event backends must behave identically; the fixture runs every
/// test against epoll (where available) and the portable poll fallback.
class HttpServerBackendTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Backends, HttpServerBackendTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Epoll" : "Poll";
                         });

TEST_P(HttpServerBackendTest, LoopbackIngestThenReleaseEndToEnd) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), GetParam());
  HttpClient client = ConnectTo(*s.server);

  auto post = client.Post("/ingest", GridBody(40));
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(post->status, 200);
  EXPECT_EQ(post->body, "{\"accepted\":40}");
  EXPECT_EQ(s.frontend->accepted(), 40u);

  const auto snapshot = s.service->PublishNow();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->info().records, 40u);
  EXPECT_EQ(snapshot->info().num_shards, 1u);

  // The HTTP release must be byte-identical to the in-process release
  // serialized through the same deterministic formatter.
  auto get = client.Get("/release/query?k1=8&rids=1");
  ASSERT_TRUE(get.ok()) << get.status();
  ASSERT_EQ(get->status, 200);
  const std::string expected =
      "\"partitions\":" + PartitionsJson(snapshot->Release(8), true);
  EXPECT_NE(get->body.find(expected), std::string::npos)
      << "HTTP release differs from in-process release:\n"
      << get->body << "\nexpected to contain\n"
      << expected;
  EXPECT_NE(get->body.find("\"k1\":8"), std::string::npos);

  // Multigranular coarsening holds over HTTP exactly as in-process: the
  // k1 release is k1-anonymous.
  const PartitionSet inproc = snapshot->Release(8);
  EXPECT_TRUE(inproc.CheckKAnonymous(8).ok());

  // Base release (no k1) matches the snapshot's own granularity.
  auto base = client.Get("/release");
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->status, 200);
  EXPECT_NE(base->body.find("\"k1\":5"), std::string::npos);
  EXPECT_NE(base->body.find("\"shards\":1"), std::string::npos);
  EXPECT_NE(base->body.find("\"shard_epochs\":[1]"), std::string::npos)
      << base->body;

  // Health + metrics round out the read side.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"health\":\"serving\""), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("kanon_inserted_total 40"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("kanon_build_info{version=\""),
            std::string::npos);
  EXPECT_NE(metrics->body.find("kanon_shards 1"), std::string::npos);
  EXPECT_NE(metrics->body.find("kanon_shard_inserted_total{shard=\"0\"} 40"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("kanon_http_requests_total{endpoint=\"ingest\""
                               ",code=\"200\"} 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(
      metrics->body.find("kanon_http_request_latency_ms_bucket"),
      std::string::npos);
}

TEST_P(HttpServerBackendTest, ReportsBackendInUse) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), GetParam());
#if defined(__linux__)
  EXPECT_EQ(s.server->using_epoll(), GetParam());
#else
  EXPECT_FALSE(s.server->using_epoll());
#endif
}

TEST(HttpServerTest, UnknownRouteIs404AndBadK1Is400) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), true);
  HttpClient client = ConnectTo(*s.server);

  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_NE(missing->body.find("\"error\":\"NotFound\""), std::string::npos);

  auto bad_k1 = client.Get("/release/query?k1=zero");
  ASSERT_TRUE(bad_k1.ok());
  EXPECT_EQ(bad_k1->status, 400);

  auto wrong_method = client.Get("/ingest");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
}

TEST(HttpServerTest, ReleaseBeforeFirstSnapshotIs503WithRetryAfter) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), true);
  HttpClient client = ConnectTo(*s.server);
  auto get = client.Get("/release");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 503);
  ASSERT_NE(get->FindHeader("retry-after"), nullptr);
}

TEST(HttpServerTest, MalformedIngestLineIs400WithLineNumber) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), true);
  HttpClient client = ConnectTo(*s.server);
  auto post = client.Post("/ingest", "1,2\n3,4\nnot-a-record\n5,6\n");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 400);
  EXPECT_NE(post->body.find("\"line\":3"), std::string::npos) << post->body;
  EXPECT_NE(post->body.find("\"accepted\":2"), std::string::npos);
}

TEST(HttpServerTest, ParserErrorsAnswered400AndConnectionCloses) {
  ServerUnderTest s = StartServer(SmallServiceOptions(5), true);
  HttpClient client = ConnectTo(*s.server);
  // Hand-roll garbage through the client's socket by abusing Get with a
  // target containing a space — the server's parser must 400 it.
  auto resp = client.Get("/bad target");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
}

TEST(HttpServerTest, RejectBackpressureSurfacesAs429) {
  ServiceOptions options = SmallServiceOptions(3);
  options.backpressure = BackpressureMode::kReject;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.snapshot_every = 1;  // rebuild the snapshot per record: slow
  ServerUnderTest s = StartServer(options, true);
  HttpClient client = ConnectTo(*s.server);

  // A large single-connection burst against a 2-slot queue whose consumer
  // rebuilds a snapshot per record must trip kReject -> 429 on some line.
  bool saw_429 = false;
  for (int attempt = 0; attempt < 10 && !saw_429; ++attempt) {
    auto post = client.Post("/ingest", GridBody(500, attempt * 500));
    ASSERT_TRUE(post.ok()) << post.status();
    if (post->status == 429) {
      saw_429 = true;
      EXPECT_NE(post->body.find("\"error\":\"ResourceExhausted\""),
                std::string::npos)
          << post->body;
      EXPECT_NE(post->body.find("\"accepted\":"), std::string::npos);
      ASSERT_NE(post->FindHeader("retry-after"), nullptr);
    } else {
      EXPECT_EQ(post->status, 200);
    }
  }
  EXPECT_TRUE(saw_429)
      << "no 429 in 5000 records against a 2-record queue";
}

TEST(HttpServerTest, StoppedServiceSurfacesAs503AndHealthzFlips) {
  ServerUnderTest s = StartServer(SmallServiceOptions(3), true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(10))->status, 200);
  s.service->Stop();

  auto post = client.Post("/ingest", GridBody(5));
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 503);
  EXPECT_NE(post->body.find("\"error\":\"Unavailable\""), std::string::npos);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 503);
  // Reads survive shutdown: the final snapshot is still served.
  auto release = client.Get("/release");
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->status, 200);
}

TEST(HttpServerTest, DegradedServiceSurfacesAs503) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kanon_http_degraded_test")
          .string();
  std::filesystem::remove_all(dir);

  FaultInjectionOptions fault;
  fault.seed = 7;
  // Past the service's own setup I/O (manifest + WAL open) but well short
  // of the stream: the disk dies under live HTTP ingest.
  fault.break_after_ops = 120;
  fault.sync_faults = true;
  FaultInjectionEnv env(Env::Default(), fault);

  ServiceOptions options = SmallServiceOptions(3);
  options.durability.wal_dir = dir;
  options.durability.env = &env;
  options.durability.retry_backoff_ms = 1;
  options.durability.retry_backoff_max_ms = 2;
  ServerUnderTest s = StartServer(options, true);
  HttpClient client = ConnectTo(*s.server);

  // Keep posting until the broken disk degrades the service; the frontend
  // must answer 503 Unavailable from then on.
  bool saw_503 = false;
  for (int attempt = 0; attempt < 200 && !saw_503; ++attempt) {
    auto post = client.Post("/ingest", GridBody(20, attempt * 20));
    ASSERT_TRUE(post.ok()) << post.status();
    if (post->status == 503) {
      saw_503 = true;
      EXPECT_NE(post->body.find("\"error\":\"Unavailable\""),
                std::string::npos)
          << post->body;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(saw_503) << "service never degraded despite a broken disk";

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 503);
  EXPECT_NE(health->body.find("degraded"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(HttpServerTest, KeepAliveServesManySequentialRequests) {
  ServerUnderTest s = StartServer(SmallServiceOptions(3), true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(10))->status, 200);
  s.service->PublishNow();
  for (int i = 0; i < 50; ++i) {
    auto get = client.Get("/healthz");
    ASSERT_TRUE(get.ok()) << "request " << i << ": " << get.status();
    EXPECT_EQ(get->status, 200);
  }
  // All 51 requests flowed over one connection.
  EXPECT_EQ(s.server->stats().connections_accepted, 1u);
}

TEST(HttpServerTest, ShutdownDrainLosesNoAcknowledgedRecords) {
  ServiceOptions options = SmallServiceOptions(3);
  options.queue_capacity = 64;  // small: writers block mid-drain
  ServerUnderTest s = StartServer(options, true, /*num_threads=*/4);

  // Writers hammer ingest while the main thread shuts the server down.
  constexpr int kWriters = 3;
  std::atomic<uint64_t> acked{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", s.server->port()).ok()) return;
      for (int i = 0; i < 200 && !stop.load(); ++i) {
        auto post = client.Post("/ingest", GridBody(10, w * 10000 + i * 10));
        if (!post.ok()) break;  // connection cut by drain: acceptable
        if (post->status == 200) {
          acked.fetch_add(10);
        } else {
          break;  // 503 during drain: nothing from this batch was acked
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s.server->Shutdown();  // in-flight requests finish and are acked
  stop.store(true);
  for (std::thread& t : writers) t.join();
  s.service->Stop();  // drains the queue into the final snapshot

  // Every record a client saw a 200 for is in the final snapshot. (The
  // snapshot may hold more: a request cut mid-drain after enqueueing some
  // of its lines was never acked but its lines still landed.)
  const auto stitched = s.service->CurrentStitched();
  ASSERT_NE(stitched, nullptr);
  EXPECT_EQ(s.frontend->accepted(), acked.load());
  EXPECT_GE(stitched->info().records, acked.load());
  EXPECT_EQ(s.service->Stats().total.inserted, stitched->info().records);
}

// The TSan target: concurrent ingest POSTs and release GETs race against
// snapshot publication, across four independently-publishing shards. Run
// under -DKANON_SANITIZE=thread this validates the lock discipline of the
// whole net + shard + service stack.
TEST(HttpServerTest, ConcurrentIngestAndReleaseStress) {
  ServiceOptions options = SmallServiceOptions(4);
  options.snapshot_every = 50;  // publish frequently mid-traffic
  ServerUnderTest s =
      StartServer(options, true, /*num_threads=*/4, /*shards=*/4);

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kPostsPerWriter = 25;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      HttpClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", s.server->port()).ok());
      for (int i = 0; i < kPostsPerWriter; ++i) {
        auto post =
            client.Post("/ingest", GridBody(20, w * 100000 + i * 20));
        ASSERT_TRUE(post.ok()) << post.status();
        ASSERT_EQ(post->status, 200) << post->body;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      HttpClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", s.server->port()).ok());
      while (!done.load(std::memory_order_relaxed)) {
        auto get = client.Get(r % 2 == 0 ? "/release/query?k1=8&summary=1"
                                         : "/metrics");
        ASSERT_TRUE(get.ok()) << get.status();
        ASSERT_TRUE(get->status == 200 || get->status == 503)
            << get->status;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  const auto snapshot = s.service->PublishNow();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->info().records,
            static_cast<uint64_t>(kWriters * kPostsPerWriter * 20));
  EXPECT_EQ(s.frontend->accepted(),
            static_cast<uint64_t>(kWriters * kPostsPerWriter * 20));
}

TEST(HttpServerTest, EmptyAndBlankIngestBodiesAcceptZero) {
  ServerUnderTest s = StartServer(SmallServiceOptions(3), true);
  HttpClient client = ConnectTo(*s.server);
  for (const char* body : {"", "\n", "\r\n\n  \n\t\n"}) {
    auto post = client.Post("/ingest", body);
    ASSERT_TRUE(post.ok()) << post.status();
    EXPECT_EQ(post->status, 200) << post->body;
    EXPECT_EQ(post->body, "{\"accepted\":0}");
  }
  EXPECT_EQ(s.frontend->accepted(), 0u);
}

// Sharded routing end-to-end: records spread across both shards, the
// stitched release covers them all, and the k bound holds on the stitch.
TEST(HttpServerTest, TwoShardIngestStitchesBothShards) {
  ServerUnderTest s =
      StartServer(SmallServiceOptions(5), true, /*num_threads=*/2,
                  /*shards=*/2);
  HttpClient client = ConnectTo(*s.server);
  auto post = client.Post("/ingest", GridBody(200));
  ASSERT_TRUE(post.ok());
  ASSERT_EQ(post->status, 200);

  const auto stitched = s.service->PublishNow();
  ASSERT_NE(stitched, nullptr);
  EXPECT_EQ(stitched->info().records, 200u);
  EXPECT_GT(stitched->info().shard_records[0], 0u);
  EXPECT_GT(stitched->info().shard_records[1], 0u);

  auto get = client.Get("/release");
  ASSERT_TRUE(get.ok());
  ASSERT_EQ(get->status, 200);
  EXPECT_NE(get->body.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(get->body.find("\"records\":200"), std::string::npos);
  EXPECT_TRUE(stitched->Release(5).CheckKAnonymous(5).ok());
}

// When every shard's disk dies, ingest answers 503 on whichever shard a
// record routes to and /healthz reports the fleet degraded.
TEST(HttpServerTest, AllShardsDegradedSurfacesAs503) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       "kanon_http_all_degraded_test")
          .string();
  std::filesystem::remove_all(dir);

  FaultInjectionOptions fault;
  fault.seed = 11;
  // Past both shards' setup I/O, short of the stream: every durability
  // operation fails once traffic is flowing, so both shards degrade.
  fault.break_after_ops = 260;
  fault.sync_faults = true;
  FaultInjectionEnv env(Env::Default(), fault);

  ServiceOptions options = SmallServiceOptions(3);
  options.durability.wal_dir = dir;
  options.durability.env = &env;
  options.durability.retry_backoff_ms = 1;
  options.durability.retry_backoff_max_ms = 2;
  ServerUnderTest s =
      StartServer(options, true, /*num_threads=*/2, /*shards=*/2);
  HttpClient client = ConnectTo(*s.server);

  // Alternate points that hash to both shards until every shard has
  // degraded; from then on every ingest line must answer 503.
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (s.service->shard(0)->health() == ServiceHealth::kDegraded &&
        s.service->shard(1)->health() == ServiceHealth::kDegraded) {
      break;
    }
    (void)client.Post("/ingest", GridBody(20, attempt * 20));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(s.service->health(), ServiceHealth::kDegraded);

  auto post = client.Post("/ingest", GridBody(20, 999000));
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 503);
  EXPECT_NE(post->body.find("\"error\":\"Unavailable\""), std::string::npos)
      << post->body;

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 503);
  EXPECT_NE(health->body.find("\"health\":\"degraded\""), std::string::npos);
  EXPECT_NE(health->body.find("\"shards\":[\"degraded\",\"degraded\"]"),
            std::string::npos)
      << health->body;

  std::filesystem::remove_all(dir);
}

// Differential guarantee of the stitched path: a single-shard sharded
// service is byte-identical — over the same deterministic serializer — to
// the plain unsharded service fed the same stream.
TEST(HttpServerTest, SingleShardReleaseMatchesUnshardedByteForByte) {
  ServerUnderTest s = StartServer(SmallServiceOptions(4), true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(150))->status, 200);
  const auto stitched = s.service->PublishNow();
  ASSERT_NE(stitched, nullptr);

  auto unsharded_or = AnonymizationService::Create(2, SquareDomain(0, 100),
                                                   SmallServiceOptions(4));
  ASSERT_TRUE(unsharded_or.ok());
  AnonymizationService& unsharded = **unsharded_or;
  std::vector<double> point(2);
  for (size_t i = 0; i < 150; ++i) {
    point[0] = static_cast<double>(i % 97);
    point[1] = static_cast<double>((i * 7) % 89);
    ASSERT_TRUE(unsharded.Ingest(point, static_cast<int32_t>(i % 5)).ok());
  }
  const auto plain = unsharded.PublishNow();
  ASSERT_NE(plain, nullptr);

  for (const size_t k1 : {size_t{4}, size_t{8}, size_t{32}}) {
    EXPECT_EQ(PartitionsJson(stitched->Release(k1), /*with_rids=*/true),
              PartitionsJson(plain->Release(k1), /*with_rids=*/true))
        << "k1=" << k1;
  }
  unsharded.Stop();
}

// --------------------------------------------------------------------------
// Query-parameter hygiene: unknown or malformed parameters are 400s with an
// error body on every read endpoint, never silently ignored.

TEST(HttpServerTest, UnknownOrMalformedQueryParamsAre400) {
  ServerUnderTest s = StartServer(SmallServiceOptions(4), true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(60))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);

  const std::vector<std::string> bad_targets = {
      // /release/query: typo'd and unknown keys, malformed flag values.
      "/release/query?k1=8&summery=1",
      "/release/query?epsilon=1",
      "/release/query?k1=8&summary=yes",
      "/release/query?k1=8&rids=2",
      // /release/dp: unknown key, junk epsilon, and the retired client
      // seed parameter (noise now comes only from the server-held key).
      "/release/dp?eps=1",
      "/release/dp?epsilon=0",
      "/release/dp?epsilon=-2",
      "/release/dp?epsilon=abc",
      "/release/dp?epsilon=1&seed=3",
      "/release/dp/query?lo=0,0&hi=9,9&seed=3",
      // /release/dp/query: unknown key, missing/short/unordered bounds.
      "/release/dp/query?lo=0,0&hi=9,9&k1=4",
      "/release/dp/query?epsilon=1",
      "/release/dp/query?lo=0&hi=9,9",
      "/release/dp/query?lo=0,0,0&hi=9,9,9",
      "/release/dp/query?lo=5,5&hi=1,9",
      "/release/dp/query?lo=a,b&hi=9,9",
  };
  for (const std::string& target : bad_targets) {
    auto resp = client.Get(target);
    ASSERT_TRUE(resp.ok()) << target;
    EXPECT_EQ(resp->status, 400) << target << "\n" << resp->body;
    EXPECT_NE(resp->body.find("\"error\":\"InvalidArgument\""),
              std::string::npos)
        << target << "\n" << resp->body;
  }

  // The well-formed spellings of the same requests succeed.
  EXPECT_EQ(client.Get("/release/query?k1=8&summary=1")->status, 200);
  EXPECT_EQ(client.Get("/release/dp?epsilon=1")->status, 200);
  EXPECT_EQ(client.Get("/release/dp/query?lo=0,0&hi=9,9&epsilon=1")->status,
            200);
}

// --------------------------------------------------------------------------
// The DP read path end to end.

TEST_P(HttpServerBackendTest, DpReleaseServesNoisyHierarchy) {
  AnonHttpOptions frontend_options;
  frontend_options.dp_key = "test-secret";
  ServerUnderTest s = StartServer(SmallServiceOptions(4), GetParam(),
                                  /*num_threads=*/2, /*shards=*/1,
                                  frontend_options);
  HttpClient client = ConnectTo(*s.server);

  // Nothing published yet: DP reads share the 503-with-Retry-After shape.
  auto early = client.Get("/release/dp");
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->status, 503);
  ASSERT_NE(early->FindHeader("retry-after"), nullptr);

  ASSERT_EQ(client.Post("/ingest", GridBody(200))->status, 200);
  const auto stitched = s.service->PublishNow();
  ASSERT_NE(stitched, nullptr);

  auto dp = client.Get("/release/dp?epsilon=0.8");
  ASSERT_TRUE(dp.ok()) << dp.status();
  ASSERT_EQ(dp->status, 200) << dp->body;
  EXPECT_NE(dp->body.find("\"semantics\":\"dp\""), std::string::npos);
  EXPECT_NE(dp->body.find("\"epsilon\":0.8"), std::string::npos);
  EXPECT_NE(dp->body.find("\"cells\":["), std::string::npos);
  const std::string* epoch = dp->FindHeader("x-kanon-epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(*epoch, std::to_string(stitched->info().epoch));
  // The DP body never names records, partitions, or noise-source material:
  // publishing the seed/key would let a consumer re-derive and subtract
  // the noise.
  EXPECT_EQ(dp->body.find("\"partitions\""), std::string::npos);
  EXPECT_EQ(dp->body.find("\"rids\""), std::string::npos);
  EXPECT_EQ(dp->body.find("seed"), std::string::npos);
  EXPECT_EQ(dp->body.find("key"), std::string::npos);

  // Memoized: the repeat is byte-identical and served from cache.
  auto again = client.Get("/release/dp?epsilon=0.8");
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->status, 200);
  EXPECT_EQ(again->body, dp->body);
  EXPECT_GE(s.frontend->dp_ledger().cache_hits(), 1u);

  // The HTTP body equals the in-process release built from the summed
  // cells under the same derived key — one serializer, one noise path.
  size_t height = 0;
  auto cells_or = stitched->SummedDpCells(&height);
  ASSERT_TRUE(cells_or.ok()) << cells_or.status();
  const auto inproc = BuildDpRelease(**cells_or, stitched->domain(), height,
                                     0.8, DeriveDpNoiseKey("test-secret"));
  EXPECT_EQ(dp->body, inproc->body);

  // Range queries answer from the hierarchy; the full domain returns the
  // noisy total, and the count field parses as a number.
  auto range =
      client.Get("/release/dp/query?lo=0,0&hi=100,100&epsilon=0.8");
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->status, 200) << range->body;
  const std::string want_count =
      "\"count\":" + std::to_string(inproc->counts.counts[1]);
  EXPECT_NE(range->body.find(want_count), std::string::npos)
      << range->body << "\nexpected " << want_count;
}

TEST(HttpServerTest, DpBudgetExhaustionIs429AndMemoizedReadsStayFree) {
  AnonHttpOptions frontend_options;
  frontend_options.dp_budget = 1.0;
  ServerUnderTest s = StartServer(SmallServiceOptions(4), true,
                                  /*num_threads=*/2, /*shards=*/1,
                                  frontend_options);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(80))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);

  ASSERT_EQ(client.Get("/release/dp?epsilon=0.6")->status, 200);

  // A second distinct draw would spend 0.6 + 0.7 > 1.0: typed 429, not
  // silent truncation — and it burns nothing.
  auto over = client.Get("/release/dp?epsilon=0.7");
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(over->status, 429) << over->body;
  EXPECT_NE(over->body.find("\"error\":\"ResourceExhausted\""),
            std::string::npos)
      << over->body;
  ASSERT_NE(over->FindHeader("retry-after"), nullptr);

  // The memoized release (and its range queries) keep serving for free.
  EXPECT_EQ(client.Get("/release/dp?epsilon=0.6")->status, 200);
  EXPECT_EQ(
      client.Get("/release/dp/query?lo=0,0&hi=50,50&epsilon=0.6")->status,
      200);
  EXPECT_EQ(s.frontend->dp_ledger().rejected(), 1u);

  // A fresh publication is a fresh release point with a fresh budget.
  ASSERT_EQ(client.Post("/ingest", GridBody(80, 1000))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);
  EXPECT_EQ(client.Get("/release/dp?epsilon=0.7")->status, 200);
}

TEST(HttpServerTest, DpDisabledAnswers409) {
  ServiceOptions options = SmallServiceOptions(4);
  options.dp_height = 0;  // DP cell accounting off
  ServerUnderTest s = StartServer(options, true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(40))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);

  auto dp = client.Get("/release/dp");
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->status, 409) << dp->body;
  EXPECT_NE(dp->body.find("\"error\":\"FailedPrecondition\""),
            std::string::npos)
      << dp->body;
}

TEST(HttpServerTest, MetricsExposeDpCountersAndOptInUtilityPair) {
  AnonHttpOptions frontend_options;
  frontend_options.dp_metrics_utility = true;  // trusted scrape plane
  ServerUnderTest s = StartServer(SmallServiceOptions(4), true,
                                  /*num_threads=*/2, /*shards=*/1,
                                  frontend_options);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(120))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);
  ASSERT_EQ(client.Get("/release/dp?epsilon=1")->status, 200);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  for (const std::string& series : {
           std::string("kanon_dp_budget "),
           std::string("kanon_dp_budget_spent 1"),
           std::string("kanon_dp_lifetime_budget"),
           std::string("kanon_dp_lifetime_spent 1"),
           std::string("kanon_dp_releases_total 1"),
           std::string("kanon_dp_cache_hits_total"),
           std::string("kanon_dp_rejected_total 0"),
           std::string("kanon_dp_evicted_total 0"),
           std::string("kanon_dp_height"),
           std::string("kanon_release_utility_queries"),
           std::string("kanon_release_avg_range_error{semantics=\"kanon\"}"),
           std::string("kanon_release_avg_range_error{semantics=\"dp\"}"),
       }) {
    EXPECT_NE(metrics->body.find(series), std::string::npos)
        << "missing " << series << " in\n"
        << metrics->body;
  }
  EXPECT_NE(metrics->body.find(
                "kanon_http_requests_total{endpoint=\"dp\",code=\"200\"}"),
            std::string::npos)
      << metrics->body;
}

// By default the truth-derived utility pair stays off /metrics: it is
// computed from exact counts, so on an untrusted scrape plane it would be
// an un-noised, un-charged side channel.
TEST(HttpServerTest, MetricsOmitTruthDerivedUtilityPairByDefault) {
  ServerUnderTest s = StartServer(SmallServiceOptions(4), true);
  HttpClient client = ConnectTo(*s.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(120))->status, 200);
  ASSERT_NE(s.service->PublishNow(), nullptr);
  ASSERT_EQ(client.Get("/release/dp?epsilon=1")->status, 200);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("kanon_dp_budget "), std::string::npos);
  EXPECT_EQ(metrics->body.find("kanon_release_utility_queries"),
            std::string::npos)
      << metrics->body;
  EXPECT_EQ(metrics->body.find("kanon_release_avg_range_error"),
            std::string::npos)
      << metrics->body;
}

// The acceptance criterion over HTTP: servers configured with the same
// noise-key secret produce a byte-identical DP body for the same record
// multiset at 1, 2 and 4 shards (partition releases cannot promise this —
// shard routing changes the trees — but the DP grid is data-independent).
TEST(HttpServerTest, DpReleaseByteIdenticalAcrossShardCounts) {
  AnonHttpOptions frontend_options;
  frontend_options.dp_key = "deployment-secret";
  std::vector<std::string> bodies;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ServerUnderTest s = StartServer(SmallServiceOptions(4), true,
                                    /*num_threads=*/2, shards,
                                    frontend_options);
    HttpClient client = ConnectTo(*s.server);
    ASSERT_EQ(client.Post("/ingest", GridBody(240))->status, 200);
    ASSERT_NE(s.service->PublishNow(), nullptr);
    auto dp = client.Get("/release/dp?epsilon=0.9");
    ASSERT_TRUE(dp.ok());
    ASSERT_EQ(dp->status, 200) << "shards=" << shards << "\n" << dp->body;
    bodies.push_back(dp->body);
  }
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_EQ(bodies[0], bodies[2]);

  // A server with a different secret draws different noise: the body
  // cannot be predicted without the key.
  frontend_options.dp_key = "other-secret";
  ServerUnderTest other = StartServer(SmallServiceOptions(4), true,
                                      /*num_threads=*/2, /*shards=*/1,
                                      frontend_options);
  HttpClient client = ConnectTo(*other.server);
  ASSERT_EQ(client.Post("/ingest", GridBody(240))->status, 200);
  ASSERT_NE(other.service->PublishNow(), nullptr);
  auto dp = client.Get("/release/dp?epsilon=0.9");
  ASSERT_TRUE(dp.ok());
  ASSERT_EQ(dp->status, 200);
  EXPECT_NE(dp->body, bodies[0]);
}

TEST(HttpServerTest, SerializeResponseFramesBody) {
  HttpResponse resp = HttpResponse::Json(200, "{\"x\":1}");
  const std::string wire = SerializeResponse(resp, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"x\":1}"), std::string::npos);

  HttpResponse err = HttpResponse::FromStatus(Status::Unavailable("x"));
  EXPECT_EQ(err.status, 503);
  const std::string closed = SerializeResponse(err, /*keep_alive=*/false);
  EXPECT_NE(closed.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace kanon::net
