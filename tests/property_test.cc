#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "invariants.h"
#include "kanon/kanon.h"

namespace kanon {
namespace {

// Parameterized property sweeps over (k, dataset size, dimensionality,
// seed). Each property is an invariant the paper's correctness argument
// rests on, exercised across the parameter grid.

Dataset MakeData(size_t n, size_t dim, uint64_t seed) {
  Dataset d(Schema::Numeric(dim));
  Rng rng(seed);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) {
      // Mix of continuous, discretized and duplicate-heavy values.
      const double raw = rng.UniformDouble(0, 1000);
      v = (i % 3 == 0) ? std::floor(raw / 50) * 50 : raw;
    }
    d.Append(p, static_cast<int32_t>(rng.Uniform(6)));
  }
  return d;
}

using AnonParams = std::tuple<size_t /*k*/, size_t /*n*/, size_t /*dim*/,
                              uint64_t /*seed*/>;

class AnonymizationProperty : public ::testing::TestWithParam<AnonParams> {
 protected:
  size_t k() const { return std::get<0>(GetParam()); }
  size_t n() const { return std::get<1>(GetParam()); }
  size_t dim() const { return std::get<2>(GetParam()); }
  uint64_t seed() const { return std::get<3>(GetParam()); }
};

TEST_P(AnonymizationProperty, RTreeOutputIsKAnonymousCover) {
  const Dataset d = MakeData(n(), dim(), seed());
  auto ps = RTreeAnonymizer().Anonymize(d, k());
  ASSERT_TRUE(ps.ok());
  testutil::ExpectPartitionInvariants(d, *ps, std::min<size_t>(k(), n()));
}

TEST_P(AnonymizationProperty, MondrianOutputIsKAnonymousCover) {
  const Dataset d = MakeData(n(), dim(), seed());
  const PartitionSet ps = Mondrian().Anonymize(d, k());
  testutil::ExpectPartitionInvariants(d, ps, std::min<size_t>(k(), n()));
}

TEST_P(AnonymizationProperty, RelaxedMondrianOutputIsKAnonymousCover) {
  const Dataset d = MakeData(n(), dim(), seed());
  MondrianConfig config;
  config.strict = false;
  const PartitionSet ps = Mondrian(config).Anonymize(d, k());
  testutil::ExpectPartitionInvariants(d, ps, std::min<size_t>(k(), n()));
  // Relaxed halving bounds every partition below 4k (a cut is allowable
  // whenever n >= 2k, and each cut halves exactly).
  EXPECT_LT(ps.max_partition_size(), std::max<size_t>(4 * k(), n() + 1));
}

TEST_P(AnonymizationProperty, GridOutputIsKAnonymousCover) {
  const Dataset d = MakeData(n(), dim(), seed());
  auto ps = GridAnonymizer().Anonymize(d, k());
  ASSERT_TRUE(ps.ok());
  testutil::ExpectPartitionInvariants(d, *ps, std::min<size_t>(k(), n()));
}

TEST_P(AnonymizationProperty, BufferTreeChurnKeepsRecordSetExact) {
  const Dataset d = MakeData(n(), dim(), seed());
  MemPager pager(1024);
  BufferPool pool(&pager, 512);
  BufferTreeConfig config;
  config.min_leaf = k();
  config.max_leaf = 3 * k();
  config.buffer_pages = 2;
  BufferTree tree(dim(), config, &pool);
  Rng rng(seed() ^ 0x777);
  std::set<uint64_t> live;
  for (RecordId r = 0; r < d.num_records(); ++r) {
    ASSERT_TRUE(tree.Insert(d.row(r), r, d.sensitive(r)).ok());
    live.insert(r);
    if (r > 0 && rng.Bernoulli(0.25)) {
      const RecordId victim = rng.Uniform(r);
      if (live.count(victim)) {
        ASSERT_TRUE(tree.Delete(d.row(victim), victim).ok());
        live.erase(victim);
      }
    }
  }
  ASSERT_TRUE(tree.Flush().ok());
  EXPECT_EQ(tree.unmatched_deletes(), 0u);
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::set<uint64_t> indexed;
  for (const BufferNode* leaf : tree.OrderedLeaves()) {
    ASSERT_TRUE(tree.ScanLeaf(leaf, [&](uint64_t rid, int32_t,
                                        std::span<const double>) {
                      indexed.insert(rid);
                    })
                    .ok());
  }
  EXPECT_EQ(indexed, live);
}

TEST_P(AnonymizationProperty, CompactionShrinksAndPreservesCover) {
  const Dataset d = MakeData(n(), dim(), seed());
  PartitionSet ps = Mondrian().Anonymize(d, k());
  const double before_cm = CertaintyPenalty(d, ps);
  PartitionSet compacted = ps;
  CompactPartitions(d, &compacted);
  EXPECT_TRUE(compacted.CheckCovers(d).ok());
  EXPECT_LE(CertaintyPenalty(d, compacted), before_cm + 1e-9);
  EXPECT_DOUBLE_EQ(DiscernibilityPenalty(compacted),
                   DiscernibilityPenalty(ps));
}

TEST_P(AnonymizationProperty, IncrementalTreeInvariantsSurviveChurn) {
  const Dataset d = MakeData(n(), dim(), seed());
  IncrementalAnonymizer inc(dim());
  Rng rng(seed() ^ 0xabcdef);
  size_t live = 0;
  std::vector<char> present(d.num_records(), 0);
  for (RecordId r = 0; r < d.num_records(); ++r) {
    inc.Insert(d.row(r), r, d.sensitive(r));
    present[r] = 1;
    ++live;
    // Randomly delete ~20% of earlier records as we go.
    if (r > 10 && rng.Bernoulli(0.2)) {
      const RecordId victim = rng.Uniform(r);
      if (present[victim]) {
        ASSERT_TRUE(inc.Delete(d.row(victim), victim));
        present[victim] = 0;
        --live;
      }
    }
  }
  EXPECT_EQ(inc.size(), live);
  EXPECT_TRUE(inc.tree().CheckInvariants(true).ok());
  // Deletion churn legitimately leaves deficient leaves; disjointness and
  // exactly-once coverage must still hold.
  testutil::ExpectTreeLeafInvariants(inc.tree(), /*k=*/5,
                                     /*allow_underfull=*/true);
  const PartitionSet view = inc.Snapshot(d, k());
  EXPECT_EQ(view.total_records(), live);
  if (live >= k()) {
    EXPECT_TRUE(view.CheckKAnonymous(k()).ok());
  }
}

TEST_P(AnonymizationProperty, BackendsAgreeOnCoverageAndQuality) {
  // Buffer-tree and tuple-loading backends index the same records and land
  // in the same quality regime (the structures differ, the guarantees and
  // rough precision must not).
  const Dataset d = MakeData(n(), dim(), seed());
  RTreeAnonymizerOptions buffer_options;
  RTreeAnonymizerOptions tuple_options;
  tuple_options.backend = RTreeAnonymizerOptions::Backend::kTupleLoading;
  auto a = RTreeAnonymizer(buffer_options).Anonymize(d, k());
  auto b = RTreeAnonymizer(tuple_options).Anonymize(d, k());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->CheckCovers(d).ok());
  EXPECT_TRUE(b->CheckCovers(d).ok());
  const double ncp_a = AverageNcp(d, *a);
  const double ncp_b = AverageNcp(d, *b);
  EXPECT_LT(std::abs(ncp_a - ncp_b), 0.5 * std::max(ncp_a, ncp_b) + 0.05);
}

TEST_P(AnonymizationProperty, PersistenceRoundTripsIncrementalTree) {
  const Dataset d = MakeData(n(), dim(), seed());
  IncrementalAnonymizer inc(dim());
  inc.InsertBatch(d, 0, d.num_records());
  MemPager pager;
  auto snapshot = SaveTree(inc.tree(), &pager);
  ASSERT_TRUE(snapshot.ok());
  auto loaded = LoadTree(&pager, *snapshot, dim(), inc.tree().config());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->CheckInvariants().ok());
  const auto before = ExtractLeafGroups(inc.tree());
  const auto after = ExtractLeafGroups(*loaded);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].rids, after[i].rids);
  }
}

TEST_P(AnonymizationProperty, LeafScanGranularitySweepIsMonotone) {
  const Dataset d = MakeData(n(), dim(), seed());
  RTreeAnonymizer anonymizer;
  auto built = anonymizer.BuildLeaves(d);
  ASSERT_TRUE(built.ok());
  size_t prev = static_cast<size_t>(-1);
  for (size_t k1 = k(); k1 <= 16 * k(); k1 *= 2) {
    const PartitionSet ps = anonymizer.Granularize(d, built->leaves, k1);
    EXPECT_TRUE(ps.CheckKAnonymous(std::min(k1, n())).ok());
    EXPECT_LE(ps.num_partitions(), prev);
    prev = ps.num_partitions();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnonymizationProperty,
    ::testing::Combine(::testing::Values<size_t>(2, 5, 17),
                       ::testing::Values<size_t>(200, 1500),
                       ::testing::Values<size_t>(1, 2, 5),
                       ::testing::Values<uint64_t>(11, 29)),
    [](const ::testing::TestParamInfo<AnonParams>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// Query-error properties on a smaller grid (queries are O(n) each).

class QueryProperty
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(QueryProperty, AnonymizedCountNeverUndercounts) {
  const auto [k, seed] = GetParam();
  const Dataset d = MakeData(800, 3, seed);
  auto ps = RTreeAnonymizer().Anonymize(d, k);
  ASSERT_TRUE(ps.ok());
  Rng rng(seed + 1);
  for (const auto& q : MakeRecordPairWorkload(d, 50, &rng)) {
    const size_t original = CountOriginal(d, q);
    const double anonymized = CountAnonymized(*ps, q);
    EXPECT_GE(anonymized + 1e-9, static_cast<double>(original));
  }
}

TEST_P(QueryProperty, UniformEstimateBoundedByAllMatching) {
  const auto [k, seed] = GetParam();
  const Dataset d = MakeData(800, 3, seed);
  auto ps = RTreeAnonymizer().Anonymize(d, k);
  ASSERT_TRUE(ps.ok());
  Rng rng(seed + 2);
  for (const auto& q : MakeRecordPairWorkload(d, 50, &rng)) {
    EXPECT_LE(CountAnonymized(*ps, q, EstimationMode::kUniform),
              CountAnonymized(*ps, q, EstimationMode::kAllMatching) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryProperty,
    ::testing::Combine(::testing::Values<size_t>(5, 25),
                       ::testing::Values<uint64_t>(3, 7)));

// Hilbert curve bijectivity across dimensions and bit widths.

class HilbertProperty
    : public ::testing::TestWithParam<std::tuple<int /*dim*/, int /*bits*/>> {
};

TEST_P(HilbertProperty, KeysArePermutation) {
  const auto [dim, bits] = GetParam();
  const size_t side = 1u << bits;
  size_t total = 1;
  for (int i = 0; i < dim; ++i) total *= side;
  if (total > 1u << 16) GTEST_SKIP() << "grid too large for exhaustive check";
  std::set<CurveKey> hilbert_keys, z_keys;
  std::vector<uint32_t> coord(dim, 0);
  for (size_t cell = 0; cell < total; ++cell) {
    size_t c = cell;
    for (int i = 0; i < dim; ++i) {
      coord[i] = c % side;
      c /= side;
    }
    hilbert_keys.insert(HilbertKey({coord.data(), coord.size()}, bits));
    z_keys.insert(ZOrderKey({coord.data(), coord.size()}, bits));
  }
  EXPECT_EQ(hilbert_keys.size(), total);
  EXPECT_EQ(z_keys.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HilbertProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace kanon
