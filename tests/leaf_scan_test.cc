#include "anon/leaf_scan.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"

namespace kanon {
namespace {

std::vector<LeafGroup> MakeLeaves(const std::vector<size_t>& sizes) {
  std::vector<LeafGroup> leaves;
  RecordId next = 0;
  double x = 0.0;
  for (size_t s : sizes) {
    LeafGroup g;
    g.mbr = Mbr::FromBounds({x}, {x + 1.0});
    for (size_t i = 0; i < s; ++i) g.rids.push_back(next++);
    leaves.push_back(std::move(g));
    x += 2.0;
  }
  return leaves;
}

TEST(LeafScanTest, GroupsWholeLeavesToK) {
  // Leaves of 5 each, k1=10: pairs of leaves.
  const auto leaves = MakeLeaves({5, 5, 5, 5, 5, 5});
  const PartitionSet ps = LeafScan(leaves, 10);
  ASSERT_EQ(ps.num_partitions(), 3u);
  for (const auto& p : ps.partitions) EXPECT_EQ(p.size(), 10u);
  EXPECT_TRUE(ps.CheckKAnonymous(10).ok());
}

TEST(LeafScanTest, K1EqualBaseKeepsLeavesSeparate) {
  const auto leaves = MakeLeaves({5, 6, 7});
  const PartitionSet ps = LeafScan(leaves, 5);
  EXPECT_EQ(ps.num_partitions(), 3u);
}

TEST(LeafScanTest, TailFoldsIntoLastPartition) {
  // 5+5+3: k1=5 -> partitions {5}, {5+3} because the 3-tail cannot stand.
  const auto leaves = MakeLeaves({5, 5, 3});
  const PartitionSet ps = LeafScan(leaves, 5);
  ASSERT_EQ(ps.num_partitions(), 2u);
  EXPECT_EQ(ps.partitions[0].size(), 5u);
  EXPECT_EQ(ps.partitions[1].size(), 8u);
}

TEST(LeafScanTest, TotalBelowK1YieldsSinglePartition) {
  const auto leaves = MakeLeaves({3, 3});
  const PartitionSet ps = LeafScan(leaves, 100);
  ASSERT_EQ(ps.num_partitions(), 1u);
  EXPECT_EQ(ps.partitions[0].size(), 6u);
}

TEST(LeafScanTest, BoxesAreUnionsOfMemberLeafMbrs) {
  const auto leaves = MakeLeaves({5, 5});
  const PartitionSet ps = LeafScan(leaves, 10);
  ASSERT_EQ(ps.num_partitions(), 1u);
  EXPECT_EQ(ps.partitions[0].box.lo(0), 0.0);
  EXPECT_EQ(ps.partitions[0].box.hi(0), 3.0);
}

TEST(LeafScanTest, EmptyInput) {
  const PartitionSet ps = LeafScan(std::span<const LeafGroup>{}, 5);
  EXPECT_EQ(ps.num_partitions(), 0u);
}

TEST(LeafScanTest, EveryPartitionIsUnionOfWholeLeaves) {
  Rng rng(3);
  std::vector<size_t> sizes;
  for (int i = 0; i < 50; ++i) sizes.push_back(5 + rng.Uniform(10));
  const auto leaves = MakeLeaves(sizes);
  const PartitionSet ps = LeafScan(leaves, 37);
  EXPECT_TRUE(ps.CheckKAnonymous(37).ok());
  // Record ids are assigned sequentially per leaf, so "union of whole
  // leaves" means every partition's rid set is a contiguous prefix-aligned
  // run covering complete leaves.
  size_t next_rid = 0;
  for (const auto& p : ps.partitions) {
    std::vector<RecordId> sorted = p.rids;
    std::sort(sorted.begin(), sorted.end());
    for (RecordId r : sorted) EXPECT_EQ(r, next_rid++);
  }
}

TEST(LeafScanConstraintTest, EquivalentToPlainScanForKAnonymity) {
  Dataset d(Schema::Numeric(1));
  for (int i = 0; i < 30; ++i) d.Append({static_cast<double>(i)}, i % 3);
  const auto leaves = MakeLeaves({5, 5, 5, 5, 5, 5});
  KAnonymity c(10);
  const PartitionSet a = LeafScan(leaves, 10);
  const PartitionSet b = LeafScanWithConstraint(leaves, d, c);
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (size_t i = 0; i < a.num_partitions(); ++i) {
    EXPECT_EQ(a.partitions[i].rids, b.partitions[i].rids);
  }
}

// Builds a dataset whose record values lie inside the boxes MakeLeaves
// assigns (leaf i covers [2i, 2i+1]), so cover checks are meaningful.
Dataset DataMatchingLeaves(size_t num_records,
                           const std::function<int32_t(size_t)>& sensitive) {
  Dataset d(Schema::Numeric(1));
  for (size_t i = 0; i < num_records; ++i) {
    const double leaf = static_cast<double>(i / 5);
    d.Append({2.0 * leaf + 0.2 * static_cast<double>(i % 5)},
             sensitive(i));
  }
  return d;
}

TEST(LeafScanConstraintTest, LDiversityKeepsAccumulating) {
  // Records in leaves of 5; sensitive value constant within the first two
  // leaves, so a diverse group needs at least three leaves.
  const Dataset d = DataMatchingLeaves(
      30, [](size_t i) { return i < 10 ? 7 : static_cast<int32_t>(i % 4); });
  const auto leaves = MakeLeaves({5, 5, 5, 5, 5, 5});
  DistinctLDiversity c(/*k=*/5, /*l=*/3);
  const PartitionSet ps = LeafScanWithConstraint(leaves, d, c);
  EXPECT_TRUE(ps.CheckCovers(d).ok());
  for (const auto& p : ps.partitions) {
    EXPECT_TRUE(c.Admissible(d, p.rids)) << "partition not l-diverse";
  }
}

TEST(LeafScanConstraintTest, TailNeverLeftInadmissible) {
  // The tail leaves are all one sensitive value: they must be absorbed
  // into the previous (diverse) partition.
  const Dataset d = DataMatchingLeaves(20, [](size_t i) {
    return i < 10 ? static_cast<int32_t>(i % 5) : 9;
  });
  const auto leaves = MakeLeaves({5, 5, 5, 5});
  DistinctLDiversity c(5, 3);
  const PartitionSet ps = LeafScanWithConstraint(leaves, d, c);
  for (const auto& p : ps.partitions) {
    EXPECT_TRUE(c.Admissible(d, p.rids));
  }
  EXPECT_TRUE(ps.CheckCovers(d).ok());
}

}  // namespace
}  // namespace kanon
