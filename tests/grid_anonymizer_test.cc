#include "anon/grid_anonymizer.h"

#include <gtest/gtest.h>

#include "anon/compaction.h"
#include "common/random.h"
#include "data/landsend_generator.h"
#include "metrics/certainty.h"

namespace kanon {
namespace {

Dataset RandomData(size_t n, size_t dim, uint64_t seed) {
  Dataset d(Schema::Numeric(dim));
  Rng rng(seed);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = rng.UniformDouble(0, 100);
    d.Append(p, static_cast<int32_t>(i % 4));
  }
  return d;
}

TEST(GridAnonymizerTest, ProducesKAnonymousCover) {
  const Dataset d = RandomData(2000, 3, 1);
  auto ps = GridAnonymizer().Anonymize(d, 10);
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(ps->CheckCovers(d).ok());
  EXPECT_TRUE(ps->CheckKAnonymous(10).ok());
}

TEST(GridAnonymizerTest, SweepOverK) {
  const Dataset d = RandomData(3000, 4, 2);
  size_t prev = static_cast<size_t>(-1);
  for (size_t k : {5, 10, 50, 200}) {
    auto ps = GridAnonymizer().Anonymize(d, k);
    ASSERT_TRUE(ps.ok());
    EXPECT_TRUE(ps->CheckCovers(d).ok()) << "k=" << k;
    EXPECT_TRUE(ps->CheckKAnonymous(k).ok()) << "k=" << k;
    EXPECT_LE(ps->num_partitions(), prev);
    prev = ps->num_partitions();
  }
}

TEST(GridAnonymizerTest, EmptyDatasetRejected) {
  Dataset d(Schema::Numeric(2));
  EXPECT_EQ(GridAnonymizer().Anonymize(d, 5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GridAnonymizerTest, DegenerateDataSinglePartition) {
  Dataset d(Schema::Numeric(2));
  for (int i = 0; i < 50; ++i) d.Append({3.0, 4.0});
  auto ps = GridAnonymizer().Anonymize(d, 5);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->num_partitions(), 1u);
  EXPECT_TRUE(ps->CheckCovers(d).ok());
}

TEST(GridAnonymizerTest, TotalBelowKSinglePartition) {
  const Dataset d = RandomData(7, 2, 3);
  auto ps = GridAnonymizer().Anonymize(d, 100);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->num_partitions(), 1u);
}

TEST(GridAnonymizerTest, CompactionRetrofitHelpsDramatically) {
  // The paper's Section 4 point: grid cells carry no MBRs, so retrofitted
  // compaction gives a large certainty improvement.
  const Dataset d = LandsEndGenerator(4).Generate(3000);
  GridAnonymizerOptions raw_options;
  raw_options.compact = false;
  GridAnonymizerOptions compact_options;
  compact_options.compact = true;
  auto raw = GridAnonymizer(raw_options).Anonymize(d, 10);
  auto compacted = GridAnonymizer(compact_options).Anonymize(d, 10);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(compacted.ok());
  const double raw_cm = CertaintyPenalty(d, *raw);
  const double compact_cm = CertaintyPenalty(d, *compacted);
  EXPECT_LT(compact_cm, 0.7 * raw_cm);
  // Cardinalities identical: compaction only tightens boxes.
  ASSERT_EQ(raw->num_partitions(), compacted->num_partitions());
  for (size_t i = 0; i < raw->num_partitions(); ++i) {
    EXPECT_EQ(raw->partitions[i].size(), compacted->partitions[i].size());
  }
}

TEST(GridAnonymizerTest, ExplicitResolutionHonored) {
  const Dataset d = RandomData(2000, 2, 5);
  GridAnonymizerOptions options;
  options.cells_per_axis = 4;
  options.max_grid_axes = 2;
  auto ps = GridAnonymizer(options).Anonymize(d, 10);
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(ps->CheckCovers(d).ok());
  // With a 4x4 grid there are at most 16 cells, so at most 16 partitions.
  EXPECT_LE(ps->num_partitions(), 16u);
}

}  // namespace
}  // namespace kanon
