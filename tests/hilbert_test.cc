#include "index/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

namespace kanon {
namespace {

TEST(HilbertTest, OneDimensionIsIdentity) {
  const uint32_t c[] = {37};
  EXPECT_EQ(static_cast<uint64_t>(HilbertKey({c, 1}, 8)), 37u);
}

TEST(HilbertTest, TwoDimBijectiveOnSmallGrid) {
  // 16x16 grid, 4 bits: keys must be a permutation of 0..255.
  std::set<uint64_t> keys;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint32_t c[] = {x, y};
      keys.insert(static_cast<uint64_t>(HilbertKey({c, 2}, 4)));
    }
  }
  EXPECT_EQ(keys.size(), 256u);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), 255u);
}

TEST(HilbertTest, ThreeDimBijectiveOnSmallGrid) {
  std::set<uint64_t> keys;
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        const uint32_t c[] = {x, y, z};
        keys.insert(static_cast<uint64_t>(HilbertKey({c, 3}, 3)));
      }
    }
  }
  EXPECT_EQ(keys.size(), 512u);
}

TEST(HilbertTest, CurveIsContinuous2d) {
  // Consecutive keys on the Hilbert curve correspond to grid neighbours
  // (Manhattan distance exactly 1) — the property Z-order lacks.
  const int bits = 4;
  std::vector<std::pair<uint32_t, uint32_t>> by_key(256);
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint32_t c[] = {x, y};
      by_key[static_cast<size_t>(HilbertKey({c, 2}, bits))] = {x, y};
    }
  }
  for (size_t k = 1; k < 256; ++k) {
    const int dx = std::abs(static_cast<int>(by_key[k].first) -
                            static_cast<int>(by_key[k - 1].first));
    const int dy = std::abs(static_cast<int>(by_key[k].second) -
                            static_cast<int>(by_key[k - 1].second));
    EXPECT_EQ(dx + dy, 1) << "jump at key " << k;
  }
}

TEST(ZOrderTest, InterleavesBits) {
  // (x=0b11, y=0b00) with 2 bits: key = x1 y1 x0 y0 = 0b1010.
  const uint32_t c[] = {3, 0};
  EXPECT_EQ(static_cast<uint64_t>(ZOrderKey({c, 2}, 2)), 0b1010u);
}

TEST(ZOrderTest, BijectiveOnSmallGrid) {
  std::set<uint64_t> keys;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint32_t c[] = {x, y};
      keys.insert(static_cast<uint64_t>(ZOrderKey({c, 2}, 4)));
    }
  }
  EXPECT_EQ(keys.size(), 256u);
}

TEST(HilbertTest, HighDimensionFitsIn128Bits) {
  // 9 attributes x 14 bits = 126 bits: must not trip the capacity check.
  std::vector<uint32_t> c(9, (1u << 14) - 1);
  const CurveKey key = HilbertKey({c.data(), c.size()}, 14);
  EXPECT_NE(key, CurveKey{0});
}

TEST(GridQuantizerTest, MapsDomainCorners) {
  Domain d;
  d.lo = {0.0, -10.0};
  d.hi = {100.0, 10.0};
  GridQuantizer q(d, 8);
  uint32_t out[2];
  const double lo_corner[] = {0.0, -10.0};
  q.Quantize({lo_corner, 2}, out);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
  const double hi_corner[] = {100.0, 10.0};
  q.Quantize({hi_corner, 2}, out);
  EXPECT_EQ(out[0], 255u);
  EXPECT_EQ(out[1], 255u);
  const double mid[] = {50.0, 0.0};
  q.Quantize({mid, 2}, out);
  EXPECT_EQ(out[0], 128u);
}

TEST(GridQuantizerTest, ClampsOutOfDomainAndDegenerate) {
  Domain d;
  d.lo = {0.0, 5.0};
  d.hi = {10.0, 5.0};  // second attribute degenerate
  GridQuantizer q(d, 4);
  uint32_t out[2];
  const double p[] = {-100.0, 5.0};
  q.Quantize({p, 2}, out);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
  const double p2[] = {1e9, 5.0};
  q.Quantize({p2, 2}, out);
  EXPECT_EQ(out[0], 15u);
}

}  // namespace
}  // namespace kanon
