#include "common/status.h"

#include <gtest/gtest.h>

namespace kanon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing row");
  EXPECT_EQ(s.ToString(), "NotFound: missing row");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  KANON_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

Status Fails() { return Status::IoError("disk"); }

Status Chains() {
  KANON_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chains().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace kanon
