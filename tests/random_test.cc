#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace kanon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformHitsAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntRespectsClosedRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(19);
  const int n = 20000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
  // All in range (no out-of-bounds write would have crashed already).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, n);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(23);
  const int n = 30000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 25);
}

}  // namespace
}  // namespace kanon
