// Tests of the incremental delta merge (MergeMode::kDelta): flushed
// memtable runs are routed onto the live R⁺-tree and only the touched
// sub-ranges are rebuilt and spliced back. The delta path abandons the
// full rebuild's byte-identity across cadences; what it promises instead
// is pinned here by the differential equivalence oracle
// (tests/differential.h): the delta-merged tree holds exactly the same
// record multiset as the full-rebuild reference, keeps every structural
// invariant (leaf occupancy ≥ k, disjoint regions, exactly-once
// coverage), answers every range query identically, and releases the
// same record sets — across flush cadences, thread counts, shard
// counts, concentrated/duplicate/out-of-range deltas, and crash/recovery
// boundaries. At a FIXED cadence the delta path is still byte-
// deterministic across thread counts, and that stronger claim is pinned
// too.

#include "lsm/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "anon/leaf_scan.h"
#include "anon/rtree_anonymizer.h"
#include "common/check.h"
#include "common/env.h"
#include "common/random.h"
#include "differential.h"
#include "durability/wal.h"
#include "lsm/memtable.h"
#include "service/anonymization_service.h"
#include "service/service_stats.h"
#include "shard/sharded_service.h"
#include "shard/stitched_snapshot.h"

namespace kanon {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectEquivalentTrees;
using testutil::ExpectKBoundCoveringRelease;
using testutil::GridPoint;
using testutil::GridSensitive;
using testutil::SnapshotBytes;
using testutil::SortedRids;
using testutil::SquareDomain;
using testutil::TempDir;

/// Spread (duplicate-light) 2-D stream: the regime where delta merges
/// actually run local rebuilds instead of falling back. (The grid stream
/// in differential.h is duplicate-heavy; it is used below where key ties
/// are the point.)
std::vector<std::vector<double>> SpreadPoints(size_t n, uint64_t seed,
                                              double lo, double hi) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(n);
  for (auto& p : points) {
    p = {rng.UniformDouble(lo, hi), rng.UniformDouble(lo, hi)};
  }
  return points;
}

int32_t Sensitive(size_t i) { return static_cast<int32_t>(i % 7); }

/// Feeds `points` through MergeInto in `chunk`-record flushes with the
/// given mode/threads; rids are the stream indices (dense, the service
/// invariant). Collects per-flush MergeStats when asked.
std::unique_ptr<IncrementalAnonymizer> BuildByFlushes(
    const std::vector<std::vector<double>>& points, const Domain& domain,
    const RTreeAnonymizerOptions& anon, MergeMode mode, size_t chunk,
    size_t threads, std::vector<MergeStats>* flush_stats = nullptr) {
  MergeOptions mo;
  mo.merge_every = 1;
  mo.threads = threads;
  mo.mode = mode;
  MergeScheduler scheduler(2, mo);
  auto anonymizer = std::make_unique<IncrementalAnonymizer>(2, anon, &domain);
  size_t next = 0;
  while (next < points.size()) {
    Memtable run(2);
    const size_t end = std::min(next + chunk, points.size());
    for (; next < end; ++next) {
      run.Append(points[next], static_cast<RecordId>(next), Sensitive(next));
    }
    auto stats = scheduler.MergeInto(anonymizer->mutable_tree(), run, domain);
    KANON_CHECK_MSG(stats.ok(), "MergeInto failed");
    if (flush_stats != nullptr) flush_stats->push_back(std::move(stats).value());
  }
  return anonymizer;
}

size_t CountDelta(const std::vector<MergeStats>& stats) {
  size_t n = 0;
  for (const MergeStats& s : stats) n += s.mode == MergeMode::kDelta ? 1 : 0;
  return n;
}

PartitionSet ReleaseAt(const IncrementalAnonymizer& anonymizer,
                       const Domain& domain, size_t k1) {
  return LeafScan(ExtractLeafGroups(anonymizer.tree(), &domain), k1);
}

TEST(DeltaMergeTest, EquivalentToFullRebuildAcrossFlushCadences) {
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  const auto points = SpreadPoints(800, /*seed=*/7, 0, 1000);

  const auto reference = BuildByFlushes(points, domain, anon, MergeMode::kFull,
                                        points.size(), 1);
  ASSERT_EQ(reference->size(), points.size());

  for (const size_t chunk : {size_t{40}, size_t{100}}) {
    std::vector<MergeStats> stats;
    const auto delta = BuildByFlushes(points, domain, anon, MergeMode::kDelta,
                                      chunk, 1, &stats);
    ASSERT_EQ(delta->size(), points.size()) << "chunk " << chunk;
    // Early flushes legitimately fall back (a run of chunk records is
    // large relative to the infant tree until the tree outgrows
    // chunk · delta_full_fraction); every later flush must take the
    // delta path.
    size_t expected_delta = 0;
    for (size_t at = 0; at < points.size(); at += chunk) {
      const size_t run = std::min(chunk, points.size() - at);
      if (run * MergeOptions{}.delta_full_fraction < at) ++expected_delta;
    }
    ASSERT_GE(expected_delta, 1u) << "chunk " << chunk;
    EXPECT_EQ(CountDelta(stats), expected_delta) << "chunk " << chunk;
    ExpectEquivalentTrees(delta->tree(), reference->tree(), anon.base_k,
                          domain, /*seed=*/chunk);
    for (const size_t k1 : {size_t{5}, size_t{12}}) {
      const PartitionSet from_delta = ReleaseAt(*delta, domain, k1);
      ExpectKBoundCoveringRelease(
          from_delta, k1, SortedRids(ReleaseAt(*reference, domain, k1)));
    }
  }
}

TEST(DeltaMergeTest, ByteDeterministicAcrossThreadCountsAtFixedCadence) {
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  const auto points = SpreadPoints(700, /*seed=*/13, 0, 1000);

  std::vector<MergeStats> stats;
  const auto serial = BuildByFlushes(points, domain, anon, MergeMode::kDelta,
                                     /*chunk=*/80, /*threads=*/1, &stats);
  ASSERT_GE(CountDelta(stats), 1u);
  const std::vector<char> want = SnapshotBytes(serial->tree());
  ASSERT_FALSE(want.empty());
  for (const size_t threads : {size_t{2}, size_t{4}}) {
    const auto parallel = BuildByFlushes(points, domain, anon,
                                         MergeMode::kDelta, 80, threads);
    EXPECT_EQ(SnapshotBytes(parallel->tree()), want) << "threads=" << threads;
  }
}

TEST(DeltaMergeTest, EmptyRunIsANoOp) {
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  const auto points = SpreadPoints(200, /*seed=*/3, 0, 1000);
  auto built = BuildByFlushes(points, domain, anon, MergeMode::kFull,
                              points.size(), 1);
  const std::vector<char> before = SnapshotBytes(built->tree());

  MergeOptions mo;
  mo.merge_every = 1;
  mo.mode = MergeMode::kDelta;
  MergeScheduler scheduler(2, mo);
  Memtable empty(2);
  auto stats = scheduler.MergeInto(built->mutable_tree(), empty, domain);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->mode, MergeMode::kDelta);
  EXPECT_EQ(stats->sites_rebuilt, 0u);
  EXPECT_EQ(stats->records_reindexed, 0u);
  EXPECT_TRUE(stats->retired_leaves.empty());
  EXPECT_EQ(SnapshotBytes(built->tree()), before);
}

TEST(DeltaMergeTest, FallsBackToFullWhereLocalRebuildsCannotWin) {
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  MergeOptions mo;
  mo.merge_every = 1;
  mo.mode = MergeMode::kDelta;
  MergeScheduler scheduler(2, mo);
  const auto points = SpreadPoints(400, /*seed=*/21, 0, 1000);

  // Empty tree: nothing to delta against.
  IncrementalAnonymizer empty(2, anon, &domain);
  Memtable first(2);
  for (size_t i = 0; i < 100; ++i) {
    first.Append(points[i], static_cast<RecordId>(i), Sensitive(i));
  }
  auto stats = scheduler.MergeInto(empty.mutable_tree(), first, domain);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->mode, MergeMode::kFull);
  EXPECT_EQ(empty.tree().size(), 100u);

  // Single-root-leaf tree: no interior structure to splice into.
  IncrementalAnonymizer tiny(2, anon, &domain);
  Memtable seed_run(2);
  for (size_t i = 0; i < 8; ++i) {
    seed_run.Append(points[i], static_cast<RecordId>(i), Sensitive(i));
  }
  ASSERT_TRUE(scheduler.MergeInto(tiny.mutable_tree(), seed_run, domain).ok());
  ASSERT_TRUE(tiny.tree().root()->is_leaf);
  Memtable next_run(2);
  for (size_t i = 8; i < 16; ++i) {
    next_run.Append(points[i], static_cast<RecordId>(i), Sensitive(i));
  }
  stats = scheduler.MergeInto(tiny.mutable_tree(), next_run, domain);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mode, MergeMode::kFull);

  // A run holding >= tree/delta_full_fraction of the records: the full
  // rebuild yields the better-packed tree and is taken instead.
  Memtable big(2);
  for (size_t i = 100; i < 200; ++i) {
    big.Append(points[i], static_cast<RecordId>(i), Sensitive(i));
  }
  stats = scheduler.MergeInto(empty.mutable_tree(), big, domain);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mode, MergeMode::kFull);

  // A small run on a big tree stays on the delta path, rebuilds at least
  // one site, retires the spliced-out leaves, and — the sublinearity
  // claim — re-indexes far fewer records than the tree holds.
  Memtable small(2);
  for (size_t i = 200; i < 220; ++i) {
    small.Append(points[i], static_cast<RecordId>(i), Sensitive(i));
  }
  stats = scheduler.MergeInto(empty.mutable_tree(), small, domain);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->mode, MergeMode::kDelta);
  EXPECT_GE(stats->sites_rebuilt, 1u);
  EXPECT_FALSE(stats->retired_leaves.empty());
  EXPECT_LT(stats->records_reindexed, empty.tree().size());
  EXPECT_EQ(empty.tree().size(), 220u);
  EXPECT_TRUE(empty.tree().CheckInvariants().ok());
}

TEST(DeltaMergeTest, ConcentratedDeltasEscalateAndStayValid) {
  // Every delta record lands in one tiny square: the touched leaf's
  // projected occupancy overflows a single node's fanout, so the rebuild
  // site must escalate to ancestor regions (the compaction trigger).
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  auto points = SpreadPoints(600, /*seed=*/31, 0, 1000);
  Rng rng(77);
  for (size_t i = 0; i < 400; ++i) {
    points.push_back(
        {100.0 + rng.NextDouble(), 100.0 + rng.NextDouble()});
  }

  const auto reference = BuildByFlushes(points, domain, anon, MergeMode::kFull,
                                        points.size(), 1);
  std::vector<MergeStats> stats;
  const auto delta = BuildByFlushes(points, domain, anon, MergeMode::kDelta,
                                    /*chunk=*/80, 1, &stats);
  size_t escalations = 0;
  for (const MergeStats& s : stats) escalations += s.escalations;
  EXPECT_GE(escalations, 1u);
  ExpectEquivalentTrees(delta->tree(), reference->tree(), anon.base_k, domain,
                        /*seed=*/31);
}

TEST(DeltaMergeTest, DeltaEntirelyOutsideTheTreesDataRange) {
  // The base tree's data sits in the middle of the domain; every delta
  // record lands left/below or right/above it on the curve. Regions tile
  // the whole space, so the extreme records must route into the boundary
  // leaves and the result must still be equivalent to the full rebuild.
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  auto points = SpreadPoints(300, /*seed=*/41, 400, 600);
  Rng rng(5);
  for (size_t i = 0; i < 60; ++i) {
    points.push_back({rng.UniformDouble(0, 5), rng.UniformDouble(0, 5)});
    points.push_back(
        {rng.UniformDouble(995, 1000), rng.UniformDouble(995, 1000)});
  }

  const auto reference = BuildByFlushes(points, domain, anon, MergeMode::kFull,
                                        points.size(), 1);
  std::vector<MergeStats> stats;
  const auto delta = BuildByFlushes(points, domain, anon, MergeMode::kDelta,
                                    /*chunk=*/60, 1, &stats);
  EXPECT_GE(CountDelta(stats), 1u);
  ExpectEquivalentTrees(delta->tree(), reference->tree(), anon.base_k, domain,
                        /*seed=*/41);
}

TEST(DeltaMergeTest, DuplicateCurveKeysStraddlingALeafBoundary) {
  // Spread base plus a growing pile of identical points: the duplicates
  // share one curve key, concentrate in one leaf neighborhood, and force
  // ties that straddle rebuilt-site boundaries. Unsplittable groups may
  // go overfull but never underfull or double-covered.
  const Domain domain = SquareDomain(0, 1000);
  RTreeAnonymizerOptions anon;
  anon.base_k = 5;
  auto points = SpreadPoints(240, /*seed=*/53, 0, 1000);
  for (size_t i = 0; i < 120; ++i) points.push_back({500.0, 500.0});

  const auto reference = BuildByFlushes(points, domain, anon, MergeMode::kFull,
                                        points.size(), 1);
  std::vector<MergeStats> stats;
  const auto delta = BuildByFlushes(points, domain, anon, MergeMode::kDelta,
                                    /*chunk=*/40, 1, &stats);
  EXPECT_GE(CountDelta(stats), 1u);
  ExpectEquivalentTrees(delta->tree(), reference->tree(), anon.base_k, domain,
                        /*seed=*/53);
}

// ---------------------------------------------------------------------------
// Service level: --merge-mode=delta against the full-rebuild service.

ServiceOptions DeltaServiceOptions(size_t k, uint64_t merge_every,
                                   MergeMode mode) {
  ServiceOptions options;
  options.anonymizer.base_k = k;
  options.queue_capacity = 256;
  options.max_batch = 16;
  options.snapshot_every = 0;  // publish on demand
  options.lsm.merge_every = merge_every;
  options.lsm.merge_mode = mode;
  return options;
}

void Drain(AnonymizationService& s, uint64_t n) {
  while (s.Stats().inserted < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(DeltaServiceTest, ReleasesMatchFullModeAcrossCadences) {
  const Domain domain = SquareDomain(0, 1000);
  const auto points = SpreadPoints(600, /*seed=*/61, 0, 1000);
  auto full_or = AnonymizationService::Create(
      2, domain, DeltaServiceOptions(5, 64, MergeMode::kFull));
  auto coarse_or = AnonymizationService::Create(
      2, domain, DeltaServiceOptions(5, 64, MergeMode::kDelta));
  auto fine_or = AnonymizationService::Create(
      2, domain, DeltaServiceOptions(5, 16, MergeMode::kDelta));
  ASSERT_TRUE(full_or.ok()) << full_or.status();
  ASSERT_TRUE(coarse_or.ok()) << coarse_or.status();
  ASSERT_TRUE(fine_or.ok()) << fine_or.status();

  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE((*full_or)->Ingest(points[i], Sensitive(i)).ok());
    ASSERT_TRUE((*coarse_or)->Ingest(points[i], Sensitive(i)).ok());
    ASSERT_TRUE((*fine_or)->Ingest(points[i], Sensitive(i)).ok());
  }
  (*full_or)->Stop();
  (*coarse_or)->Stop();
  (*fine_or)->Stop();

  const auto reference = (*full_or)->CurrentSnapshot();
  ASSERT_NE(reference, nullptr);
  for (const auto* service : {&coarse_or, &fine_or}) {
    const auto snapshot = (**service)->CurrentSnapshot();
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->info().records, points.size());
    EXPECT_EQ(snapshot->info().memtable_pending, 0u);
    for (const size_t k1 : {size_t{5}, size_t{10}}) {
      ExpectKBoundCoveringRelease(snapshot->Release(k1), k1,
                                  SortedRids(reference->Release(k1)));
    }
    const ServiceStats stats = (**service)->Stats();
    EXPECT_GE(stats.delta_merges, 1u);
    EXPECT_GE(stats.merges, stats.delta_merges);
  }
  EXPECT_EQ((*full_or)->Stats().delta_merges, 0u);
}

TEST(DeltaServiceTest, FragmentsAreReusedAcrossSnapshots) {
  // Publication is incremental under delta merges: per-leaf release
  // fragments untouched by a merge carry over to the next snapshot. The
  // second wave's records all land in one corner, so most of the tree's
  // leaves — and their fragments — survive the flush unchanged.
  const Domain domain = SquareDomain(0, 1000);
  auto service_or = AnonymizationService::Create(
      2, domain, DeltaServiceOptions(5, 50, MergeMode::kDelta));
  ASSERT_TRUE(service_or.ok()) << service_or.status();
  AnonymizationService& service = **service_or;

  const auto base = SpreadPoints(400, /*seed=*/71, 0, 1000);
  for (size_t i = 0; i < base.size(); ++i) {
    ASSERT_TRUE(service.Ingest(base[i], Sensitive(i)).ok());
  }
  Drain(service, base.size());
  ASSERT_NE(service.PublishNow(), nullptr);
  const ServiceStats first = service.Stats();
  EXPECT_GT(first.fragments_built, 0u);

  Rng rng(9);
  const size_t wave = 50;
  for (size_t i = 0; i < wave; ++i) {
    const std::vector<double> p = {rng.UniformDouble(0, 40),
                                   rng.UniformDouble(0, 40)};
    ASSERT_TRUE(service.Ingest(p, Sensitive(base.size() + i)).ok());
  }
  Drain(service, base.size() + wave);
  ASSERT_NE(service.PublishNow(), nullptr);
  const ServiceStats second = service.Stats();
  EXPECT_GT(second.fragments_reused, 0u);
  EXPECT_GE(second.delta_merges, 1u);

  service.Stop();
  const auto final_snapshot = service.CurrentSnapshot();
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_EQ(final_snapshot->info().records, base.size() + wave);
  std::vector<RecordId> everyone(base.size() + wave);
  for (size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  ExpectKBoundCoveringRelease(final_snapshot->Release(5), 5, everyone);
}

TEST(DeltaShardedTest, StitchedReleasesMatchFullModeAcrossShards) {
  // Four shards per service, the duplicate-heavy grid stream, delta vs
  // full merges: the stitched releases must cover the same record sets
  // and stay k-bound shard-for-shard.
  const Domain domain = SquareDomain(0, 100);
  auto sharded = [&](MergeMode mode) {
    ShardedServiceOptions options;
    options.service = DeltaServiceOptions(4, 32, mode);
    options.sharding.num_shards = 4;
    return ShardedAnonymizationService::Create(2, domain, options);
  };
  auto full_or = sharded(MergeMode::kFull);
  auto delta_or = sharded(MergeMode::kDelta);
  ASSERT_TRUE(full_or.ok()) << full_or.status();
  ASSERT_TRUE(delta_or.ok()) << delta_or.status();

  const size_t n = 600;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> p = GridPoint(i);
    ASSERT_TRUE((*full_or)->Ingest(p, GridSensitive(i)).ok());
    ASSERT_TRUE((*delta_or)->Ingest(p, GridSensitive(i)).ok());
    // Pace the producer: with every record consumed before the next is
    // queued, each shard's memtable flushes at exactly the merge_every
    // cadence, so the delta-vs-full path choice (run size vs tree size)
    // — and the delta_merges assertion below — is independent of how
    // the scheduler batches the queue (otherwise flaky under sanitizer
    // slowdown on loaded boxes).
    while ((*full_or)->Stats().total.inserted < i + 1 ||
           (*delta_or)->Stats().total.inserted < i + 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  (*full_or)->Stop();
  (*delta_or)->Stop();

  const auto full = (*full_or)->CurrentStitched();
  const auto delta = (*delta_or)->CurrentStitched();
  ASSERT_NE(full, nullptr);
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->info().records, n);
  EXPECT_EQ(delta->info().memtable_pending, 0u);
  for (const size_t k1 : {size_t{4}, size_t{8}}) {
    ExpectKBoundCoveringRelease(delta->Release(k1), k1,
                                SortedRids(full->Release(k1)));
  }
  EXPECT_GE((*delta_or)->Stats().total.delta_merges, 1u);
}

// ---------------------------------------------------------------------------
// Crash boundaries.

TEST(DeltaFaultTest, SeededFaultMatrixKeepsEquivalenceWithFullMode) {
  // The durability fault battery with delta merges in the loop: random
  // torn-write / failed-fsync schedules, then TWO fault-free restarts
  // from copies of the same damaged directory — one merging delta, one
  // full. Both must recover the same dense prefix and release the same
  // record sets: crash/recovery boundaries leave no observable trace of
  // the merge strategy.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    TempDir dir;
    const Domain domain = SquareDomain(0, 100);
    const size_t n = 300;
    FaultInjectionOptions fault_options;
    fault_options.seed = seed;
    fault_options.mean_ops_between_faults = 60;
    fault_options.sync_faults = true;
    FaultInjectionEnv env(Env::Default(), fault_options);
    ServiceOptions options = DeltaServiceOptions(5, 16, MergeMode::kDelta);
    options.durability.wal_dir = dir.path();
    options.durability.fsync_every = 8;
    options.durability.checkpoint_every = 50;
    options.durability.retry_backoff_ms = 0;
    options.durability.env = &env;

    {
      auto service = AnonymizationService::Create(2, domain, options);
      if (service.ok()) {
        for (size_t i = 0; i < n; ++i) {
          const Status status =
              (*service)->Ingest(GridPoint(i), GridSensitive(i));
          if (!status.ok()) {
            ASSERT_EQ(status.code(), StatusCode::kUnavailable)
                << "seed " << seed << ": " << status;
          }
        }
        (*service)->Stop();
      }
    }

    // Second copy of the damaged state for the full-mode restart.
    TempDir full_dir;
    std::error_code ec;
    fs::copy(dir.path(), full_dir.path(),
             fs::copy_options::recursive | fs::copy_options::overwrite_existing,
             ec);
    ASSERT_FALSE(ec) << "seed " << seed << ": " << ec.message();

    options.durability.env = nullptr;
    auto delta_restart = AnonymizationService::Create(2, domain, options);
    ASSERT_TRUE(delta_restart.ok())
        << "seed " << seed << ": " << delta_restart.status();
    ServiceOptions full_options = options;
    full_options.lsm.merge_mode = MergeMode::kFull;
    full_options.durability.wal_dir = full_dir.path();
    auto full_restart = AnonymizationService::Create(2, domain, full_options);
    ASSERT_TRUE(full_restart.ok())
        << "seed " << seed << ": " << full_restart.status();

    const RecoveryResult& recovery = (*delta_restart)->recovery();
    EXPECT_EQ(recovery.recovered, recovery.next_lsn - 1) << "seed " << seed;
    EXPECT_EQ((*full_restart)->recovery().recovered, recovery.recovered)
        << "seed " << seed;
    (*delta_restart)->Stop();
    (*full_restart)->Stop();
    if (recovery.recovered >= 5) {
      const auto from_delta = (*delta_restart)->CurrentSnapshot();
      const auto from_full = (*full_restart)->CurrentSnapshot();
      ASSERT_NE(from_delta, nullptr) << "seed " << seed;
      ASSERT_NE(from_full, nullptr) << "seed " << seed;
      EXPECT_EQ(from_delta->info().records, recovery.recovered)
          << "seed " << seed;
      ExpectKBoundCoveringRelease(from_delta->Release(5), 5,
                                  SortedRids(from_full->Release(5)));
    }
  }
}

TEST(DeltaFuzzTest, RandomizedMergeCadencesWithCrashBoundaries) {
  // Seeded fuzz over the whole lifecycle: random flush cadence, random
  // mid-stream publishes, a simulated crash that leaves acknowledged-
  // but-uncheckpointed records in the WAL tail, a delta-mode restart that
  // ingests more on top of the recovered state. The final release must
  // cover every acknowledged record exactly once, k-bound, with the
  // record set a full-mode service over the same stream releases.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 1000003);
    TempDir dir;
    const Domain domain = SquareDomain(0, 100);
    const uint64_t merge_every = 8 + rng.Uniform(57);  // [8, 64]
    const size_t phase1 = 80 + rng.Uniform(120);
    const size_t tail = rng.Uniform(30);
    const size_t phase2 = 40 + rng.Uniform(100);

    ServiceOptions options =
        DeltaServiceOptions(5, merge_every, MergeMode::kDelta);
    options.durability.wal_dir = dir.path();
    options.durability.fsync_every = 4;
    options.durability.checkpoint_every = rng.Bernoulli(0.5) ? 40 : 0;
    {
      auto service = AnonymizationService::Create(2, domain, options);
      ASSERT_TRUE(service.ok()) << "seed " << seed << ": " << service.status();
      for (size_t i = 0; i < phase1; ++i) {
        ASSERT_TRUE(
            (*service)->Ingest(GridPoint(i), GridSensitive(i)).ok());
        if (rng.Bernoulli(0.02)) (*service)->PublishNow();
      }
      (*service)->Stop();
    }

    // The crash: records acknowledged after the final checkpoint exist
    // only in the WAL, exactly as a SIGKILL would leave them.
    if (tail > 0) {
      auto wal = WalWriter::Open(dir.path(), 2, /*next_lsn=*/phase1 + 1);
      ASSERT_TRUE(wal.ok()) << wal.status();
      for (uint64_t lsn = phase1 + 1; lsn <= phase1 + tail; ++lsn) {
        const size_t i = lsn - 1;
        ASSERT_TRUE(
            (*wal)->Append(lsn, GridPoint(i), GridSensitive(i)).ok());
      }
      ASSERT_TRUE((*wal)->Sync().ok());
    }

    auto restarted = AnonymizationService::Create(2, domain, options);
    ASSERT_TRUE(restarted.ok()) << "seed " << seed << ": "
                                << restarted.status();
    EXPECT_EQ((*restarted)->recovery().recovered, phase1 + tail)
        << "seed " << seed;
    const size_t total = phase1 + tail + phase2;
    for (size_t i = phase1 + tail; i < total; ++i) {
      ASSERT_TRUE((*restarted)->Ingest(GridPoint(i), GridSensitive(i)).ok());
      if (rng.Bernoulli(0.02)) (*restarted)->PublishNow();
    }
    (*restarted)->Stop();
    const auto snapshot = (*restarted)->CurrentSnapshot();
    ASSERT_NE(snapshot, nullptr) << "seed " << seed;
    EXPECT_EQ(snapshot->info().records, total) << "seed " << seed;
    EXPECT_EQ(snapshot->info().memtable_pending, 0u) << "seed " << seed;

    // Full-mode reference over the identical stream, no crash: the merge
    // strategy and the crash boundary must both be unobservable in the
    // released record set.
    auto reference_or = AnonymizationService::Create(
        2, domain, DeltaServiceOptions(5, merge_every, MergeMode::kFull));
    ASSERT_TRUE(reference_or.ok());
    for (size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(
          (*reference_or)->Ingest(GridPoint(i), GridSensitive(i)).ok());
    }
    (*reference_or)->Stop();
    const auto reference = (*reference_or)->CurrentSnapshot();
    ASSERT_NE(reference, nullptr);
    ExpectKBoundCoveringRelease(snapshot->Release(5), 5,
                                SortedRids(reference->Release(5)));
  }
}

}  // namespace
}  // namespace kanon
