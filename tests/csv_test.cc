#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace kanon {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kanon_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, SplitLineTrimsFields) {
  const auto f = SplitCsvLine(" a , b,c ,, d ", ',');
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
  EXPECT_EQ(f[3], "");
  EXPECT_EQ(f[4], "d");
}

TEST_F(CsvTest, ReadsNumericRows) {
  WriteFile("1,2.5,7\n3,4.5,9\n");
  auto ds = ReadNumericCsv(path_, Schema::Numeric(2));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_records(), 2u);
  EXPECT_EQ(ds->value(0, 1), 2.5);
  EXPECT_EQ(ds->sensitive(1), 9);
}

TEST_F(CsvTest, SkipsHeaderWhenAsked) {
  WriteFile("x,y\n1,2\n");
  CsvOptions options;
  options.skip_header = true;
  auto ds = ReadNumericCsv(path_, Schema::Numeric(2), options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_records(), 1u);
}

TEST_F(CsvTest, DropsRowsWithMissingValues) {
  WriteFile("1,2\n?,3\n4,5\n");
  auto ds = ReadNumericCsv(path_, Schema::Numeric(2));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_records(), 2u);
}

TEST_F(CsvTest, DropsMalformedRows) {
  WriteFile("1,2\nonly-one-field\n3,4,5,6\n7,8\n");
  auto ds = ReadNumericCsv(path_, Schema::Numeric(2));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_records(), 2u);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto ds = ReadNumericCsv("/nonexistent/nope.csv", Schema::Numeric(1));
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RoundTripWriteRead) {
  Dataset d(Schema::Numeric(2));
  d.Append({1.0, 2.0}, 3);
  d.Append({4.0, 5.0}, 6);
  ASSERT_TRUE(WriteCsv(d, path_).ok());
  CsvOptions options;
  options.skip_header = true;
  auto back = ReadNumericCsv(path_, Schema::Numeric(2), options);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_records(), 2u);
  EXPECT_EQ(back->value(1, 0), 4.0);
  EXPECT_EQ(back->sensitive(0), 3);
}

}  // namespace
}  // namespace kanon
